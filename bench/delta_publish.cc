// Delta-publish microbenchmark: the cost of shipping an online fold-in
// update as a chained delta snapshot versus republishing the full sharded
// snapshot (DESIGN.md §10). One OnlineUpdater is seeded from a base
// snapshot, a micro-batch touching a small fraction of the item shards is
// applied, and both publish paths are measured:
//
//   - file size — the delta carries the user table plus only dirty
//     shards, so its size tracks the touched fraction;
//   - publish wall time (median of several rounds);
//   - consume wall time — EmbeddingSnapshot::ApplyDelta on the live base
//     versus a full LoadShardedSnapshot of the republished file.
//
// Usage:
//   delta_publish [num_users num_items dim items_per_shard batch_edges]
//
// Representative numbers live in EXPERIMENTS.md.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "serve/shard_format.h"
#include "serve/snapshot.h"
#include "tensor/tensor.h"
#include "train/online_updater.h"
#include "util/status.h"

namespace imcat {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tensor MakeTable(int64_t rows, int64_t cols, float scale) {
  std::vector<float> values(static_cast<size_t>(rows * cols));
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = scale * static_cast<float>(i % 97 - 48);
  }
  return Tensor(rows, cols, std::move(values));
}

int64_t FileSizeBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in.is_open() ? static_cast<int64_t>(in.tellg()) : -1;
}

double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

void Die(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

int Run(int argc, char** argv) {
  int64_t num_users = 20000;
  int64_t num_items = 200000;
  int64_t dim = 64;
  int64_t items_per_shard = 4096;
  int64_t batch_edges = 512;
  if (argc >= 6) {
    num_users = std::strtoll(argv[1], nullptr, 10);
    num_items = std::strtoll(argv[2], nullptr, 10);
    dim = std::strtoll(argv[3], nullptr, 10);
    items_per_shard = std::strtoll(argv[4], nullptr, 10);
    batch_edges = std::strtoll(argv[5], nullptr, 10);
  }
  constexpr int kRounds = 5;

  std::printf("delta_publish: %lld users x %lld items x %lld dim, "
              "%lld items/shard, %lld edges/batch\n",
              static_cast<long long>(num_users),
              static_cast<long long>(num_items), static_cast<long long>(dim),
              static_cast<long long>(items_per_shard),
              static_cast<long long>(batch_edges));

  const std::string base_path = "/tmp/imcat_bench_delta_base.snap";
  const std::string delta_path = "/tmp/imcat_bench_delta.delta";
  const std::string full_path = "/tmp/imcat_bench_delta_full.snap";
  {
    Tensor users = MakeTable(num_users, dim, 0.02f);
    Tensor items = MakeTable(num_items, dim, -0.01f);
    ShardedSnapshotOptions sharded;
    sharded.items_per_shard = items_per_shard;
    sharded.version = 1;
    Status write = WriteShardedSnapshot(base_path, users, items, sharded);
    if (!write.ok()) Die("base write", write);
  }
  auto base = EmbeddingSnapshot::Load(base_path);
  if (!base.ok()) Die("base load", base.status());
  base.value()->set_version(1);
  std::shared_ptr<const EmbeddingSnapshot> live = base.value();

  OnlineUpdaterOptions options;
  auto seeded = OnlineUpdater::FromSnapshot(base_path, {}, options);
  if (!seeded.ok()) Die("seed", seeded.status());
  std::unique_ptr<OnlineUpdater> updater = std::move(seeded.value());

  // A micro-batch clustered on a few item shards — the regime deltas are
  // for. Edges walk a small item window so dirty shards stay a small
  // fraction of the catalogue.
  const int64_t item_window =
      std::min<int64_t>(num_items, 4 * items_per_shard);
  std::printf("%-12s %12s %14s %14s %12s\n", "path", "file_bytes",
              "publish_ms", "consume_ms", "shards");
  std::vector<double> delta_publish_ms, delta_apply_ms;
  std::vector<double> full_publish_ms, full_load_ms;
  int64_t delta_bytes = 0, full_bytes = 0, dirty = 0, total_shards = 0;
  for (int round = 0; round < kRounds; ++round) {
    EdgeList batch;
    for (int64_t e = 0; e < batch_edges; ++e) {
      // Distinct pairs each round so every publish has real changes.
      const int64_t k = round * batch_edges + e;
      batch.push_back({k % num_users, (k * 7) % item_window});
    }
    if (Status st = updater->AddInteractions(batch); !st.ok()) {
      Die("add", st);
    }
    if (Status st = updater->ApplyPending(); !st.ok()) Die("apply", st);
    dirty = updater->dirty_shard_count();

    double start = NowMs();
    if (Status st = updater->PublishDelta(delta_path); !st.ok()) {
      Die("publish delta", st);
    }
    delta_publish_ms.push_back(NowMs() - start);
    delta_bytes = FileSizeBytes(delta_path);

    start = NowMs();
    auto applied = EmbeddingSnapshot::ApplyDelta(live, delta_path);
    if (!applied.ok()) Die("apply delta", applied.status());
    delta_apply_ms.push_back(NowMs() - start);
    live = applied.value();
    total_shards = live->num_shards();

    // Full republish of the same post-update state, version-matched so
    // the updater's chain keeps advancing.
    updater->set_published_version(updater->published_version() - 1);
    start = NowMs();
    if (Status st = updater->PublishFull(full_path); !st.ok()) {
      Die("publish full", st);
    }
    full_publish_ms.push_back(NowMs() - start);
    full_bytes = FileSizeBytes(full_path);

    start = NowMs();
    auto loaded = LoadShardedSnapshot(full_path);
    if (!loaded.ok()) Die("load full", loaded.status());
    full_load_ms.push_back(NowMs() - start);
  }

  std::printf("%-12s %12lld %14.2f %14.2f %5lld/%lld\n", "delta",
              static_cast<long long>(delta_bytes), Median(delta_publish_ms),
              Median(delta_apply_ms), static_cast<long long>(dirty),
              static_cast<long long>(total_shards));
  std::printf("%-12s %12lld %14.2f %14.2f %5lld/%lld\n", "full",
              static_cast<long long>(full_bytes), Median(full_publish_ms),
              Median(full_load_ms), static_cast<long long>(total_shards),
              static_cast<long long>(total_shards));
  std::remove(base_path.c_str());
  std::remove(delta_path.c_str());
  std::remove(full_path.c_str());
  return 0;
}

}  // namespace
}  // namespace imcat

int main(int argc, char** argv) { return imcat::Run(argc, argv); }
