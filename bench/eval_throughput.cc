// Evaluator throughput: serial Evaluate versus the ThreadPool-parallel
// path at 1, 2 and 8 threads. Two claims are checked, matching the
// threading-model contract (DESIGN.md §8):
//   1. every parallel run is bit-identical to the serial run (the
//      deterministic index-ordered reduction), and
//   2. parallelism actually pays: wall-clock speedup at 8 threads.
// Honours the standard IMCAT_BENCH_* environment overrides.

#include <chrono>
#include <cstdio>

#include "bench/runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace {

double MedianSeconds(const std::function<void()>& fn, int reps) {
  std::vector<double> times;
  times.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    times.push_back(elapsed.count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

bool BitIdentical(const imcat::EvalResult& a, const imcat::EvalResult& b) {
  return a.num_users == b.num_users && a.recall == b.recall &&
         a.ndcg == b.ndcg && a.precision == b.precision &&
         a.hit_rate == b.hit_rate && a.mrr == b.mrr;
}

}  // namespace

int main() {
  using imcat::bench::BenchEnv;
  BenchEnv env = BenchEnv::FromEnvironment();
  imcat::bench::PrintBanner(
      "Evaluator throughput — serial vs parallel Evaluate", env);

  imcat::bench::Workload workload =
      imcat::bench::MakeWorkload("CiteULike", env, /*seed=*/1);

  // One briefly-trained real model: the scoring cost (and hence the
  // parallel speedup) does not depend on how converged it is.
  BenchEnv train_env = env;
  train_env.max_epochs = 2;
  imcat::bench::TrainedModel trained =
      imcat::bench::TrainModel("BPRMF", &workload, train_env, /*seed=*/1);
  const imcat::Ranker& ranker = *trained.model;

  const int top_n = 20;
  const int reps = 5;
  const imcat::EvalResult serial_result =
      workload.evaluator.Evaluate(ranker, workload.split.test, top_n);
  const double serial_sec = MedianSeconds(
      [&] { workload.evaluator.Evaluate(ranker, workload.split.test, top_n); },
      reps);

  std::printf("\ntest users evaluated: %lld, items scored per user: %lld\n",
              static_cast<long long>(serial_result.num_users),
              static_cast<long long>(workload.dataset.num_items));

  imcat::TablePrinter table(
      {"threads", "median sec", "speedup", "bit-identical"});
  table.AddRow({"serial", imcat::FormatDouble(serial_sec, 4), "1.00", "ref"});
  for (int64_t threads : {1, 2, 8}) {
    imcat::ThreadPoolOptions options;
    options.num_threads = threads;
    imcat::ThreadPool pool(options);
    const imcat::EvalResult parallel_result = workload.evaluator.Evaluate(
        ranker, workload.split.test, top_n, {}, &pool);
    const double parallel_sec = MedianSeconds(
        [&] {
          workload.evaluator.Evaluate(ranker, workload.split.test, top_n, {},
                                      &pool);
        },
        reps);
    table.AddRow({std::to_string(threads),
                  imcat::FormatDouble(parallel_sec, 4),
                  imcat::FormatDouble(serial_sec / parallel_sec, 2),
                  BitIdentical(serial_result, parallel_result) ? "yes"
                                                               : "NO"});
    if (!BitIdentical(serial_result, parallel_result)) {
      std::fprintf(stderr,
                   "FATAL: parallel Evaluate at %lld threads diverged from "
                   "the serial result\n",
                   static_cast<long long>(threads));
      return 1;
    }
  }
  table.Print();
  return 0;
}
