// Evaluator throughput: serial per-user Evaluate versus the batched
// multi-user kernel (tensor/score_kernel.h) and the ThreadPool-parallel
// path, swept over batch sizes and thread counts. Three claims are
// checked, matching the threading and batching contracts (DESIGN.md §8,
// §12):
//   1. every run — any batch size, any thread count — is bit-identical
//      to the serial per-user run (deterministic index-ordered reduction
//      plus the kernel's bit-exactness contract);
//   2. batching pays serially: the blocked kernel beats per-user scoring
//      on one thread by streaming the item table through cache once per
//      batch;
//   3. parallelism pays on top — wall-clock speedup at 8 threads on a
//      multi-core host. The artifact records host_cores so the validator
//      can scale this expectation: on a single-core runner the pool path
//      can only add overhead, and the criterion becomes "does not regress".
// Honours the standard IMCAT_BENCH_* environment overrides.
//
// Output: BENCH_eval.json (schema "imcat-bench-eval/1", validated by
// scripts/validate_bench_eval.py in the check.sh --docs leg).
//
// Usage: eval_throughput [output.json]      (default BENCH_eval.json)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "bench/runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace {

double MedianSeconds(const std::function<void()>& fn, int reps) {
  std::vector<double> times;
  times.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    times.push_back(elapsed.count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

bool BitIdentical(const imcat::EvalResult& a, const imcat::EvalResult& b) {
  return a.num_users == b.num_users && a.recall == b.recall &&
         a.ndcg == b.ndcg && a.precision == b.precision &&
         a.hit_rate == b.hit_rate && a.mrr == b.mrr;
}

struct SweepRun {
  int64_t threads = 0;  ///< 0 = serial (no pool).
  int64_t batch_users = 1;
  double median_sec = 0.0;
  double speedup = 0.0;
  bool bit_identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string output_path = argc > 1 ? argv[1] : "BENCH_eval.json";
  using imcat::bench::BenchEnv;
  BenchEnv env = BenchEnv::FromEnvironment();
  // The Table-I presets are scaled down so the accuracy benches train in
  // seconds, but at that size one Evaluate finishes in single-digit
  // milliseconds and pool dispatch plus timer noise swamp the kernel.
  // Default this bench to an 8x larger workload (an Evaluate in the
  // hundreds of milliseconds; the sweep still completes in well under a
  // minute). IMCAT_BENCH_SCALE overrides as usual.
  if (std::getenv("IMCAT_BENCH_SCALE") == nullptr) {
    env.scale_multiplier = 8.0;
  }
  imcat::bench::PrintBanner(
      "Evaluator throughput — scalar vs batched kernel vs parallel", env);

  imcat::bench::Workload workload =
      imcat::bench::MakeWorkload("CiteULike", env, /*seed=*/1);

  // One briefly-trained real model: the scoring cost (and hence the
  // batching/parallel speedup) does not depend on how converged it is.
  BenchEnv train_env = env;
  train_env.max_epochs = 2;
  imcat::bench::TrainedModel trained =
      imcat::bench::TrainModel("BPRMF", &workload, train_env, /*seed=*/1);
  const imcat::Ranker& ranker = *trained.model;

  const int top_n = 20;
  const int reps = 5;
  // Reference: serial, per-user scoring (batch_users = 1 routes each user
  // through a batch of one, which is literally the scalar loop).
  workload.evaluator.set_batch_users(1);
  const imcat::EvalResult reference =
      workload.evaluator.Evaluate(ranker, workload.split.test, top_n);
  const double serial_sec = MedianSeconds(
      [&] { workload.evaluator.Evaluate(ranker, workload.split.test, top_n); },
      reps);

  std::printf("\ntest users evaluated: %lld, items scored per user: %lld\n",
              static_cast<long long>(reference.num_users),
              static_cast<long long>(workload.dataset.num_items));

  std::vector<SweepRun> runs;
  imcat::TablePrinter table(
      {"threads", "batch users", "median sec", "speedup", "bit-identical"});
  table.AddRow({"serial", "1", imcat::FormatDouble(serial_sec, 4), "1.00",
                "ref"});
  bool all_identical = true;
  for (int64_t batch_users : {1, 8, 32}) {
    workload.evaluator.set_batch_users(batch_users);
    for (int64_t threads : {0, 1, 2, 8}) {
      if (threads == 0 && batch_users == 1) continue;  // The reference row.
      std::unique_ptr<imcat::ThreadPool> pool;
      if (threads > 0) {
        imcat::ThreadPoolOptions options;
        options.num_threads = threads;
        pool = std::make_unique<imcat::ThreadPool>(options);
      }
      const imcat::EvalResult result = workload.evaluator.Evaluate(
          ranker, workload.split.test, top_n, {}, pool.get());
      const double median_sec = MedianSeconds(
          [&] {
            workload.evaluator.Evaluate(ranker, workload.split.test, top_n,
                                        {}, pool.get());
          },
          reps);
      SweepRun run;
      run.threads = threads;
      run.batch_users = batch_users;
      run.median_sec = median_sec;
      run.speedup = serial_sec / median_sec;
      run.bit_identical = BitIdentical(reference, result);
      runs.push_back(run);
      table.AddRow({threads == 0 ? "serial" : std::to_string(threads),
                    std::to_string(batch_users),
                    imcat::FormatDouble(median_sec, 4),
                    imcat::FormatDouble(run.speedup, 2),
                    run.bit_identical ? "yes" : "NO"});
      if (!run.bit_identical) {
        all_identical = false;
        std::fprintf(stderr,
                     "FATAL: Evaluate at %lld threads / batch %lld diverged "
                     "from the serial per-user result\n",
                     static_cast<long long>(threads),
                     static_cast<long long>(batch_users));
      }
    }
  }
  table.Print();
  workload.evaluator.set_batch_users(1);

  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(6);
  out << "{\n"
      << "  \"schema\": \"imcat-bench-eval/1\",\n"
      << "  \"generated_by\": \"bench/eval_throughput\",\n"
      << "  \"config\": {\"dataset\":\"CiteULike\""
      << ",\"users\":" << workload.dataset.num_users
      << ",\"items\":" << workload.dataset.num_items
      << ",\"test_users\":" << reference.num_users
      << ",\"dim\":" << env.embedding_dim << ",\"top_n\":" << top_n
      << ",\"reps\":" << reps << ",\"host_cores\":"
      << std::max(1u, std::thread::hardware_concurrency()) << "},\n"
      << "  \"serial_sec\": " << serial_sec << ",\n"
      << "  \"runs\": [\n";
  out.precision(6);
  for (size_t i = 0; i < runs.size(); ++i) {
    const SweepRun& run = runs[i];
    out << "    {\"threads\":" << run.threads
        << ",\"batch_users\":" << run.batch_users
        << ",\"median_sec\":" << run.median_sec
        << ",\"speedup\":" << run.speedup << ",\"bit_identical\":"
        << (run.bit_identical ? "true" : "false") << "}"
        << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::ofstream file(output_path);
  file << out.str();
  file.close();
  std::fprintf(stderr, "wrote %s\n", output_path.c_str());
  return all_identical ? 0 : 1;
}
