// Reproduces Fig. 5: the impact of the number of intents K on N-IMCAT and
// L-IMCAT (paper: HetRec datasets; K in {1, 2, 4, 8, 16}). Expected shape:
// K = 1 worst (no disentanglement), K in {4, 8} best, very large K
// degrades; HetRec-Del (more tags / more planted intents) prefers a larger
// K than HetRec-MV/FM.

#include <cstdio>

#include "bench/runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using imcat::bench::BenchEnv;
  const BenchEnv env = BenchEnv::FromEnvironment();
  imcat::bench::PrintBanner("Fig. 5 — impact of the number of intents K",
                            env);

  // HetRec-MV (baseline K shape) and HetRec-Del (the larger-K dataset);
  // add HetRec-FM via IMCAT_BENCH_DATASETS-style edits if desired.
  const char* datasets[] = {"HetRec-MV", "HetRec-Del"};
  const char* models[] = {"N-IMCAT", "L-IMCAT"};
  const int intent_counts[] = {1, 2, 4, 8, 16};

  for (const char* dataset : datasets) {
    imcat::bench::Workload workload =
        imcat::bench::MakeWorkload(dataset, env, /*seed=*/1);
    std::printf("\n--- %s ---\n", dataset);
    imcat::TablePrinter table({"Model", "K", "R@20", "N@20"});
    for (const char* model : models) {
      for (int k : intent_counts) {
        if (env.embedding_dim % k != 0) continue;  // d must divide by K.
        const auto runs = imcat::bench::RunSeeds(
            model, &workload, env,
            [k](imcat::ModelFactoryOptions* options) {
              options->imcat.num_intents = k;
            });
        table.AddRow({model, std::to_string(k),
                      imcat::FormatDouble(
                          imcat::bench::MeanTestRecallPercent(runs), 2),
                      imcat::FormatDouble(
                          imcat::bench::MeanTestNdcgPercent(runs), 2)});
        std::fflush(stdout);
      }
    }
    table.Print();
  }
  return 0;
}
