// Reproduces Fig. 6: the ISA threshold delta study. For each setting the
// binary reports the ratio of the model's performance with set-to-set
// alignment at threshold delta to its performance *without* the ISA
// module (the paper's normalisation). Expected shape: delta <= 0.3 falls
// below 1.0 (too many dissimilar items pollute the positive sets);
// delta in {0.7, 0.9} is best.

#include <cstdio>

#include "bench/runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using imcat::bench::BenchEnv;
  const BenchEnv env = BenchEnv::FromEnvironment();
  imcat::bench::PrintBanner(
      "Fig. 6 — ISA threshold delta (performance relative to no-ISA)", env);

  const char* datasets[] = {"CiteULike"};
  const char* models[] = {"N-IMCAT", "L-IMCAT"};
  const float thresholds[] = {0.1f, 0.3f, 0.5f, 0.7f, 0.9f};

  for (const char* dataset : datasets) {
    imcat::bench::Workload workload =
        imcat::bench::MakeWorkload(dataset, env, /*seed=*/1);
    std::printf("\n--- %s ---\n", dataset);
    imcat::TablePrinter table(
        {"Model", "delta", "R@20", "no-ISA R@20", "ratio"});
    for (const char* model : models) {
      const auto baseline_runs = imcat::bench::RunSeeds(
          model, &workload, env, [](imcat::ModelFactoryOptions* options) {
            options->imcat.enable_isa = false;
          });
      const double baseline =
          imcat::bench::MeanTestRecallPercent(baseline_runs);
      for (float delta : thresholds) {
        const auto runs = imcat::bench::RunSeeds(
            model, &workload, env,
            [delta](imcat::ModelFactoryOptions* options) {
              options->imcat.enable_isa = true;
              options->imcat.jaccard_threshold = delta;
            });
        const double recall = imcat::bench::MeanTestRecallPercent(runs);
        table.AddRow({model, imcat::FormatDouble(delta, 1),
                      imcat::FormatDouble(recall, 2),
                      imcat::FormatDouble(baseline, 2),
                      imcat::FormatDouble(
                          baseline > 0.0 ? recall / baseline : 0.0, 3)});
        std::fflush(stdout);
      }
    }
    table.Print();
  }
  return 0;
}
