// Reproduces Fig. 7: contribution of each item-popularity group (G1 least
// popular .. G5 most popular, equal item counts) to overall Recall@20, for
// the GNN-based models LightGCN, TGCN, KGAT, KGCL and L-IMCAT. Expected
// shape: plain LightGCN concentrates its recall on the popular groups;
// the auxiliary-information and SSL models shift mass toward the long
// tail; L-IMCAT has the strongest long-tail (G1-G3) contributions.

#include <cstdio>

#include "bench/runner.h"
#include "eval/group_eval.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using imcat::bench::BenchEnv;
  const BenchEnv env = BenchEnv::FromEnvironment();
  imcat::bench::PrintBanner(
      "Fig. 7 — Recall@20 contribution by item-popularity group", env);

  const char* datasets[] = {"CiteULike"};
  const char* models[] = {"LightGCN", "TGCN", "KGAT", "KGCL", "L-IMCAT"};
  constexpr int kGroups = 5;

  for (const char* dataset : datasets) {
    imcat::bench::Workload workload =
        imcat::bench::MakeWorkload(dataset, env, /*seed=*/1);
    const std::vector<int> groups =
        imcat::PopularityGroups(workload.evaluator, kGroups);
    std::printf("\n--- %s ---\n", dataset);
    imcat::TablePrinter table({"Model", "G1 (tail)", "G2", "G3", "G4",
                               "G5 (head)", "overall R@20"});
    for (const char* model : models) {
      imcat::bench::TrainedModel trained =
          imcat::bench::TrainModel(model, &workload, env, /*seed=*/13);
      const std::vector<double> contributions =
          imcat::GroupRecallContribution(workload.evaluator, *trained.model,
                                         workload.split.test, 20, groups,
                                         kGroups);
      std::vector<std::string> row = {model};
      double total = 0.0;
      for (double c : contributions) {
        row.push_back(imcat::FormatDouble(100.0 * c, 2));
        total += c;
      }
      row.push_back(imcat::FormatDouble(100.0 * total, 2));
      table.AddRow(row);
      std::fflush(stdout);
    }
    table.Print();
  }
  return 0;
}
