// Reproduces Fig. 8: performance on cold-start users (training degree
// below a threshold) on the CiteULike and AMZBook-Tag presets, for the
// same GNN-based model family as Fig. 7. Expected shape: L-IMCAT retains
// the most recall on sparse users; plain LightGCN degrades the most.

#include <cstdio>

#include "bench/runner.h"
#include "eval/group_eval.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using imcat::bench::BenchEnv;
  const BenchEnv env = BenchEnv::FromEnvironment();
  imcat::bench::PrintBanner(
      "Fig. 8 — cold-start users (train degree < 10)", env);

  const char* datasets[] = {"AMZBook-Tag"};
  const char* models[] = {"LightGCN", "TGCN", "KGAT", "KGCL", "L-IMCAT"};
  constexpr int64_t kSparseDegree = 10;

  for (const char* dataset : datasets) {
    imcat::bench::Workload workload =
        imcat::bench::MakeWorkload(dataset, env, /*seed=*/1);
    const std::vector<int64_t> sparse_users = imcat::SparseUsers(
        workload.evaluator, workload.dataset.num_users, kSparseDegree);
    std::printf("\n--- %s: %zu sparse users of %lld ---\n", dataset,
                sparse_users.size(),
                static_cast<long long>(workload.dataset.num_users));
    imcat::TablePrinter table(
        {"Model", "sparse R@20", "sparse N@20", "all-user R@20"});
    for (const char* model : models) {
      imcat::bench::TrainedModel trained =
          imcat::bench::TrainModel(model, &workload, env, /*seed=*/13);
      const imcat::EvalResult sparse = workload.evaluator.Evaluate(
          *trained.model, workload.split.test, 20, sparse_users);
      table.AddRow({model,
                    imcat::FormatDouble(100.0 * sparse.recall, 2),
                    imcat::FormatDouble(100.0 * sparse.ndcg, 2),
                    imcat::FormatDouble(100.0 * trained.result.test.recall,
                                        2)});
      std::fflush(stdout);
    }
    table.Print();
  }
  return 0;
}
