// Reproduces Fig. 9: training efficiency versus recommendation quality.
// For each model the harness reports total training seconds (to the best
// validation checkpoint's stopping time) against test Recall@20. Expected
// shape: N-IMCAT reaches GNN-class quality at a fraction of the GNN
// training cost (the paper reports > 50% time reduction vs KGCL);
// L-IMCAT is the quality ceiling.

#include <cstdio>

#include "bench/runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using imcat::bench::BenchEnv;
  const BenchEnv env = BenchEnv::FromEnvironment();
  imcat::bench::PrintBanner(
      "Fig. 9 — training efficiency vs recommendation quality", env);

  const char* datasets[] = {"CiteULike"};
  const char* models[] = {"BPRMF", "NeuMF",  "LightGCN", "TGCN",
                          "KGAT",  "KGCL",   "N-IMCAT",  "L-IMCAT"};

  for (const char* dataset : datasets) {
    imcat::bench::Workload workload =
        imcat::bench::MakeWorkload(dataset, env, /*seed=*/1);
    std::printf("\n--- %s ---\n", dataset);
    imcat::TablePrinter table({"Model", "train sec", "epochs", "sec/epoch",
                               "R@20", "N@20"});
    for (const char* model : models) {
      const auto runs = imcat::bench::RunSeeds(model, &workload, env);
      double seconds = 0.0, epochs = 0.0;
      for (const auto& r : runs) {
        seconds += r.train_seconds;
        epochs += static_cast<double>(r.epochs_run);
      }
      seconds /= runs.size();
      epochs /= runs.size();
      table.AddRow({model, imcat::FormatDouble(seconds, 2),
                    imcat::FormatDouble(epochs, 0),
                    imcat::FormatDouble(epochs > 0 ? seconds / epochs : 0.0,
                                        3),
                    imcat::FormatDouble(
                        imcat::bench::MeanTestRecallPercent(runs), 2),
                    imcat::FormatDouble(
                        imcat::bench::MeanTestNdcgPercent(runs), 2)});
      std::fflush(stdout);
    }
    table.Print();
  }
  return 0;
}
