// Production traffic harness for the serving stack (DESIGN.md §10,
// docs/OPERATIONS.md §6): replays power-law user traffic against a real
// RecService and measures how goodput degrades — or doesn't — as offered
// load crosses capacity.
//
// Protocol, per mode (controller = adaptive overload control on with
// request coalescing into multi-user scoring batches, controller_nobatch
// = controller on but max_batch_size 1, baseline = controller and
// batching disabled, everything else identical):
//
//   1. measure capacity with a closed loop (one request in flight; the
//      completion rate is the service's intrinsic throughput);
//   2. sweep open-loop offered load at fixed multiples of that capacity
//      (arrivals fire on a wall-clock schedule whether or not earlier
//      requests finished — the regime where queues actually explode);
//   3. during every sweep run, a churn thread hot-reloads the serving
//      snapshot, so the numbers include reload interference, and the
//      request mix spans priorities (interactive/batch) and deadlines.
//
// Goodput counts a request only when the *client-observed* latency
// (submit to future-resolved, queue wait included) beat its deadline —
// a late OK is not good. The interesting contrasts are at >= 1x
// capacity: the baseline keeps accepting work it cannot finish in time,
// so its queue grows until almost every answer is late (classic
// metastable collapse); the controller sheds the excess at admission and
// keeps the accepted requests' p99 inside the deadline; and coalescing
// (controller vs controller_nobatch) drains the built-up queue in
// multi-user batches whose per-request cost is amortised by the blocked
// kernel (DESIGN.md §12), lifting goodput at the saturated points.
//
// Output: BENCH_serving.json (schema "imcat-bench-serving/1", validated
// by scripts/validate_bench_serving.py in the check.sh --docs leg), with
// per-run outcome taxonomy read from the serve_* metrics counters so the
// accounting identity can be re-checked offline.
//
// Usage: load_gen [output.json]      (default BENCH_serving.json)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "obs/metrics.h"
#include "serve/rec_service.h"
#include "tensor/checkpoint.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace imcat {
namespace {

// Catalogue sized so one full-range scoring pass costs a fraction of a
// millisecond: large enough that a saturated queue is a real queue, small
// enough that the whole sweep finishes in well under a minute.
constexpr int64_t kNumUsers = 2048;
constexpr int64_t kNumItems = 60000;
constexpr int64_t kDim = 32;
constexpr int64_t kTopK = 10;
constexpr int64_t kQueueCapacity = 128;

constexpr double kInteractiveDeadlineMs = 30.0;
constexpr double kBatchDeadlineMs = 60.0;
constexpr double kBatchFraction = 0.3;
constexpr double kZipfExponent = 1.1;

constexpr int64_t kMaxBatchSize = 8;

constexpr double kCapacitySeconds = 0.5;
constexpr double kRunSeconds = 1.5;
constexpr double kReloadPeriodMs = 300.0;
const std::vector<double> kMultipliers = {0.25, 0.5, 1.0, 1.5, 2.0};

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tensor MakeTable(int64_t rows, int64_t cols, float scale) {
  std::vector<float> values(static_cast<size_t>(rows * cols));
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = scale * static_cast<float>(static_cast<int64_t>(i) % 97 - 48);
  }
  return Tensor(rows, cols, std::move(values));
}

std::shared_ptr<const PopularityRanker> Fallback() {
  EdgeList train;
  for (int64_t u = 0; u < 256; ++u) {
    for (int64_t i = u; i < kNumItems; i += 997) train.push_back({u, i});
  }
  return std::make_shared<PopularityRanker>(kNumItems, train);
}

/// Deterministic 64-bit LCG (same constants as MMIX); the harness must
/// replay the identical arrival schedule in both modes.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 11;
  }
  double NextUnit() {
    return static_cast<double>(Next() % (1ULL << 40)) /
           static_cast<double>(1ULL << 40);
  }

 private:
  uint64_t state_;
};

/// Power-law user sampler: CDF of rank^-s over the user universe, sampled
/// by binary search. Head users dominate, the tail stays warm — the shape
/// that makes caching lies and uniform-load assumptions fail.
class ZipfSampler {
 public:
  ZipfSampler(int64_t n, double s) : cdf_(static_cast<size_t>(n)) {
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[static_cast<size_t>(i)] = total;
    }
    for (double& c : cdf_) c /= total;
  }
  int64_t Sample(double unit) const {
    return static_cast<int64_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), unit) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct SentRecord {
  double send_ms = 0.0;
  double deadline_ms = 0.0;
  bool batch = false;
  std::future<RecResponse> future;
};

struct RunResult {
  std::string mode;
  double multiplier = 0.0;
  double offered_qps = 0.0;
  int64_t sent = 0;
  int64_t good = 0;
  double goodput_qps = 0.0;
  double goodput_fraction = 0.0;
  double shed_rate = 0.0;
  double accepted_p50_ms = 0.0;
  double accepted_p95_ms = 0.0;
  double accepted_p99_ms = 0.0;
  double accepted_interactive_p99_ms = 0.0;
  double accepted_batch_p99_ms = 0.0;
  int64_t max_brownout_level = 0;
  int64_t brownout_transitions = 0;
  int64_t reloads = 0;
  MetricsSnapshot metrics;
};

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(values->size() - 1) + 0.5);
  return (*values)[std::min(index, values->size() - 1)];
}

RecServiceOptions ServiceOptions(bool controller, int64_t max_batch_size,
                                 MetricsRegistry* metrics) {
  RecServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = kQueueCapacity;
  options.default_top_k = kTopK;
  options.default_deadline_ms = kInteractiveDeadlineMs;
  options.max_batch_size = max_batch_size;
  options.metrics = metrics;
  options.overload.enabled = controller;
  // Saturated at 2x capacity the queue-wait signal moves in milliseconds;
  // a tight target + interval reacts within a few tens of requests.
  options.overload.target_ms = 5.0;
  options.overload.interval_ms = 50.0;
  options.overload.ladder_up_ms = 100.0;
  options.overload.ladder_down_ms = 200.0;
  return options;
}

/// Closed-loop capacity: completions per second with exactly one request
/// in flight, i.e. 1 / mean service time. Run on a controller-less
/// service so the measurement is pure scoring cost.
double MeasureCapacityQps(const std::string& snapshot_path) {
  MetricsRegistry metrics;
  RecService service(Fallback(), ServiceOptions(false, 1, &metrics));
  Status loaded = service.LoadSnapshot(snapshot_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "capacity load failed: %s\n",
                 loaded.ToString().c_str());
    return -1.0;
  }
  Rng rng(1);
  ZipfSampler zipf(kNumUsers, kZipfExponent);
  // Warm up caches and the pool before timing.
  for (int i = 0; i < 50; ++i) {
    RecRequest request;
    request.user = zipf.Sample(rng.NextUnit());
    request.deadline_ms = -1.0;
    service.Recommend(std::move(request));
  }
  const double start = NowMs();
  int64_t completed = 0;
  while (NowMs() - start < kCapacitySeconds * 1000.0) {
    RecRequest request;
    request.user = zipf.Sample(rng.NextUnit());
    request.deadline_ms = -1.0;
    service.Recommend(std::move(request));
    ++completed;
  }
  const double elapsed_ms = NowMs() - start;
  service.Shutdown();
  return static_cast<double>(completed) / (elapsed_ms / 1000.0);
}

struct ModeSpec {
  const char* name;
  bool controller;
  int64_t max_batch_size;
};

RunResult RunSweepPoint(const std::string& snapshot_path,
                        const ModeSpec& mode, double capacity_qps,
                        double multiplier) {
  RunResult result;
  result.mode = mode.name;
  result.multiplier = multiplier;
  result.offered_qps = capacity_qps * multiplier;

  MetricsRegistry metrics;
  RecService service(
      Fallback(),
      ServiceOptions(mode.controller, mode.max_batch_size, &metrics));
  Status loaded = service.LoadSnapshot(snapshot_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "sweep load failed: %s\n", loaded.ToString().c_str());
    return result;
  }

  // Churn thread: hot-reloads the snapshot during the run, as a real
  // fleet's publisher would mid-incident.
  std::atomic<bool> stop_churn{false};
  std::atomic<int64_t> reloads{0};
  std::thread churn([&service, &snapshot_path, &stop_churn, &reloads] {
    while (!stop_churn.load()) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(kReloadPeriodMs));
      if (stop_churn.load()) break;
      if (service.LoadSnapshot(snapshot_path).ok()) ++reloads;
    }
  });

  // Open-loop dispatch: arrivals fire on schedule in 2 ms ticks; a
  // concurrent FIFO harvester blocks on the oldest future and stamps its
  // client-observed completion, so latency is measured when the answer
  // lands, not when the run ends. (Completions are near-FIFO — one queue,
  // two workers — so charging max(own, predecessor) completion is
  // faithful.) The seed is shared across modes so both replay the same
  // trace.
  std::mutex harvest_mu;
  std::condition_variable harvest_cv;
  std::deque<SentRecord> in_flight;
  bool dispatch_done = false;
  std::vector<double> accepted_latencies;
  std::vector<double> accepted_interactive;
  std::vector<double> accepted_batch;
  std::thread harvester([&] {
    while (true) {
      SentRecord record;
      {
        std::unique_lock<std::mutex> lock(harvest_mu);
        harvest_cv.wait(lock, [&] {
          return !in_flight.empty() || dispatch_done;
        });
        if (in_flight.empty()) return;
        record = std::move(in_flight.front());
        in_flight.pop_front();
      }
      RecResponse response = record.future.get();
      const double latency_ms = NowMs() - record.send_ms;
      if (response.status.ok()) {
        accepted_latencies.push_back(latency_ms);
        (record.batch ? accepted_batch : accepted_interactive)
            .push_back(latency_ms);
        if (latency_ms <= record.deadline_ms) ++result.good;
      }
    }
  });

  Rng rng(42);
  ZipfSampler zipf(kNumUsers, kZipfExponent);
  const double interarrival_ms = 1000.0 / result.offered_qps;
  int64_t max_level = 0;
  const double start = NowMs();
  double next_send = start;
  while (true) {
    const double now = NowMs();
    if (now - start >= kRunSeconds * 1000.0) break;
    while (next_send <= now) {
      RecRequest request;
      request.user = zipf.Sample(rng.NextUnit());
      const bool batch = rng.NextUnit() < kBatchFraction;
      request.priority =
          batch ? RequestPriority::kBatch : RequestPriority::kInteractive;
      request.deadline_ms = batch ? kBatchDeadlineMs : kInteractiveDeadlineMs;
      SentRecord record;
      record.send_ms = NowMs();
      record.deadline_ms = request.deadline_ms;
      record.batch = batch;
      record.future = service.Submit(std::move(request));
      {
        std::lock_guard<std::mutex> lock(harvest_mu);
        in_flight.push_back(std::move(record));
      }
      harvest_cv.notify_one();
      ++result.sent;
      next_send += interarrival_ms;
    }
    max_level = std::max(max_level, service.brownout_level());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    std::lock_guard<std::mutex> lock(harvest_mu);
    dispatch_done = true;
  }
  harvest_cv.notify_one();
  harvester.join();
  stop_churn = true;
  churn.join();
  max_level = std::max(max_level, service.brownout_level());
  service.Shutdown();

  result.goodput_qps = static_cast<double>(result.good) / kRunSeconds;
  result.goodput_fraction =
      result.sent > 0
          ? static_cast<double>(result.good) / static_cast<double>(result.sent)
          : 0.0;
  result.accepted_p50_ms = Percentile(&accepted_latencies, 0.50);
  result.accepted_p95_ms = Percentile(&accepted_latencies, 0.95);
  result.accepted_p99_ms = Percentile(&accepted_latencies, 0.99);
  result.accepted_interactive_p99_ms = Percentile(&accepted_interactive, 0.99);
  result.accepted_batch_p99_ms = Percentile(&accepted_batch, 0.99);
  result.max_brownout_level = max_level;
  result.brownout_transitions = service.stats().brownout_transitions;
  result.reloads = reloads.load();
  result.metrics = metrics.Snapshot();

  const int64_t total = result.metrics.CounterValue("serve_requests_total");
  const int64_t shed =
      result.metrics.CounterValue("serve_requests_shed_total") +
      result.metrics.CounterValue("serve_requests_shed_queue_delay_total") +
      result.metrics.CounterValue("serve_requests_shed_predicted_late_total");
  result.shed_rate =
      total > 0 ? static_cast<double>(shed) / static_cast<double>(total) : 0.0;
  return result;
}

void AppendOutcome(std::ostringstream* out, const MetricsSnapshot& metrics,
                   const char* json_key, const char* counter,
                   bool* first) {
  if (!*first) *out << ",";
  *first = false;
  *out << "\"" << json_key << "\":" << metrics.CounterValue(counter);
}

std::string RunJson(const RunResult& run) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(3);
  out << "    {\"mode\":\"" << run.mode << "\","
      << "\"qps_multiplier\":" << run.multiplier << ","
      << "\"offered_qps\":" << run.offered_qps << ","
      << "\"sent\":" << run.sent << ","
      << "\"requests_total\":"
      << run.metrics.CounterValue("serve_requests_total") << ","
      << "\"outcomes\":{";
  bool first = true;
  AppendOutcome(&out, run.metrics, "ok", "serve_requests_ok_total", &first);
  AppendOutcome(&out, run.metrics, "degraded",
                "serve_requests_degraded_total", &first);
  AppendOutcome(&out, run.metrics, "partial_degraded",
                "serve_requests_partial_degraded_total", &first);
  AppendOutcome(&out, run.metrics, "shed", "serve_requests_shed_total",
                &first);
  AppendOutcome(&out, run.metrics, "shed_queue_delay",
                "serve_requests_shed_queue_delay_total", &first);
  AppendOutcome(&out, run.metrics, "shed_predicted_late",
                "serve_requests_shed_predicted_late_total", &first);
  AppendOutcome(&out, run.metrics, "deadline_exceeded",
                "serve_requests_deadline_exceeded_total", &first);
  AppendOutcome(&out, run.metrics, "invalid", "serve_requests_invalid_total",
                &first);
  AppendOutcome(&out, run.metrics, "error", "serve_requests_error_total",
                &first);
  AppendOutcome(&out, run.metrics, "cancelled",
                "serve_requests_cancelled_total", &first);
  out << "},"
      << "\"goodput_qps\":" << run.goodput_qps << ","
      << "\"goodput_fraction\":" << run.goodput_fraction << ","
      << "\"shed_rate\":" << run.shed_rate << ","
      << "\"accepted_p50_ms\":" << run.accepted_p50_ms << ","
      << "\"accepted_p95_ms\":" << run.accepted_p95_ms << ","
      << "\"accepted_p99_ms\":" << run.accepted_p99_ms << ","
      << "\"accepted_interactive_p99_ms\":" << run.accepted_interactive_p99_ms
      << ","
      << "\"accepted_batch_p99_ms\":" << run.accepted_batch_p99_ms << ","
      << "\"max_brownout_level\":" << run.max_brownout_level << ","
      << "\"brownout_transitions\":" << run.brownout_transitions << ","
      << "\"reloads\":" << run.reloads << "}";
  return out.str();
}

int Main(int argc, char** argv) {
  const std::string output_path = argc > 1 ? argv[1] : "BENCH_serving.json";
  const std::string snapshot_path = "bench_load_gen_snapshot.ckpt";
  {
    std::vector<Tensor> tensors;
    tensors.push_back(MakeTable(kNumUsers, kDim, 0.02f));
    tensors.push_back(MakeTable(kNumItems, kDim, -0.02f));
    Status status = SaveCheckpoint(snapshot_path, tensors);
    if (!status.ok()) {
      std::fprintf(stderr, "snapshot write failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }

  std::fprintf(stderr, "measuring closed-loop capacity...\n");
  const double capacity_qps = MeasureCapacityQps(snapshot_path);
  if (capacity_qps <= 0.0) return 1;
  std::fprintf(stderr, "capacity: %.0f qps\n", capacity_qps);

  std::vector<RunResult> runs;
  const ModeSpec modes[] = {
      {"controller", true, kMaxBatchSize},
      {"controller_nobatch", true, 1},
      {"baseline", false, 1},
  };
  for (const ModeSpec& mode : modes) {
    for (double multiplier : kMultipliers) {
      std::fprintf(stderr, "sweep %s x%.2f (%.0f qps)...\n", mode.name,
                   multiplier, capacity_qps * multiplier);
      runs.push_back(
          RunSweepPoint(snapshot_path, mode, capacity_qps, multiplier));
      const RunResult& run = runs.back();
      std::fprintf(stderr,
                   "  sent=%lld good=%lld goodput=%.0f qps (%.0f%%) "
                   "shed_rate=%.2f p99=%.1f ms brownout_max=%lld\n",
                   static_cast<long long>(run.sent),
                   static_cast<long long>(run.good), run.goodput_qps,
                   100.0 * run.goodput_fraction, run.shed_rate,
                   run.accepted_p99_ms,
                   static_cast<long long>(run.max_brownout_level));
    }
  }

  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(3);
  out << "{\n"
      << "  \"schema\": \"imcat-bench-serving/1\",\n"
      << "  \"generated_by\": \"bench/load_gen\",\n"
      << "  \"config\": {\"users\":" << kNumUsers << ",\"items\":" << kNumItems
      << ",\"dim\":" << kDim << ",\"workers\":2,\"queue_capacity\":"
      << kQueueCapacity
      << ",\"interactive_deadline_ms\":" << kInteractiveDeadlineMs
      << ",\"batch_deadline_ms\":" << kBatchDeadlineMs
      << ",\"batch_fraction\":" << kBatchFraction
      << ",\"zipf_exponent\":" << kZipfExponent
      << ",\"run_seconds\":" << kRunSeconds
      << ",\"max_batch_size\":" << kMaxBatchSize << "},\n"
      << "  \"capacity_qps\": " << capacity_qps << ",\n"
      << "  \"sweep\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    out << RunJson(runs[i]) << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";

  std::ofstream file(output_path);
  file << out.str();
  file.close();
  std::remove(snapshot_path.c_str());
  std::fprintf(stderr, "wrote %s\n", output_path.c_str());
  return 0;
}

}  // namespace
}  // namespace imcat

int main(int argc, char** argv) { return imcat::Main(argc, argv); }
