// Micro-benchmarks of the training substrate (google-benchmark): dense
// GEMM, sparse propagation, embedding gather/scatter, the InfoNCE kernel,
// autograd overhead, and a full IMCAT training step. These quantify the
// building blocks behind the Fig. 9 efficiency numbers.

#include <benchmark/benchmark.h>

#include "core/imcat.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "models/bprmf.h"
#include "tensor/autograd.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace imcat {
namespace {

Tensor RandomTensor(int64_t rows, int64_t cols, Rng* rng, bool grad) {
  Tensor t(rows, cols, grad);
  for (int64_t i = 0; i < t.size(); ++i)
    t.data()[i] = static_cast<float>(rng->Uniform(-1.0, 1.0));
  return t;
}

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = RandomTensor(n, n, &rng, false);
  Tensor b = RandomTensor(n, n, &rng, false);
  for (auto _ : state) {
    Tensor c = ops::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatMulBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = RandomTensor(n, n, &rng, true);
  Tensor b = RandomTensor(n, n, &rng, true);
  for (auto _ : state) {
    Tensor loss = ops::Sum(ops::MatMul(a, b));
    Backward(loss);
    a.ZeroGrad();
    b.ZeroGrad();
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(32)->Arg(64);

void BM_SpMM(benchmark::State& state) {
  const int64_t nodes = state.range(0);
  Rng rng(2);
  EdgeList edges;
  for (int64_t i = 0; i < nodes * 10; ++i) {
    edges.emplace_back(rng.UniformInt(nodes / 2),
                       rng.UniformInt(nodes / 2));
  }
  SparseMatrix adj = BuildUserItemAdjacency(nodes / 2, nodes / 2, edges);
  Tensor x = RandomTensor(nodes, 16, &rng, false);
  for (auto _ : state) {
    Tensor y = ops::SpMM(adj, x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * 16);
}
BENCHMARK(BM_SpMM)->Arg(1000)->Arg(10000);

void BM_GatherScatter(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(3);
  Tensor table = RandomTensor(rows, 16, &rng, true);
  std::vector<int64_t> indices(1024);
  for (auto& i : indices) i = rng.UniformInt(rows);
  for (auto _ : state) {
    Tensor g = ops::Gather(table, indices);
    Tensor loss = ops::Sum(ops::Mul(g, g));
    Backward(loss);
    table.ZeroGrad();
  }
}
BENCHMARK(BM_GatherScatter)->Arg(1000)->Arg(100000);

void BM_InfoNce(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(4);
  Tensor a = RandomTensor(batch, 16, &rng, true);
  Tensor b = RandomTensor(batch, 16, &rng, true);
  std::vector<int64_t> diagonal(batch);
  for (int64_t i = 0; i < batch; ++i) diagonal[i] = i;
  std::vector<float> weights(batch, 1.0f / batch);
  for (auto _ : state) {
    Tensor logits = ops::MatMulNT(a, b);
    Tensor loss = ops::SoftmaxCrossEntropy(logits, diagonal, weights);
    Backward(loss);
    a.ZeroGrad();
    b.ZeroGrad();
  }
}
BENCHMARK(BM_InfoNce)->Arg(128)->Arg(512);

void BM_BprTrainStep(benchmark::State& state) {
  SyntheticConfig config;
  config.num_users = 300;
  config.num_items = 500;
  config.num_tags = 60;
  config.num_interactions = 8000;
  config.num_item_tags = 2000;
  Dataset ds = GenerateSynthetic(config);
  DataSplit split = SplitByUser(ds, SplitOptions{});
  BackboneOptions bopts;
  bopts.embedding_dim = 16;
  BprModel model(std::make_unique<Bprmf>(ds.num_users, ds.num_items, bopts),
                 ds, split, AdamOptions{}, 1024);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.TrainStep(&rng));
  }
}
BENCHMARK(BM_BprTrainStep);

void BM_ImcatTrainStep(benchmark::State& state) {
  SyntheticConfig config;
  config.num_users = 300;
  config.num_items = 500;
  config.num_tags = 60;
  config.num_interactions = 8000;
  config.num_item_tags = 2000;
  Dataset ds = GenerateSynthetic(config);
  DataSplit split = SplitByUser(ds, SplitOptions{});
  BackboneOptions bopts;
  bopts.embedding_dim = 16;
  ImcatConfig iconfig;
  iconfig.pretrain_steps = 0;  // Benchmark the full joint objective.
  iconfig.ca_batch_size = 256;
  ImcatModel model(
      std::make_unique<Bprmf>(ds.num_users, ds.num_items, bopts), ds, split,
      iconfig, AdamOptions{});
  Rng rng(6);
  model.TrainStep(&rng);  // Warm up: activates clustering + ISA build.
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.TrainStep(&rng));
  }
}
BENCHMARK(BM_ImcatTrainStep);

}  // namespace
}  // namespace imcat

BENCHMARK_MAIN();
