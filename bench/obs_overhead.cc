// Micro-benchmarks of the observability layer (google-benchmark):
// counter/gauge/histogram hot paths uncontended and under 8-way
// contention, ScopedTimer (two clock reads + a record), registry
// snapshot cost as the metric count grows, journal appends, and the
// end-to-end claim behind DESIGN.md §9: an instrumented Evaluator runs
// within noise (<2%) of an uninstrumented one. EXPERIMENTS.md records
// representative numbers.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "obs/journal.h"
#include "obs/metrics.h"

namespace imcat {
namespace {

void BM_CounterIncrement(benchmark::State& state) {
  static MetricsRegistry registry;
  Counter* counter = registry.GetCounter("bench_counter_total");
  for (auto _ : state) {
    counter->Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncrement);

// All 8 threads hammer one counter. The per-thread shards are the whole
// point: this should stay within a small factor of the uncontended path
// instead of collapsing into cache-line ping-pong.
void BM_CounterIncrementContended(benchmark::State& state) {
  static MetricsRegistry registry;
  Counter* counter = registry.GetCounter("bench_contended_counter_total");
  for (auto _ : state) {
    counter->Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncrementContended)->Threads(8)->UseRealTime();

void BM_GaugeSet(benchmark::State& state) {
  static MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("bench_gauge");
  double value = 0.0;
  for (auto _ : state) {
    gauge->Set(value);
    value += 0.5;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  static MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("bench_latency_ms");
  double value = 0.125;
  for (auto _ : state) {
    histogram->Record(value);
    value = value < 4096.0 ? value * 1.0625 : 0.125;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramRecordContended(benchmark::State& state) {
  static MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("bench_contended_latency_ms");
  double value = 0.125 * (state.thread_index() + 1);
  for (auto _ : state) {
    histogram->Record(value);
    value = value < 4096.0 ? value * 1.0625 : 0.125;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecordContended)->Threads(8)->UseRealTime();

void BM_ScopedTimer(benchmark::State& state) {
  static MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("bench_timer_ms");
  for (auto _ : state) {
    ScopedTimer timer(histogram);
    benchmark::DoNotOptimize(histogram);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedTimer);

// Snapshot walks every shard of every metric; cost must scale with the
// metric count, not with how many increments happened since last time.
void BM_RegistrySnapshot(benchmark::State& state) {
  const int64_t num_metrics = state.range(0);
  MetricsRegistry registry;
  for (int64_t i = 0; i < num_metrics; ++i) {
    const std::string suffix = std::to_string(i);
    registry.GetCounter("bench_c" + suffix + "_total")->Add(i);
    registry.GetGauge("bench_g" + suffix)->Set(static_cast<double>(i));
    registry.GetHistogram("bench_h" + suffix + "_ms")
        ->Record(static_cast<double>(i) + 0.5);
  }
  for (auto _ : state) {
    MetricsSnapshot snapshot = registry.Snapshot();
    benchmark::DoNotOptimize(snapshot.counters.size());
  }
  state.SetItemsProcessed(state.iterations() * num_metrics * 3);
}
BENCHMARK(BM_RegistrySnapshot)->Arg(8)->Arg(64)->Arg(256);

void BM_JournalAppend(benchmark::State& state) {
  const std::string path = "/tmp/imcat_bench_journal.jsonl";
  RunJournal::Options options;
  options.flush_every = 64;
  RunJournal journal(path, options);
  int64_t step = 0;
  for (auto _ : state) {
    journal.Append(JournalEvent("bench")
                       .Set("step", step)
                       .Set("loss", 0.125 + static_cast<double>(step % 7))
                       .Set("ok", true));
    ++step;
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_JournalAppend);

// A deterministic stand-in ranker whose per-item scoring cost is tiny, so
// any fixed per-Evaluate instrumentation cost is maximally visible in
// relative terms. Real models only dilute the overhead further.
class HashRanker final : public Ranker {
 public:
  explicit HashRanker(int64_t num_items) : num_items_(num_items) {}

  void ScoreItemsForUser(int64_t user,
                         std::vector<float>* scores) const override {
    scores->resize(static_cast<size_t>(num_items_));
    uint64_t h = static_cast<uint64_t>(user) * 0x9E3779B97F4A7C15ull + 1;
    for (int64_t i = 0; i < num_items_; ++i) {
      h ^= h >> 33;
      h *= 0xFF51AFD7ED558CCDull;
      (*scores)[static_cast<size_t>(i)] = static_cast<float>(h >> 40);
    }
  }

 private:
  int64_t num_items_;
};

struct EvalFixture {
  EvalFixture() {
    SyntheticConfig config;
    config.num_users = 400;
    config.num_items = 600;
    config.num_tags = 40;
    config.num_interactions = 12000;
    config.num_item_tags = 1500;
    dataset = GenerateSynthetic(config);
    split = SplitByUser(dataset, SplitOptions{});
  }

  Dataset dataset;
  DataSplit split;
};

EvalFixture& SharedEvalFixture() {
  static EvalFixture fixture;
  return fixture;
}

void RunEvalBenchmark(benchmark::State& state, MetricsRegistry* metrics) {
  EvalFixture& fixture = SharedEvalFixture();
  Evaluator evaluator(fixture.dataset, fixture.split);
  evaluator.set_metrics(metrics);
  HashRanker ranker(fixture.dataset.num_items);
  int64_t users = 0;
  for (auto _ : state) {
    EvalResult result =
        evaluator.Evaluate(ranker, fixture.split.test, /*top_n=*/20);
    benchmark::DoNotOptimize(result.recall);
    users += result.num_users;
  }
  state.SetItemsProcessed(users);
}

void BM_EvaluateUninstrumented(benchmark::State& state) {
  RunEvalBenchmark(state, nullptr);
}
BENCHMARK(BM_EvaluateUninstrumented);

void BM_EvaluateInstrumented(benchmark::State& state) {
  static MetricsRegistry registry;
  RunEvalBenchmark(state, &registry);
}
BENCHMARK(BM_EvaluateInstrumented);

}  // namespace
}  // namespace imcat

BENCHMARK_MAIN();
