#include "bench/runner.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace imcat::bench {

namespace {

double EnvDouble(const char* name, double dflt) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : dflt;
}

int64_t EnvInt(const char* name, int64_t dflt) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoll(value) : dflt;
}

}  // namespace

BenchEnv BenchEnv::FromEnvironment() {
  BenchEnv env;
  env.scale_multiplier = EnvDouble("IMCAT_BENCH_SCALE", 1.0);
  env.max_epochs = EnvInt("IMCAT_BENCH_EPOCHS", 150);
  env.num_seeds = static_cast<int>(EnvInt("IMCAT_BENCH_SEEDS", 1));
  env.embedding_dim = EnvInt("IMCAT_BENCH_DIM", 32);
  IMCAT_CHECK_GT(env.scale_multiplier, 0.0);
  IMCAT_CHECK_GT(env.max_epochs, 0);
  IMCAT_CHECK_GT(env.num_seeds, 0);
  return env;
}

double DefaultScaleFor(const std::string& preset_name) {
  // Sized for single-core runs: every scaled dataset lands between roughly
  // 60 and 300 users while keeping the seven datasets' relative ordering.
  if (preset_name == "HetRec-MV") return 0.06;
  if (preset_name == "HetRec-FM") return 0.08;
  if (preset_name == "HetRec-Del") return 0.08;
  if (preset_name == "CiteULike") return 0.05;
  if (preset_name == "Last.fm-Tag") return 0.012;
  if (preset_name == "AMZBook-Tag") return 0.006;
  if (preset_name == "Yelp-Tag") return 0.006;
  return 0.05;
}

Workload::Workload(Dataset ds, uint64_t split_seed)
    : dataset(std::move(ds)),
      split(SplitByUser(dataset, SplitOptions{.seed = split_seed})),
      evaluator(dataset, split) {}

Workload MakeWorkload(const std::string& preset_name, const BenchEnv& env,
                      uint64_t seed) {
  const double scale =
      std::min(1.0, DefaultScaleFor(preset_name) * env.scale_multiplier);
  Dataset ds = GeneratePreset(preset_name, scale, seed);
  Workload workload(std::move(ds), /*split_seed=*/17);
  workload.preset_name = preset_name;
  return workload;
}

ModelFactoryOptions MakeFactoryOptions(const Workload& workload,
                                       const BenchEnv& env, uint64_t seed) {
  ModelFactoryOptions options;
  options.embedding_dim = env.embedding_dim;
  // The paper uses batch 1024 at full scale; on scaled-down presets that
  // would leave only 1-2 optimisation steps per epoch and stall training
  // before the early-stopping window closes. Keep at least ~8 steps/epoch.
  const int64_t train_edges =
      static_cast<int64_t>(workload.split.train.size());
  options.batch_size = std::clamp<int64_t>(train_edges / 8, 128, 1024);
  options.seed = seed;
  options.adam.learning_rate = 1e-3f;
  options.adam.weight_decay = 1e-3f;
  // IMCAT schedule: ~10 epochs of pre-training before clustering (the
  // paper pre-trains for a fixed number of epochs at its scale).
  const int64_t steps_per_epoch =
      (static_cast<int64_t>(workload.split.train.size()) +
       options.batch_size - 1) /
      options.batch_size;
  options.imcat.pretrain_steps = 10 * steps_per_epoch;
  // Contrastive-alignment anchors per step; the InfoNCE cost is quadratic
  // in this, and 128 anchors already cover a large share of the scaled
  // item catalogues each epoch.
  options.imcat.ca_batch_size = 128;
  ApplyTunedImcatConfig(workload.preset_name, &options.imcat);
  return options;
}

TrainerOptions MakeTrainerOptions(const BenchEnv& env, uint64_t seed) {
  TrainerOptions topts;
  topts.max_epochs = env.max_epochs;
  topts.eval_every = 10;
  topts.patience = 8;  // 80 epochs of grace (the paper: 100 of 3000).
  topts.top_n = 20;
  topts.seed = seed;
  return topts;
}

TrainedModel TrainModel(const std::string& model_name, Workload* workload,
                        const BenchEnv& env, uint64_t seed,
                        const ConfigureFn& configure) {
  ModelFactoryOptions options = MakeFactoryOptions(*workload, env, seed);
  if (configure != nullptr) configure(&options);
  auto created =
      CreateModel(model_name, workload->dataset, workload->split, options);
  IMCAT_CHECK(created.ok());
  Trainer trainer(&workload->evaluator, &workload->split);
  TrainHistory history =
      trainer.Fit(created.value().get(), MakeTrainerOptions(env, seed));
  TrainedModel trained;
  trained.result.best_validation = history.best_validation;
  trained.result.train_seconds = history.train_seconds;
  trained.result.epochs_run = history.epochs_run;
  trained.result.test =
      workload->evaluator.Evaluate(*created.value(), workload->split.test, 20);
  trained.model = std::move(created.value());
  return trained;
}

RunResult RunModel(const std::string& model_name, Workload* workload,
                   const BenchEnv& env, uint64_t seed,
                   const ConfigureFn& configure) {
  return TrainModel(model_name, workload, env, seed, configure).result;
}

std::vector<RunResult> RunSeeds(const std::string& model_name,
                                Workload* workload, const BenchEnv& env,
                                const ConfigureFn& configure) {
  std::vector<RunResult> results;
  for (int s = 0; s < env.num_seeds; ++s) {
    results.push_back(
        RunModel(model_name, workload, env, /*seed=*/13 + 7 * s, configure));
  }
  return results;
}

double MeanTestRecallPercent(const std::vector<RunResult>& results) {
  double total = 0.0;
  for (const RunResult& r : results) total += r.test.recall;
  return results.empty() ? 0.0 : 100.0 * total / results.size();
}

double MeanTestNdcgPercent(const std::vector<RunResult>& results) {
  double total = 0.0;
  for (const RunResult& r : results) total += r.test.ndcg;
  return results.empty() ? 0.0 : 100.0 * total / results.size();
}

void ApplyTunedImcatConfig(const std::string& preset_name,
                           ImcatConfig* config) {
  // Grid-search winners on the synthetic presets (K from {1,2,4,8,16},
  // alpha/beta from {1e-3..10} subsets, as in the paper's protocol).
  if (preset_name == "HetRec-MV") {
    config->num_intents = 4;
    config->beta = 0.05f;
  } else if (preset_name == "HetRec-Del") {
    // More tags -> more intents, and a gentler alignment weight (the
    // paper also finds HetRec-Del prefers a larger K, Fig. 5).
    config->num_intents = 8;
    config->beta = 0.02f;
  }
  // All other presets keep the library defaults (K=4, beta=0.3).
}

void PrintBanner(const std::string& title, const BenchEnv& env) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Synthetic substitution: Table-I presets regenerated by the\n");
  std::printf("latent-intent simulator (see DESIGN.md); compare *shapes*,\n");
  std::printf("not absolute values, against the paper.\n");
  std::printf("scale x%.2f | max epochs %lld | seeds %d | dim %lld\n",
              env.scale_multiplier,
              static_cast<long long>(env.max_epochs), env.num_seeds,
              static_cast<long long>(env.embedding_dim));
  std::printf("==============================================================\n");
  std::fflush(stdout);
}

}  // namespace imcat::bench
