#ifndef IMCAT_BENCH_RUNNER_H_
#define IMCAT_BENCH_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "data/presets.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "train/trainer.h"

/// \file runner.h
/// Shared experiment runner for the table/figure reproduction binaries.
///
/// Every binary honours these environment overrides (single-core friendly
/// defaults are chosen so that the full bench suite completes in minutes):
///   IMCAT_BENCH_SCALE   multiplier on the per-dataset default scales.
///   IMCAT_BENCH_EPOCHS  max training epochs (default 120).
///   IMCAT_BENCH_SEEDS   repeated runs per cell (default 1; paper uses 5).
///   IMCAT_BENCH_DIM     embedding size (default 32; paper uses 64).

namespace imcat::bench {

/// Environment-configurable run parameters.
struct BenchEnv {
  double scale_multiplier = 1.0;
  int64_t max_epochs = 120;
  int num_seeds = 1;
  int64_t embedding_dim = 16;

  /// Reads the IMCAT_BENCH_* environment variables.
  static BenchEnv FromEnvironment();
};

/// Default generator scale per Table-I preset, sized so that every dataset
/// trains in seconds on one core while preserving the relative ordering of
/// the seven datasets' sizes.
double DefaultScaleFor(const std::string& preset_name);

/// A ready dataset + split + evaluator bundle.
struct Workload {
  std::string preset_name;  ///< Empty for ad-hoc datasets.
  Dataset dataset;
  DataSplit split;
  Evaluator evaluator;

  Workload(Dataset ds, uint64_t split_seed);
};

/// Generates the preset at env-scaled size.
Workload MakeWorkload(const std::string& preset_name, const BenchEnv& env,
                      uint64_t seed);

/// One train-and-test run.
struct RunResult {
  EvalResult test;
  EvalResult best_validation;
  double train_seconds = 0.0;
  int64_t epochs_run = 0;
};

/// Trains `model_name` (any Table-II name) on the workload with early
/// stopping and returns test metrics at the best validation checkpoint.
/// `configure` lets callers adjust the factory options (ablations, sweeps)
/// before the model is created; pass nullptr for defaults.
using ConfigureFn = std::function<void(ModelFactoryOptions*)>;

RunResult RunModel(const std::string& model_name, Workload* workload,
                   const BenchEnv& env, uint64_t seed,
                   const ConfigureFn& configure = nullptr);

/// A trained model plus its run metrics, for analyses that need the
/// ranker itself (popularity-group and cold-start studies).
struct TrainedModel {
  std::unique_ptr<TrainableModel> model;
  RunResult result;
};

/// Trains and returns the model itself alongside the metrics.
TrainedModel TrainModel(const std::string& model_name, Workload* workload,
                        const BenchEnv& env, uint64_t seed,
                        const ConfigureFn& configure = nullptr);

/// As RunModel but averaged over env.num_seeds seeds; returns per-seed
/// results.
std::vector<RunResult> RunSeeds(const std::string& model_name,
                                Workload* workload, const BenchEnv& env,
                                const ConfigureFn& configure = nullptr);

/// Mean test recall / ndcg over per-seed results (as percentages, matching
/// the paper's tables).
double MeanTestRecallPercent(const std::vector<RunResult>& results);
double MeanTestNdcgPercent(const std::vector<RunResult>& results);

/// Builds factory options consistent with the env (dim, adam, IMCAT
/// schedule derived from the workload's size) and applies the per-dataset
/// grid-search winners (ApplyTunedImcatConfig).
ModelFactoryOptions MakeFactoryOptions(const Workload& workload,
                                       const BenchEnv& env, uint64_t seed);

/// Applies the per-dataset IMCAT hyper-parameters found by this repo's
/// grid search (the paper likewise grid-searches alpha/beta/gamma/K/delta
/// per dataset, Sec. V-D). No-op for unknown dataset names.
void ApplyTunedImcatConfig(const std::string& preset_name,
                           ImcatConfig* config);

/// Trainer options consistent with the env.
TrainerOptions MakeTrainerOptions(const BenchEnv& env, uint64_t seed);

/// Prints the standard bench banner (env settings, substitution notice).
void PrintBanner(const std::string& title, const BenchEnv& env);

}  // namespace imcat::bench

#endif  // IMCAT_BENCH_RUNNER_H_
