// Microbenchmark for the blocked multi-user scoring kernel
// (tensor/score_kernel.h, DESIGN.md §12): items/sec scored as a function
// of batch size (users scored per pass) and item-block tile, against the
// one-user-at-a-time scalar loop as baseline. The kernel's whole point is
// cache residency — the item table streams through cache once per batch
// instead of once per user — so throughput should rise with batch size
// until the batch's score rows crowd the block tile out of L2, and be
// roughly flat in block size across the L2-friendly range.
//
// Each cell also re-verifies bit-identity against the scalar loop; any
// divergence fails the run (exit 1), so the perf table can never drift
// from the contract the serving and eval paths rely on.
//
// Catalogue shape mirrors bench/load_gen's serving snapshot (60k items,
// dim 32) so items/sec here translates directly to serving capacity.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "tensor/score_kernel.h"
#include "tensor/tensor.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

constexpr int64_t kNumUsers = 256;
constexpr int64_t kNumItems = 60000;
constexpr int64_t kDim = 32;
constexpr int kReps = 5;

imcat::Tensor MakeTable(int64_t rows, int64_t cols, float scale) {
  std::vector<float> values(static_cast<size_t>(rows * cols));
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = scale * static_cast<float>(static_cast<int64_t>(i) % 97 - 48);
  }
  return imcat::Tensor(rows, cols, std::move(values));
}

double MedianSeconds(const std::function<void()>& fn, int reps) {
  std::vector<double> times;
  times.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    times.push_back(elapsed.count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main() {
  imcat::Tensor users = MakeTable(kNumUsers, kDim, 0.02f);
  imcat::Tensor items = MakeTable(kNumItems, kDim, -0.02f);
  std::vector<const float*> rows(kNumUsers);
  for (int64_t u = 0; u < kNumUsers; ++u) {
    rows[u] = users.data() + u * kDim;
  }

  // Scalar baseline: the literal pre-batching loop — one user at a time,
  // one accumulator chain per item, whole catalogue per user (what
  // EmbeddingSnapshot::Score and the scalar rankers ran). One buffer
  // reused across users so the comparison is pure scoring cost.
  std::vector<float> scalar_out(kNumItems);
  const double scalar_sec = MedianSeconds(
      [&] {
        for (int64_t u = 0; u < kNumUsers; ++u) {
          const float* urow = rows[u];
          for (int64_t i = 0; i < kNumItems; ++i) {
            const float* irow = items.data() + i * kDim;
            float acc = 0.0f;
            for (int64_t c = 0; c < kDim; ++c) acc += urow[c] * irow[c];
            scalar_out[i] = acc;
          }
        }
      },
      kReps);
  const double total_scores =
      static_cast<double>(kNumUsers) * static_cast<double>(kNumItems);
  std::printf("scalar baseline: %.3f s for %lld users x %lld items "
              "(%.1f M scores/sec)\n\n",
              scalar_sec, static_cast<long long>(kNumUsers),
              static_cast<long long>(kNumItems),
              total_scores / scalar_sec / 1e6);

  // Naive-loop reference scores for the bit-identity check (first and
  // last user are enough to catch a stride or blocking bug; full U x N
  // would dominate the runtime).
  std::vector<float> reference_first(kNumItems), reference_last(kNumItems);
  for (int64_t i = 0; i < kNumItems; ++i) {
    const float* irow = items.data() + i * kDim;
    float first = 0.0f, last = 0.0f;
    for (int64_t c = 0; c < kDim; ++c) {
      first += rows[0][c] * irow[c];
      last += rows[kNumUsers - 1][c] * irow[c];
    }
    reference_first[i] = first;
    reference_last[i] = last;
  }

  imcat::TablePrinter table(
      {"batch users", "block items", "median sec", "M scores/sec",
       "vs scalar"});
  bool all_identical = true;
  std::vector<float> out;
  for (int64_t batch : {int64_t{1}, int64_t{4}, int64_t{8}, int64_t{16},
                        int64_t{64}, int64_t{256}}) {
    for (int64_t block : {int64_t{256}, int64_t{1024}, int64_t{4096}}) {
      out.assign(static_cast<size_t>(batch) * kNumItems, 0.0f);
      const double sec = MedianSeconds(
          [&] {
            for (int64_t begin = 0; begin < kNumUsers; begin += batch) {
              const int64_t n = std::min(batch, kNumUsers - begin);
              imcat::ScoreAllItemsBlocked(rows.data() + begin, n,
                                          items.data(), kNumItems, kDim,
                                          block, out.data(), kNumItems);
            }
          },
          kReps);
      // After the timed reps, `out` holds the last batch [256-batch, 256):
      // row 0 is user 256-batch, the last row is user 255. Check the last
      // row against its scalar reference, and for the full-batch case the
      // first row too.
      bool identical = true;
      for (int64_t i = 0; i < kNumItems; ++i) {
        if (out[static_cast<size_t>((std::min(batch, kNumUsers) - 1)) *
                    kNumItems +
                i] != reference_last[i]) {
          identical = false;
          break;
        }
      }
      if (identical && batch == kNumUsers) {
        for (int64_t i = 0; i < kNumItems; ++i) {
          if (out[i] != reference_first[i]) {
            identical = false;
            break;
          }
        }
      }
      all_identical = all_identical && identical;
      table.AddRow({std::to_string(batch), std::to_string(block),
                    imcat::FormatDouble(sec, 4),
                    imcat::FormatDouble(total_scores / sec / 1e6, 1),
                    identical ? imcat::FormatDouble(scalar_sec / sec, 2) + "x"
                              : "DIVERGED"});
    }
  }
  table.Print();
  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: batched kernel diverged from the scalar loop\n");
    return 1;
  }
  return 0;
}
