// Snapshot-reload microbenchmark: monolithic v2 checkpoint vs the sharded
// v3 serving-snapshot format (DESIGN.md §6). Reports, per layout:
//
//   - file size,
//   - reload wall time (median of several loads), and
//   - peak-RSS delta of one load in a clean child process (Linux VmHWM),
//     which exposes the staging difference: the v2 loader stages the whole
//     payload in scratch buffers before committing (peak transient = one
//     extra full copy), while the v3 loader streams shard-by-shard (peak
//     transient = one shard).
//
// Usage:
//   snapshot_reload [num_users num_items dim items_per_shard]
//   snapshot_reload --measure-rss <path>    # internal child mode
//
// Representative numbers live in EXPERIMENTS.md.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "serve/shard_format.h"
#include "serve/snapshot.h"
#include "tensor/checkpoint.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace imcat {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tensor MakeTable(int64_t rows, int64_t cols, float scale) {
  std::vector<float> values(static_cast<size_t>(rows * cols));
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = scale * static_cast<float>(i % 97 - 48);
  }
  return Tensor(rows, cols, std::move(values));
}

int64_t FileSizeBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in.is_open() ? static_cast<int64_t>(in.tellg()) : -1;
}

/// Peak resident set (VmHWM) of this process in KiB; -1 off-Linux.
int64_t PeakRssKb() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoll(line.c_str() + 6, nullptr, 10);
    }
  }
#endif
  return -1;
}

/// Child mode: loads the snapshot once and prints the peak-RSS delta the
/// load added on top of process startup. A fresh process per measurement
/// keeps one layout's staging from inflating the other's high-water mark.
int MeasureRssChild(const std::string& path) {
  const int64_t before_kb = PeakRssKb();
  auto loaded = EmbeddingSnapshot::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const int64_t after_kb = PeakRssKb();
  std::printf("%lld\n",
              static_cast<long long>(after_kb >= 0 && before_kb >= 0
                                         ? after_kb - before_kb
                                         : -1));
  return 0;
}

/// Runs this binary in --measure-rss child mode; -1 when unavailable.
int64_t MeasureRssDeltaKb(const std::string& self,
                          const std::string& path) {
#if defined(__linux__)
  const std::string out = path + ".rss";
  const std::string command =
      "'" + self + "' --measure-rss '" + path + "' > '" + out + "'";
  if (std::system(command.c_str()) != 0) return -1;
  std::ifstream in(out);
  long long delta = -1;
  in >> delta;
  std::remove(out.c_str());
  return delta;
#else
  (void)self;
  (void)path;
  return -1;
#endif
}

double MedianLoadMs(const std::string& path, int rounds) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    const double start = NowMs();
    auto loaded = EmbeddingSnapshot::Load(path);
    const double elapsed = NowMs() - start;
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      std::exit(1);
    }
    samples.push_back(elapsed);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

int Run(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--measure-rss") == 0) {
    return MeasureRssChild(argv[2]);
  }
  int64_t num_users = 20000;
  int64_t num_items = 200000;
  int64_t dim = 64;
  int64_t items_per_shard = 4096;
  if (argc >= 5) {
    num_users = std::strtoll(argv[1], nullptr, 10);
    num_items = std::strtoll(argv[2], nullptr, 10);
    dim = std::strtoll(argv[3], nullptr, 10);
    items_per_shard = std::strtoll(argv[4], nullptr, 10);
  }
  constexpr int kRounds = 5;

  std::printf("snapshot_reload: %lld users x %lld items x %lld dim, "
              "%lld items/shard\n",
              static_cast<long long>(num_users),
              static_cast<long long>(num_items), static_cast<long long>(dim),
              static_cast<long long>(items_per_shard));
  Tensor users = MakeTable(num_users, dim, 0.02f);
  Tensor items = MakeTable(num_items, dim, -0.01f);

  const std::string v2_path = "/tmp/imcat_bench_monolithic.ckpt";
  const std::string v3_path = "/tmp/imcat_bench_sharded.snap";
  Status v2_write = SaveCheckpoint(v2_path, {users, items});
  ShardedSnapshotOptions sharded;
  sharded.items_per_shard = items_per_shard;
  Status v3_write = WriteShardedSnapshot(v3_path, users, items, sharded);
  if (!v2_write.ok() || !v3_write.ok()) {
    std::fprintf(stderr, "write failed: %s / %s\n",
                 v2_write.ToString().c_str(), v3_write.ToString().c_str());
    return 1;
  }

  struct Layout {
    const char* name;
    const std::string& path;
  };
  const Layout layouts[] = {{"monolithic-v2", v2_path},
                            {"sharded-v3", v3_path}};
  std::printf("%-14s %12s %14s %18s\n", "layout", "file_bytes",
              "reload_ms(med)", "peak_rss_delta_kb");
  for (const Layout& layout : layouts) {
    const double median_ms = MedianLoadMs(layout.path, kRounds);
    const int64_t rss_kb = MeasureRssDeltaKb(argv[0], layout.path);
    std::printf("%-14s %12lld %14.2f %18lld\n", layout.name,
                static_cast<long long>(FileSizeBytes(layout.path)), median_ms,
                static_cast<long long>(rss_kb));
  }
  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());
  return 0;
}

}  // namespace
}  // namespace imcat

int main(int argc, char** argv) { return imcat::Run(argc, argv); }
