// Reproduces Table I: the statistics of the seven (synthetic-preset)
// datasets. Prints the generated statistics next to the paper's original
// full-scale numbers so the preserved properties (relative sizes, density
// ordering, average degrees) can be compared directly.

#include <cstdio>

#include "bench/runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

struct PaperRow {
  const char* name;
  long long users, items, tags, ui, it;
  double ui_density, ui_degree, it_density, it_degree;
};

constexpr PaperRow kPaper[] = {
    {"HetRec-MV", 2107, 3872, 2071, 471482, 38742, 5.78, 223.77, 0.48, 10.01},
    {"HetRec-FM", 1026, 5817, 2283, 57976, 77925, 0.97, 56.51, 0.59, 13.40},
    {"HetRec-Del", 1274, 5169, 4595, 19951, 62147, 0.30, 15.66, 0.26, 12.02},
    {"CiteULike", 4011, 12408, 1579, 94512, 125013, 0.19, 23.56, 0.64, 10.08},
    {"Last.fm-Tag", 18149, 14548, 6822, 582791, 97201, 0.22, 32.11, 0.10,
     13.79},
    {"AMZBook-Tag", 50022, 22370, 2345, 731777, 246175, 0.07, 14.63, 0.47,
     11.00},
    {"Yelp-Tag", 39856, 26669, 1073, 1009922, 569780, 0.10, 25.34, 1.99,
     21.36},
};

}  // namespace

int main() {
  using imcat::bench::BenchEnv;
  const BenchEnv env = BenchEnv::FromEnvironment();
  imcat::bench::PrintBanner("Table I — dataset statistics", env);

  imcat::TablePrinter table({"Dataset", "#User", "#Item", "#Tag", "#UI",
                             "UI-dens%", "UI-deg", "#IT", "IT-dens%",
                             "IT-deg"});
  for (const PaperRow& paper : kPaper) {
    imcat::bench::Workload workload =
        imcat::bench::MakeWorkload(paper.name, env, /*seed=*/1);
    imcat::DatasetStats stats = imcat::ComputeStats(workload.dataset);
    table.AddRow({std::string(paper.name) + " (generated)",
                  std::to_string(stats.num_users),
                  std::to_string(stats.num_items),
                  std::to_string(stats.num_tags),
                  std::to_string(stats.num_interactions),
                  imcat::FormatDouble(stats.ui_density_percent, 2),
                  imcat::FormatDouble(stats.ui_avg_degree, 2),
                  std::to_string(stats.num_item_tags),
                  imcat::FormatDouble(stats.it_density_percent, 2),
                  imcat::FormatDouble(stats.it_avg_degree, 2)});
    table.AddRow({std::string(paper.name) + " (paper)",
                  std::to_string(paper.users), std::to_string(paper.items),
                  std::to_string(paper.tags), std::to_string(paper.ui),
                  imcat::FormatDouble(paper.ui_density, 2),
                  imcat::FormatDouble(paper.ui_degree, 2),
                  std::to_string(paper.it),
                  imcat::FormatDouble(paper.it_density, 2),
                  imcat::FormatDouble(paper.it_degree, 2)});
  }
  table.Print();
  std::printf("\nNote: entity/edge counts scale with the preset factor, so\n"
              "average degrees are preserved while densities rise by the\n"
              "inverse scale (documented in src/data/presets.h).\n");
  return 0;
}
