// Reproduces Table II: R@20 / N@20 for all 15 methods on the seven
// dataset presets. Prints measured values (in %, as in the paper) with
// the paper's reported numbers alongside for shape comparison. Datasets
// can be restricted via IMCAT_BENCH_DATASETS (comma-separated names) and
// models via IMCAT_BENCH_MODELS.

#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench/runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using imcat::bench::BenchEnv;
using imcat::bench::Workload;

// Paper Table II: {model -> {dataset -> {R@20, N@20}}} (percent).
const std::map<std::string, std::map<std::string, std::pair<double, double>>>&
PaperTable2() {
  static const auto& table = *new std::map<
      std::string, std::map<std::string, std::pair<double, double>>>{
      {"BPRMF",
       {{"HetRec-MV", {13.11, 25.74}}, {"HetRec-FM", {16.23, 12.92}},
        {"HetRec-Del", {17.33, 11.83}}, {"CiteULike", {16.09, 8.97}},
        {"Last.fm-Tag", {33.28, 23.45}}, {"AMZBook-Tag", {14.14, 8.12}},
        {"Yelp-Tag", {8.36, 5.41}}}},
      {"NeuMF",
       {{"HetRec-MV", {14.15, 27.07}}, {"HetRec-FM", {16.37, 13.14}},
        {"HetRec-Del", {18.62, 13.30}}, {"CiteULike", {17.21, 10.24}},
        {"Last.fm-Tag", {34.25, 25.01}}, {"AMZBook-Tag", {15.38, 8.84}},
        {"Yelp-Tag", {8.85, 5.83}}}},
      {"LightGCN",
       {{"HetRec-MV", {15.09, 29.64}}, {"HetRec-FM", {17.01, 13.62}},
        {"HetRec-Del", {19.85, 15.27}}, {"CiteULike", {19.14, 11.91}},
        {"Last.fm-Tag", {38.73, 29.11}}, {"AMZBook-Tag", {15.89, 9.27}},
        {"Yelp-Tag", {9.37, 6.19}}}},
      {"CFA",
       {{"HetRec-MV", {14.21, 27.34}}, {"HetRec-FM", {16.82, 13.44}},
        {"HetRec-Del", {18.68, 13.42}}, {"CiteULike", {17.31, 10.64}},
        {"Last.fm-Tag", {34.23, 24.93}}, {"AMZBook-Tag", {15.14, 8.65}},
        {"Yelp-Tag", {8.82, 5.81}}}},
      {"DSPR",
       {{"HetRec-MV", {14.62, 28.32}}, {"HetRec-FM", {16.94, 13.51}},
        {"HetRec-Del", {18.32, 13.13}}, {"CiteULike", {17.42, 10.77}},
        {"Last.fm-Tag", {35.30, 26.22}}, {"AMZBook-Tag", {15.39, 8.87}},
        {"Yelp-Tag", {8.84, 5.86}}}},
      {"TGCN",
       {{"HetRec-MV", {15.29, 29.84}}, {"HetRec-FM", {19.22, 15.31}},
        {"HetRec-Del", {20.16, 15.74}}, {"CiteULike", {21.06, 12.71}},
        {"Last.fm-Tag", {43.13, 31.62}}, {"AMZBook-Tag", {17.09, 9.96}},
        {"Yelp-Tag", {9.76, 6.47}}}},
      {"CKE",
       {{"HetRec-MV", {14.28, 27.61}}, {"HetRec-FM", {16.78, 13.20}},
        {"HetRec-Del", {18.76, 13.60}}, {"CiteULike", {19.18, 11.94}},
        {"Last.fm-Tag", {38.21, 28.03}}, {"AMZBook-Tag", {16.54, 9.42}},
        {"Yelp-Tag", {9.09, 6.02}}}},
      {"RippleNet",
       {{"HetRec-MV", {14.78, 28.69}}, {"HetRec-FM", {16.92, 13.47}},
        {"HetRec-Del", {18.93, 13.67}}, {"CiteULike", {19.81, 12.37}},
        {"Last.fm-Tag", {39.55, 29.12}}, {"AMZBook-Tag", {16.67, 9.54}},
        {"Yelp-Tag", {9.32, 6.18}}}},
      {"KGAT",
       {{"HetRec-MV", {14.99, 28.93}}, {"HetRec-FM", {17.34, 14.18}},
        {"HetRec-Del", {19.31, 14.72}}, {"CiteULike", {20.09, 12.48}},
        {"Last.fm-Tag", {40.23, 29.63}}, {"AMZBook-Tag", {16.79, 9.61}},
        {"Yelp-Tag", {9.39, 6.23}}}},
      {"KGIN",
       {{"HetRec-MV", {15.30, 29.98}}, {"HetRec-FM", {20.01, 15.87}},
        {"HetRec-Del", {20.13, 15.67}}, {"CiteULike", {22.03, 13.08}},
        {"Last.fm-Tag", {44.23, 32.72}}, {"AMZBook-Tag", {16.81, 9.63}},
        {"Yelp-Tag", {9.97, 6.67}}}},
      {"SGL",
       {{"HetRec-MV", {15.03, 29.11}}, {"HetRec-FM", {19.44, 15.57}},
        {"HetRec-Del", {19.58, 14.96}}, {"CiteULike", {20.74, 12.59}},
        {"Last.fm-Tag", {43.18, 31.75}}, {"AMZBook-Tag", {16.92, 9.88}},
        {"Yelp-Tag", {9.85, 6.53}}}},
      {"KGCL",
       {{"HetRec-MV", {15.42, 30.24}}, {"HetRec-FM", {20.55, 16.08}},
        {"HetRec-Del", {20.23, 15.82}}, {"CiteULike", {21.41, 12.90}},
        {"Last.fm-Tag", {43.62, 31.95}}, {"AMZBook-Tag", {17.12, 10.01}},
        {"Yelp-Tag", {10.00, 6.69}}}},
      {"B-IMCAT",
       {{"HetRec-MV", {15.13, 29.31}}, {"HetRec-FM", {17.86, 14.50}},
        {"HetRec-Del", {19.94, 15.42}}, {"CiteULike", {19.24, 12.13}},
        {"Last.fm-Tag", {40.27, 29.74}}, {"AMZBook-Tag", {15.99, 9.39}},
        {"Yelp-Tag", {9.39, 6.25}}}},
      {"N-IMCAT",
       {{"HetRec-MV", {15.32, 30.16}}, {"HetRec-FM", {20.76, 16.26}},
        {"HetRec-Del", {20.15, 15.72}}, {"CiteULike", {22.15, 13.14}},
        {"Last.fm-Tag", {44.01, 32.31}}, {"AMZBook-Tag", {17.21, 10.04}},
        {"Yelp-Tag", {10.04, 6.72}}}},
      {"L-IMCAT",
       {{"HetRec-MV", {16.22, 33.52}}, {"HetRec-FM", {21.25, 17.09}},
        {"HetRec-Del", {21.58, 16.82}}, {"CiteULike", {22.87, 13.59}},
        {"Last.fm-Tag", {46.73, 33.61}}, {"AMZBook-Tag", {17.72, 10.51}},
        {"Yelp-Tag", {10.41, 6.94}}}},
  };
  return table;
}

std::vector<std::string> ListFromEnv(const char* name,
                                     const std::vector<std::string>& dflt) {
  const char* value = std::getenv(name);
  if (value == nullptr) return dflt;
  std::vector<std::string> out;
  for (const std::string& part : imcat::Split(value, ',')) {
    if (!part.empty()) out.push_back(part);
  }
  return out.empty() ? dflt : out;
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  imcat::bench::PrintBanner(
      "Table II — overall performance comparison (R@20 / N@20, %)", env);

  const std::vector<std::string> datasets =
      ListFromEnv("IMCAT_BENCH_DATASETS", imcat::PresetNames());
  const std::vector<std::string> models =
      ListFromEnv("IMCAT_BENCH_MODELS", imcat::AllModelNames());

  for (const std::string& dataset : datasets) {
    Workload workload = imcat::bench::MakeWorkload(dataset, env, /*seed=*/1);
    const imcat::DatasetStats stats = imcat::ComputeStats(workload.dataset);
    std::printf("\n--- %s: %lld users, %lld items, %lld tags, %lld UI ---\n",
                dataset.c_str(), static_cast<long long>(stats.num_users),
                static_cast<long long>(stats.num_items),
                static_cast<long long>(stats.num_tags),
                static_cast<long long>(stats.num_interactions));
    imcat::TablePrinter table(
        {"Model", "R@20", "N@20", "paper R@20", "paper N@20", "sec"});
    for (const std::string& model : models) {
      const std::vector<imcat::bench::RunResult> runs =
          imcat::bench::RunSeeds(model, &workload, env);
      double seconds = 0.0;
      for (const auto& r : runs) seconds += r.train_seconds;
      const auto& paper = PaperTable2().at(model).at(dataset);
      table.AddRow({model,
                    imcat::FormatDouble(
                        imcat::bench::MeanTestRecallPercent(runs), 2),
                    imcat::FormatDouble(
                        imcat::bench::MeanTestNdcgPercent(runs), 2),
                    imcat::FormatDouble(paper.first, 2),
                    imcat::FormatDouble(paper.second, 2),
                    imcat::FormatDouble(seconds / runs.size(), 1)});
      std::fflush(stdout);
    }
    table.Print();
  }
  return 0;
}
