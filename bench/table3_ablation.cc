// Reproduces Table III: the effect of each IMCA design (w/o UIT, w/o UT,
// w/o UI, w/o NLT) for N-IMCAT and L-IMCAT on HetRec-Del, CiteULike and
// Yelp-Tag. Expected shape: full model best; removing the alignment
// entirely (w/o UIT) hurts most, then w/o UT, then w/o UI, then w/o NLT.

#include <cstdio>

#include "bench/runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using imcat::bench::BenchEnv;
using imcat::bench::Workload;

struct Variant {
  const char* label;
  void (*configure)(imcat::ModelFactoryOptions*);
};

void Full(imcat::ModelFactoryOptions*) {}
void WithoutUit(imcat::ModelFactoryOptions* options) {
  options->imcat.enable_alignment = false;
}
void WithoutUt(imcat::ModelFactoryOptions* options) {
  options->imcat.align_include_tag = false;  // Only align U with I.
}
void WithoutUi(imcat::ModelFactoryOptions* options) {
  options->imcat.align_include_item = false;  // Only align U with T.
}
void WithoutNlt(imcat::ModelFactoryOptions* options) {
  options->imcat.enable_nlt = false;
}

constexpr Variant kVariants[] = {
    {"full", Full},       {"w/o UIT", WithoutUit}, {"w/o UT", WithoutUt},
    {"w/o UI", WithoutUi}, {"w/o NLT", WithoutNlt},
};

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnvironment();
  imcat::bench::PrintBanner(
      "Table III — ablation of the IMCA module designs", env);

  const char* datasets[] = {"HetRec-Del", "CiteULike", "Yelp-Tag"};
  const char* models[] = {"N-IMCAT", "L-IMCAT"};

  for (const char* dataset : datasets) {
    Workload workload = imcat::bench::MakeWorkload(dataset, env, /*seed=*/1);
    std::printf("\n--- %s ---\n", dataset);
    imcat::TablePrinter table({"Model", "Variant", "R@20", "N@20"});
    for (const char* model : models) {
      for (const Variant& variant : kVariants) {
        const auto runs = imcat::bench::RunSeeds(model, &workload, env,
                                                 variant.configure);
        table.AddRow({model, variant.label,
                      imcat::FormatDouble(
                          imcat::bench::MeanTestRecallPercent(runs), 2),
                      imcat::FormatDouble(
                          imcat::bench::MeanTestNdcgPercent(runs), 2)});
        std::fflush(stdout);
      }
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape: full > w/o NLT > w/o UI > w/o UT > w/o UIT on every\n"
      "dataset for both backbones (Table III).\n");
  return 0;
}
