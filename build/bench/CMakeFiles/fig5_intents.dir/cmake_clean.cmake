file(REMOVE_RECURSE
  "CMakeFiles/fig5_intents.dir/fig5_intents.cc.o"
  "CMakeFiles/fig5_intents.dir/fig5_intents.cc.o.d"
  "fig5_intents"
  "fig5_intents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_intents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
