# Empty compiler generated dependencies file for fig5_intents.
# This may be replaced when dependencies are built.
