file(REMOVE_RECURSE
  "CMakeFiles/fig6_threshold.dir/fig6_threshold.cc.o"
  "CMakeFiles/fig6_threshold.dir/fig6_threshold.cc.o.d"
  "fig6_threshold"
  "fig6_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
