file(REMOVE_RECURSE
  "CMakeFiles/fig7_longtail.dir/fig7_longtail.cc.o"
  "CMakeFiles/fig7_longtail.dir/fig7_longtail.cc.o.d"
  "fig7_longtail"
  "fig7_longtail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_longtail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
