# Empty compiler generated dependencies file for fig7_longtail.
# This may be replaced when dependencies are built.
