file(REMOVE_RECURSE
  "CMakeFiles/fig8_coldstart.dir/fig8_coldstart.cc.o"
  "CMakeFiles/fig8_coldstart.dir/fig8_coldstart.cc.o.d"
  "fig8_coldstart"
  "fig8_coldstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_coldstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
