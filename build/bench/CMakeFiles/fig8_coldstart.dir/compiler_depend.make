# Empty compiler generated dependencies file for fig8_coldstart.
# This may be replaced when dependencies are built.
