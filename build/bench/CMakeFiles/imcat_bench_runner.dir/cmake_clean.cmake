file(REMOVE_RECURSE
  "CMakeFiles/imcat_bench_runner.dir/runner.cc.o"
  "CMakeFiles/imcat_bench_runner.dir/runner.cc.o.d"
  "libimcat_bench_runner.a"
  "libimcat_bench_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcat_bench_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
