file(REMOVE_RECURSE
  "libimcat_bench_runner.a"
)
