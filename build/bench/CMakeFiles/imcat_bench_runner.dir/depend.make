# Empty dependencies file for imcat_bench_runner.
# This may be replaced when dependencies are built.
