file(REMOVE_RECURSE
  "CMakeFiles/coldstart_analysis.dir/coldstart_analysis.cc.o"
  "CMakeFiles/coldstart_analysis.dir/coldstart_analysis.cc.o.d"
  "coldstart_analysis"
  "coldstart_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coldstart_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
