# Empty dependencies file for coldstart_analysis.
# This may be replaced when dependencies are built.
