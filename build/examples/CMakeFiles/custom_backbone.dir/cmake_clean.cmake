file(REMOVE_RECURSE
  "CMakeFiles/custom_backbone.dir/custom_backbone.cc.o"
  "CMakeFiles/custom_backbone.dir/custom_backbone.cc.o.d"
  "custom_backbone"
  "custom_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
