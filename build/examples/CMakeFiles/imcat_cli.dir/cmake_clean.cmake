file(REMOVE_RECURSE
  "CMakeFiles/imcat_cli.dir/imcat_cli.cc.o"
  "CMakeFiles/imcat_cli.dir/imcat_cli.cc.o.d"
  "imcat_cli"
  "imcat_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcat_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
