# Empty compiler generated dependencies file for imcat_cli.
# This may be replaced when dependencies are built.
