
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/resume_demo.cc" "examples/CMakeFiles/resume_demo.dir/resume_demo.cc.o" "gcc" "examples/CMakeFiles/resume_demo.dir/resume_demo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/imcat_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_train.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
