file(REMOVE_RECURSE
  "CMakeFiles/resume_demo.dir/resume_demo.cc.o"
  "CMakeFiles/resume_demo.dir/resume_demo.cc.o.d"
  "resume_demo"
  "resume_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resume_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
