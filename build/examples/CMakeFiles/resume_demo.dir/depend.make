# Empty dependencies file for resume_demo.
# This may be replaced when dependencies are built.
