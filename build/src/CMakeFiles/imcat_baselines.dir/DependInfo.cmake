
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cfa.cc" "src/CMakeFiles/imcat_baselines.dir/baselines/cfa.cc.o" "gcc" "src/CMakeFiles/imcat_baselines.dir/baselines/cfa.cc.o.d"
  "/root/repo/src/baselines/cke.cc" "src/CMakeFiles/imcat_baselines.dir/baselines/cke.cc.o" "gcc" "src/CMakeFiles/imcat_baselines.dir/baselines/cke.cc.o.d"
  "/root/repo/src/baselines/dspr.cc" "src/CMakeFiles/imcat_baselines.dir/baselines/dspr.cc.o" "gcc" "src/CMakeFiles/imcat_baselines.dir/baselines/dspr.cc.o.d"
  "/root/repo/src/baselines/factor_model.cc" "src/CMakeFiles/imcat_baselines.dir/baselines/factor_model.cc.o" "gcc" "src/CMakeFiles/imcat_baselines.dir/baselines/factor_model.cc.o.d"
  "/root/repo/src/baselines/kgat.cc" "src/CMakeFiles/imcat_baselines.dir/baselines/kgat.cc.o" "gcc" "src/CMakeFiles/imcat_baselines.dir/baselines/kgat.cc.o.d"
  "/root/repo/src/baselines/kgcl.cc" "src/CMakeFiles/imcat_baselines.dir/baselines/kgcl.cc.o" "gcc" "src/CMakeFiles/imcat_baselines.dir/baselines/kgcl.cc.o.d"
  "/root/repo/src/baselines/kgin.cc" "src/CMakeFiles/imcat_baselines.dir/baselines/kgin.cc.o" "gcc" "src/CMakeFiles/imcat_baselines.dir/baselines/kgin.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/CMakeFiles/imcat_baselines.dir/baselines/registry.cc.o" "gcc" "src/CMakeFiles/imcat_baselines.dir/baselines/registry.cc.o.d"
  "/root/repo/src/baselines/ripplenet.cc" "src/CMakeFiles/imcat_baselines.dir/baselines/ripplenet.cc.o" "gcc" "src/CMakeFiles/imcat_baselines.dir/baselines/ripplenet.cc.o.d"
  "/root/repo/src/baselines/sgl.cc" "src/CMakeFiles/imcat_baselines.dir/baselines/sgl.cc.o" "gcc" "src/CMakeFiles/imcat_baselines.dir/baselines/sgl.cc.o.d"
  "/root/repo/src/baselines/tag_profiles.cc" "src/CMakeFiles/imcat_baselines.dir/baselines/tag_profiles.cc.o" "gcc" "src/CMakeFiles/imcat_baselines.dir/baselines/tag_profiles.cc.o.d"
  "/root/repo/src/baselines/tgcn.cc" "src/CMakeFiles/imcat_baselines.dir/baselines/tgcn.cc.o" "gcc" "src/CMakeFiles/imcat_baselines.dir/baselines/tgcn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/imcat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_train.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
