file(REMOVE_RECURSE
  "CMakeFiles/imcat_baselines.dir/baselines/cfa.cc.o"
  "CMakeFiles/imcat_baselines.dir/baselines/cfa.cc.o.d"
  "CMakeFiles/imcat_baselines.dir/baselines/cke.cc.o"
  "CMakeFiles/imcat_baselines.dir/baselines/cke.cc.o.d"
  "CMakeFiles/imcat_baselines.dir/baselines/dspr.cc.o"
  "CMakeFiles/imcat_baselines.dir/baselines/dspr.cc.o.d"
  "CMakeFiles/imcat_baselines.dir/baselines/factor_model.cc.o"
  "CMakeFiles/imcat_baselines.dir/baselines/factor_model.cc.o.d"
  "CMakeFiles/imcat_baselines.dir/baselines/kgat.cc.o"
  "CMakeFiles/imcat_baselines.dir/baselines/kgat.cc.o.d"
  "CMakeFiles/imcat_baselines.dir/baselines/kgcl.cc.o"
  "CMakeFiles/imcat_baselines.dir/baselines/kgcl.cc.o.d"
  "CMakeFiles/imcat_baselines.dir/baselines/kgin.cc.o"
  "CMakeFiles/imcat_baselines.dir/baselines/kgin.cc.o.d"
  "CMakeFiles/imcat_baselines.dir/baselines/registry.cc.o"
  "CMakeFiles/imcat_baselines.dir/baselines/registry.cc.o.d"
  "CMakeFiles/imcat_baselines.dir/baselines/ripplenet.cc.o"
  "CMakeFiles/imcat_baselines.dir/baselines/ripplenet.cc.o.d"
  "CMakeFiles/imcat_baselines.dir/baselines/sgl.cc.o"
  "CMakeFiles/imcat_baselines.dir/baselines/sgl.cc.o.d"
  "CMakeFiles/imcat_baselines.dir/baselines/tag_profiles.cc.o"
  "CMakeFiles/imcat_baselines.dir/baselines/tag_profiles.cc.o.d"
  "CMakeFiles/imcat_baselines.dir/baselines/tgcn.cc.o"
  "CMakeFiles/imcat_baselines.dir/baselines/tgcn.cc.o.d"
  "libimcat_baselines.a"
  "libimcat_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcat_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
