file(REMOVE_RECURSE
  "libimcat_baselines.a"
)
