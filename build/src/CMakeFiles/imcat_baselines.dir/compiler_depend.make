# Empty compiler generated dependencies file for imcat_baselines.
# This may be replaced when dependencies are built.
