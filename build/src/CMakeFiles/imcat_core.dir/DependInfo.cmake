
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alignment.cc" "src/CMakeFiles/imcat_core.dir/core/alignment.cc.o" "gcc" "src/CMakeFiles/imcat_core.dir/core/alignment.cc.o.d"
  "/root/repo/src/core/imcat.cc" "src/CMakeFiles/imcat_core.dir/core/imcat.cc.o" "gcc" "src/CMakeFiles/imcat_core.dir/core/imcat.cc.o.d"
  "/root/repo/src/core/independence.cc" "src/CMakeFiles/imcat_core.dir/core/independence.cc.o" "gcc" "src/CMakeFiles/imcat_core.dir/core/independence.cc.o.d"
  "/root/repo/src/core/intent_clustering.cc" "src/CMakeFiles/imcat_core.dir/core/intent_clustering.cc.o" "gcc" "src/CMakeFiles/imcat_core.dir/core/intent_clustering.cc.o.d"
  "/root/repo/src/core/positive_samples.cc" "src/CMakeFiles/imcat_core.dir/core/positive_samples.cc.o" "gcc" "src/CMakeFiles/imcat_core.dir/core/positive_samples.cc.o.d"
  "/root/repo/src/core/set_alignment.cc" "src/CMakeFiles/imcat_core.dir/core/set_alignment.cc.o" "gcc" "src/CMakeFiles/imcat_core.dir/core/set_alignment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/imcat_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_train.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
