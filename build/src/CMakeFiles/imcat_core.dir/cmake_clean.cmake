file(REMOVE_RECURSE
  "CMakeFiles/imcat_core.dir/core/alignment.cc.o"
  "CMakeFiles/imcat_core.dir/core/alignment.cc.o.d"
  "CMakeFiles/imcat_core.dir/core/imcat.cc.o"
  "CMakeFiles/imcat_core.dir/core/imcat.cc.o.d"
  "CMakeFiles/imcat_core.dir/core/independence.cc.o"
  "CMakeFiles/imcat_core.dir/core/independence.cc.o.d"
  "CMakeFiles/imcat_core.dir/core/intent_clustering.cc.o"
  "CMakeFiles/imcat_core.dir/core/intent_clustering.cc.o.d"
  "CMakeFiles/imcat_core.dir/core/positive_samples.cc.o"
  "CMakeFiles/imcat_core.dir/core/positive_samples.cc.o.d"
  "CMakeFiles/imcat_core.dir/core/set_alignment.cc.o"
  "CMakeFiles/imcat_core.dir/core/set_alignment.cc.o.d"
  "libimcat_core.a"
  "libimcat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
