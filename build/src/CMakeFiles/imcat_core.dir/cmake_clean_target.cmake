file(REMOVE_RECURSE
  "libimcat_core.a"
)
