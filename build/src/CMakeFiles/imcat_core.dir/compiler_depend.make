# Empty compiler generated dependencies file for imcat_core.
# This may be replaced when dependencies are built.
