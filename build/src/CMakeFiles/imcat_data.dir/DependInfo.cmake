
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/imcat_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/imcat_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/loader.cc" "src/CMakeFiles/imcat_data.dir/data/loader.cc.o" "gcc" "src/CMakeFiles/imcat_data.dir/data/loader.cc.o.d"
  "/root/repo/src/data/presets.cc" "src/CMakeFiles/imcat_data.dir/data/presets.cc.o" "gcc" "src/CMakeFiles/imcat_data.dir/data/presets.cc.o.d"
  "/root/repo/src/data/split.cc" "src/CMakeFiles/imcat_data.dir/data/split.cc.o" "gcc" "src/CMakeFiles/imcat_data.dir/data/split.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/imcat_data.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/imcat_data.dir/data/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/imcat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
