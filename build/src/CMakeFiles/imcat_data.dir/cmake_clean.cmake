file(REMOVE_RECURSE
  "CMakeFiles/imcat_data.dir/data/dataset.cc.o"
  "CMakeFiles/imcat_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/imcat_data.dir/data/loader.cc.o"
  "CMakeFiles/imcat_data.dir/data/loader.cc.o.d"
  "CMakeFiles/imcat_data.dir/data/presets.cc.o"
  "CMakeFiles/imcat_data.dir/data/presets.cc.o.d"
  "CMakeFiles/imcat_data.dir/data/split.cc.o"
  "CMakeFiles/imcat_data.dir/data/split.cc.o.d"
  "CMakeFiles/imcat_data.dir/data/synthetic.cc.o"
  "CMakeFiles/imcat_data.dir/data/synthetic.cc.o.d"
  "libimcat_data.a"
  "libimcat_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcat_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
