file(REMOVE_RECURSE
  "libimcat_data.a"
)
