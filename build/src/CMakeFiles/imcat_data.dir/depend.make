# Empty dependencies file for imcat_data.
# This may be replaced when dependencies are built.
