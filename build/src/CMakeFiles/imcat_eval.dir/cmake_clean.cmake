file(REMOVE_RECURSE
  "CMakeFiles/imcat_eval.dir/eval/evaluator.cc.o"
  "CMakeFiles/imcat_eval.dir/eval/evaluator.cc.o.d"
  "CMakeFiles/imcat_eval.dir/eval/group_eval.cc.o"
  "CMakeFiles/imcat_eval.dir/eval/group_eval.cc.o.d"
  "CMakeFiles/imcat_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/imcat_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/imcat_eval.dir/eval/significance.cc.o"
  "CMakeFiles/imcat_eval.dir/eval/significance.cc.o.d"
  "libimcat_eval.a"
  "libimcat_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcat_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
