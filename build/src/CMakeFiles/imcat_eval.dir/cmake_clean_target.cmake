file(REMOVE_RECURSE
  "libimcat_eval.a"
)
