# Empty dependencies file for imcat_eval.
# This may be replaced when dependencies are built.
