file(REMOVE_RECURSE
  "CMakeFiles/imcat_graph.dir/graph/adjacency.cc.o"
  "CMakeFiles/imcat_graph.dir/graph/adjacency.cc.o.d"
  "libimcat_graph.a"
  "libimcat_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcat_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
