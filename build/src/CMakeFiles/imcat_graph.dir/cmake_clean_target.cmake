file(REMOVE_RECURSE
  "libimcat_graph.a"
)
