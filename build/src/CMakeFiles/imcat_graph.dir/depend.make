# Empty dependencies file for imcat_graph.
# This may be replaced when dependencies are built.
