file(REMOVE_RECURSE
  "CMakeFiles/imcat_models.dir/models/backbone.cc.o"
  "CMakeFiles/imcat_models.dir/models/backbone.cc.o.d"
  "CMakeFiles/imcat_models.dir/models/bprmf.cc.o"
  "CMakeFiles/imcat_models.dir/models/bprmf.cc.o.d"
  "CMakeFiles/imcat_models.dir/models/lightgcn.cc.o"
  "CMakeFiles/imcat_models.dir/models/lightgcn.cc.o.d"
  "CMakeFiles/imcat_models.dir/models/neumf.cc.o"
  "CMakeFiles/imcat_models.dir/models/neumf.cc.o.d"
  "libimcat_models.a"
  "libimcat_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcat_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
