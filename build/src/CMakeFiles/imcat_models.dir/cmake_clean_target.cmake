file(REMOVE_RECURSE
  "libimcat_models.a"
)
