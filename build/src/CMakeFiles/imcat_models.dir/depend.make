# Empty dependencies file for imcat_models.
# This may be replaced when dependencies are built.
