file(REMOVE_RECURSE
  "CMakeFiles/imcat_tensor.dir/tensor/autograd.cc.o"
  "CMakeFiles/imcat_tensor.dir/tensor/autograd.cc.o.d"
  "CMakeFiles/imcat_tensor.dir/tensor/checkpoint.cc.o"
  "CMakeFiles/imcat_tensor.dir/tensor/checkpoint.cc.o.d"
  "CMakeFiles/imcat_tensor.dir/tensor/init.cc.o"
  "CMakeFiles/imcat_tensor.dir/tensor/init.cc.o.d"
  "CMakeFiles/imcat_tensor.dir/tensor/ops.cc.o"
  "CMakeFiles/imcat_tensor.dir/tensor/ops.cc.o.d"
  "CMakeFiles/imcat_tensor.dir/tensor/optimizer.cc.o"
  "CMakeFiles/imcat_tensor.dir/tensor/optimizer.cc.o.d"
  "CMakeFiles/imcat_tensor.dir/tensor/sparse.cc.o"
  "CMakeFiles/imcat_tensor.dir/tensor/sparse.cc.o.d"
  "CMakeFiles/imcat_tensor.dir/tensor/tensor.cc.o"
  "CMakeFiles/imcat_tensor.dir/tensor/tensor.cc.o.d"
  "libimcat_tensor.a"
  "libimcat_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcat_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
