file(REMOVE_RECURSE
  "libimcat_tensor.a"
)
