# Empty compiler generated dependencies file for imcat_tensor.
# This may be replaced when dependencies are built.
