
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/health.cc" "src/CMakeFiles/imcat_train.dir/train/health.cc.o" "gcc" "src/CMakeFiles/imcat_train.dir/train/health.cc.o.d"
  "/root/repo/src/train/sampler.cc" "src/CMakeFiles/imcat_train.dir/train/sampler.cc.o" "gcc" "src/CMakeFiles/imcat_train.dir/train/sampler.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/imcat_train.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/imcat_train.dir/train/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/imcat_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/imcat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
