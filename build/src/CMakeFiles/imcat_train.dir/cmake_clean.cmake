file(REMOVE_RECURSE
  "CMakeFiles/imcat_train.dir/train/health.cc.o"
  "CMakeFiles/imcat_train.dir/train/health.cc.o.d"
  "CMakeFiles/imcat_train.dir/train/sampler.cc.o"
  "CMakeFiles/imcat_train.dir/train/sampler.cc.o.d"
  "CMakeFiles/imcat_train.dir/train/trainer.cc.o"
  "CMakeFiles/imcat_train.dir/train/trainer.cc.o.d"
  "libimcat_train.a"
  "libimcat_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcat_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
