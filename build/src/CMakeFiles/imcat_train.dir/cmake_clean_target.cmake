file(REMOVE_RECURSE
  "libimcat_train.a"
)
