# Empty dependencies file for imcat_train.
# This may be replaced when dependencies are built.
