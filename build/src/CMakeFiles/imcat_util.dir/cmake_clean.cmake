file(REMOVE_RECURSE
  "CMakeFiles/imcat_util.dir/util/fault_injector.cc.o"
  "CMakeFiles/imcat_util.dir/util/fault_injector.cc.o.d"
  "CMakeFiles/imcat_util.dir/util/logging.cc.o"
  "CMakeFiles/imcat_util.dir/util/logging.cc.o.d"
  "CMakeFiles/imcat_util.dir/util/rng.cc.o"
  "CMakeFiles/imcat_util.dir/util/rng.cc.o.d"
  "CMakeFiles/imcat_util.dir/util/stats.cc.o"
  "CMakeFiles/imcat_util.dir/util/stats.cc.o.d"
  "CMakeFiles/imcat_util.dir/util/status.cc.o"
  "CMakeFiles/imcat_util.dir/util/status.cc.o.d"
  "CMakeFiles/imcat_util.dir/util/string_util.cc.o"
  "CMakeFiles/imcat_util.dir/util/string_util.cc.o.d"
  "CMakeFiles/imcat_util.dir/util/table_printer.cc.o"
  "CMakeFiles/imcat_util.dir/util/table_printer.cc.o.d"
  "libimcat_util.a"
  "libimcat_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcat_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
