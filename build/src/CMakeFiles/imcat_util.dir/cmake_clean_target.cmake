file(REMOVE_RECURSE
  "libimcat_util.a"
)
