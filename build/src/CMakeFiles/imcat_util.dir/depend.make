# Empty dependencies file for imcat_util.
# This may be replaced when dependencies are built.
