file(REMOVE_RECURSE
  "CMakeFiles/imcat_test.dir/imcat_test.cc.o"
  "CMakeFiles/imcat_test.dir/imcat_test.cc.o.d"
  "imcat_test"
  "imcat_test.pdb"
  "imcat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
