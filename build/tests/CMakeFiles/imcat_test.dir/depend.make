# Empty dependencies file for imcat_test.
# This may be replaced when dependencies are built.
