file(REMOVE_RECURSE
  "CMakeFiles/positive_samples_test.dir/positive_samples_test.cc.o"
  "CMakeFiles/positive_samples_test.dir/positive_samples_test.cc.o.d"
  "positive_samples_test"
  "positive_samples_test.pdb"
  "positive_samples_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/positive_samples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
