# Empty dependencies file for positive_samples_test.
# This may be replaced when dependencies are built.
