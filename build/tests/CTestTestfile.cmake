# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/clustering_test[1]_include.cmake")
include("/root/repo/build/tests/positive_samples_test[1]_include.cmake")
include("/root/repo/build/tests/alignment_test[1]_include.cmake")
include("/root/repo/build/tests/independence_test[1]_include.cmake")
include("/root/repo/build/tests/imcat_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/death_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
