// Cold-start study (the paper's Fig. 7/8 motivation): compare LightGCN
// with and without IMCAT on long-tail items and sparse users, showing
// where the contrastive tag alignment pays off most.

#include <cstdio>
#include <memory>

#include "core/imcat.h"
#include "data/synthetic.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "eval/group_eval.h"
#include "models/backbone.h"
#include "models/lightgcn.h"
#include "train/trainer.h"

namespace {

using namespace imcat;  // Example code only.

std::unique_ptr<LightGcn> MakeBackbone(const Dataset& dataset,
                                       const DataSplit& split) {
  BackboneOptions options;
  options.embedding_dim = 16;
  return std::make_unique<LightGcn>(dataset.num_users, dataset.num_items,
                                    split.train, options);
}

void Report(const char* label, const Evaluator& evaluator,
            const Ranker& model, const DataSplit& split,
            const std::vector<int>& groups,
            const std::vector<int64_t>& sparse_users) {
  const EvalResult overall = evaluator.Evaluate(model, split.test, 20);
  const EvalResult sparse =
      evaluator.Evaluate(model, split.test, 20, sparse_users);
  const std::vector<double> contribution =
      GroupRecallContribution(evaluator, model, split.test, 20, groups, 5);
  std::printf("%-10s overall R@20=%.4f | sparse-user R@20=%.4f | "
              "tail G1-G3 share=%.1f%%\n",
              label, overall.recall, sparse.recall,
              overall.recall > 0
                  ? 100.0 * (contribution[0] + contribution[1] +
                             contribution[2]) / overall.recall
                  : 0.0);
}

}  // namespace

int main() {
  // A CiteULike-flavoured dataset with a wide user-degree spread (the
  // presets enforce a uniform >=10 floor, which would make every user
  // "sparse"; here activity follows a steep power law instead).
  SyntheticConfig config;
  config.name = "coldstart-study";
  config.num_users = 220;
  config.num_items = 650;
  config.num_tags = 80;
  config.num_interactions = 4200;
  config.num_item_tags = 2600;
  config.user_activity_exponent = 1.0;
  config.user_intent_alpha = 0.1;
  config.item_intent_alpha = 0.15;
  config.min_user_degree = 6;
  config.seed = 9;
  Dataset dataset = GenerateSynthetic(config);
  DataSplit split = SplitByUser(dataset, SplitOptions{});
  Evaluator evaluator(dataset, split);
  std::printf("dataset: %lld users, %lld items\n",
              (long long)dataset.num_users, (long long)dataset.num_items);

  const std::vector<int> groups = PopularityGroups(evaluator, 5);
  const std::vector<int64_t> sparse_users =
      SparseUsers(evaluator, dataset.num_users, 10);
  std::printf("%zu sparse users (train degree < 10) of %lld\n\n",
              sparse_users.size(), (long long)dataset.num_users);

  Trainer trainer(&evaluator, &split);
  TrainerOptions options;
  options.max_epochs = 150;
  options.eval_every = 10;
  options.patience = 6;

  // Plain LightGCN.
  BprModel lightgcn(MakeBackbone(dataset, split), dataset, split,
                    AdamOptions{}, 512);
  trainer.Fit(&lightgcn, options);
  Report("LightGCN", evaluator, lightgcn, split, groups, sparse_users);

  // L-IMCAT: same backbone, plus the intent-aware alignment.
  ImcatConfig imcat_config;
  imcat_config.num_intents = 4;
  imcat_config.pretrain_steps = 60;
  imcat_config.batch_size = 512;
  ImcatModel l_imcat(MakeBackbone(dataset, split), dataset, split,
                     imcat_config, AdamOptions{});
  trainer.Fit(&l_imcat, options);
  Report("L-IMCAT", evaluator, l_imcat, split, groups, sparse_users);

  std::printf(
      "\nPaper context (Figs. 7-8): IMCAT's advantage concentrates on\n"
      "sparse users and long-tail items. Single runs at this scale are\n"
      "noisy (~1-2 points of R@20); bench/fig7_longtail and\n"
      "bench/fig8_coldstart run the full comparison.\n");
  return 0;
}
