// Demonstrates IMCAT's model-agnostic design: plug a user-defined
// recommendation backbone into the framework. The backbone below is a
// deliberately simple "biased matrix factorisation" (inner product plus a
// learned per-item popularity bias) — anything that implements the
// Backbone interface gets the full IMCAT treatment.

#include <cstdio>
#include <memory>
#include <numeric>

#include "core/imcat.h"
#include "data/synthetic.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace {

using namespace imcat;  // Example code only.

/// MF with a per-item bias column: score(u, v) = <e_u, e_v> + b_v.
class BiasedMf : public Backbone {
 public:
  BiasedMf(int64_t num_users, int64_t num_items, int64_t dim, uint64_t seed)
      : num_users_(num_users), num_items_(num_items), dim_(dim) {
    Rng rng(seed);
    user_table_ = XavierUniform(num_users, dim, &rng, true);
    item_table_ = XavierUniform(num_items, dim, &rng, true);
    item_bias_ = ZerosParameter(num_items, 1);
  }

  std::string name() const override { return "BiasedMF"; }
  int64_t embedding_dim() const override { return dim_; }
  int64_t num_users() const override { return num_users_; }
  int64_t num_items() const override { return num_items_; }

  Tensor UserEmbeddings() override { return user_table_; }
  Tensor ItemEmbeddings() override { return item_table_; }

  Tensor PairScores(const std::vector<int64_t>& users,
                    const std::vector<int64_t>& items) override {
    Tensor u = ops::Gather(user_table_, users);
    Tensor v = ops::Gather(item_table_, items);
    Tensor bias = ops::Gather(item_bias_, items);
    return ops::Add(ops::RowSum(ops::Mul(u, v)), bias);
  }

  std::vector<Tensor> Parameters() override {
    return {user_table_, item_table_, item_bias_};
  }

  void ScoreItemsForUser(int64_t user,
                         std::vector<float>* scores) const override {
    scores->assign(num_items_, 0.0f);
    const float* u = user_table_.data() + user * dim_;
    for (int64_t v = 0; v < num_items_; ++v) {
      const float* iv = item_table_.data() + v * dim_;
      float acc = item_bias_.data()[v];
      for (int64_t c = 0; c < dim_; ++c) acc += u[c] * iv[c];
      (*scores)[v] = acc;
    }
  }

 private:
  int64_t num_users_;
  int64_t num_items_;
  int64_t dim_;
  Tensor user_table_;
  Tensor item_table_;
  Tensor item_bias_;
};

}  // namespace

int main() {
  SyntheticConfig data_config;
  data_config.num_users = 150;
  data_config.num_items = 300;
  data_config.num_tags = 48;
  data_config.num_interactions = 4500;
  data_config.num_item_tags = 1200;
  Dataset dataset = GenerateSynthetic(data_config);
  DataSplit split = SplitByUser(dataset, SplitOptions{});
  Evaluator evaluator(dataset, split);

  Trainer trainer(&evaluator, &split);
  TrainerOptions options;
  options.max_epochs = 80;
  options.eval_every = 10;
  options.patience = 4;

  // The custom backbone trained standalone with BPR...
  BprModel bare(std::make_unique<BiasedMf>(dataset.num_users,
                                           dataset.num_items, 16, 7),
                dataset, split, AdamOptions{}, 1024);
  trainer.Fit(&bare, options);
  const double bare_recall =
      evaluator.Evaluate(bare, split.test, 20).recall;

  // ...and the same backbone wrapped in IMCAT.
  ImcatConfig config;
  config.num_intents = 4;
  config.pretrain_steps = 40;
  ImcatModel imcat(std::make_unique<BiasedMf>(dataset.num_users,
                                              dataset.num_items, 16, 7),
                   dataset, split, config, AdamOptions{});
  trainer.Fit(&imcat, options);
  const double imcat_recall =
      evaluator.Evaluate(imcat, split.test, 20).recall;

  std::printf("%s:       test Recall@20 = %.4f\n", bare.name().c_str(),
              bare_recall);
  std::printf("%s: test Recall@20 = %.4f\n", imcat.name().c_str(),
              imcat_recall);
  std::printf("\nIMCAT wrapped a backbone it had never seen — the only\n"
              "contract is the Backbone interface (models/backbone.h).\n");
  return 0;
}
