// imcat_cli — command-line front end for the library.
//
//   imcat_cli stats     --preset CiteULike [--scale 0.05]
//   imcat_cli stats     --ui ui.tsv --it it.tsv
//   imcat_cli train     --model L-IMCAT --preset CiteULike
//                       [--epochs 150] [--dim 32] [--seed 13]
//                       [--out model.ckpt]
//   imcat_cli evaluate  --model L-IMCAT --preset CiteULike --ckpt model.ckpt
//   imcat_cli recommend --model L-IMCAT --preset CiteULike --ckpt model.ckpt
//                       --user 5 [--top 10]
//
// Data can come from a Table-I preset (--preset, --scale) or from TSV
// files (--ui interactions, --it item-tags). Model names are the Table-II
// names (see `imcat_cli models`). Train/evaluate/recommend all rebuild the
// same deterministic split, so a checkpoint trained by `train` is
// evaluated on the same held-out data by `evaluate`.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "baselines/registry.h"
#include "data/loader.h"
#include "data/presets.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "tensor/checkpoint.h"
#include "train/trainer.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace imcat;  // CLI tool; library code never does this.

/// Minimal --key value flag parser.
class Flags {
 public:
  Flags(int argc, char** argv, int begin) {
    for (int i = begin; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --%s\n", key.c_str());
        std::exit(2);
      }
      values_[key] = argv[++i];
    }
  }

  std::string Get(const std::string& key, const std::string& dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  double GetDouble(const std::string& key, double dflt) const {
    return Has(key) ? std::atof(values_.at(key).c_str()) : dflt;
  }
  int64_t GetInt(const std::string& key, int64_t dflt) const {
    return Has(key) ? std::atoll(values_.at(key).c_str()) : dflt;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Loads TSV or preset data; `provenance` (optional) receives a one-line
/// ingest summary suitable for TrainerOptions::data_provenance.
Dataset LoadData(const Flags& flags, std::string* provenance = nullptr) {
  if (flags.Has("ui") || flags.Has("it")) {
    if (!flags.Has("ui") || !flags.Has("it")) {
      std::fprintf(stderr, "--ui and --it must be given together\n");
      std::exit(2);
    }
    LoaderOptions options;
    options.min_user_interactions = flags.GetInt("min-user", 0);
    options.min_item_interactions = flags.GetInt("min-item", 0);
    options.min_tag_items = flags.GetInt("min-tag", 0);
    const std::string policy = flags.Get("policy", "strict");
    if (policy == "permissive") {
      options.policy = ParsePolicy::kPermissive;
    } else if (policy != "strict") {
      std::fprintf(stderr, "--policy must be strict or permissive\n");
      std::exit(2);
    }
    IngestReport report;
    auto loaded = LoadDatasetFromTsv(flags.Get("ui", ""), flags.Get("it", ""),
                                     options, &report);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load data: %s\n",
                   loaded.status().ToString().c_str());
      std::exit(1);
    }
    if (report.interactions.quarantined > 0 ||
        report.item_tags.quarantined > 0) {
      std::fprintf(stderr, "ingest quarantine: %s\n",
                   report.Summary().c_str());
      for (const auto& file : {report.interactions, report.item_tags}) {
        for (const auto& s : file.samples) {
          std::fprintf(stderr, "  %s:%lld:%lld: [%s] %s\n", file.path.c_str(),
                       static_cast<long long>(s.line),
                       static_cast<long long>(s.column),
                       IngestErrorName(s.error), s.detail.c_str());
        }
      }
    }
    if (provenance != nullptr) *provenance = report.Summary();
    return std::move(loaded).value();
  }
  const std::string preset = flags.Get("preset", "CiteULike");
  const double scale = flags.GetDouble("scale", 0.05);
  auto config = PresetConfig(preset, scale, flags.GetInt("data-seed", 1));
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    std::exit(1);
  }
  if (provenance != nullptr) {
    *provenance = "synthetic preset " + preset;
  }
  return GenerateSynthetic(config.value());
}

struct Session {
  Dataset dataset;
  DataSplit split;
  Evaluator evaluator;
  std::unique_ptr<TrainableModel> model;
  std::string provenance;
};

Session MakeSession(const Flags& flags) {
  std::string provenance;
  Dataset dataset = LoadData(flags, &provenance);
  DataSplit split = SplitByUser(dataset, SplitOptions{});
  Evaluator evaluator(dataset, split);

  ModelFactoryOptions options;
  options.embedding_dim = flags.GetInt("dim", 32);
  options.seed = flags.GetInt("seed", 13);
  options.batch_size = flags.GetInt("batch", 1024);
  options.imcat.num_intents = static_cast<int>(flags.GetInt("intents", 4));
  options.imcat.beta = static_cast<float>(flags.GetDouble("beta", 0.3));
  options.imcat.alpha = static_cast<float>(flags.GetDouble("alpha", 0.1));
  const std::string model_name = flags.Get("model", "L-IMCAT");
  auto created = CreateModel(model_name, dataset, split, options);
  if (!created.ok()) {
    std::fprintf(stderr, "%s (see `imcat_cli models`)\n",
                 created.status().ToString().c_str());
    std::exit(1);
  }
  Session session{std::move(dataset), std::move(split),
                  std::move(evaluator), nullptr, std::move(provenance)};
  session.model = std::move(created).value();
  return session;
}

void LoadCheckpointOrDie(const Flags& flags, TrainableModel* model) {
  const std::string path = flags.Get("ckpt", "");
  if (path.empty()) {
    std::fprintf(stderr, "--ckpt is required\n");
    std::exit(2);
  }
  std::vector<Tensor> params = model->Parameters();
  Status status = LoadCheckpoint(path, &params);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
}

void PrintMetrics(const char* label, const EvalResult& result, int top_n) {
  std::printf("%s (N=%d, %lld users): Recall=%.4f NDCG=%.4f Precision=%.4f "
              "HitRate=%.4f MRR=%.4f\n",
              label, top_n, static_cast<long long>(result.num_users),
              result.recall, result.ndcg, result.precision, result.hit_rate,
              result.mrr);
}

int CmdStats(const Flags& flags) {
  Dataset dataset = LoadData(flags);
  DatasetStats stats = ComputeStats(dataset);
  TablePrinter table({"#User", "#Item", "#Tag", "#UI", "UI-dens%", "UI-deg",
                      "#IT", "IT-dens%", "IT-deg"});
  table.AddRow({std::to_string(stats.num_users),
                std::to_string(stats.num_items),
                std::to_string(stats.num_tags),
                std::to_string(stats.num_interactions),
                FormatDouble(stats.ui_density_percent, 2),
                FormatDouble(stats.ui_avg_degree, 2),
                std::to_string(stats.num_item_tags),
                FormatDouble(stats.it_density_percent, 2),
                FormatDouble(stats.it_avg_degree, 2)});
  table.Print();
  return 0;
}

int CmdTrain(const Flags& flags) {
  Session session = MakeSession(flags);
  Trainer trainer(&session.evaluator, &session.split);
  TrainerOptions options;
  options.max_epochs = flags.GetInt("epochs", 150);
  options.eval_every = flags.GetInt("eval-every", 10);
  options.patience = flags.GetInt("patience", 8);
  options.verbose = true;
  options.data_provenance = session.provenance;
  // Observability (DESIGN.md §9): --metrics-out dumps a final metrics
  // snapshot (.json => JSON, else Prometheus text); --journal appends
  // structured run events as JSONL.
  MetricsRegistry metrics;
  std::unique_ptr<RunJournal> journal;
  options.metrics_out = flags.Get("metrics-out", "");
  if (flags.Has("metrics-out") || flags.Has("journal")) {
    options.metrics = &metrics;
    session.evaluator.set_metrics(&metrics);
  }
  if (flags.Has("journal")) {
    journal = std::make_unique<RunJournal>(flags.Get("journal", ""));
    options.journal = journal.get();
  }
  SetLogLevel(LogLevel::kInfo);
  TrainHistory history = trainer.Fit(session.model.get(), options);
  std::printf("trained %s for %lld epochs (%.1fs), best epoch %lld\n",
              session.model->name().c_str(),
              static_cast<long long>(history.epochs_run),
              history.train_seconds,
              static_cast<long long>(history.best_epoch));
  const int top_n = static_cast<int>(flags.GetInt("top", 20));
  PrintMetrics("test", session.evaluator.Evaluate(
                           *session.model, session.split.test, top_n),
               top_n);
  const std::string out = flags.Get("out", "");
  if (!out.empty()) {
    Status status = SaveCheckpoint(out, session.model->Parameters());
    if (!status.ok()) {
      std::fprintf(stderr, "failed to save %s: %s\n", out.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("saved checkpoint to %s\n", out.c_str());
  }
  if (!options.metrics_out.empty()) {
    std::printf("metrics written to %s\n", options.metrics_out.c_str());
  }
  if (journal != nullptr) {
    std::printf("journal: %s (%lld events)\n", journal->path().c_str(),
                static_cast<long long>(journal->events_appended()));
  }
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  Session session = MakeSession(flags);
  LoadCheckpointOrDie(flags, session.model.get());
  const int top_n = static_cast<int>(flags.GetInt("top", 20));
  PrintMetrics("validation",
               session.evaluator.Evaluate(*session.model,
                                          session.split.validation, top_n),
               top_n);
  PrintMetrics("test", session.evaluator.Evaluate(
                           *session.model, session.split.test, top_n),
               top_n);
  return 0;
}

int CmdRecommend(const Flags& flags) {
  Session session = MakeSession(flags);
  LoadCheckpointOrDie(flags, session.model.get());
  const int64_t user = flags.GetInt("user", 0);
  if (user < 0 || user >= session.dataset.num_users) {
    std::fprintf(stderr, "--user out of range [0, %lld)\n",
                 static_cast<long long>(session.dataset.num_users));
    return 1;
  }
  const int top_n = static_cast<int>(flags.GetInt("top", 10));
  std::printf("top-%d for user %lld:", top_n, static_cast<long long>(user));
  for (int64_t item :
       session.evaluator.TopNForUser(*session.model, user, top_n)) {
    std::printf(" %lld", static_cast<long long>(item));
  }
  std::printf("\n");
  return 0;
}

int CmdModels() {
  for (const std::string& name : AllModelNames()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: imcat_cli <stats|train|evaluate|recommend|models> "
               "[--flags]\n"
               "data:  --preset NAME --scale S | --ui FILE --it FILE\n"
               "       [--policy strict|permissive] [--min-user N] "
               "[--min-item N] [--min-tag N]\n"
               "model: --model NAME --dim D --seed S --intents K\n"
               "train: --epochs E --out CKPT [--metrics-out FILE] "
               "[--journal FILE]\n"
               "eval/rec: --ckpt CKPT\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (command == "stats") return CmdStats(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "recommend") return CmdRecommend(flags);
  if (command == "models") return CmdModels();
  Usage();
  return 2;
}
