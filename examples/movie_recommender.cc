// Movie recommendation scenario (the paper's HetRec-MV setting): train
// N-IMCAT on the HetRec-MV preset and inspect what the intent machinery
// learned — the tag clusters, each item's intent-relatedness (the M matrix
// of Eq. 9), and per-intent similar-item sets (ISA). This demonstrates the
// interpretability angle the paper motivates: each user-intent chunk is
// tied to a coherent cluster of tags.

#include <cstdio>
#include <memory>

#include "core/imcat.h"
#include "data/presets.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "models/neumf.h"
#include "train/trainer.h"

int main() {
  using namespace imcat;  // Example code only.

  Dataset dataset = GeneratePreset("HetRec-MV", /*scale=*/0.05, /*seed=*/3);
  std::printf("HetRec-MV preset: %lld users, %lld items, %lld tags\n",
              (long long)dataset.num_users, (long long)dataset.num_items,
              (long long)dataset.num_tags);
  DataSplit split = SplitByUser(dataset, SplitOptions{});
  Evaluator evaluator(dataset, split);

  BackboneOptions backbone_options;
  backbone_options.embedding_dim = 16;
  ImcatConfig config;
  config.num_intents = 4;
  config.pretrain_steps = 50;
  ImcatModel model(std::make_unique<NeuMf>(dataset.num_users,
                                           dataset.num_items,
                                           backbone_options),
                   dataset, split, config, AdamOptions{});

  Trainer trainer(&evaluator, &split);
  TrainerOptions train_options;
  train_options.max_epochs = 80;
  train_options.eval_every = 10;
  train_options.patience = 4;
  trainer.Fit(&model, train_options);

  EvalResult test = evaluator.Evaluate(model, split.test, 20);
  std::printf("N-IMCAT test Recall@20=%.4f NDCG@20=%.4f\n\n", test.recall,
              test.ndcg);

  // --- Learned tag clusters (each cluster identifies one user intent). ---
  const std::vector<int>& assignments = model.clustering().assignments();
  std::vector<int> cluster_sizes(config.num_intents, 0);
  for (int a : assignments) ++cluster_sizes[a];
  std::printf("Tag clusters (intents):\n");
  for (int k = 0; k < config.num_intents; ++k) {
    std::printf("  intent %d: %d tags, e.g. tags", k, cluster_sizes[k]);
    int shown = 0;
    for (size_t t = 0; t < assignments.size() && shown < 6; ++t) {
      if (assignments[t] == k) {
        std::printf(" %zu", t);
        ++shown;
      }
    }
    std::printf("\n");
  }

  // --- Intent-relatedness of a few movies (Eq. 9's M matrix). ---
  std::printf("\nItem intent-relatedness M[j, k]:\n");
  const PositiveSampleIndex& index = model.positive_index();
  for (int64_t item = 0; item < 5; ++item) {
    std::printf("  movie %lld:", (long long)item);
    for (int k = 0; k < config.num_intents; ++k) {
      std::printf(" %.2f", index.Relatedness(item, k));
    }
    std::printf("\n");
  }

  // --- ISA similar-movie sets under each intent. ---
  std::printf("\nPer-intent similar movies (Jaccard > %.1f):\n",
              config.jaccard_threshold);
  int printed = 0;
  for (int64_t item = 0; item < dataset.num_items && printed < 5; ++item) {
    for (int k = 0; k < config.num_intents; ++k) {
      const auto& similar = index.SimilarSet(item, k);
      if (similar.empty()) continue;
      std::printf("  movie %lld ~ intent %d:", (long long)item, k);
      for (size_t i = 0; i < similar.size() && i < 5; ++i) {
        std::printf(" %lld", (long long)similar[i]);
      }
      std::printf("\n");
      ++printed;
      break;
    }
  }
  return 0;
}
