// Quickstart: generate a small tag-enhanced dataset, train L-IMCAT
// (LightGCN + IMCAT), evaluate it, and print top-N recommendations for a
// few users. This is the minimal end-to-end tour of the public API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/imcat.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/lightgcn.h"
#include "train/trainer.h"
#include "util/logging.h"

int main() {
  using namespace imcat;  // Example code only; library code never does this.

  // 1. Data: a synthetic tag-enhanced dataset (drop in your own TSV files
  //    with LoadDatasetFromTsv to use real data).
  SyntheticConfig data_config;
  data_config.name = "quickstart";
  data_config.num_users = 200;
  data_config.num_items = 400;
  data_config.num_tags = 60;
  data_config.num_interactions = 6000;
  data_config.num_item_tags = 1600;
  data_config.num_latent_intents = 4;
  Dataset dataset = GenerateSynthetic(data_config);
  DatasetStats stats = ComputeStats(dataset);
  std::printf("Dataset: %lld users, %lld items, %lld tags, %lld interactions\n",
              (long long)stats.num_users, (long long)stats.num_items,
              (long long)stats.num_tags, (long long)stats.num_interactions);

  // 2. Protocol: per-user 7:1:2 split and a full-ranking evaluator.
  DataSplit split = SplitByUser(dataset, SplitOptions{});
  Evaluator evaluator(dataset, split);

  // 3. Model: IMCAT on a LightGCN backbone (= L-IMCAT). Any Backbone
  //    implementation works here.
  BackboneOptions backbone_options;
  backbone_options.embedding_dim = 16;
  auto backbone = std::make_unique<LightGcn>(
      dataset.num_users, dataset.num_items, split.train, backbone_options);

  ImcatConfig imcat_config;
  imcat_config.num_intents = 4;
  imcat_config.pretrain_steps = 60;
  ImcatModel model(std::move(backbone), dataset, split, imcat_config,
                   AdamOptions{.learning_rate = 1e-3f, .weight_decay = 1e-3f});

  // 4. Train with early stopping on validation Recall@20.
  SetLogLevel(LogLevel::kInfo);
  Trainer trainer(&evaluator, &split);
  TrainerOptions train_options;
  train_options.max_epochs = 120;
  train_options.eval_every = 10;
  train_options.patience = 5;
  train_options.verbose = true;
  TrainHistory history = trainer.Fit(&model, train_options);
  std::printf("Trained %lld epochs in %.1fs (best epoch %lld)\n",
              (long long)history.epochs_run, history.train_seconds,
              (long long)history.best_epoch);

  // 5. Evaluate on the held-out test interactions.
  EvalResult test = evaluator.Evaluate(model, split.test, 20);
  std::printf("Test: Recall@20=%.4f NDCG@20=%.4f HitRate@20=%.4f\n",
              test.recall, test.ndcg, test.hit_rate);

  // 6. Produce recommendations.
  for (int64_t user = 0; user < 3; ++user) {
    std::printf("Top-5 for user %lld:", (long long)user);
    for (int64_t item : evaluator.TopNForUser(model, user, 5)) {
      std::printf(" %lld", (long long)item);
    }
    std::printf("\n");
  }
  return 0;
}
