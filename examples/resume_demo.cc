// Fault-tolerant training demo: run B-IMCAT's BPR-MF backbone with periodic
// atomic checkpointing, simulate a crash partway through, then relaunch the
// exact same configuration with a resume path and show that the resumed run
// lands on the same model as an uninterrupted one (same validation metrics).
//
// Usage:
//   resume_demo [checkpoint_path]
// The same invocation works for the first launch and every relaunch: a
// missing checkpoint starts fresh, an existing one resumes mid-stream.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/backbone.h"
#include "models/bprmf.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace imcat;  // Example code only.

  const std::string ckpt =
      argc > 1 ? argv[1] : std::string("/tmp/imcat_resume_demo.ckpt");
  std::remove(ckpt.c_str());

  SyntheticConfig data_config;
  data_config.num_users = 200;
  data_config.num_items = 300;
  data_config.num_tags = 40;
  data_config.num_interactions = 5000;
  data_config.num_item_tags = 900;
  data_config.seed = 9;
  Dataset dataset = GenerateSynthetic(data_config);
  DataSplit split = SplitByUser(dataset, SplitOptions{});
  Evaluator evaluator(dataset, split);
  Trainer trainer(&evaluator, &split);

  auto make_model = [&]() {
    BackboneOptions backbone_options;
    backbone_options.embedding_dim = 32;
    AdamOptions adam;
    adam.learning_rate = 0.05f;
    adam.clip_norm = 5.0f;  // Global-norm gradient clipping.
    return std::make_unique<BprModel>(
        std::make_unique<Bprmf>(dataset.num_users, dataset.num_items,
                                backbone_options),
        dataset, split, adam, /*batch_size=*/512);
  };
  auto make_options = [&](int64_t max_epochs) {
    TrainerOptions options;
    options.max_epochs = max_epochs;
    options.eval_every = 5;
    options.patience = 100;
    options.restore_best = false;  // Compare the raw final state.
    options.seed = 33;
    options.checkpoint_path = ckpt;
    options.checkpoint_every = 1;  // Atomic write: safe every epoch.
    options.resume_path = ckpt;
    return options;
  };
  const int64_t total_epochs = 20;

  // Reference: one uninterrupted run (no checkpoint file exists yet, so the
  // resume path is ignored).
  std::printf("=== Uninterrupted run: %lld epochs ===\n",
              (long long)total_epochs);
  auto reference_model = make_model();
  {
    TrainerOptions options = make_options(total_epochs);
    options.checkpoint_path.clear();  // Keep the file free for run two.
    options.resume_path.clear();
    TrainHistory history = trainer.Fit(reference_model.get(), options);
    std::printf("  ran epochs 1..%lld, best val R@20=%.4f\n",
                (long long)history.epochs_run, history.best_validation.recall);
  }
  EvalResult reference =
      evaluator.Evaluate(*reference_model, split.validation, 20);

  // Crash simulation: train half way with checkpointing, then drop the
  // model (the "process" dies; only the checkpoint file survives).
  std::printf("=== Interrupted run: killed after %lld epochs ===\n",
              (long long)(total_epochs / 2));
  {
    auto doomed_model = make_model();
    TrainHistory history =
        trainer.Fit(doomed_model.get(), make_options(total_epochs / 2));
    std::printf("  checkpoint written to %s at epoch %lld\n", ckpt.c_str(),
                (long long)history.epochs_run);
  }

  // Relaunch with the identical invocation: the trainer finds the
  // checkpoint, restores parameters + Adam moments + RNG stream, and
  // finishes epochs 11..20 exactly as the uninterrupted run did.
  std::printf("=== Relaunch: resuming from %s ===\n", ckpt.c_str());
  auto resumed_model = make_model();
  // The relaunch is instrumented: the trainer feeds the metrics registry
  // and appends structured events (run_start/epoch/checkpoint/run_end) to
  // the JSONL journal, flushed atomically alongside the checkpoints.
  MetricsRegistry metrics;
  evaluator.set_metrics(&metrics);
  RunJournal journal(ckpt + ".journal.jsonl");
  TrainHistory resumed = [&] {
    TrainerOptions options = make_options(total_epochs);
    options.metrics = &metrics;
    options.journal = &journal;
    return trainer.Fit(resumed_model.get(), options);
  }();
  if (!resumed.status.ok()) {
    std::printf("resume failed: %s\n", resumed.status.ToString().c_str());
    return 1;
  }
  std::printf("  resumed at epoch %lld, ran to epoch %lld\n",
              (long long)resumed.start_epoch, (long long)resumed.epochs_run);

  EvalResult after = evaluator.Evaluate(*resumed_model, split.validation, 20);
  std::printf("\nValidation Recall@20: uninterrupted=%.6f resumed=%.6f "
              "(|diff|=%.2e)\n",
              reference.recall, after.recall,
              std::fabs(reference.recall - after.recall));
  std::printf("Validation NDCG@20:   uninterrupted=%.6f resumed=%.6f\n",
              reference.ndcg, after.ndcg);
  const bool match = std::fabs(reference.recall - after.recall) < 1e-6 &&
                     std::fabs(reference.ndcg - after.ndcg) < 1e-6;
  std::printf("%s\n", match ? "Resume is bit-exact: metrics match."
                            : "MISMATCH: resumed run drifted!");

  std::printf("\n=== Metrics snapshot of the resumed run ===\n%s",
              DumpPrometheusText(metrics.Snapshot()).c_str());
  std::printf("journal: %s (%lld events)\n", journal.path().c_str(),
              (long long)journal.events_appended());
  std::remove(ckpt.c_str());
  std::remove(journal.path().c_str());
  return match ? 0 : 1;
}
