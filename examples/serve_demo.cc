// Fault-tolerant serving demo: train a BPR-MF backbone, export its factor
// matrices as a serving snapshot, stand up the RecService and walk through
// its robustness behaviours end to end — real scoring, request validation,
// hot snapshot reload, degraded popularity fallback while the snapshot is
// corrupt and the circuit breaker is open, and recovery once a good
// snapshot is back.
//
// Usage:
//   serve_demo [snapshot_path]

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/backbone.h"
#include "models/bprmf.h"
#include "obs/metrics.h"
#include "serve/rec_service.h"
#include "train/trainer.h"

namespace {

imcat::RecRequest Req(int64_t user) {
  imcat::RecRequest request;
  request.user = user;
  return request;
}

void PrintResponse(const char* label, const imcat::RecResponse& response) {
  std::printf("%-28s status=%s degraded=%s version=%lld items=[", label,
              response.status.ToString().c_str(),
              response.degraded ? "true" : "false",
              (long long)response.snapshot_version);
  for (size_t i = 0; i < response.items.size(); ++i) {
    std::printf("%s%lld:%.3f", i ? " " : "", (long long)response.items[i].item,
                response.items[i].score);
  }
  std::printf("]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace imcat;  // Example code only.

  const std::string snapshot_path =
      argc > 1 ? argv[1] : std::string("/tmp/imcat_serve_demo.ckpt");

  // 1. Train a small BPR-MF model and export a serving snapshot.
  SyntheticConfig data_config;
  data_config.num_users = 200;
  data_config.num_items = 300;
  data_config.num_tags = 40;
  data_config.num_interactions = 5000;
  data_config.num_item_tags = 900;
  data_config.seed = 9;
  Dataset dataset = GenerateSynthetic(data_config);
  DataSplit split = SplitByUser(dataset, SplitOptions{});
  Evaluator evaluator(dataset, split);
  Trainer trainer(&evaluator, &split);

  BackboneOptions backbone_options;
  backbone_options.embedding_dim = 32;
  BprModel model(std::make_unique<Bprmf>(dataset.num_users, dataset.num_items,
                                         backbone_options),
                 dataset, split, AdamOptions{}, /*batch_size=*/512);
  TrainerOptions train_options;
  train_options.max_epochs = 15;
  train_options.eval_every = 5;
  std::printf("=== Training BPR-MF (%lld epochs) ===\n",
              (long long)train_options.max_epochs);
  trainer.Fit(&model, train_options);
  Status exported = ExportServingCheckpoint(&model, snapshot_path);
  std::printf("exported serving snapshot: %s (%s)\n", snapshot_path.c_str(),
              exported.ToString().c_str());

  // 2. Stand up the service: popularity fallback from train-split degrees,
  // bounded queue, deadline budgets, breaker + backoff defaults. The
  // metrics registry makes every behaviour below visible in the summary
  // printed on exit.
  auto fallback =
      std::make_shared<PopularityRanker>(dataset.num_items, split.train);
  MetricsRegistry metrics;
  RecServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 16;
  options.default_top_k = 5;
  options.default_deadline_ms = 50.0;
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown_ms = 10.0;
  // Opt into request coalescing: a worker wakeup drains up to this many
  // compatible queued requests and scores them through one TopKBatch
  // pass. The same configuration is echoed by GET /healthz ("batching").
  options.max_batch_size = 4;
  options.metrics = &metrics;
  RecService service(fallback, options);
  std::printf("batching: max_batch_size=%lld block_items=%lld\n",
              (long long)options.max_batch_size,
              (long long)options.recommender.block_items);

  std::printf("\n=== Before any snapshot: degraded popularity fallback ===\n");
  PrintResponse("no snapshot yet", service.Recommend(Req(7)));

  std::printf("\n=== Snapshot loaded: real model scores ===\n");
  Status load = service.LoadSnapshot(snapshot_path);
  std::printf("LoadSnapshot: %s\n", load.ToString().c_str());
  PrintResponse("user 7", service.Recommend(Req(7)));
  PrintResponse("user 42", service.Recommend(Req(42)));

  std::printf("\n=== Request validation: clean errors, never UB ===\n");
  PrintResponse("user -3", service.Recommend(Req(-3)));
  PrintResponse("user 10^6 (unknown)",
                service.Recommend(Req(1000000)));

  std::printf("\n=== Hot reload: mid-flight requests keep their snapshot ===\n");
  auto before = service.snapshot();
  (void)service.LoadSnapshot(snapshot_path);
  // parent_version is the lineage the loaded file claims in its manifest
  // (0 for unversioned monolithic exports) — the same value the
  // snapshot_reload journal event now carries.
  std::printf(
      "old snapshot version %lld still valid, current is %lld "
      "(manifest parent_version %lld)\n",
      (long long)before->version(), (long long)service.snapshot()->version(),
      (long long)service.snapshot()->parent_version());

  std::printf("\n=== Corrupt snapshot + reload: breaker trips, degraded ===\n");
  {
    std::ofstream(snapshot_path, std::ios::binary | std::ios::trunc)
        << "garbage, not a checkpoint";
  }
  // Two failing reloads trip the breaker (threshold 2); requests degrade
  // to the popularity fallback but keep answering.
  for (int i = 0; i < 2; ++i) {
    Status bad = service.LoadSnapshot(snapshot_path);
    std::printf("reload %d: %s\n", i + 1, bad.ToString().c_str());
  }
  std::printf("breaker: %s\n",
              CircuitBreaker::StateName(service.breaker_state()));
  PrintResponse("user 7 (degraded)", service.Recommend(Req(7)));

  std::printf("\n=== Recovery: good snapshot back, breaker closes ===\n");
  (void)ExportServingCheckpoint(&model, snapshot_path);
  Status recovered = service.LoadSnapshot(snapshot_path);
  std::printf("reload: %s, breaker: %s\n", recovered.ToString().c_str(),
              CircuitBreaker::StateName(service.breaker_state()));
  PrintResponse("user 7 (recovered)",
                service.Recommend(Req(7)));

  const RecServiceStats stats = service.stats();
  std::printf("\nstats: accepted=%lld real=%lld degraded=%lld invalid=%lld "
              "reloads=%lld load_failures=%lld shed=%lld\n",
              (long long)stats.accepted, (long long)stats.served_real,
              (long long)stats.served_degraded,
              (long long)stats.invalid_requests,
              (long long)stats.snapshot_reloads,
              (long long)stats.snapshot_load_failures, (long long)stats.shed);

  std::printf("\n=== Health endpoint (GET /healthz payload) ===\n%s\n",
              service.HealthJson().c_str());

  std::printf("\n=== Metrics snapshot (Prometheus text format) ===\n%s",
              DumpPrometheusText(metrics.Snapshot()).c_str());
  std::remove(snapshot_path.c_str());
  return recovered.ok() ? 0 : 1;
}
