#!/usr/bin/env bash
# Full verification sweep: build and run the test suite across the
# sanitizer matrix —
#   1. plain Release (the tier-1 configuration),
#   2. AddressSanitizer + UBSan (memory/UB bugs), and
#   3. ThreadSanitizer (data races, lock-order inversions).
# The ASan pass also re-runs the checkpoint durability suite explicitly
# (v1 read-compat, truncation and bit-flip sweeps), so storage corruption
# handling is always exercised under ASan/UBSan even if the main sweep is
# filtered down. The TSan pass re-runs the concurrency stress suites
# (ctest -L race, -L chaos) explicitly: those tests exist to generate racy
# schedules for TSan to observe, so "zero TSan reports" is what the pass
# proves.
# Usage:
#   scripts/check.sh            # full matrix: plain + asan/ubsan + tsan
#   scripts/check.sh --plain    # tier-1 only
#   scripts/check.sh --sanitize # asan/ubsan leg only
#   scripts/check.sh --tsan     # tsan leg only (full suite + race/chaos)
#   scripts/check.sh --chaos    # fault-injection + serving chaos suites
#   scripts/check.sh --fuzz     # ingestion corruption-fuzz sweep (sanitized)
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)

run_plain=1
run_sanitized=1
run_tsan=1
run_chaos=0
run_fuzz=0
case "${1:-}" in
  --plain)    run_sanitized=0; run_tsan=0 ;;
  --sanitize) run_plain=0; run_tsan=0 ;;
  --tsan)     run_plain=0; run_sanitized=0 ;;
  --chaos)    run_plain=0; run_sanitized=0; run_tsan=0; run_chaos=1 ;;
  --fuzz)     run_plain=0; run_sanitized=0; run_tsan=0; run_fuzz=1 ;;
  "") ;;
  *) echo "usage: $0 [--plain|--sanitize|--tsan|--chaos|--fuzz]" >&2; exit 2 ;;
esac

if [[ "$run_plain" == 1 ]]; then
  echo "=== plain build (tier-1) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")
fi

if [[ "$run_sanitized" == 1 ]]; then
  echo "=== sanitized build (address;undefined) ==="
  cmake -B build-asan -S . -DIMCAT_SANITIZE="address;undefined" >/dev/null
  cmake --build build-asan -j "$jobs"
  (cd build-asan && ctest --output-on-failure -j "$jobs")
  echo "=== sanitized checkpoint durability sweep ==="
  (cd build-asan && ctest --output-on-failure -R 'CheckpointTest')
fi

if [[ "$run_tsan" == 1 ]]; then
  # ThreadSanitizer slows execution ~5-15x; the per-test TIMEOUT
  # properties in tests/CMakeLists.txt are sized for this. halt_on_error
  # makes the first race fail the test immediately instead of letting a
  # corrupted schedule mask later reports.
  echo "=== thread-sanitized build (thread) ==="
  cmake -B build-tsan -S . -DIMCAT_SANITIZE="thread" >/dev/null
  cmake --build build-tsan -j "$jobs"
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      ctest --output-on-failure -j "$jobs")
  echo "=== concurrency stress suites under TSan (ctest -L 'race|chaos') ==="
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      ctest -L 'race|chaos' --output-on-failure)
fi

if [[ "$run_chaos" == 1 ]]; then
  # Chaos suites drive the FaultInjector under concurrency; run them
  # label-selected with a hard per-test timeout so a hang (a lost wakeup,
  # a stuck future) fails loudly instead of wedging CI.
  echo "=== chaos suites (ctest -L chaos) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  (cd build && ctest -L chaos --output-on-failure --repeat until-pass:1 \
      --timeout 120)
fi

if [[ "$run_fuzz" == 1 ]]; then
  # The ingestion corruption-fuzz sweep (ctest -L fuzz) mutates and
  # truncates every byte offset of a valid TSV pair; it must run under
  # ASan/UBSan so that "never crashes, never trips a sanitizer" is what
  # the pass actually proves. A timeout turns a parser hang into a failure.
  echo "=== ingestion fuzz sweep under ASan/UBSan (ctest -L fuzz) ==="
  cmake -B build-asan -S . -DIMCAT_SANITIZE="address;undefined" >/dev/null
  cmake --build build-asan -j "$jobs"
  (cd build-asan && ctest -L fuzz --output-on-failure --timeout 300)
fi

echo "All checks passed."
