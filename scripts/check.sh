#!/usr/bin/env bash
# Full verification sweep: build and run the test suite twice —
#   1. plain Release (the tier-1 configuration), and
#   2. instrumented with AddressSanitizer + UBSan (IMCAT_SANITIZE).
# Usage:
#   scripts/check.sh            # both passes
#   scripts/check.sh --plain    # tier-1 only
#   scripts/check.sh --sanitize # sanitized only
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)

run_plain=1
run_sanitized=1
case "${1:-}" in
  --plain)    run_sanitized=0 ;;
  --sanitize) run_plain=0 ;;
  "") ;;
  *) echo "usage: $0 [--plain|--sanitize]" >&2; exit 2 ;;
esac

if [[ "$run_plain" == 1 ]]; then
  echo "=== plain build (tier-1) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")
fi

if [[ "$run_sanitized" == 1 ]]; then
  echo "=== sanitized build (address;undefined) ==="
  cmake -B build-asan -S . -DIMCAT_SANITIZE="address;undefined" >/dev/null
  cmake --build build-asan -j "$jobs"
  (cd build-asan && ctest --output-on-failure -j "$jobs")
fi

echo "All checks passed."
