#!/usr/bin/env bash
# Full verification sweep: build and run the test suite twice —
#   1. plain Release (the tier-1 configuration), and
#   2. instrumented with AddressSanitizer + UBSan (IMCAT_SANITIZE).
# The sanitized pass also re-runs the checkpoint durability suite
# explicitly (v1 read-compat, truncation and bit-flip sweeps), so storage
# corruption handling is always exercised under ASan/UBSan even if the
# main sweep is filtered down.
# Usage:
#   scripts/check.sh            # both passes
#   scripts/check.sh --plain    # tier-1 only
#   scripts/check.sh --sanitize # sanitized only
#   scripts/check.sh --chaos    # fault-injection + serving chaos suites
#   scripts/check.sh --fuzz     # ingestion corruption-fuzz sweep (sanitized)
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)

run_plain=1
run_sanitized=1
run_chaos=0
run_fuzz=0
case "${1:-}" in
  --plain)    run_sanitized=0 ;;
  --sanitize) run_plain=0 ;;
  --chaos)    run_plain=0; run_sanitized=0; run_chaos=1 ;;
  --fuzz)     run_plain=0; run_sanitized=0; run_fuzz=1 ;;
  "") ;;
  *) echo "usage: $0 [--plain|--sanitize|--chaos|--fuzz]" >&2; exit 2 ;;
esac

if [[ "$run_plain" == 1 ]]; then
  echo "=== plain build (tier-1) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")
fi

if [[ "$run_sanitized" == 1 ]]; then
  echo "=== sanitized build (address;undefined) ==="
  cmake -B build-asan -S . -DIMCAT_SANITIZE="address;undefined" >/dev/null
  cmake --build build-asan -j "$jobs"
  (cd build-asan && ctest --output-on-failure -j "$jobs")
  echo "=== sanitized checkpoint durability sweep ==="
  (cd build-asan && ctest --output-on-failure -R 'CheckpointTest')
fi

if [[ "$run_chaos" == 1 ]]; then
  # Chaos suites drive the FaultInjector under concurrency; run them
  # label-selected with a hard per-test timeout so a hang (a lost wakeup,
  # a stuck future) fails loudly instead of wedging CI.
  echo "=== chaos suites (ctest -L chaos) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  (cd build && ctest -L chaos --output-on-failure --repeat until-pass:1 \
      --timeout 120)
fi

if [[ "$run_fuzz" == 1 ]]; then
  # The ingestion corruption-fuzz sweep (ctest -L fuzz) mutates and
  # truncates every byte offset of a valid TSV pair; it must run under
  # ASan/UBSan so that "never crashes, never trips a sanitizer" is what
  # the pass actually proves. A timeout turns a parser hang into a failure.
  echo "=== ingestion fuzz sweep under ASan/UBSan (ctest -L fuzz) ==="
  cmake -B build-asan -S . -DIMCAT_SANITIZE="address;undefined" >/dev/null
  cmake --build build-asan -j "$jobs"
  (cd build-asan && ctest -L fuzz --output-on-failure --timeout 300)
fi

echo "All checks passed."
