#!/usr/bin/env bash
# Full verification sweep: build and run the test suite across the
# sanitizer matrix —
#   1. plain Release (the tier-1 configuration),
#   2. AddressSanitizer + UBSan (memory/UB bugs), and
#   3. ThreadSanitizer (data races, lock-order inversions).
# The ASan pass also re-runs the checkpoint durability suite explicitly
# (v1 read-compat, truncation and bit-flip sweeps), so storage corruption
# handling is always exercised under ASan/UBSan even if the main sweep is
# filtered down. The TSan pass re-runs the concurrency stress suites
# (ctest -L race, -L chaos) explicitly: those tests exist to generate racy
# schedules for TSan to observe, so "zero TSan reports" is what the pass
# proves.
# Usage:
#   scripts/check.sh            # full matrix: plain + asan/ubsan + tsan
#   scripts/check.sh --plain    # tier-1 only
#   scripts/check.sh --sanitize # asan/ubsan leg only
#   scripts/check.sh --tsan     # tsan leg only (full suite + race/chaos)
#   scripts/check.sh --chaos    # fault-injection + serving chaos suites
#   scripts/check.sh --overload # overload/brownout suite (plain + TSan)
#   scripts/check.sh --kernel   # batched-scoring suite (plain + TSan)
#   scripts/check.sh --store    # snapshot-store durability suite (plain + ASan)
#   scripts/check.sh --fuzz     # ingestion corruption-fuzz sweep (sanitized)
#   scripts/check.sh --docs     # docs link check + bench artifact schemas
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)

run_plain=1
run_sanitized=1
run_tsan=1
run_chaos=0
run_overload=0
run_kernel=0
run_store=0
run_fuzz=0
run_docs=0
case "${1:-}" in
  --plain)    run_sanitized=0; run_tsan=0; run_docs=1 ;;
  --sanitize) run_plain=0; run_tsan=0 ;;
  --tsan)     run_plain=0; run_sanitized=0 ;;
  --chaos)    run_plain=0; run_sanitized=0; run_tsan=0; run_chaos=1 ;;
  --overload) run_plain=0; run_sanitized=0; run_tsan=0; run_overload=1 ;;
  --kernel)   run_plain=0; run_sanitized=0; run_tsan=0; run_kernel=1 ;;
  --store)    run_plain=0; run_sanitized=0; run_tsan=0; run_store=1 ;;
  --fuzz)     run_plain=0; run_sanitized=0; run_tsan=0; run_fuzz=1 ;;
  --docs)     run_plain=0; run_sanitized=0; run_tsan=0; run_docs=1 ;;
  "") run_docs=1 ;;
  *) echo "usage: $0 [--plain|--sanitize|--tsan|--chaos|--overload|--kernel|--fuzz|--docs|--store]" >&2
     exit 2 ;;
esac

check_docs() {
  # Every repo path a doc mentions must exist: docs that point at files
  # which were renamed away are worse than no docs. Extract tokens that
  # look like repo paths (src/..., tests/..., bench/..., examples/...,
  # scripts/..., docs/...), expand foo.{h,cc} shorthand, skip anything
  # under build*/ and glob patterns, and fail on the first dangling path.
  echo "=== docs check: repo paths referenced by docs must exist ==="
  local docs=(README.md DESIGN.md ROADMAP.md EXPERIMENTS.md)
  local extra
  for extra in docs/*.md; do
    [[ -f "$extra" ]] && docs+=("$extra")
  done
  local status=0 doc path expanded
  for doc in "${docs[@]}"; do
    [[ -f "$doc" ]] || { echo "missing doc: $doc" >&2; status=1; continue; }
    while IFS= read -r path; do
      [[ "$path" == *'*'* ]] && continue  # glob example, not a real path
      if [[ "$path" == *'{'* ]]; then
        # Expand brace shorthand like src/obs/metrics.{h,cc}.
        for expanded in $(eval echo "$path"); do
          if [[ ! -e "$expanded" ]]; then
            echo "DANGLING: $doc references $expanded" >&2
            status=1
          fi
        done
      elif [[ ! -e "$path" && ! -e "$path.cc" ]]; then
        # `$path.cc` accepts target shorthand: docs may name a built
        # binary (`bench/fig5_intents`) whose source is `<path>.cc`.
        echo "DANGLING: $doc references $path" >&2
        status=1
      fi
    done < <(grep -oE '(^|[^A-Za-z0-9_/.-])(src|tests|bench|examples|scripts|docs)/[A-Za-z0-9_./{,}*-]+' "$doc" \
             | sed 's/^[^a-z]//; s/[.,;:)]*$//' | sort -u)
  done
  if [[ "$status" != 0 ]]; then
    echo "docs check FAILED: fix the dangling references above." >&2
    exit 1
  fi
  echo "docs check passed."
}

check_bench_serving() {
  # The serving-bench artifact (bench/load_gen output) is committed; its
  # schema, per-point accounting identity, no-metastable-collapse and
  # coalescing-contrast criteria must keep holding for the numbers the
  # docs cite.
  echo "=== BENCH_serving.json schema + acceptance check ==="
  if [[ -f BENCH_serving.json ]]; then
    python3 scripts/validate_bench_serving.py BENCH_serving.json
  else
    echo "BENCH_serving.json missing: run build/bench/load_gen" >&2
    exit 1
  fi
}

check_bench_eval() {
  # Same contract for the offline-eval artifact (bench/eval_throughput
  # output): schema, universal bit-identity across the batch x thread
  # sweep, and the batched-kernel / parallel speedups the docs cite.
  echo "=== BENCH_eval.json schema + acceptance check ==="
  if [[ -f BENCH_eval.json ]]; then
    python3 scripts/validate_bench_eval.py BENCH_eval.json
  else
    echo "BENCH_eval.json missing: run build/bench/eval_throughput" >&2
    exit 1
  fi
}

if [[ "$run_docs" == 1 ]]; then
  check_docs
  check_bench_serving
  check_bench_eval
fi

if [[ "$run_plain" == 1 ]]; then
  echo "=== plain build (tier-1) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")
fi

if [[ "$run_sanitized" == 1 ]]; then
  echo "=== sanitized build (address;undefined) ==="
  cmake -B build-asan -S . -DIMCAT_SANITIZE="address;undefined" >/dev/null
  cmake --build build-asan -j "$jobs"
  (cd build-asan && ctest --output-on-failure -j "$jobs")
  echo "=== sanitized checkpoint durability sweep ==="
  (cd build-asan && ctest --output-on-failure -R 'CheckpointTest')
  echo "=== sanitized per-shard corruption sweep (ctest -L shard_fault) ==="
  # The sharded-snapshot fault suite (per-shard bit flips, truncation,
  # injected read faults, quarantined serving) must stay ASan/UBSan-clean:
  # corrupt shards exercise exactly the buffer-boundary paths ASan guards.
  (cd build-asan && ctest -L shard_fault --output-on-failure --timeout 300)
  echo "=== sanitized delta-publish fault sweep (ctest -L delta_fault) ==="
  # Same reasoning for the delta-snapshot chaos suite: corrupt/truncated
  # delta files and mid-chain rejections walk the delta reader's boundary
  # checks, which is ASan/UBSan's home turf.
  (cd build-asan && ctest -L delta_fault --output-on-failure --timeout 300)
  echo "=== sanitized snapshot-store durability sweep (ctest -L store_fault) ==="
  # The snapshot-store suite includes the kill-at-every-step crash-point
  # sweep over publish -> manifest -> GC: every interleaving replays the
  # recovery scan over partially-deleted directories, exactly the
  # filename/manifest parsing paths ASan/UBSan should watch.
  (cd build-asan && ctest -L store_fault --output-on-failure --timeout 300)
  echo "=== sanitized batched-scoring sweep (ctest -L kernel) ==="
  # The batched kernel and the coalescing drain juggle raw row pointers,
  # stride arithmetic and shared queues; the batch-identity sweep and the
  # batched accounting chaos test must stay ASan/UBSan-clean.
  (cd build-asan && ctest -L kernel --output-on-failure --timeout 300)
fi

if [[ "$run_tsan" == 1 ]]; then
  # ThreadSanitizer slows execution ~5-15x; the per-test TIMEOUT
  # properties in tests/CMakeLists.txt are sized for this. halt_on_error
  # makes the first race fail the test immediately instead of letting a
  # corrupted schedule mask later reports.
  echo "=== thread-sanitized build (thread) ==="
  cmake -B build-tsan -S . -DIMCAT_SANITIZE="thread" >/dev/null
  cmake --build build-tsan -j "$jobs"
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      ctest --output-on-failure -j "$jobs")
  echo "=== concurrency stress suites under TSan (ctest -L 'race|chaos') ==="
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      ctest -L 'race|chaos' --output-on-failure)
fi

if [[ "$run_chaos" == 1 ]]; then
  # Chaos suites drive the FaultInjector under concurrency; run them
  # label-selected with a hard per-test timeout so a hang (a lost wakeup,
  # a stuck future) fails loudly instead of wedging CI.
  echo "=== chaos suites (ctest -L 'chaos|shard_fault|delta_fault|store_fault') ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  (cd build && ctest -L 'chaos|shard_fault|delta_fault|store_fault' \
      --output-on-failure --repeat until-pass:1 --timeout 120)
fi

if [[ "$run_overload" == 1 ]]; then
  # The overload/brownout suite proves the admission-control invariants
  # (CoDel declare/clear, ladder determinism across thread counts, the
  # 10-outcome accounting identity under overload chaos) twice: once on
  # the plain build for exact behaviour, once under TSan because every
  # invariant is enforced across racing client/worker/publisher threads.
  echo "=== overload suite, plain build (ctest -L overload) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  (cd build && ctest -L overload --output-on-failure --timeout 240)
  echo "=== overload suite under TSan (ctest -L overload) ==="
  cmake -B build-tsan -S . -DIMCAT_SANITIZE="thread" >/dev/null
  cmake --build build-tsan -j "$jobs"
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      ctest -L overload --output-on-failure --timeout 240)
fi

if [[ "$run_kernel" == 1 ]]; then
  # The batched-scoring suite proves the two batching contracts twice:
  # plain for exact bit-identity (kernel vs scalar loop, TopKBatch vs
  # scalar TopK, batched Evaluate vs per-user), then under TSan because
  # request coalescing moves queue ownership across submitter, drain
  # tickets and cancel callbacks — exactly where a lost wakeup or a torn
  # dequeue would hide. The overload suite rides along: batching must not
  # disturb the admission-control invariants it pins.
  echo "=== batched-scoring suite, plain build (ctest -L 'kernel|overload') ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  (cd build && ctest -L 'kernel|overload' --output-on-failure --timeout 240)
  echo "=== batched-scoring suite under TSan (ctest -L 'kernel|overload') ==="
  cmake -B build-tsan -S . -DIMCAT_SANITIZE="thread" >/dev/null
  cmake --build build-tsan -j "$jobs"
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      ctest -L 'kernel|overload' --output-on-failure --timeout 240)
fi

if [[ "$run_store" == 1 ]]; then
  # The snapshot-store durability suite (startup recovery, chain-aware
  # retention GC, the kill-at-every-step publish sweep, ENOSPC/fsync
  # faults) runs twice: plain for exact recovery accounting, then under
  # ASan/UBSan because recovery parses attacker-adjacent inputs — torn
  # manifests, truncated artifacts, mis-labeled filenames.
  echo "=== snapshot-store suite, plain build (ctest -L store_fault) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  (cd build && ctest -L store_fault --output-on-failure --timeout 240)
  echo "=== snapshot-store suite under ASan/UBSan (ctest -L store_fault) ==="
  cmake -B build-asan -S . -DIMCAT_SANITIZE="address;undefined" >/dev/null
  cmake --build build-asan -j "$jobs"
  (cd build-asan && ctest -L store_fault --output-on-failure --timeout 300)
fi

if [[ "$run_fuzz" == 1 ]]; then
  # The ingestion corruption-fuzz sweep (ctest -L fuzz) mutates and
  # truncates every byte offset of a valid TSV pair; it must run under
  # ASan/UBSan so that "never crashes, never trips a sanitizer" is what
  # the pass actually proves. A timeout turns a parser hang into a failure.
  echo "=== ingestion fuzz sweep under ASan/UBSan (ctest -L fuzz) ==="
  cmake -B build-asan -S . -DIMCAT_SANITIZE="address;undefined" >/dev/null
  cmake --build build-asan -j "$jobs"
  (cd build-asan && ctest -L fuzz --output-on-failure --timeout 300)
fi

echo "All checks passed."
