#!/usr/bin/env python3
"""Validates BENCH_eval.json (emitted by bench/eval_throughput).

Checks, in order:
  1. schema tag and structural shape (config, serial reference, runs
     covering the batch-size x thread-count sweep);
  2. the bit-identity contract: every run — any batch size, any thread
     count — must report bit_identical true against the serial per-user
     reference (the same invariant tests/batch_test.cc pins on live
     EvalResults, re-checked offline on the published artifact);
  3. the batching win: the best serial (threads 0) batched run must beat
     the serial per-user reference — the blocked kernel exists to make
     offline evaluation cheaper, not just different;
  4. the parallel win, scaled to the host the artifact was generated on
     (config.host_cores): on a multi-core host the best multi-threaded run
     must beat the serial reference by a real margin; on a single-core
     host parallelism cannot pay, so the criterion degrades to "the pool
     path does not regress below the serial reference by more than the
     bounded dispatch overhead".

Usage: validate_bench_eval.py [path]      (default BENCH_eval.json)
Exit 0 when valid, 1 with a message per violation otherwise.
"""
import json
import sys

SCHEMA = "imcat-bench-eval/1"
RUN_KEYS = ["threads", "batch_users", "median_sec", "speedup",
            "bit_identical"]
# The serial batched win is asserted leniently: the kernel's advantage is
# cache-residency and chain ILP, which on a noisy shared runner can thin
# out — but the batched path must never be a real regression.
MIN_SERIAL_BATCH_SPEEDUP = 0.95
MIN_PARALLEL_SPEEDUP = 1.5
# On one core the pool can only add overhead; the best parallel run must
# still stay within this factor of the serial reference (in practice it
# wins anyway, because it rides the batched kernel).
MIN_PARALLEL_SPEEDUP_SINGLE_CORE = 0.85


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_eval.json"
    errors = []

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"validate_bench_eval: cannot read {path}: {e}",
              file=sys.stderr)
        return 1

    def check(cond, message):
        if not cond:
            errors.append(message)

    check(doc.get("schema") == SCHEMA,
          f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    config = doc.get("config", {})
    for key in ("dataset", "users", "items", "test_users", "top_n", "reps",
                "host_cores"):
        check(key in config, f"config.{key} missing")
    serial_sec = doc.get("serial_sec", 0)
    check(isinstance(serial_sec, (int, float)) and serial_sec > 0,
          "serial_sec must be > 0")

    runs = doc.get("runs", [])
    check(len(runs) >= 6,
          f"want >= 6 sweep runs (batch sizes x thread counts), "
          f"got {len(runs)}")
    batch_sizes = set()
    thread_counts = set()
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        for key in RUN_KEYS:
            check(key in run, f"{where}.{key} missing")
        check(run.get("median_sec", 0) > 0, f"{where}.median_sec must be > 0")
        # The identity is non-negotiable: a fast-but-different Evaluate is
        # a broken Evaluate.
        check(run.get("bit_identical") is True,
              f"{where} (threads {run.get('threads')}, batch "
              f"{run.get('batch_users')}): bit_identical is not true")
        batch_sizes.add(run.get("batch_users"))
        thread_counts.add(run.get("threads"))

    check(any(b > 1 for b in batch_sizes if isinstance(b, int)),
          f"no batched run (batch_users > 1) in sweep: {sorted(batch_sizes)}")
    check(any(t >= 2 for t in thread_counts if isinstance(t, int)),
          f"no multi-threaded run in sweep: {sorted(thread_counts)}")

    if not errors:
        serial_batched = [r for r in runs
                          if r["threads"] == 0 and r["batch_users"] > 1]
        check(bool(serial_batched),
              "no serial (threads 0) batched run to prove the kernel win")
        if serial_batched:
            best = max(serial_batched, key=lambda r: r["speedup"])
            check(best["speedup"] >= MIN_SERIAL_BATCH_SPEEDUP,
                  f"best serial batched speedup {best['speedup']:.2f}x "
                  f"(batch {best['batch_users']}) below "
                  f"{MIN_SERIAL_BATCH_SPEEDUP}x: batching regressed the "
                  "serial path")
        parallel = [r for r in runs if r["threads"] >= 2]
        if parallel:
            best = max(parallel, key=lambda r: r["speedup"])
            cores = config.get("host_cores", 1)
            floor = (MIN_PARALLEL_SPEEDUP if cores >= 2
                     else MIN_PARALLEL_SPEEDUP_SINGLE_CORE)
            check(best["speedup"] >= floor,
                  f"best parallel speedup {best['speedup']:.2f}x (threads "
                  f"{best['threads']}, batch {best['batch_users']}) below "
                  f"{floor}x (host_cores {cores})")

    if errors:
        for message in errors:
            print(f"validate_bench_eval: {message}", file=sys.stderr)
        print(f"validate_bench_eval: FAILED ({len(errors)} violations)",
              file=sys.stderr)
        return 1
    print(f"validate_bench_eval: {path} ok ({len(runs)} runs, serial "
          f"{serial_sec:.3f} s, batches {sorted(batch_sizes)}, threads "
          f"{sorted(thread_counts)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
