#!/usr/bin/env python3
"""Validates BENCH_serving.json (emitted by bench/load_gen).

Checks, in order:
  1. schema tag and structural shape (config, capacity, 2 modes x 5
     sweep points, full 10-outcome taxonomy per point);
  2. the exact accounting identity per sweep point:
     sent == requests_total == sum(outcomes) — the same invariant the
     overload chaos suite asserts on live counters, re-checked offline
     on the published artifact;
  3. the no-metastable-collapse acceptance criteria on the controller
     sweep: goodput at the highest offered load stays within 80% of the
     peak goodput, and accepted-request p99 stays within each priority
     class's deadline (x1.2 grace: client-observed latency includes
     harvester scheduling noise on a loaded single-core runner);
  4. the contrast: the baseline (controller disabled) must actually
     collapse — its goodput fraction at the highest load below half the
     controller's;
  5. when the optional controller_nobatch mode is present (controller on,
     request coalescing off), the batched controller must not lose to it:
     goodput at the top sweep point within 10% of the unbatched run's
     (batching exists to help at saturation, and must never hurt).

Usage: validate_bench_serving.py [path]      (default BENCH_serving.json)
Exit 0 when valid, 1 with a message per violation otherwise.
"""
import json
import sys

SCHEMA = "imcat-bench-serving/1"
OUTCOME_KEYS = [
    "ok", "degraded", "partial_degraded", "shed", "shed_queue_delay",
    "shed_predicted_late", "deadline_exceeded", "invalid", "error",
    "cancelled",
]
RUN_KEYS = [
    "mode", "qps_multiplier", "offered_qps", "sent", "requests_total",
    "outcomes", "goodput_qps", "goodput_fraction", "shed_rate",
    "accepted_p50_ms", "accepted_p95_ms", "accepted_p99_ms",
    "accepted_interactive_p99_ms", "accepted_batch_p99_ms",
    "max_brownout_level", "brownout_transitions", "reloads",
]
P99_GRACE = 1.2


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_serving.json"
    errors = []

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"validate_bench_serving: cannot read {path}: {e}",
              file=sys.stderr)
        return 1

    def check(cond, message):
        if not cond:
            errors.append(message)

    check(doc.get("schema") == SCHEMA,
          f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    config = doc.get("config", {})
    for key in ("interactive_deadline_ms", "batch_deadline_ms",
                "queue_capacity", "run_seconds"):
        check(key in config, f"config.{key} missing")
    check(doc.get("capacity_qps", 0) > 0, "capacity_qps must be > 0")

    sweep = doc.get("sweep", [])
    # controller_nobatch is optional: artifacts predating request
    # coalescing carry only the two original modes.
    by_mode = {"controller": [], "controller_nobatch": [], "baseline": []}
    for i, run in enumerate(sweep):
        where = f"sweep[{i}]"
        for key in RUN_KEYS:
            check(key in run, f"{where}.{key} missing")
        outcomes = run.get("outcomes", {})
        check(sorted(outcomes.keys()) == sorted(OUTCOME_KEYS),
              f"{where}.outcomes keys {sorted(outcomes.keys())} != "
              f"{sorted(OUTCOME_KEYS)}")
        # The exact identity, offline: every submitted request landed in
        # exactly one outcome bucket.
        total = run.get("requests_total", -1)
        check(run.get("sent") == total,
              f"{where}: sent {run.get('sent')} != requests_total {total}")
        check(sum(outcomes.values()) == total,
              f"{where}: outcome sum {sum(outcomes.values())} != "
              f"requests_total {total}")
        if run.get("mode") in by_mode:
            by_mode[run["mode"]].append(run)
        else:
            errors.append(f"{where}: unknown mode {run.get('mode')!r}")

    for mode, runs in by_mode.items():
        if mode == "controller_nobatch" and not runs:
            continue  # Optional mode, absent in pre-coalescing artifacts.
        check(len(runs) >= 4, f"mode {mode}: want >= 4 sweep points, "
                              f"got {len(runs)}")

    if not errors and by_mode["controller"] and by_mode["baseline"]:
        controller = sorted(by_mode["controller"],
                            key=lambda r: r["qps_multiplier"])
        baseline = sorted(by_mode["baseline"],
                          key=lambda r: r["qps_multiplier"])
        top = controller[-1]
        check(top["qps_multiplier"] >= 2.0,
              f"controller sweep tops out at x{top['qps_multiplier']}, "
              "want >= x2 capacity")

        # No metastable collapse: pushing offered load to 2x capacity must
        # not destroy the goodput the service had at its best point.
        peak = max(r["goodput_qps"] for r in controller)
        check(top["goodput_qps"] >= 0.8 * peak,
              f"controller goodput at x{top['qps_multiplier']} is "
              f"{top['goodput_qps']:.0f} qps, below 80% of peak "
              f"{peak:.0f} qps: metastable collapse")

        # Accepted traffic stays within its deadline class even at 2x.
        idl = config.get("interactive_deadline_ms", 0)
        bdl = config.get("batch_deadline_ms", 0)
        check(top["accepted_interactive_p99_ms"] <= P99_GRACE * idl,
              f"controller interactive p99 {top['accepted_interactive_p99_ms']}"
              f" ms exceeds {P99_GRACE}x deadline {idl} ms at "
              f"x{top['qps_multiplier']}")
        check(top["accepted_batch_p99_ms"] <= P99_GRACE * bdl,
              f"controller batch p99 {top['accepted_batch_p99_ms']} ms "
              f"exceeds {P99_GRACE}x deadline {bdl} ms at "
              f"x{top['qps_multiplier']}")

        # And the baseline really does collapse without the controller —
        # otherwise the sweep proves nothing.
        base_top = baseline[-1]
        check(base_top["goodput_fraction"] <
                  0.5 * max(top["goodput_fraction"], 1e-9),
              f"baseline goodput fraction {base_top['goodput_fraction']:.2f} "
              f"at x{base_top['qps_multiplier']} is not < half the "
              f"controller's {top['goodput_fraction']:.2f}: no contrast")

        # Coalescing contrast (only when the mode was swept): the batched
        # controller must be at least on par with the unbatched one at the
        # top sweep point. The margin is lenient — on a loaded runner both
        # shed most of a 2x overload and the residual goodput is noisy —
        # but a batched run that *loses* badly means the coalescing path
        # regressed.
        if by_mode["controller_nobatch"]:
            nobatch = sorted(by_mode["controller_nobatch"],
                             key=lambda r: r["qps_multiplier"])
            nb_top = nobatch[-1]
            check(top["goodput_qps"] >= 0.9 * nb_top["goodput_qps"],
                  f"batched controller goodput {top['goodput_qps']:.0f} qps "
                  f"at x{top['qps_multiplier']} fell more than 10% below "
                  f"the unbatched controller's {nb_top['goodput_qps']:.0f}: "
                  "coalescing regression")

    if errors:
        for message in errors:
            print(f"validate_bench_serving: {message}", file=sys.stderr)
        print(f"validate_bench_serving: FAILED ({len(errors)} violations)",
              file=sys.stderr)
        return 1
    print(f"validate_bench_serving: {path} ok "
          f"({len(sweep)} sweep points, capacity "
          f"{doc['capacity_qps']:.0f} qps)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
