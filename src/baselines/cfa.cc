#include "baselines/cfa.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace imcat {

Cfa::Cfa(const Dataset& dataset, const DataSplit& split,
         const AdamOptions& adam, int64_t batch_size, int64_t embedding_dim,
         uint64_t seed)
    : FactorModelBase("CFA", dataset, split, adam, batch_size, embedding_dim),
      user_profiles_(BuildUserTagProfiles(dataset, split.train)) {
  Rng rng(seed);
  const int64_t hidden = 2 * embedding_dim;
  encoder_w1_ = XavierUniform(dataset.num_tags, hidden, &rng);
  encoder_b1_ = ZerosParameter(1, hidden);
  encoder_w2_ = XavierUniform(hidden, embedding_dim, &rng);
  encoder_b2_ = ZerosParameter(1, embedding_dim);
  item_table_ = XavierUniform(dataset.num_items, embedding_dim, &rng,
                              /*treat_as_embedding=*/true);
  RegisterParameters(
      {encoder_w1_, encoder_b1_, encoder_w2_, encoder_b2_, item_table_});
}

Tensor Cfa::EncodeUsers() const {
  Tensor hidden = ops::Sigmoid(ops::AddRowBroadcast(
      ops::SpMM(user_profiles_, encoder_w1_), encoder_b1_));
  return ops::AddRowBroadcast(ops::MatMul(hidden, encoder_w2_), encoder_b2_);
}

Tensor Cfa::BuildLoss(const TripletBatch& batch, Rng* rng) {
  (void)rng;
  Tensor users = ops::Gather(EncodeUsers(), batch.anchors);
  Tensor pos = ops::Gather(item_table_, batch.positives);
  Tensor neg = ops::Gather(item_table_, batch.negatives);
  return BprLossFromScores(ops::RowSum(ops::Mul(users, pos)),
                           ops::RowSum(ops::Mul(users, neg)));
}

void Cfa::ComputeEvalFactors(std::vector<float>* user_factors,
                             std::vector<float>* item_factors) const {
  Tensor users = EncodeUsers();
  user_factors->assign(users.data(), users.data() + users.size());
  item_factors->assign(item_table_.data(),
                       item_table_.data() + item_table_.size());
}

}  // namespace imcat
