#ifndef IMCAT_BASELINES_CFA_H_
#define IMCAT_BASELINES_CFA_H_

#include "baselines/factor_model.h"
#include "baselines/tag_profiles.h"

/// \file cfa.h
/// CFA [4]: tag-aware recommendation with an autoencoder-style encoder.
/// The original stacks a sparse autoencoder over tag-based user profiles
/// and applies user-based CF on the latent codes. We keep the architecture
/// (tag profile -> nonlinear encoder -> latent user representation) and
/// train the latent space discriminatively with a BPR ranking loss against
/// a learned item table — the standard adaptation for top-N evaluation.

namespace imcat {

class Cfa : public FactorModelBase {
 public:
  Cfa(const Dataset& dataset, const DataSplit& split, const AdamOptions& adam,
      int64_t batch_size, int64_t embedding_dim, uint64_t seed);

 protected:
  Tensor BuildLoss(const TripletBatch& batch, Rng* rng) override;
  void ComputeEvalFactors(std::vector<float>* user_factors,
                          std::vector<float>* item_factors) const override;

 private:
  /// Encodes all user profiles: sigmoid(P W1 + b1) W2 + b2, (U x d).
  Tensor EncodeUsers() const;

  SparseMatrix user_profiles_;  ///< (U x T), row-normalised tag frequencies.
  Tensor encoder_w1_;           ///< (T x h).
  Tensor encoder_b1_;           ///< (1 x h).
  Tensor encoder_w2_;           ///< (h x d).
  Tensor encoder_b2_;           ///< (1 x d).
  Tensor item_table_;           ///< (V x d).
};

}  // namespace imcat

#endif  // IMCAT_BASELINES_CFA_H_
