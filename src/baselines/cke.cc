#include "baselines/cke.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace imcat {

Cke::Cke(const Dataset& dataset, const DataSplit& split,
         const AdamOptions& adam, int64_t batch_size, int64_t embedding_dim,
         uint64_t seed, float kg_weight)
    : FactorModelBase("CKE", dataset, split, adam, batch_size, embedding_dim),
      kg_weight_(kg_weight),
      kg_sampler_(dataset.num_items, dataset.num_tags, dataset.item_tags) {
  Rng rng(seed);
  user_table_ = XavierUniform(dataset.num_users, embedding_dim, &rng, true);
  item_table_ = XavierUniform(dataset.num_items, embedding_dim, &rng, true);
  tag_table_ = XavierUniform(dataset.num_tags, embedding_dim, &rng, true);
  relation_ = RandomNormal(1, embedding_dim, &rng, 0.0f, 0.1f);
  relation_proj_ = XavierUniform(embedding_dim, embedding_dim, &rng);
  RegisterParameters(
      {user_table_, item_table_, tag_table_, relation_, relation_proj_});
}

Tensor Cke::TransRScore(const std::vector<int64_t>& items,
                        const std::vector<int64_t>& tags) const {
  Tensor v = ops::MatMul(ops::Gather(item_table_, items), relation_proj_);
  Tensor t = ops::MatMul(ops::Gather(tag_table_, tags), relation_proj_);
  Tensor translated = ops::AddRowBroadcast(v, relation_);
  Tensor diff = ops::Sub(translated, t);
  return ops::ScalarMul(ops::RowSum(ops::Mul(diff, diff)), -1.0f);
}

Tensor Cke::BuildLoss(const TripletBatch& batch, Rng* rng) {
  Tensor users = ops::Gather(user_table_, batch.anchors);
  Tensor pos = ops::Gather(item_table_, batch.positives);
  Tensor neg = ops::Gather(item_table_, batch.negatives);
  Tensor cf = BprLossFromScores(ops::RowSum(ops::Mul(users, pos)),
                                ops::RowSum(ops::Mul(users, neg)));

  TripletBatch kg;
  kg_sampler_.SampleBatch(batch_size(), rng, &kg);
  Tensor kg_loss = BprLossFromScores(TransRScore(kg.anchors, kg.positives),
                                     TransRScore(kg.anchors, kg.negatives));
  return ops::Add(cf, ops::ScalarMul(kg_loss, kg_weight_));
}

void Cke::ComputeEvalFactors(std::vector<float>* user_factors,
                             std::vector<float>* item_factors) const {
  user_factors->assign(user_table_.data(),
                       user_table_.data() + user_table_.size());
  item_factors->assign(item_table_.data(),
                       item_table_.data() + item_table_.size());
}

}  // namespace imcat
