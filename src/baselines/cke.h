#ifndef IMCAT_BASELINES_CKE_H_
#define IMCAT_BASELINES_CKE_H_

#include "baselines/factor_model.h"

/// \file cke.h
/// CKE [11]: collaborative knowledge-base embedding. Collaborative
/// filtering (BPR) is regularised by a TransR structural loss over the
/// knowledge triples. Following the paper's adaptation rule for the
/// tag-enhanced setting (Sec. II-B), (item, has-tag, tag) triples form the
/// knowledge graph; TransR projects items and tags into a relation space
/// with a learned matrix and ranks true triples above corrupted ones by
/// the translation distance -|| v W + r - t W ||^2.

namespace imcat {

class Cke : public FactorModelBase {
 public:
  Cke(const Dataset& dataset, const DataSplit& split, const AdamOptions& adam,
      int64_t batch_size, int64_t embedding_dim, uint64_t seed,
      float kg_weight = 1.0f);

 protected:
  Tensor BuildLoss(const TripletBatch& batch, Rng* rng) override;
  void ComputeEvalFactors(std::vector<float>* user_factors,
                          std::vector<float>* item_factors) const override;

 private:
  /// TransR plausibility -||vW + r - tW||^2 for (item, tag) rows.
  Tensor TransRScore(const std::vector<int64_t>& items,
                     const std::vector<int64_t>& tags) const;

  float kg_weight_;
  TripletSampler kg_sampler_;  ///< (item, tag+, tag-) triples.
  Tensor user_table_;
  Tensor item_table_;
  Tensor tag_table_;
  Tensor relation_;         ///< (1 x d) translation vector of "has-tag".
  Tensor relation_proj_;    ///< (d x d) TransR projection.
};

}  // namespace imcat

#endif  // IMCAT_BASELINES_CKE_H_
