#include "baselines/dspr.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace imcat {

Dspr::Dspr(const Dataset& dataset, const DataSplit& split,
           const AdamOptions& adam, int64_t batch_size, int64_t embedding_dim,
           uint64_t seed)
    : FactorModelBase("DSPR", dataset, split, adam, batch_size, embedding_dim),
      user_profiles_(BuildUserTagProfiles(dataset, split.train)),
      item_profiles_(BuildItemTagProfiles(dataset)) {
  Rng rng(seed);
  const int64_t hidden = 2 * embedding_dim;
  w1_ = XavierUniform(dataset.num_tags, hidden, &rng);
  b1_ = ZerosParameter(1, hidden);
  w2_ = XavierUniform(hidden, embedding_dim, &rng);
  b2_ = ZerosParameter(1, embedding_dim);
  RegisterParameters({w1_, b1_, w2_, b2_});
}

Tensor Dspr::Encode(const SparseMatrix& profiles) const {
  Tensor hidden =
      ops::Tanh(ops::AddRowBroadcast(ops::SpMM(profiles, w1_), b1_));
  return ops::AddRowBroadcast(ops::MatMul(hidden, w2_), b2_);
}

Tensor Dspr::BuildLoss(const TripletBatch& batch, Rng* rng) {
  (void)rng;
  Tensor users = ops::Gather(Encode(user_profiles_), batch.anchors);
  Tensor items = Encode(item_profiles_);
  Tensor pos = ops::Gather(items, batch.positives);
  Tensor neg = ops::Gather(items, batch.negatives);
  return BprLossFromScores(ops::RowSum(ops::Mul(users, pos)),
                           ops::RowSum(ops::Mul(users, neg)));
}

void Dspr::ComputeEvalFactors(std::vector<float>* user_factors,
                              std::vector<float>* item_factors) const {
  Tensor users = Encode(user_profiles_);
  Tensor items = Encode(item_profiles_);
  user_factors->assign(users.data(), users.data() + users.size());
  item_factors->assign(items.data(), items.data() + items.size());
}

}  // namespace imcat
