#ifndef IMCAT_BASELINES_DSPR_H_
#define IMCAT_BASELINES_DSPR_H_

#include "baselines/factor_model.h"
#include "baselines/tag_profiles.h"

/// \file dspr.h
/// DSPR [5]: deep-semantic similarity over tag-based profiles. A single
/// MLP with shared parameters maps both the user's tag profile and the
/// item's tag profile into a common latent space, and the similarity of
/// relevant pairs is maximised against sampled negatives. We use the
/// tanh MLP of the original and the pairwise ranking form of the
/// maximum-similarity objective.

namespace imcat {

class Dspr : public FactorModelBase {
 public:
  Dspr(const Dataset& dataset, const DataSplit& split, const AdamOptions& adam,
       int64_t batch_size, int64_t embedding_dim, uint64_t seed);

 protected:
  Tensor BuildLoss(const TripletBatch& batch, Rng* rng) override;
  void ComputeEvalFactors(std::vector<float>* user_factors,
                          std::vector<float>* item_factors) const override;

 private:
  /// Shared encoder: tanh(P W1 + b1) W2 + b2 over a profile matrix.
  Tensor Encode(const SparseMatrix& profiles) const;

  SparseMatrix user_profiles_;  ///< (U x T).
  SparseMatrix item_profiles_;  ///< (V x T).
  Tensor w1_;                   ///< (T x h), shared between user/item sides.
  Tensor b1_;
  Tensor w2_;                   ///< (h x d).
  Tensor b2_;
};

}  // namespace imcat

#endif  // IMCAT_BASELINES_DSPR_H_
