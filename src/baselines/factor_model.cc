#include "baselines/factor_model.h"

#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "tensor/score_kernel.h"
#include "util/check.h"

namespace imcat {

FactorModelBase::FactorModelBase(std::string name, const Dataset& dataset,
                                 const DataSplit& split,
                                 const AdamOptions& adam, int64_t batch_size,
                                 int64_t embedding_dim)
    : name_(std::move(name)),
      num_users_(dataset.num_users),
      num_items_(dataset.num_items),
      dim_(embedding_dim),
      batch_size_(batch_size),
      sampler_(dataset.num_users, dataset.num_items, split.train),
      optimizer_(adam) {}

void FactorModelBase::RegisterParameters(
    const std::vector<Tensor>& parameters) {
  optimizer_.AddParameters(parameters);
  for (const Tensor& p : parameters) parameters_.push_back(p);
}

double FactorModelBase::TrainStep(Rng* rng) {
  TripletBatch batch;
  sampler_.SampleBatch(batch_size_, rng, &batch, pool_);
  Tensor loss = BuildLoss(batch, rng);
  optimizer_.ZeroGrad();
  Backward(loss);
  optimizer_.Step();
  cache_valid_ = false;
  ++step_;
  return loss.item();
}

int64_t FactorModelBase::StepsPerEpoch() const {
  return (sampler_.num_edges() + batch_size_ - 1) / batch_size_;
}

void FactorModelBase::PrepareScoring() const {
  if (cache_valid_) return;
  ComputeEvalFactors(&user_factors_, &item_factors_);
  IMCAT_CHECK_EQ(static_cast<int64_t>(user_factors_.size()),
                 num_users_ * dim_);
  IMCAT_CHECK_EQ(static_cast<int64_t>(item_factors_.size()),
                 num_items_ * dim_);
  cache_valid_ = true;
}

void FactorModelBase::ScoreItemsForUser(int64_t user,
                                        std::vector<float>* scores) const {
  if (!cache_valid_) PrepareScoring();
  scores->assign(num_items_, 0.0f);
  const float* u = user_factors_.data() + user * dim_;
  for (int64_t v = 0; v < num_items_; ++v) {
    const float* iv = item_factors_.data() + v * dim_;
    float acc = 0.0f;
    for (int64_t c = 0; c < dim_; ++c) acc += u[c] * iv[c];
    (*scores)[v] = acc;
  }
}

void FactorModelBase::ScoreItemsForUsers(const std::vector<int64_t>& users,
                                         std::vector<float>* scores) const {
  if (!cache_valid_) PrepareScoring();
  scores->assign(users.size() * static_cast<size_t>(num_items_), 0.0f);
  std::vector<const float*> user_rows(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    user_rows[i] = user_factors_.data() + users[i] * dim_;
  }
  ScoreAllItemsBlocked(user_rows.data(), static_cast<int64_t>(users.size()),
                       item_factors_.data(), num_items_, dim_,
                       kDefaultScoreBlockItems, scores->data(), num_items_);
}

Tensor BprLossFromScores(const Tensor& positive_scores,
                         const Tensor& negative_scores) {
  Tensor margin = ops::Sub(positive_scores, negative_scores);
  return ops::ScalarMul(ops::Mean(ops::LogSigmoid(margin)), -1.0f);
}

}  // namespace imcat
