#ifndef IMCAT_BASELINES_FACTOR_MODEL_H_
#define IMCAT_BASELINES_FACTOR_MODEL_H_

#include <string>
#include <vector>

#include "data/split.h"
#include "tensor/optimizer.h"
#include "train/sampler.h"
#include "train/trainer.h"

/// \file factor_model.h
/// Shared scaffolding for the comparison baselines. Every baseline in this
/// library ultimately scores a (user, item) pair as the inner product of a
/// user factor and an item factor (possibly after propagation, profile
/// encoding or preference aggregation), so evaluation reduces to one cached
/// factor recomputation per ranking pass.

namespace imcat {

/// Base class handling the BPR triplet sampler, the optimiser, the eval
/// factor cache and the step/epoch bookkeeping. Subclasses implement the
/// loss construction and the forward-only factor computation.
class FactorModelBase : public TrainableModel {
 public:
  FactorModelBase(std::string name, const Dataset& dataset,
                  const DataSplit& split, const AdamOptions& adam,
                  int64_t batch_size, int64_t embedding_dim);

  double TrainStep(Rng* rng) final;
  int64_t StepsPerEpoch() const override;
  void set_thread_pool(ThreadPool* pool) final { pool_ = pool; }
  std::string name() const override { return name_; }
  std::vector<Tensor> Parameters() override { return parameters_; }
  void ScoreItemsForUser(int64_t user,
                         std::vector<float>* scores) const final;
  /// Batched scoring through the blocked multi-user kernel
  /// (tensor/score_kernel.h): bit-identical to the per-user loop, but the
  /// cached item-factor table streams through cache once per batch.
  void ScoreItemsForUsers(const std::vector<int64_t>& users,
                          std::vector<float>* scores) const final;
  /// Recomputes the shared factor cache up front; required before
  /// concurrent ScoreItemsForUser calls.
  void PrepareScoring() const final;

 protected:
  /// Builds the full training loss for one step. `batch` holds the
  /// (u, v+, v-) triplets; subclasses add their auxiliary terms.
  virtual Tensor BuildLoss(const TripletBatch& batch, Rng* rng) = 0;

  /// Computes the current user factors (num_users x dim) and item factors
  /// (num_items x dim), forward-only, into row-major buffers.
  virtual void ComputeEvalFactors(std::vector<float>* user_factors,
                                  std::vector<float>* item_factors) const = 0;

  /// Registers parameters with the optimiser (call from the subclass
  /// constructor).
  void RegisterParameters(const std::vector<Tensor>& parameters);

  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }
  int64_t embedding_dim() const { return dim_; }
  int64_t batch_size() const { return batch_size_; }
  int64_t step_count() const { return step_; }
  const TripletSampler& ui_sampler() const { return sampler_; }

 private:
  std::string name_;
  int64_t num_users_;
  int64_t num_items_;
  int64_t dim_;
  int64_t batch_size_;
  TripletSampler sampler_;
  AdamOptimizer optimizer_;
  std::vector<Tensor> parameters_;
  int64_t step_ = 0;
  ThreadPool* pool_ = nullptr;  ///< Optional parallel-sampling pool.

  mutable bool cache_valid_ = false;
  mutable std::vector<float> user_factors_;
  mutable std::vector<float> item_factors_;
};

/// Convenience: standard BPR loss -mean log sigma(s+ - s-) given pairwise
/// score tensors of shape (B x 1).
Tensor BprLossFromScores(const Tensor& positive_scores,
                         const Tensor& negative_scores);

}  // namespace imcat

#endif  // IMCAT_BASELINES_FACTOR_MODEL_H_
