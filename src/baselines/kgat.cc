#include "baselines/kgat.h"

#include <cmath>
#include <numeric>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace imcat {

Kgat::Kgat(const Dataset& dataset, const DataSplit& split,
           const AdamOptions& adam, int64_t batch_size, int64_t embedding_dim,
           uint64_t seed, int num_layers, float kg_weight)
    : FactorModelBase("KGAT", dataset, split, adam, batch_size, embedding_dim),
      num_layers_(num_layers),
      kg_weight_(kg_weight),
      num_tags_(dataset.num_tags),
      kg_sampler_(dataset.num_items, dataset.num_tags, dataset.item_tags) {
  // Directed edge list over the unified node space, both directions.
  for (const auto& [u, v] : split.train) {
    directed_edges_.emplace_back(u, ItemNode(v));
    edge_relation_.push_back(0);
    directed_edges_.emplace_back(ItemNode(v), u);
    edge_relation_.push_back(0);
  }
  for (const auto& [v, t] : dataset.item_tags) {
    directed_edges_.emplace_back(ItemNode(v), TagNode(t));
    edge_relation_.push_back(1);
    directed_edges_.emplace_back(TagNode(t), ItemNode(v));
    edge_relation_.push_back(1);
  }

  Rng rng(seed);
  const int64_t n = dataset.num_users + dataset.num_items + dataset.num_tags;
  node_table_ = XavierUniform(n, embedding_dim, &rng, true);
  relation_interact_ = RandomNormal(1, embedding_dim, &rng, 0.0f, 0.1f);
  relation_hastag_ = RandomNormal(1, embedding_dim, &rng, 0.0f, 0.1f);
  relation_proj_ = XavierUniform(embedding_dim, embedding_dim, &rng);
  RegisterParameters({node_table_, relation_interact_, relation_hastag_,
                      relation_proj_});
  RefreshAttention();
}

void Kgat::OnEpochBegin(int64_t epoch) {
  if (epoch > 0) RefreshAttention();
}

void Kgat::RefreshAttention() {
  const int64_t n = node_table_.rows();
  const int64_t d = embedding_dim();
  // Projected embeddings P = E W (raw forward computation).
  std::vector<float> projected(n * d, 0.0f);
  const float* e = node_table_.data();
  const float* w = relation_proj_.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t k = 0; k < d; ++k) {
      const float ev = e[i * d + k];
      if (ev == 0.0f) continue;
      const float* wr = w + k * d;
      float* pr = projected.data() + i * d;
      for (int64_t c = 0; c < d; ++c) pr[c] += ev * wr[c];
    }
  }
  // Raw attention logits pi(h, t) = (P_t) . tanh(P_h + e_r).
  const int64_t num_edges = static_cast<int64_t>(directed_edges_.size());
  std::vector<float> logits(num_edges);
  for (int64_t idx = 0; idx < num_edges; ++idx) {
    const auto& [h, t] = directed_edges_[idx];
    const float* rel = edge_relation_[idx] == 0 ? relation_interact_.data()
                                                : relation_hastag_.data();
    const float* ph = projected.data() + h * d;
    const float* pt = projected.data() + t * d;
    float acc = 0.0f;
    for (int64_t c = 0; c < d; ++c) acc += pt[c] * std::tanh(ph[c] + rel[c]);
    logits[idx] = acc;
  }
  // Per-head softmax.
  std::vector<float> head_max(n, -1e30f);
  for (int64_t idx = 0; idx < num_edges; ++idx) {
    head_max[directed_edges_[idx].first] =
        std::max(head_max[directed_edges_[idx].first], logits[idx]);
  }
  std::vector<double> head_sum(n, 0.0);
  std::vector<float> weights(num_edges);
  for (int64_t idx = 0; idx < num_edges; ++idx) {
    weights[idx] = std::exp(logits[idx] - head_max[directed_edges_[idx].first]);
    head_sum[directed_edges_[idx].first] += weights[idx];
  }
  std::vector<int64_t> rows(num_edges), cols(num_edges);
  for (int64_t idx = 0; idx < num_edges; ++idx) {
    rows[idx] = directed_edges_[idx].first;
    cols[idx] = directed_edges_[idx].second;
    weights[idx] = static_cast<float>(weights[idx] /
                                      head_sum[directed_edges_[idx].first]);
  }
  attention_adj_ = SparseMatrix::FromTriplets(n, n, rows, cols, weights);
}

Tensor Kgat::Propagate() const {
  Tensor layer = node_table_;
  Tensor sum = node_table_;
  for (int l = 0; l < num_layers_; ++l) {
    layer = ops::SpMM(attention_adj_, layer);
    sum = ops::Add(sum, layer);
  }
  return ops::ScalarMul(sum, 1.0f / static_cast<float>(num_layers_ + 1));
}

Tensor Kgat::TransRScore(const std::vector<int64_t>& heads,
                         const std::vector<int64_t>& tails,
                         const Tensor& relation) const {
  Tensor h = ops::MatMul(ops::Gather(node_table_, heads), relation_proj_);
  Tensor t = ops::MatMul(ops::Gather(node_table_, tails), relation_proj_);
  Tensor diff = ops::Sub(ops::AddRowBroadcast(h, relation), t);
  return ops::ScalarMul(ops::RowSum(ops::Mul(diff, diff)), -1.0f);
}

Tensor Kgat::BuildLoss(const TripletBatch& batch, Rng* rng) {
  Tensor propagated = Propagate();
  Tensor users = ops::Gather(propagated, batch.anchors);
  std::vector<int64_t> pos_nodes, neg_nodes;
  pos_nodes.reserve(batch.positives.size());
  neg_nodes.reserve(batch.negatives.size());
  for (int64_t v : batch.positives) pos_nodes.push_back(ItemNode(v));
  for (int64_t v : batch.negatives) neg_nodes.push_back(ItemNode(v));
  Tensor pos = ops::Gather(propagated, pos_nodes);
  Tensor neg = ops::Gather(propagated, neg_nodes);
  Tensor cf = BprLossFromScores(ops::RowSum(ops::Mul(users, pos)),
                                ops::RowSum(ops::Mul(users, neg)));

  TripletBatch kg;
  kg_sampler_.SampleBatch(batch_size(), rng, &kg);
  std::vector<int64_t> heads, pos_tags, neg_tags;
  for (int64_t v : kg.anchors) heads.push_back(ItemNode(v));
  for (int64_t t : kg.positives) pos_tags.push_back(TagNode(t));
  for (int64_t t : kg.negatives) neg_tags.push_back(TagNode(t));
  Tensor kg_loss =
      BprLossFromScores(TransRScore(heads, pos_tags, relation_hastag_),
                        TransRScore(heads, neg_tags, relation_hastag_));
  return ops::Add(cf, ops::ScalarMul(kg_loss, kg_weight_));
}

void Kgat::ComputeEvalFactors(std::vector<float>* user_factors,
                              std::vector<float>* item_factors) const {
  Tensor propagated = Propagate();
  const float* data = propagated.data();
  const int64_t d = embedding_dim();
  user_factors->assign(data, data + num_users() * d);
  item_factors->assign(data + num_users() * d,
                       data + (num_users() + num_items()) * d);
}

}  // namespace imcat
