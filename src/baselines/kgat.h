#ifndef IMCAT_BASELINES_KGAT_H_
#define IMCAT_BASELINES_KGAT_H_

#include "baselines/factor_model.h"
#include "tensor/sparse.h"

/// \file kgat.h
/// KGAT [8]: knowledge graph attention network. A collaborative knowledge
/// graph joins user-item edges ("interact" relation) and item-tag edges
/// ("has-tag" relation, per the paper's tag adaptation). TransR embeds the
/// relations, the TransR energies provide attention weights
/// pi(h, r, t) = (W e_t)^T tanh(W e_h + e_r), softmax-normalised per head
/// node, and graph convolution propagates over the attention-weighted
/// adjacency. The attention matrix is refreshed once per epoch (the
/// original alternates attention and embedding updates similarly).

namespace imcat {

class Kgat : public FactorModelBase {
 public:
  Kgat(const Dataset& dataset, const DataSplit& split, const AdamOptions& adam,
       int64_t batch_size, int64_t embedding_dim, uint64_t seed,
       int num_layers = 2, float kg_weight = 1.0f);

  void OnEpochBegin(int64_t epoch) override;

 protected:
  Tensor BuildLoss(const TripletBatch& batch, Rng* rng) override;
  void ComputeEvalFactors(std::vector<float>* user_factors,
                          std::vector<float>* item_factors) const override;

 private:
  /// Node-id helpers into the unified table [users | items | tags].
  int64_t ItemNode(int64_t item) const { return num_users() + item; }
  int64_t TagNode(int64_t tag) const {
    return num_users() + num_items() + tag;
  }

  /// Recomputes the attention-weighted adjacency from current embeddings.
  void RefreshAttention();

  /// Layer-averaged propagation of the node table.
  Tensor Propagate() const;

  /// TransR energy rows for (head node, tail node) pairs under a relation.
  Tensor TransRScore(const std::vector<int64_t>& heads,
                     const std::vector<int64_t>& tails,
                     const Tensor& relation) const;

  int num_layers_;
  float kg_weight_;
  int64_t num_tags_;
  EdgeList directed_edges_;  ///< All (head, tail) node pairs, both ways.
  std::vector<int> edge_relation_;  ///< 0 = interact, 1 = has-tag.
  SparseMatrix attention_adj_;
  TripletSampler kg_sampler_;  ///< (item, tag+, tag-) corruption triples.
  Tensor node_table_;          ///< (U+V+T x d).
  Tensor relation_interact_;   ///< (1 x d).
  Tensor relation_hastag_;     ///< (1 x d).
  Tensor relation_proj_;       ///< (d x d) shared TransR projection.
};

}  // namespace imcat

#endif  // IMCAT_BASELINES_KGAT_H_
