#include "baselines/kgcl.h"

#include <algorithm>
#include <numeric>

#include "graph/adjacency.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace imcat {

Kgcl::Kgcl(const Dataset& dataset, const DataSplit& split,
           const AdamOptions& adam, int64_t batch_size, int64_t embedding_dim,
           uint64_t seed, int num_layers, float ssl_weight, float ssl_tau)
    : FactorModelBase("KGCL", dataset, split, adam, batch_size, embedding_dim),
      num_layers_(num_layers),
      ssl_weight_(ssl_weight),
      ssl_tau_(ssl_tau),
      cf_adjacency_(BuildUserItemAdjacency(dataset.num_users,
                                           dataset.num_items, split.train)),
      kg_adjacency_(BuildItemTagAdjacency(dataset.num_items, dataset.num_tags,
                                          dataset.item_tags)) {
  Rng rng(seed);
  cf_table_ = XavierUniform(dataset.num_users + dataset.num_items,
                            embedding_dim, &rng, true);
  kg_table_ = XavierUniform(dataset.num_items + dataset.num_tags,
                            embedding_dim, &rng, true);
  RegisterParameters({cf_table_, kg_table_});
}

namespace {
Tensor LayerAveraged(const SparseMatrix& adjacency, const Tensor& base,
                     int num_layers) {
  Tensor layer = base;
  Tensor sum = base;
  for (int l = 0; l < num_layers; ++l) {
    layer = ops::SpMM(adjacency, layer);
    sum = ops::Add(sum, layer);
  }
  return ops::ScalarMul(sum, 1.0f / static_cast<float>(num_layers + 1));
}
}  // namespace

Tensor Kgcl::PropagateCf() const {
  return LayerAveraged(cf_adjacency_, cf_table_, num_layers_);
}

Tensor Kgcl::PropagateKg() const {
  return LayerAveraged(kg_adjacency_, kg_table_, num_layers_);
}

Tensor Kgcl::BuildLoss(const TripletBatch& batch, Rng* rng) {
  (void)rng;
  Tensor cf = PropagateCf();
  Tensor users = ops::Gather(cf, batch.anchors);
  std::vector<int64_t> pos_nodes, neg_nodes;
  for (int64_t v : batch.positives) pos_nodes.push_back(num_users() + v);
  for (int64_t v : batch.negatives) neg_nodes.push_back(num_users() + v);
  Tensor pos = ops::Gather(cf, pos_nodes);
  Tensor neg = ops::Gather(cf, neg_nodes);
  Tensor ranking = BprLossFromScores(ops::RowSum(ops::Mul(users, pos)),
                                     ops::RowSum(ops::Mul(users, neg)));

  // Cross-view contrast on the batch's positive items (unique within the
  // SSL batch: duplicates would be false negatives of themselves): CF-view
  // item rows against KG-view item rows.
  std::vector<int64_t> items = batch.positives;
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  std::vector<int64_t> item_nodes;
  item_nodes.reserve(items.size());
  for (int64_t v : items) item_nodes.push_back(num_users() + v);
  Tensor kg = PropagateKg();
  Tensor cf_items = ops::L2NormalizeRows(ops::Gather(cf, item_nodes));
  Tensor kg_items = ops::L2NormalizeRows(ops::Gather(kg, items));
  Tensor logits =
      ops::ScalarMul(ops::MatMulNT(cf_items, kg_items), 1.0f / ssl_tau_);
  std::vector<int64_t> diagonal(items.size());
  std::iota(diagonal.begin(), diagonal.end(), 0);
  std::vector<float> weights(items.size(),
                             1.0f / static_cast<float>(items.size()));
  Tensor logits_t =
      ops::ScalarMul(ops::MatMulNT(kg_items, cf_items), 1.0f / ssl_tau_);
  Tensor ssl = ops::Add(ops::SoftmaxCrossEntropy(logits, diagonal, weights),
                        ops::SoftmaxCrossEntropy(logits_t, diagonal, weights));
  return ops::Add(ranking, ops::ScalarMul(ssl, 0.5f * ssl_weight_));
}

void Kgcl::ComputeEvalFactors(std::vector<float>* user_factors,
                              std::vector<float>* item_factors) const {
  Tensor cf = PropagateCf();
  const float* data = cf.data();
  const int64_t d = embedding_dim();
  user_factors->assign(data, data + num_users() * d);
  item_factors->assign(data + num_users() * d,
                       data + (num_users() + num_items()) * d);
}

}  // namespace imcat
