#ifndef IMCAT_BASELINES_KGCL_H_
#define IMCAT_BASELINES_KGCL_H_

#include "baselines/factor_model.h"
#include "tensor/sparse.h"

/// \file kgcl.h
/// KGCL [41]: knowledge graph contrastive learning. Item representations
/// are computed from two views — propagation over the collaborative
/// (user-item) graph and propagation over the knowledge (item-tag) graph —
/// and a cross-view InfoNCE objective aligns the two per item, denoising
/// both structures. Recommendation runs on the CF view with BPR.

namespace imcat {

class Kgcl : public FactorModelBase {
 public:
  Kgcl(const Dataset& dataset, const DataSplit& split, const AdamOptions& adam,
       int64_t batch_size, int64_t embedding_dim, uint64_t seed,
       int num_layers = 2, float ssl_weight = 0.1f, float ssl_tau = 1.0f);

 protected:
  Tensor BuildLoss(const TripletBatch& batch, Rng* rng) override;
  void ComputeEvalFactors(std::vector<float>* user_factors,
                          std::vector<float>* item_factors) const override;

 private:
  /// CF-view propagation of [users | items].
  Tensor PropagateCf() const;

  /// KG-view propagation of [items | tags]; returns the item rows' table.
  Tensor PropagateKg() const;

  int num_layers_;
  float ssl_weight_;
  float ssl_tau_;
  SparseMatrix cf_adjacency_;  ///< (U+V) square.
  SparseMatrix kg_adjacency_;  ///< (V+T) square.
  Tensor cf_table_;            ///< (U+V x d).
  Tensor kg_table_;            ///< (V+T x d) — item rows are the KG view.
};

}  // namespace imcat

#endif  // IMCAT_BASELINES_KGCL_H_
