#include "baselines/kgin.h"

#include "baselines/tgcn.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace imcat {

Kgin::Kgin(const Dataset& dataset, const DataSplit& split,
           const AdamOptions& adam, int64_t batch_size, int64_t embedding_dim,
           uint64_t seed, int num_intents, int num_layers,
           float independence_weight)
    : FactorModelBase("KGIN", dataset, split, adam, batch_size, embedding_dim),
      num_intents_(num_intents),
      num_layers_(num_layers),
      independence_weight_(independence_weight),
      user_from_item_(RowStochasticFromEdges(dataset.num_users,
                                             dataset.num_items, split.train)),
      item_from_tag_(RowStochasticFromEdges(dataset.num_items,
                                            dataset.num_tags,
                                            dataset.item_tags)) {
  Rng rng(seed);
  user_table_ = XavierUniform(dataset.num_users, embedding_dim, &rng, true);
  item_table_ = XavierUniform(dataset.num_items, embedding_dim, &rng, true);
  tag_table_ = XavierUniform(dataset.num_tags, embedding_dim, &rng, true);
  intent_logits_ = RandomNormal(num_intents, dataset.num_tags, &rng, 0.0f,
                                0.1f);
  RegisterParameters({user_table_, item_table_, tag_table_, intent_logits_});
}

Tensor Kgin::IntentEmbeddings() const {
  // softmax over relations per intent, then combine the tag embeddings.
  Tensor weights = ops::RowNormalize(ops::Exp(intent_logits_));
  return ops::MatMul(weights, tag_table_);
}

Kgin::Propagated Kgin::Propagate() const {
  Tensor intents = IntentEmbeddings();  // (K x d).
  Tensor u = user_table_, i = item_table_;
  Tensor u_sum = u, i_sum = i;
  for (int layer = 0; layer < num_layers_; ++layer) {
    // Per-user intent attention beta = softmax_k(u . e_k).
    Tensor beta = ops::RowNormalize(ops::Exp(ops::MatMulNT(u, intents)));
    Tensor u_next;  // Intent-attention-weighted relational message.
    for (int k = 0; k < num_intents_; ++k) {
      Tensor e_k = ops::Gather(intents, {k});              // (1 x d).
      Tensor modulated = ops::MulRowBroadcast(i, e_k);     // e_k (.) items.
      Tensor message = ops::SpMM(user_from_item_, modulated);
      Tensor beta_k = ops::SliceCols(beta, k, k + 1);      // (U x 1).
      Tensor weighted = ops::MulColBroadcast(message, beta_k);
      u_next = u_next.defined() ? ops::Add(u_next, weighted) : weighted;
    }
    // Self-connections keep the entity identity through the layers.
    u = ops::Add(u, u_next);
    i = ops::Add(i, ops::SpMM(item_from_tag_, tag_table_));
    u_sum = ops::Add(u_sum, u);
    i_sum = ops::Add(i_sum, i);
  }
  const float scale = 1.0f / static_cast<float>(num_layers_ + 1);
  return {ops::ScalarMul(u_sum, scale), ops::ScalarMul(i_sum, scale)};
}

Tensor Kgin::IndependencePenalty() const {
  Tensor normalized = ops::L2NormalizeRows(IntentEmbeddings());
  Tensor gram = ops::MatMulNT(normalized, normalized);  // (K x K).
  // Zero the diagonal with a constant mask; penalise squared cosines.
  Tensor mask(num_intents_, num_intents_);
  for (int a = 0; a < num_intents_; ++a) {
    for (int b = 0; b < num_intents_; ++b) {
      mask.set(a, b, a == b ? 0.0f : 1.0f);
    }
  }
  Tensor penalty = ops::Sum(ops::Mul(ops::Mul(gram, gram), mask));
  const float pairs =
      static_cast<float>(num_intents_) * (num_intents_ - 1);
  return ops::ScalarMul(penalty, pairs > 0.0f ? 1.0f / pairs : 0.0f);
}

Tensor Kgin::BuildLoss(const TripletBatch& batch, Rng* rng) {
  (void)rng;
  Propagated prop = Propagate();
  Tensor users = ops::Gather(prop.users, batch.anchors);
  Tensor pos = ops::Gather(prop.items, batch.positives);
  Tensor neg = ops::Gather(prop.items, batch.negatives);
  Tensor cf = BprLossFromScores(ops::RowSum(ops::Mul(users, pos)),
                                ops::RowSum(ops::Mul(users, neg)));
  if (num_intents_ < 2 || independence_weight_ <= 0.0f) return cf;
  return ops::Add(cf,
                  ops::ScalarMul(IndependencePenalty(), independence_weight_));
}

void Kgin::ComputeEvalFactors(std::vector<float>* user_factors,
                              std::vector<float>* item_factors) const {
  Propagated prop = Propagate();
  user_factors->assign(prop.users.data(),
                       prop.users.data() + prop.users.size());
  item_factors->assign(prop.items.data(),
                       prop.items.data() + prop.items.size());
}

}  // namespace imcat
