#ifndef IMCAT_BASELINES_KGIN_H_
#define IMCAT_BASELINES_KGIN_H_

#include "baselines/factor_model.h"
#include "tensor/sparse.h"

/// \file kgin.h
/// KGIN [31]: learning intents behind interactions with a knowledge graph.
/// Each of K latent intents is a learned softmax combination of relation
/// embeddings (here: tag embeddings, following the paper's tag
/// adaptation). User aggregation is intent-aware: messages from interacted
/// items are modulated elementwise by the intent embedding and combined
/// with per-user intent attention; items aggregate their tags through a
/// relational layer. Intents are kept independent with a pairwise
/// correlation penalty (the original uses distance correlation; we use the
/// squared-cosine variant the authors also report).

namespace imcat {

class Kgin : public FactorModelBase {
 public:
  Kgin(const Dataset& dataset, const DataSplit& split, const AdamOptions& adam,
       int64_t batch_size, int64_t embedding_dim, uint64_t seed,
       int num_intents = 4, int num_layers = 2,
       float independence_weight = 1e-2f);

 protected:
  Tensor BuildLoss(const TripletBatch& batch, Rng* rng) override;
  void ComputeEvalFactors(std::vector<float>* user_factors,
                          std::vector<float>* item_factors) const override;

 private:
  struct Propagated {
    Tensor users;
    Tensor items;
  };

  /// Intent embeddings e_k = softmax(w_k) Tags, (K x d).
  Tensor IntentEmbeddings() const;

  /// Intent-aware relational propagation.
  Propagated Propagate() const;

  /// Pairwise squared-cosine penalty between intent embeddings.
  Tensor IndependencePenalty() const;

  int num_intents_;
  int num_layers_;
  float independence_weight_;
  SparseMatrix user_from_item_;  ///< (U x V) row-stochastic.
  SparseMatrix item_from_tag_;   ///< (V x T) row-stochastic.
  Tensor user_table_;
  Tensor item_table_;
  Tensor tag_table_;
  Tensor intent_logits_;  ///< (K x T) over relations (tags).
};

}  // namespace imcat

#endif  // IMCAT_BASELINES_KGIN_H_
