#include "baselines/registry.h"

#include "baselines/cfa.h"
#include "baselines/cke.h"
#include "baselines/dspr.h"
#include "baselines/kgat.h"
#include "baselines/kgcl.h"
#include "baselines/kgin.h"
#include "baselines/ripplenet.h"
#include "baselines/sgl.h"
#include "baselines/tgcn.h"
#include "core/imcat.h"
#include "models/bprmf.h"
#include "models/lightgcn.h"
#include "models/neumf.h"

namespace imcat {

namespace {

std::unique_ptr<Backbone> MakeBackbone(const std::string& kind,
                                       const Dataset& dataset,
                                       const DataSplit& split,
                                       const ModelFactoryOptions& options) {
  BackboneOptions backbone_options;
  backbone_options.embedding_dim = options.embedding_dim;
  backbone_options.seed = options.seed;
  if (kind == "BPRMF") {
    return std::make_unique<Bprmf>(dataset.num_users, dataset.num_items,
                                   backbone_options);
  }
  if (kind == "NeuMF") {
    return std::make_unique<NeuMf>(dataset.num_users, dataset.num_items,
                                   backbone_options);
  }
  if (kind == "LightGCN") {
    return std::make_unique<LightGcn>(dataset.num_users, dataset.num_items,
                                      split.train, backbone_options);
  }
  return nullptr;
}

}  // namespace

const std::vector<std::string>& AllModelNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "BPRMF", "NeuMF",     "LightGCN", "CFA",  "DSPR",    "TGCN",
      "CKE",   "RippleNet", "KGAT",     "KGIN", "SGL",     "KGCL",
      "B-IMCAT", "N-IMCAT", "L-IMCAT"};
  return names;
}

StatusOr<std::unique_ptr<TrainableModel>> CreateModel(
    const std::string& name, const Dataset& dataset, const DataSplit& split,
    const ModelFactoryOptions& options) {
  const int64_t dim = options.embedding_dim;
  const int64_t batch = options.batch_size;
  const uint64_t seed = options.seed;

  // Bare backbones trained with plain BPR.
  if (name == "BPRMF" || name == "NeuMF" || name == "LightGCN") {
    return std::unique_ptr<TrainableModel>(
        std::make_unique<BprModel>(MakeBackbone(name, dataset, split, options),
                                   dataset, split, options.adam, batch));
  }
  // IMCAT variants.
  if (name == "B-IMCAT" || name == "N-IMCAT" || name == "L-IMCAT") {
    const std::string backbone = name == "B-IMCAT"   ? "BPRMF"
                                 : name == "N-IMCAT" ? "NeuMF"
                                                     : "LightGCN";
    ImcatConfig config = options.imcat;
    config.batch_size = batch;
    config.seed = seed;
    return std::unique_ptr<TrainableModel>(std::make_unique<ImcatModel>(
        MakeBackbone(backbone, dataset, split, options), dataset, split,
        config, options.adam));
  }
  // Tag-enhanced baselines.
  if (name == "CFA") {
    return std::unique_ptr<TrainableModel>(std::make_unique<Cfa>(
        dataset, split, options.adam, batch, dim, seed));
  }
  if (name == "DSPR") {
    return std::unique_ptr<TrainableModel>(std::make_unique<Dspr>(
        dataset, split, options.adam, batch, dim, seed));
  }
  if (name == "TGCN") {
    return std::unique_ptr<TrainableModel>(std::make_unique<Tgcn>(
        dataset, split, options.adam, batch, dim, seed));
  }
  // KG-enhanced baselines.
  if (name == "CKE") {
    return std::unique_ptr<TrainableModel>(std::make_unique<Cke>(
        dataset, split, options.adam, batch, dim, seed));
  }
  if (name == "RippleNet") {
    return std::unique_ptr<TrainableModel>(std::make_unique<RippleNet>(
        dataset, split, options.adam, batch, dim, seed));
  }
  if (name == "KGAT") {
    return std::unique_ptr<TrainableModel>(std::make_unique<Kgat>(
        dataset, split, options.adam, batch, dim, seed));
  }
  if (name == "KGIN") {
    return std::unique_ptr<TrainableModel>(std::make_unique<Kgin>(
        dataset, split, options.adam, batch, dim, seed,
        options.imcat.num_intents));
  }
  // SSL-based baselines.
  if (name == "SGL") {
    return std::unique_ptr<TrainableModel>(std::make_unique<Sgl>(
        dataset, split, options.adam, batch, dim, seed));
  }
  if (name == "KGCL") {
    return std::unique_ptr<TrainableModel>(std::make_unique<Kgcl>(
        dataset, split, options.adam, batch, dim, seed));
  }
  return Status::NotFound("unknown model: " + name);
}

}  // namespace imcat
