#ifndef IMCAT_BASELINES_REGISTRY_H_
#define IMCAT_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "data/split.h"
#include "tensor/optimizer.h"
#include "train/trainer.h"
#include "util/status.h"

/// \file registry.h
/// The model factory behind the benchmark harness and examples: every
/// method of the paper's Table II can be instantiated by name against a
/// dataset/split pair.

namespace imcat {

/// Options applied to every model the factory creates.
struct ModelFactoryOptions {
  int64_t embedding_dim = 64;
  int64_t batch_size = 1024;
  uint64_t seed = 13;
  AdamOptions adam;  ///< Defaults follow the paper: lr = wd = 1e-3.
  /// IMCAT-specific knobs, used by the *-IMCAT variants.
  ImcatConfig imcat;

  ModelFactoryOptions() {
    adam.learning_rate = 1e-3f;
    adam.weight_decay = 1e-3f;
  }
};

/// The method names of Table II, in paper order:
/// BPRMF, NeuMF, LightGCN, CFA, DSPR, TGCN, CKE, RippleNet, KGAT, KGIN,
/// SGL, KGCL, B-IMCAT, N-IMCAT, L-IMCAT.
const std::vector<std::string>& AllModelNames();

/// Instantiates a model by Table-II name. The dataset and split must
/// outlive the model. Unknown names yield NotFound.
StatusOr<std::unique_ptr<TrainableModel>> CreateModel(
    const std::string& name, const Dataset& dataset, const DataSplit& split,
    const ModelFactoryOptions& options);

}  // namespace imcat

#endif  // IMCAT_BASELINES_REGISTRY_H_
