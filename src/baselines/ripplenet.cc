#include "baselines/ripplenet.h"

#include <unordered_map>
#include <unordered_set>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace imcat {

namespace {

/// Caps each user's hop set and row-normalises.
SparseMatrix BuildHopMatrix(
    int64_t num_users, int64_t num_cols,
    const std::vector<std::unordered_map<int64_t, float>>& weights) {
  std::vector<int64_t> rows, cols;
  std::vector<float> values;
  for (int64_t u = 0; u < num_users; ++u) {
    float total = 0.0f;
    for (const auto& [c, w] : weights[u]) total += w;
    if (total <= 0.0f) continue;
    for (const auto& [c, w] : weights[u]) {
      rows.push_back(u);
      cols.push_back(c);
      values.push_back(w / total);
    }
  }
  return SparseMatrix::FromTriplets(num_users, num_cols, rows, cols, values);
}

Tensor GateScale(const Tensor& x, const Tensor& gate) {
  Tensor ones(x.rows(), 1);
  for (int64_t r = 0; r < x.rows(); ++r) ones.data()[r] = 1.0f;
  return ops::MulColBroadcast(x, ops::MatMul(ones, ops::Sigmoid(gate)));
}

}  // namespace

RippleNet::RippleNet(const Dataset& dataset, const DataSplit& split,
                     const AdamOptions& adam, int64_t batch_size,
                     int64_t embedding_dim, uint64_t seed)
    : FactorModelBase("RippleNet", dataset, split, adam, batch_size,
                      embedding_dim) {
  BipartiteIndex item_tags(dataset.num_items, dataset.num_tags,
                           dataset.item_tags);
  BipartiteIndex interactions(dataset.num_users, dataset.num_items,
                              split.train);

  // Hop 1: tag frequencies over the user's training items.
  std::vector<std::unordered_map<int64_t, float>> hop1(dataset.num_users);
  // Hop 2: items reachable through those tags (excluding the seed items).
  std::vector<std::unordered_map<int64_t, float>> hop2(dataset.num_users);
  constexpr int64_t kMaxHop2PerTag = 50;
  for (int64_t u = 0; u < dataset.num_users; ++u) {
    std::unordered_set<int64_t> seeds(interactions.Forward(u).begin(),
                                      interactions.Forward(u).end());
    for (int64_t v : interactions.Forward(u)) {
      for (int64_t t : item_tags.Forward(v)) {
        hop1[u][t] += 1.0f;
        const auto& carriers = item_tags.Backward(t);
        const int64_t limit =
            std::min<int64_t>(kMaxHop2PerTag,
                              static_cast<int64_t>(carriers.size()));
        for (int64_t i = 0; i < limit; ++i) {
          if (!seeds.count(carriers[i])) hop2[u][carriers[i]] += 1.0f;
        }
      }
    }
  }
  hop1_ = BuildHopMatrix(dataset.num_users, dataset.num_tags, hop1);
  hop2_ = BuildHopMatrix(dataset.num_users, dataset.num_items, hop2);

  Rng rng(seed);
  user_table_ = XavierUniform(dataset.num_users, embedding_dim, &rng, true);
  item_table_ = XavierUniform(dataset.num_items, embedding_dim, &rng, true);
  tag_table_ = XavierUniform(dataset.num_tags, embedding_dim, &rng, true);
  hop1_gate_ = ZerosParameter(1, 1);
  hop2_gate_ = ZerosParameter(1, 1);
  RegisterParameters(
      {user_table_, item_table_, tag_table_, hop1_gate_, hop2_gate_});
}

Tensor RippleNet::EnrichedUsers() const {
  Tensor h1 = GateScale(ops::SpMM(hop1_, tag_table_), hop1_gate_);
  Tensor h2 = GateScale(ops::SpMM(hop2_, item_table_), hop2_gate_);
  return ops::Add(user_table_, ops::Add(h1, h2));
}

Tensor RippleNet::BuildLoss(const TripletBatch& batch, Rng* rng) {
  (void)rng;
  Tensor users = ops::Gather(EnrichedUsers(), batch.anchors);
  Tensor pos = ops::Gather(item_table_, batch.positives);
  Tensor neg = ops::Gather(item_table_, batch.negatives);
  return BprLossFromScores(ops::RowSum(ops::Mul(users, pos)),
                           ops::RowSum(ops::Mul(users, neg)));
}

void RippleNet::ComputeEvalFactors(std::vector<float>* user_factors,
                                   std::vector<float>* item_factors) const {
  Tensor users = EnrichedUsers();
  user_factors->assign(users.data(), users.data() + users.size());
  item_factors->assign(item_table_.data(),
                       item_table_.data() + item_table_.size());
}

}  // namespace imcat
