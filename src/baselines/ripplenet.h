#ifndef IMCAT_BASELINES_RIPPLENET_H_
#define IMCAT_BASELINES_RIPPLENET_H_

#include "baselines/factor_model.h"
#include "tensor/sparse.h"

/// \file ripplenet.h
/// RippleNet [6]: user preferences propagate along knowledge-graph paths
/// rooted at the user's history. In the tag-enhanced adaptation the ripple
/// sets are: hop 1 — the tags of the user's training items; hop 2 — the
/// items carrying those tags. The user representation is her base
/// embedding enriched with the (fixed-structure, learned-content)
/// aggregations of both hops through learned hop gates.
///
/// Simplification vs the original (documented in DESIGN.md): the
/// per-candidate attention over ripple entries is replaced by uniform
/// in-set averaging with learned hop weights — the propagation structure
/// and the learned hop embeddings are preserved, the per-pair attention
/// (quadratic in catalogue size at ranking time) is not.

namespace imcat {

class RippleNet : public FactorModelBase {
 public:
  RippleNet(const Dataset& dataset, const DataSplit& split,
            const AdamOptions& adam, int64_t batch_size,
            int64_t embedding_dim, uint64_t seed);

 protected:
  Tensor BuildLoss(const TripletBatch& batch, Rng* rng) override;
  void ComputeEvalFactors(std::vector<float>* user_factors,
                          std::vector<float>* item_factors) const override;

 private:
  /// Enriched user table: u + g1 * H1 tags + g2 * H2 items, (U x d).
  Tensor EnrichedUsers() const;

  SparseMatrix hop1_;  ///< (U x T): user -> tags of her training items.
  SparseMatrix hop2_;  ///< (U x V): user -> items sharing those tags.
  Tensor user_table_;
  Tensor item_table_;
  Tensor tag_table_;
  Tensor hop1_gate_;  ///< (1 x 1) pre-sigmoid weight.
  Tensor hop2_gate_;  ///< (1 x 1).
};

}  // namespace imcat

#endif  // IMCAT_BASELINES_RIPPLENET_H_
