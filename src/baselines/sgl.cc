#include "baselines/sgl.h"

#include <algorithm>
#include <numeric>

#include "graph/adjacency.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace imcat {

Sgl::Sgl(const Dataset& dataset, const DataSplit& split,
         const AdamOptions& adam, int64_t batch_size, int64_t embedding_dim,
         uint64_t seed, int num_layers, float ssl_weight, float ssl_tau,
         float edge_keep_prob)
    : FactorModelBase("SGL", dataset, split, adam, batch_size, embedding_dim),
      num_layers_(num_layers),
      ssl_weight_(ssl_weight),
      ssl_tau_(ssl_tau),
      edge_keep_prob_(edge_keep_prob),
      train_edges_(split.train),
      adjacency_(BuildUserItemAdjacency(dataset.num_users, dataset.num_items,
                                        split.train)),
      augmentation_rng_(seed ^ 0xd20f0b5cULL) {
  Rng rng(seed);
  base_table_ = XavierUniform(dataset.num_users + dataset.num_items,
                              embedding_dim, &rng, true);
  RegisterParameters({base_table_});
  OnEpochBegin(0);
}

void Sgl::OnEpochBegin(int64_t epoch) {
  (void)epoch;
  view_a_ = BuildUserItemAdjacency(
      num_users(), num_items(),
      DropEdges(train_edges_, edge_keep_prob_, &augmentation_rng_));
  view_b_ = BuildUserItemAdjacency(
      num_users(), num_items(),
      DropEdges(train_edges_, edge_keep_prob_, &augmentation_rng_));
}

Tensor Sgl::Propagate(const SparseMatrix& adjacency) const {
  Tensor layer = base_table_;
  Tensor sum = base_table_;
  for (int l = 0; l < num_layers_; ++l) {
    layer = ops::SpMM(adjacency, layer);
    sum = ops::Add(sum, layer);
  }
  return ops::ScalarMul(sum, 1.0f / static_cast<float>(num_layers_ + 1));
}

Tensor Sgl::ViewContrast(const Tensor& view_a, const Tensor& view_b,
                         const std::vector<int64_t>& nodes) const {
  Tensor a = ops::L2NormalizeRows(ops::Gather(view_a, nodes));
  Tensor b = ops::L2NormalizeRows(ops::Gather(view_b, nodes));
  Tensor logits = ops::ScalarMul(ops::MatMulNT(a, b), 1.0f / ssl_tau_);
  std::vector<int64_t> diagonal(nodes.size());
  std::iota(diagonal.begin(), diagonal.end(), 0);
  std::vector<float> weights(nodes.size(),
                             1.0f / static_cast<float>(nodes.size()));
  return ops::SoftmaxCrossEntropy(logits, diagonal, weights);
}

Tensor Sgl::BuildLoss(const TripletBatch& batch, Rng* rng) {
  (void)rng;
  Tensor main = Propagate(adjacency_);
  Tensor users = ops::Gather(main, batch.anchors);
  std::vector<int64_t> pos_nodes, neg_nodes;
  for (int64_t v : batch.positives) pos_nodes.push_back(num_users() + v);
  for (int64_t v : batch.negatives) neg_nodes.push_back(num_users() + v);
  Tensor pos = ops::Gather(main, pos_nodes);
  Tensor neg = ops::Gather(main, neg_nodes);
  Tensor cf = BprLossFromScores(ops::RowSum(ops::Mul(users, pos)),
                                ops::RowSum(ops::Mul(users, neg)));

  // Self-discrimination between the two augmented views on the batch's
  // users and positive items. Nodes must be unique within the SSL batch:
  // duplicate nodes would appear as false negatives of themselves, which
  // wrecks the InfoNCE objective.
  auto unique_sorted = [](std::vector<int64_t> nodes) {
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    return nodes;
  };
  Tensor view_a = Propagate(view_a_);
  Tensor view_b = Propagate(view_b_);
  Tensor ssl_users = ViewContrast(view_a, view_b, unique_sorted(batch.anchors));
  Tensor ssl_items = ViewContrast(view_a, view_b, unique_sorted(pos_nodes));
  Tensor ssl = ops::Add(ssl_users, ssl_items);
  return ops::Add(cf, ops::ScalarMul(ssl, ssl_weight_));
}

void Sgl::ComputeEvalFactors(std::vector<float>* user_factors,
                             std::vector<float>* item_factors) const {
  Tensor propagated = Propagate(adjacency_);
  const float* data = propagated.data();
  const int64_t d = embedding_dim();
  user_factors->assign(data, data + num_users() * d);
  item_factors->assign(data + num_users() * d,
                       data + (num_users() + num_items()) * d);
}

}  // namespace imcat
