#ifndef IMCAT_BASELINES_SGL_H_
#define IMCAT_BASELINES_SGL_H_

#include "baselines/factor_model.h"
#include "tensor/sparse.h"

/// \file sgl.h
/// SGL [40]: self-supervised graph learning. A LightGCN backbone is
/// augmented with a structural contrastive task: two edge-dropout views of
/// the interaction graph are propagated independently and each node's two
/// views form a positive pair under an InfoNCE objective (SGL-ED variant).
/// The augmentation graphs are resampled at the start of every epoch, as
/// in the original.
///
/// Note on tau: the original uses tau ~= 0.2 on datasets with 10^4-10^5
/// items. At the scaled-down sizes this library targets, that temperature
/// makes the uniformity pressure of the self-discrimination task overwhelm
/// the ranking objective, so the default here is tau = 1.

namespace imcat {

class Sgl : public FactorModelBase {
 public:
  Sgl(const Dataset& dataset, const DataSplit& split, const AdamOptions& adam,
      int64_t batch_size, int64_t embedding_dim, uint64_t seed,
      int num_layers = 2, float ssl_weight = 0.02f, float ssl_tau = 1.0f,
      float edge_keep_prob = 0.8f);

  void OnEpochBegin(int64_t epoch) override;

 protected:
  Tensor BuildLoss(const TripletBatch& batch, Rng* rng) override;
  void ComputeEvalFactors(std::vector<float>* user_factors,
                          std::vector<float>* item_factors) const override;

 private:
  /// Layer-averaged propagation of the base table over an adjacency.
  Tensor Propagate(const SparseMatrix& adjacency) const;

  /// InfoNCE between two views restricted to `nodes` rows.
  Tensor ViewContrast(const Tensor& view_a, const Tensor& view_b,
                      const std::vector<int64_t>& nodes) const;

  int num_layers_;
  float ssl_weight_;
  float ssl_tau_;
  float edge_keep_prob_;
  EdgeList train_edges_;
  SparseMatrix adjacency_;        ///< Full graph.
  SparseMatrix view_a_;           ///< Dropout view 1 (per-epoch).
  SparseMatrix view_b_;           ///< Dropout view 2 (per-epoch).
  Tensor base_table_;             ///< (U+V x d).
  Rng augmentation_rng_;
};

}  // namespace imcat

#endif  // IMCAT_BASELINES_SGL_H_
