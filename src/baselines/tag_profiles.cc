#include "baselines/tag_profiles.h"

#include <unordered_map>

namespace imcat {

SparseMatrix BuildUserTagProfiles(const Dataset& dataset,
                                  const EdgeList& train_interactions) {
  BipartiteIndex item_tags(dataset.num_items, dataset.num_tags,
                           dataset.item_tags);
  // Accumulate tag counts per user.
  std::vector<std::unordered_map<int64_t, float>> counts(dataset.num_users);
  for (const auto& [u, v] : train_interactions) {
    for (int64_t t : item_tags.Forward(v)) counts[u][t] += 1.0f;
  }
  std::vector<int64_t> rows, cols;
  std::vector<float> values;
  for (int64_t u = 0; u < dataset.num_users; ++u) {
    float total = 0.0f;
    for (const auto& [t, c] : counts[u]) total += c;
    if (total <= 0.0f) continue;
    for (const auto& [t, c] : counts[u]) {
      rows.push_back(u);
      cols.push_back(t);
      values.push_back(c / total);
    }
  }
  return SparseMatrix::FromTriplets(dataset.num_users, dataset.num_tags, rows,
                                    cols, values);
}

SparseMatrix BuildItemTagProfiles(const Dataset& dataset) {
  BipartiteIndex item_tags(dataset.num_items, dataset.num_tags,
                           dataset.item_tags);
  std::vector<int64_t> rows, cols;
  std::vector<float> values;
  for (int64_t v = 0; v < dataset.num_items; ++v) {
    const auto& tags = item_tags.Forward(v);
    if (tags.empty()) continue;
    const float w = 1.0f / static_cast<float>(tags.size());
    for (int64_t t : tags) {
      rows.push_back(v);
      cols.push_back(t);
      values.push_back(w);
    }
  }
  return SparseMatrix::FromTriplets(dataset.num_items, dataset.num_tags, rows,
                                    cols, values);
}

}  // namespace imcat
