#ifndef IMCAT_BASELINES_TAG_PROFILES_H_
#define IMCAT_BASELINES_TAG_PROFILES_H_

#include "data/dataset.h"
#include "tensor/sparse.h"

/// \file tag_profiles.h
/// Tag-based user and item profiles shared by the tag-profile baselines
/// (CFA [4], DSPR [5]). A user's profile is the frequency-normalised bag
/// of tags over the items she interacted with in training; an item's
/// profile is the normalised indicator of its own tags. The paper
/// (Sec. V-E) notes that per-user tag attributions are unavailable, so
/// user profiles necessarily pool all tags of all interacted items.

namespace imcat {

/// (num_users x num_tags) row-normalised user tag-frequency matrix built
/// from the training interactions and the item-tag labels. Users without
/// any tagged interactions get an all-zero row.
SparseMatrix BuildUserTagProfiles(const Dataset& dataset,
                                  const EdgeList& train_interactions);

/// (num_items x num_tags) row-normalised item tag-indicator matrix.
SparseMatrix BuildItemTagProfiles(const Dataset& dataset);

}  // namespace imcat

#endif  // IMCAT_BASELINES_TAG_PROFILES_H_
