#include "baselines/tgcn.h"

#include <unordered_map>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace imcat {

SparseMatrix RowStochasticFromEdges(int64_t num_rows, int64_t num_cols,
                                    const EdgeList& edges) {
  std::vector<int64_t> degree(num_rows, 0);
  for (const auto& [r, c] : edges) {
    (void)c;
    ++degree[r];
  }
  std::vector<int64_t> rows, cols;
  std::vector<float> values;
  rows.reserve(edges.size());
  cols.reserve(edges.size());
  values.reserve(edges.size());
  for (const auto& [r, c] : edges) {
    rows.push_back(r);
    cols.push_back(c);
    values.push_back(1.0f / static_cast<float>(degree[r]));
  }
  return SparseMatrix::FromTriplets(num_rows, num_cols, rows, cols, values);
}

namespace {

EdgeList Reversed(const EdgeList& edges) {
  EdgeList reversed;
  reversed.reserve(edges.size());
  for (const auto& [a, b] : edges) reversed.emplace_back(b, a);
  return reversed;
}

/// x scaled by sigmoid(gate), where gate is a trainable (1 x 1) tensor.
Tensor GateScale(const Tensor& x, const Tensor& gate) {
  Tensor ones(x.rows(), 1);
  for (int64_t r = 0; r < x.rows(); ++r) ones.data()[r] = 1.0f;
  Tensor gate_col = ops::MatMul(ones, ops::Sigmoid(gate));
  return ops::MulColBroadcast(x, gate_col);
}

}  // namespace

Tgcn::Tgcn(const Dataset& dataset, const DataSplit& split,
           const AdamOptions& adam, int64_t batch_size, int64_t embedding_dim,
           uint64_t seed, int num_layers)
    : FactorModelBase("TGCN", dataset, split, adam, batch_size, embedding_dim),
      num_layers_(num_layers),
      num_tags_(dataset.num_tags),
      user_from_item_(RowStochasticFromEdges(dataset.num_users,
                                             dataset.num_items, split.train)),
      item_from_user_(RowStochasticFromEdges(dataset.num_items,
                                             dataset.num_users,
                                             Reversed(split.train))),
      item_from_tag_(RowStochasticFromEdges(dataset.num_items,
                                            dataset.num_tags,
                                            dataset.item_tags)),
      tag_from_item_(RowStochasticFromEdges(dataset.num_tags,
                                            dataset.num_items,
                                            Reversed(dataset.item_tags))) {
  Rng rng(seed);
  user_table_ = XavierUniform(dataset.num_users, embedding_dim, &rng, true);
  item_table_ = XavierUniform(dataset.num_items, embedding_dim, &rng, true);
  tag_table_ = XavierUniform(dataset.num_tags, embedding_dim, &rng, true);
  gate_user_ = ZerosParameter(1, 1);
  gate_tag_ = ZerosParameter(1, 1);
  RegisterParameters(
      {user_table_, item_table_, tag_table_, gate_user_, gate_tag_});
}

Tgcn::Propagated Tgcn::Propagate() const {
  Tensor u = user_table_, i = item_table_, t = tag_table_;
  Tensor u_sum = u, i_sum = i, t_sum = t;
  for (int layer = 0; layer < num_layers_; ++layer) {
    // Type-aware aggregation: items fuse user and tag messages through
    // learned gates; users and tags receive item messages.
    Tensor u_next = ops::SpMM(user_from_item_, i);
    Tensor i_next = ops::Add(GateScale(ops::SpMM(item_from_user_, u),
                                       gate_user_),
                             GateScale(ops::SpMM(item_from_tag_, t),
                                       gate_tag_));
    Tensor t_next = ops::SpMM(tag_from_item_, i);
    u = u_next;
    i = i_next;
    t = t_next;
    u_sum = ops::Add(u_sum, u);
    i_sum = ops::Add(i_sum, i);
    t_sum = ops::Add(t_sum, t);
  }
  const float scale = 1.0f / static_cast<float>(num_layers_ + 1);
  return {ops::ScalarMul(u_sum, scale), ops::ScalarMul(i_sum, scale),
          ops::ScalarMul(t_sum, scale)};
}

Tensor Tgcn::BuildLoss(const TripletBatch& batch, Rng* rng) {
  (void)rng;
  Propagated prop = Propagate();
  Tensor users = ops::Gather(prop.users, batch.anchors);
  Tensor pos = ops::Gather(prop.items, batch.positives);
  Tensor neg = ops::Gather(prop.items, batch.negatives);
  return BprLossFromScores(ops::RowSum(ops::Mul(users, pos)),
                           ops::RowSum(ops::Mul(users, neg)));
}

void Tgcn::ComputeEvalFactors(std::vector<float>* user_factors,
                              std::vector<float>* item_factors) const {
  Propagated prop = Propagate();
  user_factors->assign(prop.users.data(),
                       prop.users.data() + prop.users.size());
  item_factors->assign(prop.items.data(),
                       prop.items.data() + prop.items.size());
}

}  // namespace imcat
