#ifndef IMCAT_BASELINES_TGCN_H_
#define IMCAT_BASELINES_TGCN_H_

#include "baselines/factor_model.h"
#include "tensor/sparse.h"

/// \file tgcn.h
/// TGCN [9]: tag graph convolutional network. The original builds a
/// unified user-item-tag graph and aggregates neighbours type-by-type with
/// type-aware attention before fusing. We keep that structure: separate
/// row-stochastic message matrices per (target-type, source-type) pair,
/// learned per-type fusion gates on the item side (where two source types
/// meet), and layer averaging over two convolution layers (the paper uses
/// two layers for all GNN models).

namespace imcat {

class Tgcn : public FactorModelBase {
 public:
  Tgcn(const Dataset& dataset, const DataSplit& split, const AdamOptions& adam,
       int64_t batch_size, int64_t embedding_dim, uint64_t seed,
       int num_layers = 2);

 protected:
  Tensor BuildLoss(const TripletBatch& batch, Rng* rng) override;
  void ComputeEvalFactors(std::vector<float>* user_factors,
                          std::vector<float>* item_factors) const override;

 private:
  struct Propagated {
    Tensor users;
    Tensor items;
    Tensor tags;
  };
  /// Runs the type-aware propagation from the current tables.
  Propagated Propagate() const;

  int num_layers_;
  int64_t num_tags_;
  SparseMatrix user_from_item_;  ///< (U x V) row-stochastic.
  SparseMatrix item_from_user_;  ///< (V x U).
  SparseMatrix item_from_tag_;   ///< (V x T).
  SparseMatrix tag_from_item_;   ///< (T x V).
  Tensor user_table_;
  Tensor item_table_;
  Tensor tag_table_;
  Tensor gate_user_;  ///< (1 x 1) pre-sigmoid weight of user messages.
  Tensor gate_tag_;   ///< (1 x 1) pre-sigmoid weight of tag messages.
};

/// Builds a (num_rows x num_cols) row-stochastic matrix averaging the
/// neighbours given by `edges` ((row, col) pairs). Exposed for tests and
/// reused by other graph baselines.
SparseMatrix RowStochasticFromEdges(int64_t num_rows, int64_t num_cols,
                                    const EdgeList& edges);

}  // namespace imcat

#endif  // IMCAT_BASELINES_TGCN_H_
