#include "core/alignment.h"

#include <numeric>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace imcat {

AlignmentHead::AlignmentHead(int num_intents, int64_t dim, uint64_t seed)
    : num_intents_(num_intents), dim_(dim), chunk_(dim / num_intents) {
  IMCAT_CHECK_GE(num_intents, 1);
  // d must be divisible by K (Sec. IV-A1).
  IMCAT_CHECK_EQ(chunk_ * num_intents, dim);
  Rng rng(seed);
  for (int k = 0; k < num_intents_; ++k) {
    w0_.push_back(XavierUniform(dim_, chunk_, &rng));
    b0_.push_back(ZerosParameter(1, chunk_));
    w1_.push_back(XavierUniform(chunk_, chunk_, &rng));
    b1_.push_back(ZerosParameter(1, chunk_));
    w2_.push_back(XavierUniform(chunk_, chunk_, &rng));
  }
}

std::vector<Tensor> AlignmentHead::Parameters() {
  std::vector<Tensor> params;
  for (int k = 0; k < num_intents_; ++k) {
    params.push_back(w0_[k]);
    params.push_back(b0_[k]);
    params.push_back(w1_[k]);
    params.push_back(b1_[k]);
    params.push_back(w2_[k]);
  }
  return params;
}

Tensor AlignmentHead::Loss(const Tensor& user_agg,
                           const std::vector<Tensor>& tag_aggs,
                           const std::vector<Tensor>& item_embs,
                           const std::vector<std::vector<float>>& row_weights,
                           const ImcatConfig& config) const {
  IMCAT_CHECK_EQ(static_cast<int>(tag_aggs.size()), num_intents_);
  IMCAT_CHECK_EQ(static_cast<int>(item_embs.size()), num_intents_);
  IMCAT_CHECK_EQ(static_cast<int>(row_weights.size()), num_intents_);
  IMCAT_CHECK_EQ(user_agg.cols(), dim_);
  const int64_t batch = user_agg.rows();
  IMCAT_CHECK_GT(batch, 0);
  IMCAT_CHECK(config.align_include_item || config.align_include_tag);

  std::vector<int64_t> diagonal(batch);
  std::iota(diagonal.begin(), diagonal.end(), 0);

  const float inv_tau = 1.0f / config.tau;
  Tensor total;
  for (int k = 0; k < num_intents_; ++k) {
    // u-bar^k: the k-th chunk of the aggregated user representation.
    Tensor u = ops::SliceCols(user_agg, k * chunk_, (k + 1) * chunk_);

    // z-bar^k = l2norm(t-hat^k) + l2norm(v^k)  (Sec. IV-B2).
    Tensor z;
    if (config.align_include_tag) {
      Tensor t_hat = ops::AddRowBroadcast(ops::MatMul(tag_aggs[k], w0_[k]),
                                          b0_[k]);  // Eq. 10.
      z = ops::L2NormalizeRows(t_hat);
    }
    if (config.align_include_item) {
      Tensor v = ops::L2NormalizeRows(
          ops::SliceCols(item_embs[k], k * chunk_, (k + 1) * chunk_));
      z = z.defined() ? ops::Add(z, v) : v;
    }

    if (config.enable_nlt) {
      // Shared per-intent projection head (Eq. 14).
      auto project = [&](const Tensor& x) {
        Tensor hidden = ops::LeakyRelu(
            ops::AddRowBroadcast(ops::MatMul(x, w1_[k]), b1_[k]));
        return ops::MatMul(hidden, w2_[k]);
      };
      u = project(u);
      z = project(z);
    }

    Tensor logits_u2z = ops::ScalarMul(ops::MatMulNT(u, z), inv_tau);
    Tensor logits_z2u = ops::ScalarMul(ops::MatMulNT(z, u), inv_tau);
    Tensor l_u2it =
        ops::SoftmaxCrossEntropy(logits_u2z, diagonal, row_weights[k]);
    Tensor l_it2u =
        ops::SoftmaxCrossEntropy(logits_z2u, diagonal, row_weights[k]);
    Tensor pair = ops::Add(l_u2it, l_it2u);
    total = total.defined() ? ops::Add(total, pair) : pair;
  }
  return ops::ScalarMul(
      total, 1.0f / (2.0f * static_cast<float>(num_intents_) *
                     static_cast<float>(batch)));
}

}  // namespace imcat
