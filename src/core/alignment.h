#ifndef IMCAT_CORE_ALIGNMENT_H_
#define IMCAT_CORE_ALIGNMENT_H_

#include <vector>

#include "core/config.h"
#include "tensor/tensor.h"
#include "util/rng.h"

/// \file alignment.h
/// The intent-aware multi-source contrastive alignment head (Sec. IV-B2/3):
/// per-intent tag projection W_0^k (Eq. 10), the fused representation
/// z = l2norm(t-hat) + l2norm(v) (with L2 normalisation before the
/// addition, as the paper specifies), the non-linear transformation head
/// (Eq. 14), and the bidirectional M-weighted InfoNCE loss (Eqs. 11-13).

namespace imcat {

class AlignmentHead {
 public:
  /// `dim` is the full embedding width d; the chunk width is d / K.
  /// Parameters are Xavier-initialised from `seed`.
  AlignmentHead(int num_intents, int64_t dim, uint64_t seed);

  int num_intents() const { return num_intents_; }
  int64_t chunk_dim() const { return chunk_; }

  std::vector<Tensor> Parameters();

  /// Builds the contrastive alignment loss L_CA (or L_CA*, depending on
  /// how the caller paired the rows).
  ///
  /// \param user_agg   (B x d) per-item aggregated user embeddings, u-bar.
  /// \param tag_aggs   K tensors (B x d): per-intent aggregated tag
  ///                   embeddings t-bar^k of each row's *positive* item.
  /// \param item_embs  K tensors (B x d): embedding of each row's positive
  ///                   item under intent k (all identical when ISA is off).
  /// \param row_weights K weight vectors of length B: the M_{j,k}
  ///                   relatedness of each anchor row under intent k.
  /// \param config     ablation switches (UI / UT / NLT) and tau.
  ///
  /// Returns the scalar loss averaged over intents, directions and rows:
  ///   (1 / 2KB) sum_k (L^k_u2it + L^k_it2u).
  Tensor Loss(const Tensor& user_agg, const std::vector<Tensor>& tag_aggs,
              const std::vector<Tensor>& item_embs,
              const std::vector<std::vector<float>>& row_weights,
              const ImcatConfig& config) const;

 private:
  int num_intents_;
  int64_t dim_;
  int64_t chunk_;
  // Per-intent parameters (Eqs. 10 and 14).
  std::vector<Tensor> w0_;  ///< (d x chunk) tag projection.
  std::vector<Tensor> b0_;  ///< (1 x chunk).
  std::vector<Tensor> w1_;  ///< (chunk x chunk) NLT layer 1.
  std::vector<Tensor> b1_;  ///< (1 x chunk).
  std::vector<Tensor> w2_;  ///< (chunk x chunk) NLT layer 2.
};

}  // namespace imcat

#endif  // IMCAT_CORE_ALIGNMENT_H_
