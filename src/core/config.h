#ifndef IMCAT_CORE_CONFIG_H_
#define IMCAT_CORE_CONFIG_H_

#include <cstdint>

/// \file config.h
/// Hyper-parameters of the IMCAT framework (Sec. IV and V-D). Defaults
/// follow the paper where stated: tau = eta = 1, K selected from
/// {1,2,4,8,16} (4 is a common optimum), delta from {0.1..0.9} (0.7/0.9
/// best), alpha/beta/gamma grid-searched over {1e-3 .. 10}.

namespace imcat {

struct ImcatConfig {
  /// K: number of user intents == tag clusters (Sec. IV-A).
  int num_intents = 4;

  /// Loss weights of Eq. 18: L = L_UV + alpha L_VT + beta L_CA* + gamma
  /// L_KL. The paper grid-searches these per dataset from
  /// {1e-3, 1e-2, 1e-1, 1, 5, 10}; the defaults below are the values that
  /// won the grid search on the synthetic presets of this repository.
  float alpha = 0.1f;
  float beta = 0.3f;
  float gamma = 0.1f;

  /// Weight of the intent-independence (distance correlation) regulariser,
  /// following KGIN as cited in Sec. V-D.
  float independence_weight = 0.01f;

  /// InfoNCE smoothing factor tau (Eqs. 12-13). The paper fixes tau = 1;
  /// 0.2 wins the grid on the synthetic presets and is the library default.
  float tau = 0.2f;

  /// Student-t degrees of freedom eta (Eq. 4).
  float eta = 1.0f;

  /// delta: Jaccard threshold for the ISA similar-item sets (Eq. 15).
  float jaccard_threshold = 0.7f;

  /// Mini-batch sizes: ranking losses and contrastive-alignment anchors.
  int64_t batch_size = 1024;
  int64_t ca_batch_size = 256;

  /// Cap on the number of interacting users averaged per item in Eq. 7
  /// (uniformly subsampled beyond the cap).
  int64_t max_users_per_item = 32;

  /// Cap on the stored similar-set size per (item, intent) in ISA.
  int64_t max_similar_items = 20;

  /// Optimisation steps before the clustering / alignment losses activate
  /// (the paper pre-trains so tag embeddings are informative, Sec. V-D).
  int64_t pretrain_steps = 200;

  /// Refresh the hard tag-cluster memberships every this many steps after
  /// activation (the paper: every 10 iterations).
  int64_t cluster_refresh_steps = 10;

  /// Rebuild the ISA similar-item sets every this many cluster refreshes
  /// (the Jaccard index pass is the most expensive maintenance step).
  int64_t isa_refresh_multiplier = 10;

  /// Number of sampled rows for the independence regulariser.
  int64_t independence_sample_rows = 64;

  // --- Module switches (Table III ablations) ---------------------------
  /// Master switch for the contrastive alignment ("w/o UIT" disables it).
  bool enable_alignment = true;
  /// Include the item embedding in z ("w/o UI" drops it: align U with T).
  bool align_include_item = true;
  /// Include the tag aggregation in z ("w/o UT" drops it: align U with I).
  bool align_include_tag = true;
  /// Non-linear transformation head before the alignment ("w/o NLT").
  bool enable_nlt = true;
  /// Intent-aware set-to-set alignment (Fig. 6 studies its threshold).
  bool enable_isa = true;

  uint64_t seed = 29;
};

}  // namespace imcat

#endif  // IMCAT_CORE_CONFIG_H_
