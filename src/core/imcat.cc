#include "core/imcat.h"

#include "core/independence.h"
#include "core/set_alignment.h"
#include "tensor/autograd.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace imcat {

ImcatModel::ImcatModel(std::unique_ptr<Backbone> backbone,
                       const Dataset& dataset, const DataSplit& split,
                       const ImcatConfig& config, const AdamOptions& adam)
    : backbone_(std::move(backbone)),
      config_(config),
      clustering_(config.num_intents, backbone_->embedding_dim(), config.eta,
                  config.seed ^ 0x5eedbeefULL),
      pos_index_(dataset, split.train, config.num_intents),
      alignment_(config.num_intents, backbone_->embedding_dim(),
                 config.seed ^ 0xa11a9bedULL),
      ui_sampler_(dataset.num_users, dataset.num_items, split.train),
      vt_sampler_(dataset.num_items, dataset.num_tags, dataset.item_tags),
      item_sampler_(dataset.num_items, split.train),
      optimizer_(adam) {
  Rng rng(config.seed ^ 0x7a97ab1eULL);
  tag_table_ = XavierUniform(dataset.num_tags, backbone_->embedding_dim(),
                             &rng, /*treat_as_embedding=*/true);
  optimizer_.AddParameters(backbone_->Parameters());
  optimizer_.AddParameter(tag_table_);
  optimizer_.AddParameter(clustering_.centers());
  optimizer_.AddParameters(alignment_.Parameters());
}

void ImcatModel::ActivateAlignment(Rng* rng) {
  clustering_.WarmStart(tag_table_, rng);
  clustering_.UpdateHardAssignments(tag_table_);
  pos_index_.SetAssignments(clustering_.assignments());
  if (config_.enable_isa) {
    pos_index_.BuildSimilarSets(config_.jaccard_threshold,
                                config_.max_similar_items);
  }
  refreshes_since_isa_rebuild_ = 0;
  alignment_active_ = true;
}

void ImcatModel::MaybeRefreshClusters(Rng* rng) {
  (void)rng;
  if ((step_ - config_.pretrain_steps) % config_.cluster_refresh_steps != 0) {
    return;
  }
  clustering_.UpdateHardAssignments(tag_table_);
  pos_index_.SetAssignments(clustering_.assignments());
  ++refreshes_since_isa_rebuild_;
  if (config_.enable_isa &&
      refreshes_since_isa_rebuild_ >= config_.isa_refresh_multiplier) {
    pos_index_.BuildSimilarSets(config_.jaccard_threshold,
                                config_.max_similar_items);
    refreshes_since_isa_rebuild_ = 0;
  }
}

double ImcatModel::TrainStep(Rng* rng) {
  backbone_->BeginStep();
  last_losses_ = LossBreakdown();

  // L_UV: the BPR ranking loss on user-item interactions (Eq. 1).
  TripletBatch ui_batch;
  ui_sampler_.SampleBatch(config_.batch_size, rng, &ui_batch, pool_);
  Tensor loss = BprLossFromBackbone(backbone_.get(), ui_batch);
  last_losses_.uv = loss.item();

  // L_VT: BPR over item-tag labels (Eq. 2) — recommend tags to items.
  {
    TripletBatch vt_batch;
    vt_sampler_.SampleBatch(config_.batch_size, rng, &vt_batch, pool_);
    Tensor items = ops::Gather(backbone_->ItemEmbeddings(), vt_batch.anchors);
    Tensor pos_tags = ops::Gather(tag_table_, vt_batch.positives);
    Tensor neg_tags = ops::Gather(tag_table_, vt_batch.negatives);
    Tensor margin = ops::Sub(ops::RowSum(ops::Mul(items, pos_tags)),
                             ops::RowSum(ops::Mul(items, neg_tags)));
    Tensor vt =
        ops::ScalarMul(ops::Mean(ops::LogSigmoid(margin)), -1.0f);
    last_losses_.vt = vt.item();
    loss = ops::Add(loss, ops::ScalarMul(vt, config_.alpha));
  }

  // Clustering + alignment activate after the pre-training phase so the
  // tag embeddings are informative (Sec. V-D).
  CaBatch ca_batch;  // Must outlive Backward(): owns SpMM operands.
  if (step_ >= config_.pretrain_steps) {
    if (!alignment_active_) {
      ActivateAlignment(rng);
    } else {
      MaybeRefreshClusters(rng);
    }

    // L_KL: self-supervised clustering loss (Eq. 6).
    if (config_.gamma > 0.0f) {
      Tensor kl = clustering_.KlLoss(tag_table_);
      last_losses_.kl = kl.item();
      loss = ops::Add(loss, ops::ScalarMul(kl, config_.gamma));
    }

    // L_CA*: the intent-aware multi-source (set-to-set) contrastive
    // alignment (Eqs. 11-17).
    if (config_.enable_alignment && config_.beta > 0.0f) {
      std::vector<int64_t> anchors;
      item_sampler_.SampleBatch(config_.ca_batch_size, rng, &anchors);
      ca_batch = BuildCaBatch(pos_index_, backbone_->UserEmbeddings(),
                              tag_table_, backbone_->ItemEmbeddings(),
                              anchors, config_, rng);
      Tensor ca =
          alignment_.Loss(ca_batch.user_agg, ca_batch.tag_aggs,
                          ca_batch.item_embs, ca_batch.weights, config_);
      last_losses_.ca = ca.item();
      loss = ops::Add(loss, ops::ScalarMul(ca, config_.beta));
    }

    // Intent-independence regulariser (distance correlation, as in KGIN).
    if (config_.independence_weight > 0.0f && config_.num_intents > 1) {
      Tensor ind = IntentIndependenceLoss(backbone_->UserEmbeddings(),
                                          config_.num_intents,
                                          config_.independence_sample_rows,
                                          rng);
      last_losses_.independence = ind.item();
      loss =
          ops::Add(loss, ops::ScalarMul(ind, config_.independence_weight));
    }
  }

  optimizer_.ZeroGrad();
  Backward(loss);
  optimizer_.Step();
  backbone_->InvalidateEvalCache();
  ++step_;
  return loss.item();
}

int64_t ImcatModel::StepsPerEpoch() const {
  return (ui_sampler_.num_edges() + config_.batch_size - 1) /
         config_.batch_size;
}

std::vector<Tensor> ImcatModel::Parameters() {
  std::vector<Tensor> params = backbone_->Parameters();
  params.push_back(tag_table_);
  params.push_back(clustering_.centers());
  for (Tensor& t : alignment_.Parameters()) params.push_back(t);
  return params;
}

std::string ImcatModel::name() const {
  return ImcatNameForBackbone(backbone_->name());
}

void ImcatModel::ScoreItemsForUser(int64_t user,
                                   std::vector<float>* scores) const {
  backbone_->ScoreItemsForUser(user, scores);
}

std::string ImcatNameForBackbone(const std::string& backbone_name) {
  if (backbone_name == "BPRMF") return "B-IMCAT";
  if (backbone_name == "NeuMF") return "N-IMCAT";
  if (backbone_name == "LightGCN") return "L-IMCAT";
  return backbone_name + "-IMCAT";
}

}  // namespace imcat
