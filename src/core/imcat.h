#ifndef IMCAT_CORE_IMCAT_H_
#define IMCAT_CORE_IMCAT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/alignment.h"
#include "core/config.h"
#include "core/intent_clustering.h"
#include "core/positive_samples.h"
#include "models/backbone.h"

/// \file imcat.h
/// The IMCAT model (Sec. IV): a recommendation backbone augmented with
/// intent-aware representation modelling (IRM), intent-aware multi-source
/// contrastive alignment (IMCA) and intent-aware set-to-set alignment
/// (ISA), trained with the joint objective of Eq. 18:
///
///   L = L_UV + alpha L_VT + beta L_CA* + gamma L_KL  (+ independence).
///
/// The model is backbone-agnostic: pass any Backbone (BPRMF -> B-IMCAT,
/// NeuMF -> N-IMCAT, LightGCN -> L-IMCAT, or a custom one).

namespace imcat {

class ImcatModel : public TrainableModel {
 public:
  /// The dataset provides the item-tag labels; the split's training edges
  /// provide the collaborative-filtering signal. Both must outlive the
  /// model.
  ImcatModel(std::unique_ptr<Backbone> backbone, const Dataset& dataset,
             const DataSplit& split, const ImcatConfig& config,
             const AdamOptions& adam);

  // TrainableModel:
  double TrainStep(Rng* rng) override;
  int64_t StepsPerEpoch() const override;
  std::vector<Tensor> Parameters() override;
  std::string name() const override;
  AdamOptimizer* optimizer() override { return &optimizer_; }
  void set_thread_pool(ThreadPool* pool) override { pool_ = pool; }
  void ScoreItemsForUser(int64_t user,
                         std::vector<float>* scores) const override;
  void PrepareScoring() const override { backbone_->PrepareScoring(); }

  /// Accessors for analysis / examples.
  Backbone* backbone() { return backbone_.get(); }
  const ImcatConfig& config() const { return config_; }
  Tensor tag_embeddings() { return tag_table_; }
  const IntentClustering& clustering() const { return clustering_; }
  const PositiveSampleIndex& positive_index() const { return pos_index_; }

  /// True once the pre-training phase finished and clustering/alignment
  /// losses are active.
  bool alignment_active() const { return alignment_active_; }

  /// Individual loss-term values of the last TrainStep, for diagnostics.
  struct LossBreakdown {
    double uv = 0.0;
    double vt = 0.0;
    double ca = 0.0;
    double kl = 0.0;
    double independence = 0.0;
  };
  const LossBreakdown& last_losses() const { return last_losses_; }

 private:
  void ActivateAlignment(Rng* rng);
  void MaybeRefreshClusters(Rng* rng);

  std::unique_ptr<Backbone> backbone_;
  ImcatConfig config_;

  Tensor tag_table_;  ///< (T x d) trainable tag embeddings.
  IntentClustering clustering_;
  PositiveSampleIndex pos_index_;
  AlignmentHead alignment_;

  TripletSampler ui_sampler_;  ///< (u, v+, v-) for L_UV.
  TripletSampler vt_sampler_;  ///< (v, t+, t-) for L_VT.
  ItemBatchSampler item_sampler_;
  ThreadPool* pool_ = nullptr;  ///< Optional parallel-sampling pool.

  AdamOptimizer optimizer_;
  int64_t step_ = 0;
  bool alignment_active_ = false;
  int64_t refreshes_since_isa_rebuild_ = 0;
  LossBreakdown last_losses_;
};

/// The paper's naming convention for a backbone wrapped in IMCAT:
/// "BPRMF" -> "B-IMCAT", "NeuMF" -> "N-IMCAT", "LightGCN" -> "L-IMCAT",
/// anything else -> "<name>-IMCAT".
std::string ImcatNameForBackbone(const std::string& backbone_name);

}  // namespace imcat

#endif  // IMCAT_CORE_IMCAT_H_
