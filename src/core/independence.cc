#include "core/independence.h"

#include <vector>

#include "tensor/ops.h"
#include "util/check.h"

namespace imcat {

namespace {

/// Squared distance covariance via dCov^2 = S1 - 2 S2 + S3 over the
/// pairwise Euclidean distance matrices.
Tensor SquaredDistanceCovariance(const Tensor& dist_a, const Tensor& dist_b) {
  const int64_t n = dist_a.rows();
  const float inv_n2 = 1.0f / static_cast<float>(n * n);
  // S1 = (1/n^2) sum_ij A_ij B_ij.
  Tensor s1 = ops::ScalarMul(ops::Sum(ops::Mul(dist_a, dist_b)), inv_n2);
  // S2 = (1/n^3) sum_i (rowsum A)_i (rowsum B)_i.
  Tensor s2 = ops::ScalarMul(
      ops::Sum(ops::Mul(ops::RowSum(dist_a), ops::RowSum(dist_b))),
      inv_n2 / static_cast<float>(n));
  // S3 = (1/n^4) (sum A)(sum B).
  Tensor s3 = ops::ScalarMul(ops::Mul(ops::Sum(dist_a), ops::Sum(dist_b)),
                             inv_n2 * inv_n2);
  return ops::Add(ops::Sub(s1, ops::ScalarMul(s2, 2.0f)), s3);
}

Tensor DistanceMatrix(const Tensor& a) {
  // sqrt of squared distances, eps-shifted to keep Pow differentiable at 0.
  return ops::Pow(ops::ScalarAdd(ops::PairwiseSqDist(a, a), 1e-10f), 0.5f);
}

}  // namespace

Tensor DistanceCorrelation(const Tensor& a, const Tensor& b) {
  IMCAT_CHECK_EQ(a.rows(), b.rows());
  IMCAT_CHECK_GE(a.rows(), 2);
  Tensor dist_a = DistanceMatrix(a);
  Tensor dist_b = DistanceMatrix(b);
  Tensor dcov_ab =
      ops::Pow(ops::ScalarAdd(SquaredDistanceCovariance(dist_a, dist_b),
                              1e-10f),
               0.5f);
  Tensor dvar_a = SquaredDistanceCovariance(dist_a, dist_a);
  Tensor dvar_b = SquaredDistanceCovariance(dist_b, dist_b);
  Tensor denom =
      ops::Pow(ops::ScalarAdd(ops::Mul(dvar_a, dvar_b), 1e-10f), 0.25f);
  return ops::Mul(dcov_ab, ops::Pow(denom, -1.0f));
}

Tensor IntentIndependenceLoss(const Tensor& table, int num_intents,
                              int64_t sample_rows, Rng* rng) {
  if (num_intents < 2) return Tensor(1, 1);
  const int64_t chunk = table.cols() / num_intents;
  IMCAT_CHECK_EQ(chunk * num_intents, table.cols());
  const int64_t n = std::min<int64_t>(sample_rows, table.rows());
  IMCAT_CHECK_GE(n, 2);
  std::vector<int64_t> indices(n);
  for (int64_t i = 0; i < n; ++i) indices[i] = rng->UniformInt(table.rows());
  Tensor sampled = ops::Gather(table, indices);

  std::vector<Tensor> chunks;
  chunks.reserve(num_intents);
  for (int k = 0; k < num_intents; ++k) {
    chunks.push_back(ops::SliceCols(sampled, k * chunk, (k + 1) * chunk));
  }
  Tensor total;
  for (int k = 0; k < num_intents; ++k) {
    for (int j = k + 1; j < num_intents; ++j) {
      Tensor dcor = DistanceCorrelation(chunks[k], chunks[j]);
      total = total.defined() ? ops::Add(total, dcor) : dcor;
    }
  }
  const float pairs =
      static_cast<float>(num_intents) * (num_intents - 1) / 2.0f;
  return ops::ScalarMul(total, 1.0f / pairs);
}

}  // namespace imcat
