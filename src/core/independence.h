#ifndef IMCAT_CORE_INDEPENDENCE_H_
#define IMCAT_CORE_INDEPENDENCE_H_

#include "tensor/tensor.h"
#include "util/rng.h"

/// \file independence.h
/// Intent-independence regularisation (Sec. V-D): following KGIN [31], the
/// correlation between different intent sub-embeddings is minimised with
/// distance correlation, ensuring the K intents are disentangled.

namespace imcat {

/// Sample distance correlation dCor(a, b) between two paired sample
/// matrices (n x da) and (n x db), as a differentiable (1 x 1) tensor in
/// [0, ~1]. Uses the standard S1 - 2 S2 + S3 decomposition of the squared
/// distance covariance.
Tensor DistanceCorrelation(const Tensor& a, const Tensor& b);

/// Sum of dCor over all pairs of intent chunks, evaluated on
/// `sample_rows` randomly sampled rows of `table` (a user or item
/// embedding table of width d split into `num_intents` chunks). Returns a
/// constant zero tensor when num_intents < 2.
Tensor IntentIndependenceLoss(const Tensor& table, int num_intents,
                              int64_t sample_rows, Rng* rng);

}  // namespace imcat

#endif  // IMCAT_CORE_INDEPENDENCE_H_
