#include "core/intent_clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace imcat {

IntentClustering::IntentClustering(int num_clusters, int64_t dim, float eta,
                                   uint64_t seed)
    : num_clusters_(num_clusters), dim_(dim), eta_(eta) {
  IMCAT_CHECK_GE(num_clusters, 1);
  IMCAT_CHECK_GT(eta, 0.0f);
  Rng rng(seed);
  centers_ = RandomNormal(num_clusters, dim, &rng, 0.0f, 0.1f);
}

void IntentClustering::WarmStart(const Tensor& tag_table, Rng* rng) {
  const int64_t num_tags = tag_table.rows();
  IMCAT_CHECK_EQ(tag_table.cols(), dim_);
  IMCAT_CHECK_GE(num_tags, num_clusters_);
  const float* tags = tag_table.data();

  // k-means++ seeding: first centre uniform, then proportional to the
  // squared distance to the nearest chosen centre.
  std::vector<int64_t> chosen;
  chosen.push_back(rng->UniformInt(num_tags));
  std::vector<double> min_dist(num_tags,
                               std::numeric_limits<double>::infinity());
  while (static_cast<int>(chosen.size()) < num_clusters_) {
    const float* last = tags + chosen.back() * dim_;
    for (int64_t t = 0; t < num_tags; ++t) {
      double d = 0.0;
      const float* row = tags + t * dim_;
      for (int64_t c = 0; c < dim_; ++c) {
        const double diff = row[c] - last[c];
        d += diff * diff;
      }
      min_dist[t] = std::min(min_dist[t], d);
    }
    chosen.push_back(rng->Categorical(min_dist));
  }
  float* centers = centers_.data();
  for (int k = 0; k < num_clusters_; ++k) {
    const float* row = tags + chosen[k] * dim_;
    for (int64_t c = 0; c < dim_; ++c) centers[k * dim_ + c] = row[c];
  }
}

Tensor IntentClustering::SoftAssignments(const Tensor& tag_table) const {
  IMCAT_CHECK_EQ(tag_table.cols(), dim_);
  // Q_lk ∝ (1 + ||t_l - mu_k||^2 / eta)^{-(eta+1)/2}.
  Tensor dist = ops::PairwiseSqDist(tag_table, centers_);
  Tensor kernel = ops::Pow(ops::ScalarAdd(ops::ScalarMul(dist, 1.0f / eta_),
                                          1.0f),
                           -(eta_ + 1.0f) / 2.0f);
  return ops::RowNormalize(kernel);
}

std::vector<float> IntentClustering::TargetDistribution(
    const std::vector<float>& q, int64_t rows, int64_t cols) {
  IMCAT_CHECK_EQ(static_cast<int64_t>(q.size()), rows * cols);
  // Column frequencies f_k = sum_l Q_lk.
  std::vector<double> freq(cols, 0.0);
  for (int64_t l = 0; l < rows; ++l) {
    for (int64_t k = 0; k < cols; ++k) freq[k] += q[l * cols + k];
  }
  std::vector<float> target(q.size());
  for (int64_t l = 0; l < rows; ++l) {
    double row_sum = 0.0;
    for (int64_t k = 0; k < cols; ++k) {
      const double v =
          freq[k] > 0.0
              ? static_cast<double>(q[l * cols + k]) * q[l * cols + k] / freq[k]
              : 0.0;
      target[l * cols + k] = static_cast<float>(v);
      row_sum += v;
    }
    if (row_sum > 0.0) {
      for (int64_t k = 0; k < cols; ++k) {
        target[l * cols + k] = static_cast<float>(target[l * cols + k] / row_sum);
      }
    }
  }
  return target;
}

Tensor IntentClustering::KlLoss(const Tensor& tag_table) const {
  Tensor q = SoftAssignments(tag_table);
  const int64_t rows = q.rows(), cols = q.cols();
  std::vector<float> q_values(q.data(), q.data() + q.size());
  const std::vector<float> target = TargetDistribution(q_values, rows, cols);
  Tensor target_const(rows, cols, target);

  // KL(Q_hat || Q) = sum Q_hat log Q_hat - sum Q_hat log Q. The first term
  // is a constant w.r.t. parameters; adding it keeps the reported value a
  // true KL divergence.
  double entropy_term = 0.0;
  for (float p : target) {
    if (p > 1e-12f) entropy_term += static_cast<double>(p) * std::log(p);
  }
  Tensor cross = ops::Sum(ops::Mul(target_const, ops::Log(q)));
  return ops::ScalarAdd(ops::ScalarMul(cross, -1.0f),
                        static_cast<float>(entropy_term));
}

void IntentClustering::UpdateHardAssignments(const Tensor& tag_table) {
  Tensor detached = tag_table.DetachedCopy();
  Tensor q = SoftAssignments(detached);
  const int64_t rows = q.rows();
  assignments_.resize(rows);
  for (int64_t l = 0; l < rows; ++l) {
    int best = 0;
    float best_v = q.at(l, 0);
    for (int k = 1; k < num_clusters_; ++k) {
      if (q.at(l, k) > best_v) {
        best_v = q.at(l, k);
        best = k;
      }
    }
    assignments_[l] = best;
  }
}

}  // namespace imcat
