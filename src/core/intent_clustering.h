#ifndef IMCAT_CORE_INTENT_CLUSTERING_H_
#define IMCAT_CORE_INTENT_CLUSTERING_H_

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

/// \file intent_clustering.h
/// Self-supervised end-to-end tag clustering (Sec. IV-A2): learnable
/// cluster centres mu in R^{K x d}, a Student-t soft assignment Q (Eq. 4),
/// a self-sharpening target distribution Q-hat (Eq. 5) and the KL
/// clustering loss (Eq. 6). Hard memberships (argmax_k Q_lk) connect each
/// tag to one intent.

namespace imcat {

class IntentClustering {
 public:
  /// Creates K trainable centres of width `dim`, randomly initialised
  /// from `seed`.
  IntentClustering(int num_clusters, int64_t dim, float eta, uint64_t seed);

  int num_clusters() const { return num_clusters_; }
  Tensor centers() { return centers_; }

  /// Re-initialises the centres from the current tag embeddings with
  /// k-means++ seeding (called once when clustering activates, after the
  /// pre-training phase has made tag embeddings informative).
  void WarmStart(const Tensor& tag_table, Rng* rng);

  /// Soft assignment matrix Q (num_tags x K) as a graph-connected tensor;
  /// gradients flow to both the tag table and the centres.
  Tensor SoftAssignments(const Tensor& tag_table) const;

  /// The KL clustering loss KL(Q-hat || Q) of Eq. 6, with Q-hat treated as
  /// a constant target (standard DEC-style self-supervision). The constant
  /// entropy term of Q-hat is included so the value is a true KL >= 0.
  Tensor KlLoss(const Tensor& tag_table) const;

  /// Recomputes the hard memberships argmax_k(Q_lk) from the current
  /// embeddings (done every few iterations for stability, Sec. V-D).
  void UpdateHardAssignments(const Tensor& tag_table);

  /// Hard membership per tag; empty until the first update.
  const std::vector<int>& assignments() const { return assignments_; }

  /// Computes Q-hat (Eq. 5) from a row-stochastic Q, exposed for testing.
  static std::vector<float> TargetDistribution(const std::vector<float>& q,
                                               int64_t rows, int64_t cols);

 private:
  int num_clusters_;
  int64_t dim_;
  float eta_;
  Tensor centers_;
  std::vector<int> assignments_;
};

}  // namespace imcat

#endif  // IMCAT_CORE_INTENT_CLUSTERING_H_
