#include "core/positive_samples.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"

namespace imcat {

namespace {
const std::vector<int64_t>& EmptyList() {
  static const std::vector<int64_t>& empty = *new std::vector<int64_t>();
  return empty;
}
}  // namespace

PositiveSampleIndex::PositiveSampleIndex(const Dataset& dataset,
                                         const EdgeList& train_interactions,
                                         int num_intents)
    : num_intents_(num_intents),
      num_users_(dataset.num_users),
      num_items_(dataset.num_items),
      num_tags_(dataset.num_tags),
      users_of_item_(dataset.num_users, dataset.num_items, train_interactions),
      item_tag_index_(dataset.num_items, dataset.num_tags, dataset.item_tags) {
  IMCAT_CHECK_GE(num_intents, 1);
}

void PositiveSampleIndex::SetAssignments(
    const std::vector<int>& tag_assignments) {
  IMCAT_CHECK_EQ(static_cast<int64_t>(tag_assignments.size()), num_tags_);
  tags_by_item_cluster_.assign(num_items_ * num_intents_, {});
  relatedness_.assign(num_items_ * num_intents_, 0.0f);
  for (int64_t item = 0; item < num_items_; ++item) {
    for (int64_t tag : item_tag_index_.Forward(item)) {
      const int k = tag_assignments[tag];
      IMCAT_CHECK(k >= 0 && k < num_intents_);
      tags_by_item_cluster_[IndexOf(item, k)].push_back(tag);
    }
    // M_{j,k} = softmax_k(|T^k(v_j)|)  (Eq. 9), computed stably.
    int64_t max_count = 0;
    for (int k = 0; k < num_intents_; ++k) {
      max_count = std::max(
          max_count,
          static_cast<int64_t>(tags_by_item_cluster_[IndexOf(item, k)].size()));
    }
    double total = 0.0;
    for (int k = 0; k < num_intents_; ++k) {
      const int64_t count = tags_by_item_cluster_[IndexOf(item, k)].size();
      const double e = std::exp(static_cast<double>(count - max_count));
      relatedness_[IndexOf(item, k)] = static_cast<float>(e);
      total += e;
    }
    for (int k = 0; k < num_intents_; ++k) {
      relatedness_[IndexOf(item, k)] =
          static_cast<float>(relatedness_[IndexOf(item, k)] / total);
    }
  }
  similar_sets_.clear();
}

float PositiveSampleIndex::Relatedness(int64_t item, int intent) const {
  IMCAT_CHECK(has_assignments());
  IMCAT_CHECK(item >= 0 && item < num_items_);
  IMCAT_CHECK(intent >= 0 && intent < num_intents_);
  return relatedness_[IndexOf(item, intent)];
}

const std::vector<int64_t>& PositiveSampleIndex::TagsOfItemInCluster(
    int64_t item, int intent) const {
  IMCAT_CHECK(has_assignments());
  IMCAT_CHECK(item >= 0 && item < num_items_);
  IMCAT_CHECK(intent >= 0 && intent < num_intents_);
  return tags_by_item_cluster_[IndexOf(item, intent)];
}

std::unique_ptr<SparseMatrix> PositiveSampleIndex::BuildUserAggregation(
    const std::vector<int64_t>& items, int64_t max_users, Rng* rng) const {
  IMCAT_CHECK_GT(max_users, 0);
  std::vector<int64_t> rows, cols;
  std::vector<float> weights;
  for (size_t b = 0; b < items.size(); ++b) {
    const std::vector<int64_t>& users = UsersOfItem(items[b]);
    const int64_t degree = static_cast<int64_t>(users.size());
    if (degree == 0) continue;
    if (degree <= max_users) {
      const float w = 1.0f / static_cast<float>(degree);
      for (int64_t u : users) {
        rows.push_back(static_cast<int64_t>(b));
        cols.push_back(u);
        weights.push_back(w);
      }
    } else {
      // Uniform subsample without replacement (partial Fisher-Yates over a
      // scratch copy).
      std::vector<int64_t> scratch = users;
      const float w = 1.0f / static_cast<float>(max_users);
      for (int64_t i = 0; i < max_users; ++i) {
        const int64_t j = i + rng->UniformInt(degree - i);
        std::swap(scratch[i], scratch[j]);
        rows.push_back(static_cast<int64_t>(b));
        cols.push_back(scratch[i]);
        weights.push_back(w);
      }
    }
  }
  return std::make_unique<SparseMatrix>(SparseMatrix::FromTriplets(
      static_cast<int64_t>(items.size()), num_users_, rows, cols, weights));
}

std::unique_ptr<SparseMatrix> PositiveSampleIndex::BuildTagAggregation(
    const std::vector<int64_t>& items, int intent) const {
  IMCAT_CHECK(has_assignments());
  std::vector<int64_t> rows, cols;
  std::vector<float> weights;
  for (size_t b = 0; b < items.size(); ++b) {
    const std::vector<int64_t>& tags =
        tags_by_item_cluster_[IndexOf(items[b], intent)];
    if (tags.empty()) continue;  // t-bar^k stays the zero vector.
    const float w = 1.0f / static_cast<float>(tags.size());
    for (int64_t t : tags) {
      rows.push_back(static_cast<int64_t>(b));
      cols.push_back(t);
      weights.push_back(w);
    }
  }
  return std::make_unique<SparseMatrix>(SparseMatrix::FromTriplets(
      static_cast<int64_t>(items.size()), num_tags_, rows, cols, weights));
}

void PositiveSampleIndex::BuildSimilarSets(float threshold,
                                           int64_t max_per_item) {
  IMCAT_CHECK(has_assignments());
  IMCAT_CHECK(threshold > 0.0f && threshold <= 1.0f);
  similar_sets_.assign(num_items_ * num_intents_, {});

  for (int k = 0; k < num_intents_; ++k) {
    // Inverted index: cluster-k tag -> items carrying it.
    std::vector<std::vector<int64_t>> items_of_tag(num_tags_);
    for (int64_t item = 0; item < num_items_; ++item) {
      for (int64_t t : tags_by_item_cluster_[IndexOf(item, k)]) {
        items_of_tag[t].push_back(item);
      }
    }
    std::unordered_map<int64_t, int64_t> intersection;
    for (int64_t item = 0; item < num_items_; ++item) {
      const auto& own_tags = tags_by_item_cluster_[IndexOf(item, k)];
      if (own_tags.empty()) continue;
      intersection.clear();
      for (int64_t t : own_tags) {
        for (int64_t other : items_of_tag[t]) {
          if (other != item) ++intersection[other];
        }
      }
      // Score candidates by Jaccard and keep the best above threshold.
      std::vector<std::pair<float, int64_t>> passing;
      const int64_t own_size = static_cast<int64_t>(own_tags.size());
      for (const auto& [other, inter] : intersection) {
        const int64_t other_size = static_cast<int64_t>(
            tags_by_item_cluster_[IndexOf(other, k)].size());
        const float jaccard =
            static_cast<float>(inter) /
            static_cast<float>(own_size + other_size - inter);
        if (jaccard > threshold) passing.emplace_back(jaccard, other);
      }
      std::sort(passing.begin(), passing.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });
      if (static_cast<int64_t>(passing.size()) > max_per_item) {
        passing.resize(max_per_item);
      }
      auto& set = similar_sets_[IndexOf(item, k)];
      set.reserve(passing.size());
      for (const auto& [jaccard, other] : passing) {
        (void)jaccard;
        set.push_back(other);
      }
    }
  }
}

const std::vector<int64_t>& PositiveSampleIndex::SimilarSet(int64_t item,
                                                            int intent) const {
  if (similar_sets_.empty()) return EmptyList();
  IMCAT_CHECK(item >= 0 && item < num_items_);
  IMCAT_CHECK(intent >= 0 && intent < num_intents_);
  return similar_sets_[IndexOf(item, intent)];
}

int64_t PositiveSampleIndex::SamplePositive(int64_t item, int intent,
                                            Rng* rng) const {
  const std::vector<int64_t>& set = SimilarSet(item, intent);
  if (set.empty()) return item;
  // P_j^k includes j itself plus its similar set; sample uniformly.
  const int64_t pick = rng->UniformInt(static_cast<int64_t>(set.size()) + 1);
  return pick == 0 ? item : set[pick - 1];
}

}  // namespace imcat
