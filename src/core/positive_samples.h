#ifndef IMCAT_CORE_POSITIVE_SAMPLES_H_
#define IMCAT_CORE_POSITIVE_SAMPLES_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "tensor/sparse.h"
#include "util/rng.h"

/// \file positive_samples.h
/// Multi-source positive-sample construction for the IMCA module
/// (Sec. IV-B1): per-item user aggregations (Eq. 7), per-item per-cluster
/// tag aggregations (Eq. 8), the intent-relatedness matrix M (Eq. 9), and
/// the ISA similar-item sets based on the per-intent Jaccard index
/// (Eq. 15).
///
/// Aggregations are materialised as per-batch sparse averaging matrices so
/// the whole construction stays differentiable through a single SpMM.

namespace imcat {

class PositiveSampleIndex {
 public:
  /// `train_interactions` are the (user, item) training edges; item-tag
  /// labels come from the dataset (auxiliary information is not split).
  PositiveSampleIndex(const Dataset& dataset,
                      const EdgeList& train_interactions, int num_intents);

  int num_intents() const { return num_intents_; }
  int64_t num_items() const { return num_items_; }

  /// Installs new hard tag-cluster memberships and recomputes the
  /// cluster-dependent state (per-cluster tag lists and M). Does NOT
  /// rebuild the ISA sets; call BuildSimilarSets for that.
  void SetAssignments(const std::vector<int>& tag_assignments);

  /// True once SetAssignments has been called.
  bool has_assignments() const { return !tags_by_item_cluster_.empty(); }

  /// M_{j,k} of Eq. 9 (softmax over per-cluster tag counts of item j).
  float Relatedness(int64_t item, int intent) const;

  /// T^k(v_j): tags of `item` lying in cluster `intent`.
  const std::vector<int64_t>& TagsOfItemInCluster(int64_t item,
                                                  int intent) const;

  /// Users who interacted with `item` in training.
  const std::vector<int64_t>& UsersOfItem(int64_t item) const {
    return users_of_item_.Backward(item);
  }

  /// Builds the (batch x num_users) row-stochastic averaging matrix whose
  /// SpMM with the user table yields u-bar (Eq. 7). At most `max_users`
  /// interacting users are uniformly subsampled per item; items without
  /// training users get an all-zero row. The caller owns the matrix and
  /// must keep it alive until Backward() has run.
  std::unique_ptr<SparseMatrix> BuildUserAggregation(
      const std::vector<int64_t>& items, int64_t max_users, Rng* rng) const;

  /// Builds the (batch x num_tags) averaging matrix for t-bar^k (Eq. 8):
  /// row j averages the tags of items[j] lying in cluster `intent`
  /// (all-zero row when the item has no tag in that cluster, as specified
  /// in the paper). Same lifetime contract as BuildUserAggregation.
  std::unique_ptr<SparseMatrix> BuildTagAggregation(
      const std::vector<int64_t>& items, int intent) const;

  /// Rebuilds the per-intent similar-item sets S_j^k: items whose
  /// per-intent Jaccard similarity (Eq. 15) exceeds `threshold`, capped at
  /// `max_per_item` (closest first). Requires assignments.
  void BuildSimilarSets(float threshold, int64_t max_per_item);

  /// S_j^k (empty when ISA sets were never built or no neighbour passed
  /// the threshold).
  const std::vector<int64_t>& SimilarSet(int64_t item, int intent) const;

  /// Samples a positive partner for (item, intent): a member of S_j^k
  /// uniformly at random, or `item` itself when the set is empty — this
  /// realises Eq. 17's positive set P_j^k (which always contains j).
  int64_t SamplePositive(int64_t item, int intent, Rng* rng) const;

 private:
  int64_t IndexOf(int64_t item, int intent) const {
    return item * num_intents_ + intent;
  }

  int num_intents_;
  int64_t num_users_;
  int64_t num_items_;
  int64_t num_tags_;
  BipartiteIndex users_of_item_;  ///< (user -> item) edges; Backward = users.
  BipartiteIndex item_tag_index_;

  // Cluster-dependent state (rebuilt by SetAssignments).
  std::vector<std::vector<int64_t>> tags_by_item_cluster_;  ///< V*K entries.
  std::vector<float> relatedness_;                          ///< V*K (M).

  // ISA state (rebuilt by BuildSimilarSets).
  std::vector<std::vector<int64_t>> similar_sets_;  ///< V*K entries.
};

}  // namespace imcat

#endif  // IMCAT_CORE_POSITIVE_SAMPLES_H_
