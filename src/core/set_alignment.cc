#include "core/set_alignment.h"

#include "tensor/ops.h"
#include "util/check.h"

namespace imcat {

CaBatch BuildCaBatch(const PositiveSampleIndex& index,
                     const Tensor& user_table, const Tensor& tag_table,
                     const Tensor& item_table,
                     const std::vector<int64_t>& anchors,
                     const ImcatConfig& config, Rng* rng) {
  IMCAT_CHECK(index.has_assignments());
  IMCAT_CHECK(!anchors.empty());
  const int num_intents = index.num_intents();

  CaBatch batch;
  batch.anchors = anchors;

  // u-bar: intent-aware aggregation of the anchors' interacting users
  // (Eq. 7) via one row-stochastic SpMM over the full width (slicing into
  // chunks afterwards is equivalent because the mean is linear).
  auto user_mat =
      index.BuildUserAggregation(anchors, config.max_users_per_item, rng);
  batch.user_agg = ops::SpMM(*user_mat, user_table);
  batch.aggregation_matrices.push_back(std::move(user_mat));

  batch.positives.resize(num_intents);
  batch.weights.resize(num_intents);
  batch.tag_aggs.reserve(num_intents);
  batch.item_embs.reserve(num_intents);
  for (int k = 0; k < num_intents; ++k) {
    auto& positives = batch.positives[k];
    positives.resize(anchors.size());
    auto& weights = batch.weights[k];
    weights.resize(anchors.size());
    for (size_t i = 0; i < anchors.size(); ++i) {
      positives[i] = config.enable_isa
                         ? index.SamplePositive(anchors[i], k, rng)
                         : anchors[i];
      weights[i] = index.Relatedness(anchors[i], k);
    }
    auto tag_mat = index.BuildTagAggregation(positives, k);
    batch.tag_aggs.push_back(ops::SpMM(*tag_mat, tag_table));
    batch.aggregation_matrices.push_back(std::move(tag_mat));
    batch.item_embs.push_back(ops::Gather(item_table, positives));
  }
  return batch;
}

}  // namespace imcat
