#ifndef IMCAT_CORE_SET_ALIGNMENT_H_
#define IMCAT_CORE_SET_ALIGNMENT_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/positive_samples.h"
#include "tensor/tensor.h"

/// \file set_alignment.h
/// Per-batch construction of the contrastive-alignment inputs. With ISA
/// enabled (Sec. IV-C), each anchor item's z-side under intent k is drawn
/// from its similar-item set S_j^k (Eq. 17), turning IMCA into the
/// set-to-set alignment L_CA*; with ISA disabled, the positive item is the
/// anchor itself (plain L_CA, Eq. 11).

namespace imcat {

/// Everything the AlignmentHead needs for one step, plus the sparse
/// aggregation matrices that MUST outlive the Backward() call of the step
/// (their backward closures reference them).
struct CaBatch {
  std::vector<int64_t> anchors;                 ///< B anchor item ids.
  std::vector<std::vector<int64_t>> positives;  ///< K x B positive item ids.
  std::vector<std::vector<float>> weights;      ///< K x B: M_{anchor, k}.
  Tensor user_agg;                              ///< (B x d) u-bar.
  std::vector<Tensor> tag_aggs;                 ///< K x (B x d) t-bar^k.
  std::vector<Tensor> item_embs;                ///< K x (B x d) v of positives.
  std::vector<std::unique_ptr<SparseMatrix>> aggregation_matrices;
};

/// Builds a CaBatch from the current embeddings.
///
/// \param index       positive-sample index with assignments installed.
/// \param user_table  (U x d) graph-connected user embeddings.
/// \param tag_table   (T x d) graph-connected tag embeddings.
/// \param item_table  (V x d) graph-connected item embeddings.
/// \param anchors     the B anchor items of this step.
CaBatch BuildCaBatch(const PositiveSampleIndex& index, const Tensor& user_table,
                     const Tensor& tag_table, const Tensor& item_table,
                     const std::vector<int64_t>& anchors,
                     const ImcatConfig& config, Rng* rng);

}  // namespace imcat

#endif  // IMCAT_CORE_SET_ALIGNMENT_H_
