#include "data/dataset.h"

#include <algorithm>

#include "util/check.h"

namespace imcat {

BipartiteIndex::BipartiteIndex(int64_t num_left, int64_t num_right,
                               const EdgeList& edges)
    : num_left_(num_left), num_right_(num_right) {
  forward_.resize(num_left);
  backward_.resize(num_right);
  for (const auto& [l, r] : edges) {
    IMCAT_CHECK(l >= 0 && l < num_left);
    IMCAT_CHECK(r >= 0 && r < num_right);
    forward_[l].push_back(r);
    backward_[r].push_back(l);
  }
  auto dedup = [](std::vector<std::vector<int64_t>>* adj) {
    int64_t total = 0;
    for (auto& v : *adj) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      total += static_cast<int64_t>(v.size());
    }
    return total;
  };
  num_edges_ = dedup(&forward_);
  dedup(&backward_);
}

const std::vector<int64_t>& BipartiteIndex::Forward(int64_t l) const {
  IMCAT_CHECK(l >= 0 && l < num_left_);
  return forward_[l];
}

const std::vector<int64_t>& BipartiteIndex::Backward(int64_t r) const {
  IMCAT_CHECK(r >= 0 && r < num_right_);
  return backward_[r];
}

bool BipartiteIndex::Contains(int64_t l, int64_t r) const {
  const auto& f = Forward(l);
  return std::binary_search(f.begin(), f.end(), r);
}

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.num_users = dataset.num_users;
  stats.num_items = dataset.num_items;
  stats.num_tags = dataset.num_tags;
  stats.num_interactions = static_cast<int64_t>(dataset.interactions.size());
  stats.num_item_tags = static_cast<int64_t>(dataset.item_tags.size());
  if (dataset.num_users > 0 && dataset.num_items > 0) {
    stats.ui_density_percent =
        100.0 * static_cast<double>(stats.num_interactions) /
        (static_cast<double>(dataset.num_users) *
         static_cast<double>(dataset.num_items));
    stats.ui_avg_degree = static_cast<double>(stats.num_interactions) /
                          static_cast<double>(dataset.num_users);
  }
  if (dataset.num_items > 0 && dataset.num_tags > 0) {
    stats.it_density_percent =
        100.0 * static_cast<double>(stats.num_item_tags) /
        (static_cast<double>(dataset.num_items) *
         static_cast<double>(dataset.num_tags));
    stats.it_avg_degree = static_cast<double>(stats.num_item_tags) /
                          static_cast<double>(dataset.num_items);
  }
  return stats;
}

int64_t DeduplicateEdges(int64_t num_left, int64_t num_right,
                         EdgeList* edges) {
  for (const auto& [l, r] : *edges) {
    IMCAT_CHECK(l >= 0 && l < num_left);
    IMCAT_CHECK(r >= 0 && r < num_right);
  }
  const int64_t before = static_cast<int64_t>(edges->size());
  std::sort(edges->begin(), edges->end());
  edges->erase(std::unique(edges->begin(), edges->end()), edges->end());
  return before - static_cast<int64_t>(edges->size());
}

}  // namespace imcat
