#ifndef IMCAT_DATA_DATASET_H_
#define IMCAT_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// \file dataset.h
/// The tag-enhanced recommendation dataset abstraction (Sec. III-A of the
/// paper): users U, items V, tags T, a binary user-item interaction matrix
/// Y and a binary item-tag labelling matrix Y'. Both matrices are stored as
/// edge lists plus CSR-style adjacency indexes.

namespace imcat {

/// An edge list between two entity domains (e.g. user-item or item-tag).
using EdgeList = std::vector<std::pair<int64_t, int64_t>>;

/// CSR-style adjacency built from an edge list: for each left-hand entity,
/// the sorted list of right-hand neighbours, and the reverse direction.
class BipartiteIndex {
 public:
  BipartiteIndex() = default;

  /// Builds forward (left -> rights) and backward (right -> lefts) adjacency
  /// from `edges`. Duplicate edges are kept once.
  BipartiteIndex(int64_t num_left, int64_t num_right, const EdgeList& edges);

  int64_t num_left() const { return num_left_; }
  int64_t num_right() const { return num_right_; }
  int64_t num_edges() const { return num_edges_; }

  /// Right-hand neighbours of left entity `l` (sorted, deduplicated).
  const std::vector<int64_t>& Forward(int64_t l) const;

  /// Left-hand neighbours of right entity `r` (sorted, deduplicated).
  const std::vector<int64_t>& Backward(int64_t r) const;

  /// Degree helpers.
  int64_t ForwardDegree(int64_t l) const { return Forward(l).size(); }
  int64_t BackwardDegree(int64_t r) const { return Backward(r).size(); }

  /// True if the (l, r) edge exists (binary search).
  bool Contains(int64_t l, int64_t r) const;

 private:
  int64_t num_left_ = 0;
  int64_t num_right_ = 0;
  int64_t num_edges_ = 0;
  std::vector<std::vector<int64_t>> forward_;
  std::vector<std::vector<int64_t>> backward_;
};

/// A full tag-enhanced dataset: interaction and labelling edge lists over
/// dense integer ids.
struct Dataset {
  std::string name;
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_tags = 0;
  EdgeList interactions;  ///< (user, item) pairs, deduplicated.
  EdgeList item_tags;     ///< (item, tag) pairs, deduplicated.
};

/// Summary statistics in the format of the paper's Table I.
struct DatasetStats {
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_tags = 0;
  int64_t num_interactions = 0;
  double ui_density_percent = 0.0;  ///< 100 * |UI| / (|U| * |I|).
  double ui_avg_degree = 0.0;       ///< |UI| / |U|.
  int64_t num_item_tags = 0;
  double it_density_percent = 0.0;  ///< 100 * |IT| / (|I| * |T|).
  double it_avg_degree = 0.0;       ///< |IT| / |I|.
};

/// Computes the Table-I statistics for a dataset.
DatasetStats ComputeStats(const Dataset& dataset);

/// Removes duplicate edges (in place) and validates id ranges, aborting on
/// out-of-range ids. Returns the number of duplicates removed.
int64_t DeduplicateEdges(int64_t num_left, int64_t num_right, EdgeList* edges);

}  // namespace imcat

#endif  // IMCAT_DATA_DATASET_H_
