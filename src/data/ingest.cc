#include "data/ingest.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "util/fault_injector.h"
#include "util/string_util.h"

namespace imcat {

namespace {

/// I/O chunk size for the streaming reader.
constexpr size_t kChunkBytes = 1 << 16;

/// How much of an offending line the quarantine report retains.
constexpr size_t kSampleTextBytes = 80;

const char kUtf8Bom[] = "\xEF\xBB\xBF";

}  // namespace

const char* IngestErrorName(IngestError error) {
  switch (error) {
    case IngestError::kLineTooLong:
      return "line-too-long";
    case IngestError::kTruncatedFinalLine:
      return "truncated-final-line";
    case IngestError::kBadColumnCount:
      return "bad-column-count";
    case IngestError::kNonIntegerToken:
      return "non-integer-token";
    case IngestError::kIdOverflow:
      return "id-overflow";
    case IngestError::kNegativeId:
      return "negative-id";
    case IngestError::kIdOutOfRange:
      return "id-out-of-range";
    case IngestError::kSelfLoop:
      return "self-loop";
    case IngestError::kDuplicateEdge:
      return "duplicate-edge";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// LineReader.
// ---------------------------------------------------------------------------

LineReader::~LineReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status LineReader::Open(const std::string& path, const IngestLimits& limits) {
  path_ = path;
  limits_ = limits;
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return Status::IoError("cannot open " + path);
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IoError(path + ": cannot determine file size");
  }
  const long size = std::ftell(file_);  // NOLINT: 64-bit on this platform.
  if (size < 0) return Status::IoError(path + ": cannot determine file size");
  std::rewind(file_);
  file_size_ = static_cast<int64_t>(size);
  if (file_size_ > limits.max_file_bytes) {
    return Status::ResourceExhausted(
        path + ": file size " + std::to_string(file_size_) +
        " exceeds limit " + std::to_string(limits.max_file_bytes));
  }
  return Status::OK();
}

Status LineReader::Refill() {
  buf_pos_ = 0;
  buf_len_ = 0;
  if (eof_) return Status::OK();
  buf_.resize(kChunkBytes);
  size_t got = std::fread(buf_.data(), 1, buf_.size(), file_);
  if (got < buf_.size() && std::ferror(file_) != 0) {
    eof_ = true;
    return Status::IoError(path_ + ": read error mid-stream");
  }
  // Because Next() drains the buffer completely before refilling,
  // `delivered_` is exactly the absolute stream offset of this chunk.
  FaultInjector& injector = FaultInjector::Instance();
  if (injector.enabled()) {
    const size_t allowed = injector.FilterReadLength(delivered_, got);
    if (allowed < got) {
      got = allowed;
      eof_ = true;  // Injected short read: the stream ends here.
    }
    injector.FilterRead(delivered_, buf_.data(), got);
  }
  buf_len_ = got;
  if (got == 0) eof_ = true;
  return Status::OK();
}

Status LineReader::Next(RawLine* line, bool* has_line) {
  *has_line = false;
  line->text.clear();
  line->terminated = false;
  line->overlong = false;
  line->offset = delivered_;
  const size_t max_line = static_cast<size_t>(limits_.max_line_bytes);
  bool any_bytes = false;
  bool found_newline = false;
  while (!found_newline) {
    if (buf_pos_ == buf_len_) {
      if (eof_) break;
      IMCAT_RETURN_IF_ERROR(Refill());
      if (buf_len_ == 0) break;
    }
    any_bytes = true;
    const unsigned char* start = buf_.data() + buf_pos_;
    const auto* nl = static_cast<const unsigned char*>(
        std::memchr(start, '\n', buf_len_ - buf_pos_));
    const size_t take =
        nl != nullptr ? static_cast<size_t>(nl - start) : buf_len_ - buf_pos_;
    if (nl != nullptr) found_newline = true;
    if (line->text.size() < max_line) {
      const size_t copy = std::min(max_line - line->text.size(), take);
      line->text.append(reinterpret_cast<const char*>(start), copy);
      if (copy < take) line->overlong = true;
    } else if (take > 0) {
      line->overlong = true;  // Excess is skipped, never buffered.
    }
    const size_t consumed = take + (nl != nullptr ? 1 : 0);
    buf_pos_ += consumed;
    delivered_ += static_cast<int64_t>(consumed);
  }
  if (!any_bytes && !found_newline) {
    // End of stream with nothing pending: verify it is the real end of the
    // file, not a short read (failing media / injected truncation).
    if (delivered_ < file_size_) {
      return Status::DataLoss(path_ + ": unexpected end of stream after " +
                              std::to_string(delivered_) + " of " +
                              std::to_string(file_size_) + " bytes");
    }
    return Status::OK();
  }
  // An unterminated line cut short by the stream (not merely missing its
  // final newline) is data loss, not a parseable record.
  if (!found_newline && delivered_ < file_size_) {
    return Status::DataLoss(path_ + ": unexpected end of stream after " +
                            std::to_string(delivered_) + " of " +
                            std::to_string(file_size_) + " bytes");
  }
  if (first_line_) {
    first_line_ = false;
    if (line->text.rfind(kUtf8Bom, 0) == 0) line->text.erase(0, 3);
  }
  if (!line->text.empty() && line->text.back() == '\r') {
    line->text.pop_back();  // CRLF tolerance.
  }
  ++line_no_;
  line->number = line_no_;
  line->terminated = found_newline;
  *has_line = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Record classification.
// ---------------------------------------------------------------------------

namespace {

enum class RecordKind { kSkip, kEdge, kBad };

struct Classified {
  RecordKind kind = RecordKind::kSkip;
  int64_t left = 0;
  int64_t right = 0;
  IngestError error = IngestError::kBadColumnCount;
  int64_t column = 1;
  std::string detail;
};

/// True for tokens of the shape [+-]?[0-9]+ — an integer that, if
/// unparseable, failed by overflow rather than by syntax.
bool IsIntegerShaped(std::string_view token) {
  size_t i = 0;
  if (i < token.size() && (token[i] == '+' || token[i] == '-')) ++i;
  if (i == token.size()) return false;
  for (; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) return false;
  }
  return true;
}

Classified Bad(IngestError error, int64_t column, std::string detail) {
  Classified c;
  c.kind = RecordKind::kBad;
  c.error = error;
  c.column = column;
  c.detail = std::move(detail);
  return c;
}

Classified ClassifyRecord(const RawLine& line, const IngestOptions& options) {
  if (line.overlong) {
    return Bad(IngestError::kLineTooLong, 1,
               "line exceeds max length " +
                   std::to_string(options.limits.max_line_bytes));
  }
  // Tokenize on whitespace runs, tracking 1-based columns.
  const std::string_view sv = line.text;
  std::vector<std::pair<size_t, std::string_view>> tokens;
  size_t i = 0;
  while (i < sv.size()) {
    if (std::isspace(static_cast<unsigned char>(sv[i]))) {
      ++i;
      continue;
    }
    const size_t start = i;
    while (i < sv.size() && !std::isspace(static_cast<unsigned char>(sv[i]))) {
      ++i;
    }
    tokens.emplace_back(start, sv.substr(start, i - start));
  }
  if (tokens.empty() || tokens.front().second.front() == '#') {
    return Classified{};  // Blank or comment line, not a record.
  }
  if (!line.terminated) {
    return Bad(IngestError::kTruncatedFinalLine,
               static_cast<int64_t>(sv.size()) + 1,
               "final line is missing its newline (possible mid-record "
               "truncation)");
  }
  if (tokens.size() != 2) {
    const int64_t column = tokens.size() > 2
                               ? static_cast<int64_t>(tokens[2].first) + 1
                               : static_cast<int64_t>(sv.size()) + 1;
    return Bad(IngestError::kBadColumnCount, column,
               "expected two columns, found " + std::to_string(tokens.size()));
  }
  int64_t values[2] = {0, 0};
  for (int k = 0; k < 2; ++k) {
    const auto& [pos, token] = tokens[k];
    const int64_t column = static_cast<int64_t>(pos) + 1;
    if (!ParseInt64(token, &values[k])) {
      if (IsIntegerShaped(token)) {
        return Bad(IngestError::kIdOverflow, column,
                   "integer overflow in '" + std::string(token) + "'");
      }
      return Bad(IngestError::kNonIntegerToken, column,
                 "'" + std::string(token) + "' is not an integer");
    }
    if (values[k] < 0) {
      return Bad(IngestError::kNegativeId, column,
                 "negative id " + std::to_string(values[k]));
    }
    if (values[k] > options.max_raw_id) {
      return Bad(IngestError::kIdOutOfRange, column,
                 "id " + std::to_string(values[k]) + " exceeds max raw id " +
                     std::to_string(options.max_raw_id));
    }
  }
  if (options.reject_self_loops && values[0] == values[1]) {
    return Bad(IngestError::kSelfLoop,
               static_cast<int64_t>(tokens[0].first) + 1,
               "self-referential edge " + std::to_string(values[0]) + " -> " +
                   std::to_string(values[1]));
  }
  Classified c;
  c.kind = RecordKind::kEdge;
  c.left = values[0];
  c.right = values[1];
  return c;
}

/// Maps a record error class to the strict-mode Status family.
Status StrictStatus(const std::string& path, int64_t line, int64_t column,
                    IngestError error, const std::string& detail) {
  const std::string at = path + ":" + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + detail;
  switch (error) {
    case IngestError::kLineTooLong:
      return Status::ResourceExhausted(at);
    case IngestError::kTruncatedFinalLine:
      return Status::DataLoss(at);
    default:
      return Status::InvalidArgument(at);
  }
}

void Quarantine(const RawLine& line, IngestError error, int64_t column,
                const std::string& detail, const IngestOptions& options,
                IngestFileReport* report) {
  ++report->quarantined;
  ++report->error_counts[static_cast<int>(error)];
  if (static_cast<int64_t>(report->samples.size()) <
      options.max_quarantine_samples) {
    QuarantinedRecord record;
    record.line = line.number;
    record.column = column;
    record.error = error;
    record.text = line.text.substr(0, kSampleTextBytes);
    if (line.text.size() > kSampleTextBytes) record.text += "...";
    record.detail = detail;
    report->samples.push_back(std::move(record));
  }
}

struct PairHash {
  size_t operator()(const std::pair<int64_t, int64_t>& p) const {
    uint64_t h = static_cast<uint64_t>(p.first) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<uint64_t>(p.second) * 0xC2B2AE3D27D4EB4FULL;
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Reports.
// ---------------------------------------------------------------------------

std::string IngestFileReport::Summary() const {
  std::string s = path + ": " + std::to_string(total_records) + " records, " +
                  std::to_string(kept) + " kept, " +
                  std::to_string(quarantined) + " quarantined";
  if (quarantined > 0) {
    s += " (";
    bool first = true;
    for (int i = 0; i < kNumIngestErrors; ++i) {
      if (error_counts[i] == 0) continue;
      if (!first) s += ", ";
      first = false;
      s += std::string(IngestErrorName(static_cast<IngestError>(i))) + ":" +
           std::to_string(error_counts[i]);
    }
    s += ")";
  }
  if (filtered_by_degree > 0) {
    s += ", " + std::to_string(filtered_by_degree) + " filtered by degree";
  }
  return s;
}

void IngestFileReport::MergeFrom(const IngestFileReport& other) {
  if (path.empty()) path = other.path;
  total_records += other.total_records;
  kept += other.kept;
  quarantined += other.quarantined;
  for (int i = 0; i < kNumIngestErrors; ++i) {
    error_counts[i] += other.error_counts[i];
  }
  samples.insert(samples.end(), other.samples.begin(), other.samples.end());
  filtered_by_degree += other.filtered_by_degree;
}

std::string IngestReport::Summary() const {
  return "interactions " + interactions.Summary() + "; item-tags " +
         item_tags.Summary();
}

// ---------------------------------------------------------------------------
// ReadEdgeFile.
// ---------------------------------------------------------------------------

Status ReadEdgeFile(const std::string& path, const IngestOptions& options,
                    EdgeList* out, IngestFileReport* report) {
  *report = IngestFileReport{};
  report->path = path;
  out->clear();
  LineReader reader;
  IMCAT_RETURN_IF_ERROR(reader.Open(path, options.limits));
  std::unordered_set<std::pair<int64_t, int64_t>, PairHash> seen;
  RawLine line;
  bool has_line = false;
  while (true) {
    IMCAT_RETURN_IF_ERROR(reader.Next(&line, &has_line));
    if (!has_line) break;
    const Classified c = ClassifyRecord(line, options);
    if (c.kind == RecordKind::kSkip) continue;
    if (c.kind == RecordKind::kBad) {
      ++report->total_records;
      Quarantine(line, c.error, c.column, c.detail, options, report);
      if (options.policy == ParsePolicy::kStrict) {
        return StrictStatus(path, line.number, c.column, c.error, c.detail);
      }
      continue;
    }
    // Duplicates are dropped-and-counted under either policy: the
    // in-memory Dataset is a set, and surfacing them in the report beats
    // both failing the load and hiding them.
    if (!seen.emplace(c.left, c.right).second) {
      ++report->total_records;
      Quarantine(line, IngestError::kDuplicateEdge, 1,
                 "duplicate of an earlier edge", options, report);
      continue;
    }
    // Resource guards fire before the offending record is counted, so the
    // kept + quarantined == total_records invariant holds on every path.
    if (static_cast<int64_t>(out->size()) >= options.limits.max_records) {
      return Status::ResourceExhausted(
          path + ": edge count exceeds limit " +
          std::to_string(options.limits.max_records));
    }
    ++report->total_records;
    ++report->kept;
    out->emplace_back(c.left, c.right);
  }
  return Status::OK();
}

}  // namespace imcat
