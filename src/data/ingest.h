#ifndef IMCAT_DATA_INGEST_H_
#define IMCAT_DATA_INGEST_H_

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

/// \file ingest.h
/// Hardened ingestion of untrusted edge files. The TSV loader is the
/// documented drop-in path for real public datasets (HetRec, CiteULike,
/// Last.fm), which makes it an untrusted input boundary: ingestion must
/// never crash, never silently mangle data, and always report exactly what
/// it dropped and why. Three pieces deliver that contract:
///
///  - `LineReader`: a streaming reader with resource guards (max file
///    size, max line length) that tolerates CRLF endings and a UTF-8 BOM,
///    flags an unterminated final line (possible mid-record truncation),
///    detects unexpected end-of-stream (short reads) as `kDataLoss`, and
///    routes every chunk through the process `FaultInjector` so tests can
///    inject short reads and garbage bytes;
///  - `IngestError`: a per-record error taxonomy, so every malformed
///    record is classified rather than lumped into one failure;
///  - `IngestFileReport` / `IngestReport`: quarantine accounting with the
///    hard invariant `kept + quarantined == total_records` per file.
///
/// `ParsePolicy` selects what happens on a bad record: `kStrict` fails
/// fast with `file:line:column` context in the Status message;
/// `kPermissive` quarantines the record (counted per error class, first N
/// offending lines sampled) and keeps going. Duplicate edges are the one
/// policy-independent class: the in-memory `Dataset` is a set, so a repeat
/// is always dropped-and-counted, never fatal — failing an entire load for
/// a benign repeat would make strict mode useless on real data, while
/// dropping it silently would hide file damage; the report surfaces it.

namespace imcat {

/// What to do when a record fails validation.
enum class ParsePolicy : int {
  /// Fail the whole load on the first bad record, with file:line:column
  /// context in the Status message.
  kStrict = 0,
  /// Drop bad records into the quarantine report and keep going.
  kPermissive = 1,
};

/// Per-record error taxonomy. Every quarantined record is classified as
/// exactly one of these.
enum class IngestError : int {
  /// The line exceeds `IngestLimits::max_line_bytes` (buffering it whole
  /// would risk OOM on a corrupt or binary file).
  kLineTooLong = 0,
  /// The final line has no terminating newline — the file may have been
  /// cut mid-record (e.g. id `456` truncated to a plausible `45`), so the
  /// record cannot be trusted.
  kTruncatedFinalLine = 1,
  /// Not exactly two whitespace-separated columns.
  kBadColumnCount = 2,
  /// A column is not an integer token.
  kNonIntegerToken = 3,
  /// A column is integer-shaped but does not fit in int64.
  kIdOverflow = 4,
  /// A negative id.
  kNegativeId = 5,
  /// An id above `IngestOptions::max_raw_id`.
  kIdOutOfRange = 6,
  /// Left and right id are equal in a file declared self-loop-free.
  kSelfLoop = 7,
  /// An exact (left, right) repeat of an earlier record in the same file.
  /// Policy-independent: always dropped and counted, never fatal.
  kDuplicateEdge = 8,
};

/// One past the largest IngestError value; lets tests enumerate the
/// taxonomy so a new class cannot ship without name/report coverage.
inline constexpr int kNumIngestErrors = 9;

/// Stable kebab-case name for an error class (report/log vocabulary).
const char* IngestErrorName(IngestError error);

/// Resource guards for the streaming reader. Exceeding a guard yields a
/// clean `kResourceExhausted` instead of unbounded memory use.
struct IngestLimits {
  /// Whole-file ceiling, checked at open (default 2 GiB).
  int64_t max_file_bytes = int64_t{2} << 30;
  /// Per-line ceiling; longer lines are classified kLineTooLong and the
  /// excess is skipped without buffering (default 64 KiB).
  int64_t max_line_bytes = int64_t{1} << 16;
  /// Ceiling on kept edges per file (default 256M edges).
  int64_t max_records = int64_t{1} << 28;
};

/// Options for ReadEdgeFile.
struct IngestOptions {
  ParsePolicy policy = ParsePolicy::kStrict;
  IngestLimits limits;
  /// Raw ids above this bound are classified kIdOutOfRange (they would
  /// otherwise be remapped silently, masking file damage).
  int64_t max_raw_id = int64_t{1} << 40;
  /// When true, records with equal left and right id are classified
  /// kSelfLoop (for same-domain edge files; bipartite files keep the
  /// default false — user 5 interacting with item 5 is legitimate).
  bool reject_self_loops = false;
  /// How many offending lines to retain verbatim in the report.
  int64_t max_quarantine_samples = 8;
};

/// A line delivered by LineReader: 1-based number, byte offset of the line
/// start, and the text without its newline/CR (BOM stripped on line 1).
struct RawLine {
  int64_t number = 0;
  int64_t offset = 0;
  /// False when the file ended without a final newline.
  bool terminated = true;
  /// True when the line exceeded max_line_bytes; `text` holds the prefix.
  bool overlong = false;
  std::string text;
};

/// Streaming line reader with resource guards and fault-injection hooks.
/// Memory use is bounded by max_line_bytes + one I/O chunk regardless of
/// file contents.
class LineReader {
 public:
  LineReader() = default;
  LineReader(const LineReader&) = delete;
  LineReader& operator=(const LineReader&) = delete;
  ~LineReader();

  /// Opens `path` and checks its size against `limits.max_file_bytes`
  /// (kResourceExhausted when exceeded, kIoError when unopenable).
  Status Open(const std::string& path, const IngestLimits& limits);

  /// Delivers the next line. Sets `*has_line` false on clean end of file.
  /// Fails with kIoError on a stream error and kDataLoss when the stream
  /// ends before the size observed at Open (a short read).
  Status Next(RawLine* line, bool* has_line);

 private:
  /// Loads the next chunk through the FaultInjector hooks.
  Status Refill();

  std::string path_;
  IngestLimits limits_;
  std::FILE* file_ = nullptr;
  int64_t file_size_ = 0;
  int64_t delivered_ = 0;  ///< Bytes handed to line assembly so far.
  int64_t line_no_ = 0;
  bool eof_ = false;
  bool first_line_ = true;
  std::vector<unsigned char> buf_;
  size_t buf_pos_ = 0;
  size_t buf_len_ = 0;
};

/// A record retained verbatim in the quarantine report.
struct QuarantinedRecord {
  int64_t line = 0;    ///< 1-based line number.
  int64_t column = 0;  ///< 1-based column of the offending token.
  IngestError error = IngestError::kBadColumnCount;
  std::string text;    ///< Offending line, truncated for the report.
  std::string detail;  ///< Human-readable classification detail.
};

/// Per-file quarantine accounting. Invariant (asserted by the fuzz
/// harness): kept + quarantined == total_records, where total_records
/// counts every non-blank, non-comment line the reader delivered.
struct IngestFileReport {
  std::string path;
  int64_t total_records = 0;
  int64_t kept = 0;
  int64_t quarantined = 0;
  /// Exact count per error class, indexed by IngestError.
  std::array<int64_t, kNumIngestErrors> error_counts{};
  /// First max_quarantine_samples offending lines.
  std::vector<QuarantinedRecord> samples;
  /// Well-formed edges later removed by the loader's min-degree filters
  /// (not corruption; outside the kept/quarantined invariant).
  int64_t filtered_by_degree = 0;

  /// One-line human-readable summary ("path: N records, K kept, ...").
  std::string Summary() const;

  /// Folds `other` into this report (streaming consumers that ingest many
  /// micro-batch files keep one cumulative report). Counts, per-class
  /// errors and degree-filter totals add; samples append up to `other`'s
  /// own cap; `path` keeps the first non-empty value. The invariant
  /// kept + quarantined == total_records is preserved: it holds for both
  /// sides, so it holds for the sum.
  void MergeFrom(const IngestFileReport& other);
};

/// The loader's combined report over both input files.
struct IngestReport {
  IngestFileReport interactions;
  IngestFileReport item_tags;

  /// Two-line summary for startup logs.
  std::string Summary() const;
};

/// Reads a two-column integer edge file into raw (left, right) id pairs,
/// deduplicated in first-appearance order, classifying every bad record
/// per the taxonomy above. `report` is always populated with exact
/// accounting for everything consumed, including on failure.
Status ReadEdgeFile(const std::string& path, const IngestOptions& options,
                    EdgeList* out, IngestFileReport* report);

}  // namespace imcat

#endif  // IMCAT_DATA_INGEST_H_
