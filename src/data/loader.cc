#include "data/loader.h"

#include <string>
#include <unordered_map>
#include <utility>

#include "util/atomic_file.h"

namespace imcat {

namespace {

/// Dense-id remapper in first-appearance order.
class IdMap {
 public:
  int64_t Map(int64_t raw) {
    auto [it, inserted] = map_.emplace(raw, next_);
    if (inserted) ++next_;
    return it->second;
  }
  /// Returns the dense id or -1 if unseen.
  int64_t Lookup(int64_t raw) const {
    auto it = map_.find(raw);
    return it == map_.end() ? -1 : it->second;
  }
  int64_t size() const { return next_; }

 private:
  std::unordered_map<int64_t, int64_t> map_;
  int64_t next_ = 0;
};

/// Publishes one file's ingest accounting to the metrics registry and the
/// run journal (DESIGN.md §9). Cold path — one call per input file — so
/// the by-name registry lookups are fine here.
void NoteIngestFile(MetricsRegistry* metrics, RunJournal* journal,
                    const IngestFileReport& file) {
  if (metrics != nullptr) {
    metrics->GetCounter("ingest_files_total")->Increment();
    metrics->GetCounter("ingest_records_total")->Add(file.total_records);
    metrics->GetCounter("ingest_kept_total")->Add(file.kept);
    metrics->GetCounter("ingest_quarantined_total")->Add(file.quarantined);
    metrics->GetCounter("ingest_degree_filtered_total")
        ->Add(file.filtered_by_degree);
    for (int e = 0; e < kNumIngestErrors; ++e) {
      if (file.error_counts[static_cast<size_t>(e)] == 0) continue;
      metrics
          ->GetCounter(std::string("ingest_errors_total{class=\"") +
                       IngestErrorName(static_cast<IngestError>(e)) + "\"}")
          ->Add(file.error_counts[static_cast<size_t>(e)]);
    }
  }
  if (journal != nullptr) {
    journal->Append(JournalEvent("ingest")
                        .Set("path", file.path)
                        .Set("records", file.total_records)
                        .Set("kept", file.kept)
                        .Set("quarantined", file.quarantined)
                        .Set("degree_filtered", file.filtered_by_degree));
  }
}

}  // namespace

StatusOr<Dataset> LoadDatasetFromTsv(const std::string& interactions_path,
                                     const std::string& item_tags_path,
                                     const LoaderOptions& options,
                                     IngestReport* report) {
  if (options.max_raw_id < 0) {
    return Status::InvalidArgument("max_raw_id must be non-negative");
  }
  if (options.min_user_interactions < 0 || options.min_item_interactions < 0 ||
      options.min_tag_items < 0) {
    return Status::InvalidArgument("filtering thresholds must be >= 0");
  }
  if (options.limits.max_file_bytes < 0 || options.limits.max_line_bytes <= 0 ||
      options.limits.max_records < 0) {
    return Status::InvalidArgument("ingest limits must be non-negative");
  }
  IngestReport local_report;
  if (report == nullptr) report = &local_report;
  *report = IngestReport{};

  IngestOptions ingest;
  ingest.policy = options.policy;
  ingest.limits = options.limits;
  ingest.max_raw_id = options.max_raw_id;
  ingest.max_quarantine_samples = options.max_quarantine_samples;

  // ReadEdgeFile deduplicates within each file, so the degree counts below
  // are over distinct edges — duplicates can no longer inflate them.
  // Metrics/journal accounting mirrors the IngestReport contract: exact
  // and populated even when a read fails.
  EdgeList raw_ui, raw_it;
  Status read_st =
      ReadEdgeFile(interactions_path, ingest, &raw_ui, &report->interactions);
  if (!read_st.ok()) {
    NoteIngestFile(options.metrics, options.journal, report->interactions);
    return read_st;
  }
  read_st = ReadEdgeFile(item_tags_path, ingest, &raw_it, &report->item_tags);
  if (!read_st.ok()) {
    NoteIngestFile(options.metrics, options.journal, report->interactions);
    NoteIngestFile(options.metrics, options.journal, report->item_tags);
    return read_st;
  }

  // One filtering pass on raw ids.
  if (options.min_user_interactions > 0 || options.min_item_interactions > 0 ||
      options.min_tag_items > 0) {
    std::unordered_map<int64_t, int64_t> user_deg, item_deg, tag_deg;
    for (const auto& [u, v] : raw_ui) {
      ++user_deg[u];
      ++item_deg[v];
    }
    for (const auto& [v, t] : raw_it) {
      (void)v;
      ++tag_deg[t];
    }
    EdgeList ui_kept, it_kept;
    for (const auto& [u, v] : raw_ui) {
      if (user_deg[u] >= options.min_user_interactions &&
          item_deg[v] >= options.min_item_interactions) {
        ui_kept.emplace_back(u, v);
      }
    }
    for (const auto& [v, t] : raw_it) {
      if (item_deg.count(v) &&
          item_deg[v] >= options.min_item_interactions &&
          tag_deg[t] >= options.min_tag_items) {
        it_kept.emplace_back(v, t);
      }
    }
    report->interactions.filtered_by_degree =
        static_cast<int64_t>(raw_ui.size() - ui_kept.size());
    report->item_tags.filtered_by_degree =
        static_cast<int64_t>(raw_it.size() - it_kept.size());
    raw_ui = std::move(ui_kept);
    raw_it = std::move(it_kept);
  }

  NoteIngestFile(options.metrics, options.journal, report->interactions);
  NoteIngestFile(options.metrics, options.journal, report->item_tags);

  Dataset ds;
  ds.name = interactions_path;
  IdMap users, items, tags;
  for (const auto& [u, v] : raw_ui) {
    ds.interactions.emplace_back(users.Map(u), items.Map(v));
  }
  for (const auto& [v, t] : raw_it) {
    // Keep tags only for items that survived / appeared in interactions or
    // earlier tag lines; new items from the tag file are allowed too.
    ds.item_tags.emplace_back(items.Map(v), tags.Map(t));
  }
  ds.num_users = users.size();
  ds.num_items = items.size();
  ds.num_tags = tags.size();
  // Ingestion already deduplicated per file and the dense remap is
  // injective, so these are range-validating sorts that remove nothing.
  DeduplicateEdges(ds.num_users, ds.num_items, &ds.interactions);
  DeduplicateEdges(ds.num_items, ds.num_tags, &ds.item_tags);
  return ds;
}

namespace {

Status WriteEdgeFile(const EdgeList& edges, const std::string& path) {
  AtomicFileWriter writer(path);
  IMCAT_RETURN_IF_ERROR(writer.Open());
  std::string buffer;
  for (const auto& [l, r] : edges) {
    buffer += std::to_string(l);
    buffer += '\t';
    buffer += std::to_string(r);
    buffer += '\n';
    if (buffer.size() >= size_t{1} << 16) {
      IMCAT_RETURN_IF_ERROR(writer.Write(buffer));
      buffer.clear();
    }
  }
  if (!buffer.empty()) IMCAT_RETURN_IF_ERROR(writer.Write(buffer));
  return writer.Commit();
}

}  // namespace

Status SaveDatasetToTsv(const Dataset& dataset,
                        const std::string& interactions_path,
                        const std::string& item_tags_path) {
  // Each file is individually atomic; the interactions file is committed
  // first, so a crash between the two renames leaves a new interactions
  // file beside the old item-tags file — both untorn and loadable.
  IMCAT_RETURN_IF_ERROR(WriteEdgeFile(dataset.interactions,
                                      interactions_path));
  return WriteEdgeFile(dataset.item_tags, item_tags_path);
}

}  // namespace imcat
