#include "data/loader.h"

#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "util/string_util.h"

namespace imcat {

namespace {

/// Reads a two-column integer edge file into raw (left, right) id pairs.
/// Every malformed, negative or out-of-range id is rejected with the
/// offending line number, so corrupt files fail here with a Status rather
/// than tripping IMCAT_CHECK aborts deeper in the pipeline.
Status ReadEdgeFile(const std::string& path, int64_t max_raw_id,
                    EdgeList* out) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string at_line = path + ":" + std::to_string(line_no);
    std::string_view sv = StripWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    // Accept tab or any run of spaces as the separator.
    size_t sep = sv.find_first_of(" \t");
    if (sep == std::string_view::npos) {
      return Status::InvalidArgument(at_line + ": expected two columns");
    }
    int64_t left = 0, right = 0;
    if (!ParseInt64(sv.substr(0, sep), &left) ||
        !ParseInt64(sv.substr(sep + 1), &right)) {
      return Status::InvalidArgument(at_line + ": malformed ids");
    }
    if (left < 0 || right < 0) {
      return Status::InvalidArgument(
          at_line + ": negative id " + std::to_string(left < 0 ? left : right));
    }
    if (left > max_raw_id || right > max_raw_id) {
      return Status::InvalidArgument(
          at_line + ": id " + std::to_string(left > max_raw_id ? left : right) +
          " exceeds max raw id " + std::to_string(max_raw_id));
    }
    out->emplace_back(left, right);
  }
  return Status::OK();
}

/// Dense-id remapper in first-appearance order.
class IdMap {
 public:
  int64_t Map(int64_t raw) {
    auto [it, inserted] = map_.emplace(raw, next_);
    if (inserted) ++next_;
    return it->second;
  }
  /// Returns the dense id or -1 if unseen.
  int64_t Lookup(int64_t raw) const {
    auto it = map_.find(raw);
    return it == map_.end() ? -1 : it->second;
  }
  int64_t size() const { return next_; }

 private:
  std::unordered_map<int64_t, int64_t> map_;
  int64_t next_ = 0;
};

}  // namespace

StatusOr<Dataset> LoadDatasetFromTsv(const std::string& interactions_path,
                                     const std::string& item_tags_path,
                                     const LoaderOptions& options) {
  if (options.max_raw_id < 0) {
    return Status::InvalidArgument("max_raw_id must be non-negative");
  }
  if (options.min_user_interactions < 0 || options.min_item_interactions < 0 ||
      options.min_tag_items < 0) {
    return Status::InvalidArgument("filtering thresholds must be >= 0");
  }
  EdgeList raw_ui, raw_it;
  IMCAT_RETURN_IF_ERROR(
      ReadEdgeFile(interactions_path, options.max_raw_id, &raw_ui));
  IMCAT_RETURN_IF_ERROR(
      ReadEdgeFile(item_tags_path, options.max_raw_id, &raw_it));

  // One filtering pass on raw ids.
  if (options.min_user_interactions > 0 || options.min_item_interactions > 0 ||
      options.min_tag_items > 0) {
    std::unordered_map<int64_t, int64_t> user_deg, item_deg, tag_deg;
    for (const auto& [u, v] : raw_ui) {
      ++user_deg[u];
      ++item_deg[v];
    }
    std::unordered_map<int64_t, std::unordered_map<int64_t, bool>> seen_ti;
    for (const auto& [v, t] : raw_it) {
      if (!seen_ti[t].count(v)) {
        seen_ti[t][v] = true;
        ++tag_deg[t];
      }
    }
    EdgeList ui_kept, it_kept;
    for (const auto& [u, v] : raw_ui) {
      if (user_deg[u] >= options.min_user_interactions &&
          item_deg[v] >= options.min_item_interactions) {
        ui_kept.emplace_back(u, v);
      }
    }
    for (const auto& [v, t] : raw_it) {
      if (item_deg.count(v) &&
          item_deg[v] >= options.min_item_interactions &&
          tag_deg[t] >= options.min_tag_items) {
        it_kept.emplace_back(v, t);
      }
    }
    raw_ui = std::move(ui_kept);
    raw_it = std::move(it_kept);
  }

  Dataset ds;
  ds.name = interactions_path;
  IdMap users, items, tags;
  for (const auto& [u, v] : raw_ui) {
    ds.interactions.emplace_back(users.Map(u), items.Map(v));
  }
  for (const auto& [v, t] : raw_it) {
    // Keep tags only for items that survived / appeared in interactions or
    // earlier tag lines; new items from the tag file are allowed too.
    ds.item_tags.emplace_back(items.Map(v), tags.Map(t));
  }
  ds.num_users = users.size();
  ds.num_items = items.size();
  ds.num_tags = tags.size();
  DeduplicateEdges(ds.num_users, ds.num_items, &ds.interactions);
  DeduplicateEdges(ds.num_items, ds.num_tags, &ds.item_tags);
  return ds;
}

Status SaveDatasetToTsv(const Dataset& dataset,
                        const std::string& interactions_path,
                        const std::string& item_tags_path) {
  std::ofstream ui(interactions_path);
  if (!ui.is_open())
    return Status::IoError("cannot write " + interactions_path);
  for (const auto& [u, v] : dataset.interactions) ui << u << '\t' << v << '\n';
  std::ofstream it(item_tags_path);
  if (!it.is_open()) return Status::IoError("cannot write " + item_tags_path);
  for (const auto& [v, t] : dataset.item_tags) it << v << '\t' << t << '\n';
  return Status::OK();
}

}  // namespace imcat
