#ifndef IMCAT_DATA_LOADER_H_
#define IMCAT_DATA_LOADER_H_

#include <string>

#include "data/dataset.h"
#include "data/ingest.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/status.h"

/// \file loader.h
/// TSV dataset loading so that real public datasets (HetRec, CiteULike,
/// ...) can be dropped in as an alternative to the synthetic generator.
/// Built on the hardened ingestion subsystem (ingest.h): every record is
/// validated against the error taxonomy, resource guards bound memory use,
/// and an IngestReport accounts for everything read.
///
/// File format: one edge per line, two whitespace-separated non-negative
/// integer columns, newline-terminated (CRLF and a UTF-8 BOM are
/// tolerated). Lines starting with '#' and blank lines are skipped. Ids
/// may be arbitrary non-negative integers; they are remapped to dense
/// [0, n) ids in first-appearance order. Duplicate edges are dropped
/// before the min-degree filters run (so duplicates cannot inflate the
/// interaction counts the filters use) and are counted in the report.

namespace imcat {

/// Options for LoadDatasetFromTsv.
struct LoaderOptions {
  /// Users/items/tags with fewer edges than these thresholds are dropped
  /// (the paper filters users/items with < 10 interactions and tags
  /// assigned to < 5 items). Filtering is applied once (a single pass) on
  /// deduplicated edges, as is common practice. Set to 0 to disable.
  int64_t min_user_interactions = 0;
  int64_t min_item_interactions = 0;
  int64_t min_tag_items = 0;
  /// Raw ids above this bound are rejected as corrupt input (they would
  /// otherwise be remapped silently, masking file damage). The default is
  /// far above any real dataset's id space.
  int64_t max_raw_id = int64_t{1} << 40;
  /// kStrict fails fast on the first bad record with file:line:column
  /// context; kPermissive quarantines bad records into the IngestReport
  /// and keeps going. See ingest.h for the taxonomy and semantics.
  ParsePolicy policy = ParsePolicy::kStrict;
  /// Resource guards for the streaming reader (file size, line length,
  /// edge count); exceeding one yields kResourceExhausted.
  IngestLimits limits;
  /// How many offending lines the report retains verbatim per file.
  int64_t max_quarantine_samples = 8;
  /// Optional instrumentation (DESIGN.md §9). When non-null the loader
  /// maintains the `ingest_*` counters: files/records/kept/quarantined/
  /// degree-filtered totals plus one labelled counter per error class
  /// (`ingest_errors_total{class="bad-column-count"}`, names from
  /// IngestErrorName). Populated even when the load fails, mirroring the
  /// IngestReport contract.
  MetricsRegistry* metrics = nullptr;
  /// Optional run journal: one "ingest" summary event per input file.
  RunJournal* journal = nullptr;
};

/// Loads user-item interactions from `interactions_path` and item-tag
/// labels from `item_tags_path`. Items missing from the interaction file
/// but present in the tag file are kept; tags for unknown items are
/// dropped. When `report` is non-null it receives exact per-file
/// quarantine accounting (kept + quarantined == total records), populated
/// even when the load fails.
StatusOr<Dataset> LoadDatasetFromTsv(const std::string& interactions_path,
                                     const std::string& item_tags_path,
                                     const LoaderOptions& options = {},
                                     IngestReport* report = nullptr);

/// Writes a dataset back to the two-file TSV format (useful for exporting
/// synthetic data). Each file is written atomically (temp file + fsync +
/// rename), so a crash mid-save never leaves a torn TSV where a good file
/// used to be; the interactions file is committed before the item-tags
/// file. Overwrites existing files; write errors surface as a Status.
Status SaveDatasetToTsv(const Dataset& dataset,
                        const std::string& interactions_path,
                        const std::string& item_tags_path);

}  // namespace imcat

#endif  // IMCAT_DATA_LOADER_H_
