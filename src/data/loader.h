#ifndef IMCAT_DATA_LOADER_H_
#define IMCAT_DATA_LOADER_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

/// \file loader.h
/// TSV dataset loading so that real public datasets (HetRec, CiteULike,
/// ...) can be dropped in as an alternative to the synthetic generator.
///
/// File format: one edge per line, two tab- or space-separated integer
/// columns. Lines starting with '#' and blank lines are skipped. Ids may be
/// arbitrary non-negative integers; they are remapped to dense [0, n) ids
/// in first-appearance order.

namespace imcat {

/// Options for LoadDatasetFromTsv.
struct LoaderOptions {
  /// Users/items/tags with fewer edges than these thresholds are dropped
  /// (the paper filters users/items with < 10 interactions and tags
  /// assigned to < 5 items). Filtering is applied once (a single pass), as
  /// is common practice. Set to 0 to disable.
  int64_t min_user_interactions = 0;
  int64_t min_item_interactions = 0;
  int64_t min_tag_items = 0;
  /// Raw ids above this bound are rejected as corrupt input (they would
  /// otherwise be remapped silently, masking file damage). The default is
  /// far above any real dataset's id space.
  int64_t max_raw_id = int64_t{1} << 40;
};

/// Loads user-item interactions from `interactions_path` and item-tag
/// labels from `item_tags_path`. Items missing from the interaction file
/// but present in the tag file are kept; tags for unknown items are
/// dropped.
StatusOr<Dataset> LoadDatasetFromTsv(const std::string& interactions_path,
                                     const std::string& item_tags_path,
                                     const LoaderOptions& options = {});

/// Writes a dataset back to the two-file TSV format (useful for exporting
/// synthetic data). Overwrites existing files.
Status SaveDatasetToTsv(const Dataset& dataset,
                        const std::string& interactions_path,
                        const std::string& item_tags_path);

}  // namespace imcat

#endif  // IMCAT_DATA_LOADER_H_
