#include "data/presets.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace imcat {

namespace {

/// Raw Table-I statistics plus latent-structure knobs per dataset.
struct PresetSpec {
  const char* name;
  int64_t users;
  int64_t items;
  int64_t tags;
  int64_t interactions;
  int64_t item_tags;
  int latent_intents;   ///< Ground-truth intent count planted in the data.
  double user_alpha;    ///< Peakedness of user intent mixtures.
  double popularity;    ///< Item popularity power-law exponent.
};

// HetRec-Del gets more latent intents (the paper attributes its larger
// optimal K to its 3-4x larger tag vocabulary); the two e-commerce-scale
// sets get heavier-tailed popularity.
constexpr PresetSpec kPresets[] = {
    {"HetRec-MV", 2107, 3872, 2071, 471482, 38742, 4, 0.12, 0.8},
    {"HetRec-FM", 1026, 5817, 2283, 57976, 77925, 4, 0.10, 0.9},
    {"HetRec-Del", 1274, 5169, 4595, 19951, 62147, 8, 0.10, 0.9},
    {"CiteULike", 4011, 12408, 1579, 94512, 125013, 4, 0.10, 0.9},
    {"Last.fm-Tag", 18149, 14548, 6822, 582791, 97201, 4, 0.10, 1.0},
    {"AMZBook-Tag", 50022, 22370, 2345, 731777, 246175, 4, 0.10, 1.1},
    {"Yelp-Tag", 39856, 26669, 1073, 1009922, 569780, 4, 0.10, 1.0},
};

int64_t ScaleCount(int64_t count, double scale, int64_t minimum) {
  const int64_t scaled = static_cast<int64_t>(std::llround(count * scale));
  return std::max(scaled, minimum);
}

// Interactions scale sub-linearly (exponent 1.3 on the scale factor): a
// linear edge scale would inflate density by 1/scale and make the CF
// signal far easier than the original datasets', drowning out the effect
// of auxiliary information. The sub-linear rule keeps the scaled presets
// in the sparse regime the paper's datasets occupy while the per-user
// minimum degree keeps the split usable. Tag labels keep the linear scale
// (auxiliary information stays relatively rich, as in the originals).
int64_t ScaleInteractions(int64_t count, double scale, int64_t minimum) {
  const double factor = std::pow(scale, 1.3);
  const int64_t scaled = static_cast<int64_t>(std::llround(count * factor));
  return std::max(scaled, minimum);
}

}  // namespace

const std::vector<std::string>& PresetNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "HetRec-MV",   "HetRec-FM",   "HetRec-Del", "CiteULike",
      "Last.fm-Tag", "AMZBook-Tag", "Yelp-Tag"};
  return names;
}

StatusOr<SyntheticConfig> PresetConfig(const std::string& name, double scale,
                                       uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  for (const PresetSpec& spec : kPresets) {
    if (name != spec.name) continue;
    SyntheticConfig config;
    config.name = spec.name;
    config.seed = seed;
    config.num_users = ScaleCount(spec.users, scale, 30);
    config.num_items = ScaleCount(spec.items, scale, 50);
    config.num_tags = ScaleCount(spec.tags, scale, 24);
    config.num_interactions = ScaleInteractions(spec.interactions, scale, 300);
    config.num_item_tags = ScaleCount(spec.item_tags, scale, 100);
    // Cap the interaction density at 6%: denser scaled graphs make
    // 2-layer propagation reach the whole catalogue and over-smooth,
    // which no original dataset exhibits (Table I tops out at 5.78%).
    config.num_interactions =
        std::min(config.num_interactions,
                 config.num_users * config.num_items * 6 / 100);
    config.num_item_tags = std::min(config.num_item_tags,
                                    config.num_items * config.num_tags / 4);
    config.num_latent_intents = spec.latent_intents;
    config.user_intent_alpha = spec.user_alpha;
    config.item_intent_alpha = 0.15;
    config.item_popularity_exponent = spec.popularity;
    // The presets keep tags informative (as the curated tag vocabularies
    // of the original datasets are): low assignment noise and few random
    // clicks.
    config.tag_noise = 0.05;
    config.interaction_noise = 0.03;
    // The paper filters out users with fewer than ten interactions; the
    // generator enforces the same floor so every user receives at least
    // one validation item under the 7:1:2 split.
    config.min_user_degree = 10;
    return config;
  }
  return Status::NotFound("unknown preset: " + name);
}

Dataset GeneratePreset(const std::string& name, double scale, uint64_t seed) {
  StatusOr<SyntheticConfig> config = PresetConfig(name, scale, seed);
  IMCAT_CHECK(config.ok());
  return GenerateSynthetic(config.value());
}

}  // namespace imcat
