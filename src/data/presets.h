#ifndef IMCAT_DATA_PRESETS_H_
#define IMCAT_DATA_PRESETS_H_

#include <string>
#include <vector>

#include "data/synthetic.h"
#include "util/status.h"

/// \file presets.h
/// Synthetic-generator presets mirroring the seven datasets of the paper's
/// Table I (HetRec-MV, HetRec-FM, HetRec-Del, CiteULike, Last.fm-Tag,
/// AMZBook-Tag, Yelp-Tag).
///
/// Entity counts and edge counts are multiplied by `scale` (edges scale
/// linearly so that the average user degree — the quantity that matters for
/// training dynamics — is preserved; the resulting density therefore rises
/// by 1/scale and is capped at 25% to keep the data plausible). The presets
/// also carry per-dataset intent/diversity parameters: e.g. HetRec-Del has
/// 3-4x more tags than the other HetRec datasets, which the paper links to
/// more distinct user intents.

namespace imcat {

/// The names of the seven Table-I presets, in paper order.
const std::vector<std::string>& PresetNames();

/// Returns the generator config for `name` (one of PresetNames()), with all
/// counts scaled by `scale` in (0, 1]. The seed perturbs all sampling.
StatusOr<SyntheticConfig> PresetConfig(const std::string& name, double scale,
                                       uint64_t seed = 1);

/// Convenience: generate the preset dataset directly (aborts on a bad
/// name — intended for benchmarks/examples whose names are hard-coded).
Dataset GeneratePreset(const std::string& name, double scale,
                       uint64_t seed = 1);

}  // namespace imcat

#endif  // IMCAT_DATA_PRESETS_H_
