#include "data/split.h"

#include <algorithm>

#include "util/check.h"

namespace imcat {

DataSplit SplitByUser(const Dataset& dataset, const SplitOptions& options) {
  IMCAT_CHECK_GT(options.train_fraction, 0.0);
  IMCAT_CHECK_GE(options.validation_fraction, 0.0);
  IMCAT_CHECK_LT(options.train_fraction + options.validation_fraction, 1.0 + 1e-9);

  std::vector<std::vector<int64_t>> per_user(dataset.num_users);
  for (const auto& [u, v] : dataset.interactions) per_user[u].push_back(v);

  DataSplit split;
  Rng rng(options.seed);
  for (int64_t u = 0; u < dataset.num_users; ++u) {
    auto& items = per_user[u];
    if (items.empty()) continue;
    std::sort(items.begin(), items.end());
    rng.Shuffle(&items);
    const int64_t n = static_cast<int64_t>(items.size());
    int64_t n_train = static_cast<int64_t>(options.train_fraction * n);
    int64_t n_val = static_cast<int64_t>(options.validation_fraction * n);
    if (n_train == 0) n_train = 1;  // Every user keeps a training item.
    if (n_train > n) n_train = n;
    if (n_train + n_val > n) n_val = n - n_train;
    for (int64_t i = 0; i < n; ++i) {
      if (i < n_train) {
        split.train.emplace_back(u, items[i]);
      } else if (i < n_train + n_val) {
        split.validation.emplace_back(u, items[i]);
      } else {
        split.test.emplace_back(u, items[i]);
      }
    }
  }
  return split;
}

}  // namespace imcat
