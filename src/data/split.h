#ifndef IMCAT_DATA_SPLIT_H_
#define IMCAT_DATA_SPLIT_H_

#include "data/dataset.h"
#include "util/rng.h"

/// \file split.h
/// Train/validation/test partitioning of the user-item interactions,
/// following the paper's evaluation protocol (Sec. V-B): a per-user 7:1:2
/// split. Item-tag labels are not split; they are auxiliary training
/// information.

namespace imcat {

/// The partitioned interaction sets. All three share the dataset's id
/// space; their union is the dataset's interaction list.
struct DataSplit {
  EdgeList train;
  EdgeList validation;
  EdgeList test;
};

/// Options controlling the split.
struct SplitOptions {
  double train_fraction = 0.7;
  double validation_fraction = 0.1;
  // Test receives the remainder.
  uint64_t seed = 17;
};

/// Splits interactions per user with the given fractions. Each user's items
/// are shuffled deterministically (seeded per user) and partitioned; users
/// with very few interactions always keep at least one training item, and
/// receive validation/test items only when enough interactions exist.
DataSplit SplitByUser(const Dataset& dataset, const SplitOptions& options);

}  // namespace imcat

#endif  // IMCAT_DATA_SPLIT_H_
