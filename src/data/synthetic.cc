#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"
#include "util/rng.h"

namespace imcat {

namespace {

/// Power-law weights w_i ~ (rank_i + 1)^-exponent with ranks shuffled so
/// that id order carries no popularity information.
std::vector<double> PowerLawWeights(int64_t n, double exponent, Rng* rng) {
  std::vector<int64_t> ranks(n);
  for (int64_t i = 0; i < n; ++i) ranks[i] = i;
  rng->Shuffle(&ranks);
  std::vector<double> w(n);
  for (int64_t i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(ranks[i] + 1), -exponent);
  }
  return w;
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticConfig& config,
                          SyntheticGroundTruth* ground_truth) {
  IMCAT_CHECK_GT(config.num_users, 0);
  IMCAT_CHECK_GT(config.num_items, 0);
  IMCAT_CHECK_GT(config.num_tags, 0);
  IMCAT_CHECK_GE(config.num_latent_intents, 1);
  IMCAT_CHECK_GE(config.num_tags, config.num_latent_intents);

  Rng rng(config.seed);
  const int z_count = config.num_latent_intents;

  // --- Latent structure -----------------------------------------------
  // Tags: primary intent round-robin (so each intent has tags), shuffled.
  std::vector<int> tag_intent(config.num_tags);
  for (int64_t t = 0; t < config.num_tags; ++t) {
    tag_intent[t] = static_cast<int>(t % z_count);
  }
  rng.Shuffle(&tag_intent);
  std::vector<std::vector<int64_t>> tags_of_intent(z_count);
  for (int64_t t = 0; t < config.num_tags; ++t) {
    tags_of_intent[tag_intent[t]].push_back(t);
  }

  std::vector<std::vector<double>> item_mix(config.num_items);
  for (auto& mix : item_mix) {
    rng.Dirichlet(config.item_intent_alpha, z_count, &mix);
  }
  std::vector<std::vector<double>> user_mix(config.num_users);
  for (auto& mix : user_mix) {
    rng.Dirichlet(config.user_intent_alpha, z_count, &mix);
  }

  const std::vector<double> popularity =
      PowerLawWeights(config.num_items, config.item_popularity_exponent, &rng);
  const std::vector<double> activity =
      PowerLawWeights(config.num_users, config.user_activity_exponent, &rng);

  // Per-intent item sampling weights: popularity_i * item_mix_i[z].
  std::vector<std::vector<double>> item_weight_by_intent(z_count);
  for (int z = 0; z < z_count; ++z) {
    auto& w = item_weight_by_intent[z];
    w.resize(config.num_items);
    for (int64_t i = 0; i < config.num_items; ++i) {
      w[i] = popularity[i] * item_mix[i][z];
    }
  }
  std::vector<double> item_weight_flat(config.num_items);
  for (int64_t i = 0; i < config.num_items; ++i) {
    item_weight_flat[i] = popularity[i];
  }

  Dataset ds;
  ds.name = config.name;
  ds.num_users = config.num_users;
  ds.num_items = config.num_items;
  ds.num_tags = config.num_tags;

  // --- Item-tag labels --------------------------------------------------
  {
    std::unordered_set<int64_t> seen;
    auto add_tag = [&](int64_t item, int64_t tag) {
      const int64_t key = item * config.num_tags + tag;
      if (seen.insert(key).second) {
        ds.item_tags.emplace_back(item, tag);
        return true;
      }
      return false;
    };
    auto sample_tag_for_item = [&](int64_t item) {
      if (rng.Uniform() < config.tag_noise) {
        return rng.UniformInt(config.num_tags);
      }
      const int z = static_cast<int>(rng.Categorical(item_mix[item]));
      const auto& pool = tags_of_intent[z];
      if (pool.empty()) return rng.UniformInt(config.num_tags);
      return pool[rng.UniformInt(static_cast<int64_t>(pool.size()))];
    };
    // Guarantee the per-item minimum first.
    for (int64_t i = 0; i < config.num_items; ++i) {
      int64_t added = 0;
      int64_t attempts = 0;
      while (added < config.min_item_tags &&
             attempts < 50 * config.min_item_tags) {
        ++attempts;
        if (add_tag(i, sample_tag_for_item(i))) ++added;
      }
    }
    // Distribute the remaining labels across items (popularity-weighted, as
    // popular items tend to be better annotated).
    int64_t attempts = 0;
    const int64_t max_attempts = 20 * config.num_item_tags + 1000;
    while (static_cast<int64_t>(ds.item_tags.size()) < config.num_item_tags &&
           attempts < max_attempts) {
      ++attempts;
      const int64_t item = rng.Categorical(item_weight_flat);
      add_tag(item, sample_tag_for_item(item));
    }
  }

  // --- User-item interactions -------------------------------------------
  {
    std::unordered_set<int64_t> seen;
    auto add_edge = [&](int64_t user, int64_t item) {
      const int64_t key = user * config.num_items + item;
      if (seen.insert(key).second) {
        ds.interactions.emplace_back(user, item);
        return true;
      }
      return false;
    };
    auto sample_item_for_user = [&](int64_t user) {
      if (rng.Uniform() < config.interaction_noise) {
        return rng.Categorical(item_weight_flat);
      }
      const int z = static_cast<int>(rng.Categorical(user_mix[user]));
      return rng.Categorical(item_weight_by_intent[z]);
    };
    // Guarantee the per-user minimum.
    for (int64_t u = 0; u < config.num_users; ++u) {
      int64_t added = 0;
      int64_t attempts = 0;
      while (added < config.min_user_degree &&
             attempts < 100 * config.min_user_degree) {
        ++attempts;
        if (add_edge(u, sample_item_for_user(u))) ++added;
      }
    }
    // Distribute the remainder by user activity.
    int64_t attempts = 0;
    const int64_t max_attempts = 20 * config.num_interactions + 1000;
    while (static_cast<int64_t>(ds.interactions.size()) <
               config.num_interactions &&
           attempts < max_attempts) {
      ++attempts;
      const int64_t user = rng.Categorical(activity);
      add_edge(user, sample_item_for_user(user));
    }
  }

  std::sort(ds.interactions.begin(), ds.interactions.end());
  std::sort(ds.item_tags.begin(), ds.item_tags.end());

  if (ground_truth != nullptr) {
    ground_truth->tag_intent = std::move(tag_intent);
    ground_truth->user_mix = std::move(user_mix);
    ground_truth->item_mix = std::move(item_mix);
  }
  return ds;
}

}  // namespace imcat
