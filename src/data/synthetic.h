#ifndef IMCAT_DATA_SYNTHETIC_H_
#define IMCAT_DATA_SYNTHETIC_H_

#include <string>

#include "data/dataset.h"

/// \file synthetic.h
/// A latent-intent generative simulator standing in for the paper's seven
/// public datasets (which are not redistributable offline).
///
/// Generative story — chosen so that the data has exactly the properties
/// IMCAT exploits (see DESIGN.md):
///  * There are Z ground-truth intents.
///  * Every tag has one primary intent; tags therefore cluster by intent.
///  * Every item has a Dirichlet mixture over intents and a power-law
///    popularity weight; its tags are drawn from its intent mixture.
///  * Every user has a Dirichlet mixture over intents and a power-law
///    activity weight; an interaction is drawn by sampling an intent from
///    the user's mixture and then an item proportional to
///    popularity x item-intent affinity.
///
/// Tags thus carry real information about why a user consumes an item, so
/// tag-aware methods can beat tag-blind ones — the central premise of the
/// paper's evaluation.

namespace imcat {

/// Parameters of the generator. Counts correspond to Table I columns.
struct SyntheticConfig {
  std::string name = "synthetic";
  int64_t num_users = 500;
  int64_t num_items = 800;
  int64_t num_tags = 200;
  int64_t num_interactions = 10000;
  int64_t num_item_tags = 4000;

  /// Number of ground-truth latent intents.
  int num_latent_intents = 4;
  /// Dirichlet concentration of user intent mixtures (lower = more peaked,
  /// i.e. users act on fewer intents).
  double user_intent_alpha = 0.3;
  /// Dirichlet concentration of item intent mixtures.
  double item_intent_alpha = 0.3;
  /// Power-law exponent for item popularity weights (0 = uniform).
  double item_popularity_exponent = 0.9;
  /// Power-law exponent for user activity weights (0 = uniform).
  double user_activity_exponent = 0.6;
  /// Probability that a tag assignment ignores the item's intents (noise).
  double tag_noise = 0.1;
  /// Probability that an interaction ignores intent affinity (random click
  /// noise, the paper's "noisy interactions").
  double interaction_noise = 0.05;
  /// Every user receives at least this many interactions (so the 7:1:2
  /// split leaves each user with train and test items).
  int64_t min_user_degree = 5;
  /// Every item receives at least this many tags.
  int64_t min_item_tags = 1;

  uint64_t seed = 1;
};

/// Ground truth retained alongside the generated dataset, used by tests to
/// verify that the generator plants recoverable structure.
struct SyntheticGroundTruth {
  std::vector<int> tag_intent;              ///< Primary intent per tag.
  std::vector<std::vector<double>> user_mix;  ///< Per-user intent mixture.
  std::vector<std::vector<double>> item_mix;  ///< Per-item intent mixture.
};

/// Generates a dataset from the config. If `ground_truth` is non-null it
/// receives the planted latent structure.
Dataset GenerateSynthetic(const SyntheticConfig& config,
                          SyntheticGroundTruth* ground_truth = nullptr);

}  // namespace imcat

#endif  // IMCAT_DATA_SYNTHETIC_H_
