#include "eval/evaluator.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace imcat {

void Ranker::ScoreItemsForUsers(const std::vector<int64_t>& users,
                                std::vector<float>* scores) const {
  // Fallback for rankers without a batched kernel: one scalar scoring
  // pass per user, copied into the batch layout. Bit-identical to calling
  // ScoreItemsForUser directly, by construction.
  scores->clear();
  std::vector<float> row;
  for (size_t i = 0; i < users.size(); ++i) {
    ScoreItemsForUser(users[i], &row);
    scores->insert(scores->end(), row.begin(), row.end());
  }
}

Evaluator::Evaluator(const Dataset& dataset, const DataSplit& split)
    : num_users_(dataset.num_users), num_items_(dataset.num_items) {
  train_items_.resize(num_users_);
  item_degree_.assign(num_items_, 0);
  for (const auto& [u, v] : split.train) {
    IMCAT_CHECK(u >= 0 && u < num_users_);
    IMCAT_CHECK(v >= 0 && v < num_items_);
    train_items_[u].push_back(v);
    ++item_degree_[v];
  }
  for (auto& items : train_items_) std::sort(items.begin(), items.end());
}

void Evaluator::set_metrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    runs_total_ = nullptr;
    users_total_ = nullptr;
    wall_ms_ = nullptr;
    return;
  }
  runs_total_ = metrics->GetCounter("eval_runs_total");
  users_total_ = metrics->GetCounter("eval_users_total");
  wall_ms_ = metrics->GetHistogram("eval_wall_ms");
}

std::vector<ItemSet> Evaluator::RelevantSets(const EdgeList& eval_edges) const {
  std::vector<ItemSet> relevant(num_users_);
  for (const auto& [u, v] : eval_edges) {
    IMCAT_CHECK(u >= 0 && u < num_users_);
    relevant[u].insert(v);
  }
  return relevant;
}

std::vector<int64_t> Evaluator::TopNForUser(const Ranker& ranker, int64_t user,
                                            int top_n) const {
  std::vector<float> scores;
  ranker.ScoreItemsForUser(user, &scores);
  IMCAT_CHECK_EQ(static_cast<int64_t>(scores.size()), num_items_);
  return TopNFromScores(user, scores.data(), top_n);
}

std::vector<int64_t> Evaluator::TopNFromScores(int64_t user, float* scores,
                                               int top_n) const {
  for (int64_t v : train_items_[user]) {
    scores[v] = -std::numeric_limits<float>::infinity();
  }
  const int64_t limit = std::min<int64_t>(top_n, num_items_);
  std::vector<int64_t> order(num_items_);
  for (int64_t i = 0; i < num_items_; ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + limit, order.end(),
                    [scores](int64_t a, int64_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;  // Deterministic tie-break.
                    });
  order.resize(limit);
  // Truncate masked (training) items: when top_n exceeds the number of
  // unseen items they would otherwise pad the tail of the list.
  while (!order.empty() &&
         scores[order.back()] == -std::numeric_limits<float>::infinity()) {
    order.pop_back();
  }
  return order;
}

void Evaluator::set_batch_users(int64_t batch_users) {
  IMCAT_CHECK(batch_users >= 1);
  batch_users_ = batch_users;
}

EvalResult Evaluator::Evaluate(const Ranker& ranker,
                               const EdgeList& eval_edges, int top_n,
                               const std::vector<int64_t>& user_subset,
                               ThreadPool* pool) const {
  ScopedTimer wall_timer(wall_ms_);
  const std::vector<ItemSet> relevant = RelevantSets(eval_edges);
  std::vector<int64_t> users;
  if (user_subset.empty()) {
    for (int64_t u = 0; u < num_users_; ++u) users.push_back(u);
  } else {
    users = user_subset;
  }

  // Materialise lazy eval caches single-threaded before any fan-out (and
  // on the serial path too, so both paths see the same ranker state).
  ranker.PrepareScoring();

  // Per-user metric slots. Each slot is written by exactly one index of
  // the ParallelFor, then reduced serially in index order below — the
  // summation order is therefore identical to the serial loop, making the
  // averaged result bit-identical at any thread count.
  struct PerUser {
    double recall = 0.0, ndcg = 0.0, precision = 0.0;
    double hit_rate = 0.0, mrr = 0.0;
    bool counted = false;
  };
  std::vector<PerUser> slots(users.size());
  const int64_t n = static_cast<int64_t>(users.size());
  const int64_t batch = std::max<int64_t>(1, batch_users_);
  // One ParallelFor index = one user block: the block's users with
  // held-out items are scored by a single batched ScoreItemsForUsers call
  // (the multi-user kernel streams each item block through cache once per
  // batch), then ranked per user from their slice of the score buffer.
  // Each slot is still written by exactly one block, and the reduction
  // below stays serial in index order, so the result is bit-identical to
  // the per-user path at any thread count and batch size.
  auto eval_block = [&](int64_t block) {
    const int64_t lo = block * batch;
    const int64_t hi = std::min(n, lo + batch);
    std::vector<int64_t> block_users;
    std::vector<size_t> block_idx;
    for (int64_t idx = lo; idx < hi; ++idx) {
      const int64_t u = users[static_cast<size_t>(idx)];
      if (relevant[u].empty()) continue;  // Same skip as the scalar path.
      block_users.push_back(u);
      block_idx.push_back(static_cast<size_t>(idx));
    }
    if (block_users.empty()) return;
    std::vector<float> scores;
    ranker.ScoreItemsForUsers(block_users, &scores);
    IMCAT_CHECK_EQ(static_cast<int64_t>(scores.size()),
                   static_cast<int64_t>(block_users.size()) * num_items_);
    for (size_t pos = 0; pos < block_users.size(); ++pos) {
      const int64_t u = block_users[pos];
      const std::vector<int64_t> top = TopNFromScores(
          u, scores.data() + static_cast<int64_t>(pos) * num_items_, top_n);
      PerUser& slot = slots[block_idx[pos]];
      slot.recall = RecallAtN(top, relevant[u], top_n);
      slot.ndcg = NdcgAtN(top, relevant[u], top_n);
      slot.precision = PrecisionAtN(top, relevant[u], top_n);
      slot.hit_rate = HitRateAtN(top, relevant[u], top_n);
      slot.mrr = MrrAtN(top, relevant[u], top_n);
      slot.counted = true;
    }
  };
  const int64_t num_blocks = (n + batch - 1) / batch;
  if (pool != nullptr) {
    Status st = pool->ParallelFor(0, num_blocks, eval_block);
    IMCAT_CHECK(st.ok());  // Metric code does not throw.
  } else {
    for (int64_t block = 0; block < num_blocks; ++block) eval_block(block);
  }

  EvalResult result;
  for (const PerUser& slot : slots) {
    if (!slot.counted) continue;
    result.recall += slot.recall;
    result.ndcg += slot.ndcg;
    result.precision += slot.precision;
    result.hit_rate += slot.hit_rate;
    result.mrr += slot.mrr;
    ++result.num_users;
  }
  if (result.num_users > 0) {
    const double n = static_cast<double>(result.num_users);
    result.recall /= n;
    result.ndcg /= n;
    result.precision /= n;
    result.hit_rate /= n;
    result.mrr /= n;
  }
  if (runs_total_ != nullptr) runs_total_->Increment();
  if (users_total_ != nullptr) users_total_->Add(result.num_users);
  return result;
}

}  // namespace imcat
