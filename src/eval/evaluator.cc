#include "eval/evaluator.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace imcat {

Evaluator::Evaluator(const Dataset& dataset, const DataSplit& split)
    : num_users_(dataset.num_users), num_items_(dataset.num_items) {
  train_items_.resize(num_users_);
  item_degree_.assign(num_items_, 0);
  for (const auto& [u, v] : split.train) {
    IMCAT_CHECK(u >= 0 && u < num_users_);
    IMCAT_CHECK(v >= 0 && v < num_items_);
    train_items_[u].push_back(v);
    ++item_degree_[v];
  }
  for (auto& items : train_items_) std::sort(items.begin(), items.end());
}

void Evaluator::set_metrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    runs_total_ = nullptr;
    users_total_ = nullptr;
    wall_ms_ = nullptr;
    return;
  }
  runs_total_ = metrics->GetCounter("eval_runs_total");
  users_total_ = metrics->GetCounter("eval_users_total");
  wall_ms_ = metrics->GetHistogram("eval_wall_ms");
}

std::vector<ItemSet> Evaluator::RelevantSets(const EdgeList& eval_edges) const {
  std::vector<ItemSet> relevant(num_users_);
  for (const auto& [u, v] : eval_edges) {
    IMCAT_CHECK(u >= 0 && u < num_users_);
    relevant[u].insert(v);
  }
  return relevant;
}

std::vector<int64_t> Evaluator::TopNForUser(const Ranker& ranker, int64_t user,
                                            int top_n) const {
  std::vector<float> scores;
  ranker.ScoreItemsForUser(user, &scores);
  IMCAT_CHECK_EQ(static_cast<int64_t>(scores.size()), num_items_);
  for (int64_t v : train_items_[user]) {
    scores[v] = -std::numeric_limits<float>::infinity();
  }
  const int64_t limit = std::min<int64_t>(top_n, num_items_);
  std::vector<int64_t> order(num_items_);
  for (int64_t i = 0; i < num_items_; ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + limit, order.end(),
                    [&scores](int64_t a, int64_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;  // Deterministic tie-break.
                    });
  order.resize(limit);
  // Truncate masked (training) items: when top_n exceeds the number of
  // unseen items they would otherwise pad the tail of the list.
  while (!order.empty() &&
         scores[order.back()] == -std::numeric_limits<float>::infinity()) {
    order.pop_back();
  }
  return order;
}

EvalResult Evaluator::Evaluate(const Ranker& ranker,
                               const EdgeList& eval_edges, int top_n,
                               const std::vector<int64_t>& user_subset,
                               ThreadPool* pool) const {
  ScopedTimer wall_timer(wall_ms_);
  const std::vector<ItemSet> relevant = RelevantSets(eval_edges);
  std::vector<int64_t> users;
  if (user_subset.empty()) {
    for (int64_t u = 0; u < num_users_; ++u) users.push_back(u);
  } else {
    users = user_subset;
  }

  // Materialise lazy eval caches single-threaded before any fan-out (and
  // on the serial path too, so both paths see the same ranker state).
  ranker.PrepareScoring();

  // Per-user metric slots. Each slot is written by exactly one index of
  // the ParallelFor, then reduced serially in index order below — the
  // summation order is therefore identical to the serial loop, making the
  // averaged result bit-identical at any thread count.
  struct PerUser {
    double recall = 0.0, ndcg = 0.0, precision = 0.0;
    double hit_rate = 0.0, mrr = 0.0;
    bool counted = false;
  };
  std::vector<PerUser> slots(users.size());
  auto eval_one = [&](int64_t idx) {
    const int64_t u = users[static_cast<size_t>(idx)];
    if (relevant[u].empty()) return;
    const std::vector<int64_t> top = TopNForUser(ranker, u, top_n);
    PerUser& slot = slots[static_cast<size_t>(idx)];
    slot.recall = RecallAtN(top, relevant[u], top_n);
    slot.ndcg = NdcgAtN(top, relevant[u], top_n);
    slot.precision = PrecisionAtN(top, relevant[u], top_n);
    slot.hit_rate = HitRateAtN(top, relevant[u], top_n);
    slot.mrr = MrrAtN(top, relevant[u], top_n);
    slot.counted = true;
  };
  const int64_t n = static_cast<int64_t>(users.size());
  if (pool != nullptr) {
    Status st = pool->ParallelFor(0, n, eval_one);
    IMCAT_CHECK(st.ok());  // Metric code does not throw.
  } else {
    for (int64_t idx = 0; idx < n; ++idx) eval_one(idx);
  }

  EvalResult result;
  for (const PerUser& slot : slots) {
    if (!slot.counted) continue;
    result.recall += slot.recall;
    result.ndcg += slot.ndcg;
    result.precision += slot.precision;
    result.hit_rate += slot.hit_rate;
    result.mrr += slot.mrr;
    ++result.num_users;
  }
  if (result.num_users > 0) {
    const double n = static_cast<double>(result.num_users);
    result.recall /= n;
    result.ndcg /= n;
    result.precision /= n;
    result.hit_rate /= n;
    result.mrr /= n;
  }
  if (runs_total_ != nullptr) runs_total_->Increment();
  if (users_total_ != nullptr) users_total_->Add(result.num_users);
  return result;
}

}  // namespace imcat
