#ifndef IMCAT_EVAL_EVALUATOR_H_
#define IMCAT_EVAL_EVALUATOR_H_

#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

/// \file evaluator.h
/// Full-ranking evaluation (Sec. V-B): for every user with held-out items,
/// score all items, mask the user's training items, take the top N and
/// average the ranking metrics over users. Scoring runs in user batches
/// through Ranker::ScoreItemsForUsers (the blocked multi-user kernel for
/// inner-product rankers, DESIGN.md §12) and parallelizes per user block
/// over a ThreadPool with a reduction that is deterministic by
/// construction: per-user metrics are written into slots owned by the
/// user's position and accumulated serially in index order afterwards, so
/// the EvalResult — floating-point summation order included — is
/// bit-identical to the serial per-user path at any thread count and any
/// batch size.

namespace imcat {

/// Anything that can score the full item catalogue for a user. Implemented
/// by every model in the library.
class Ranker {
 public:
  virtual ~Ranker() = default;

  /// Writes a relevance score for every item (resizing `scores` to the
  /// item count). Higher is better. Must not depend on held-out data.
  ///
  /// Thread-safety contract: after PrepareScoring() has returned, and
  /// until the next parameter update, concurrent calls for distinct users
  /// must be safe — the parallel evaluator calls this from many threads.
  virtual void ScoreItemsForUser(int64_t user,
                                 std::vector<float>* scores) const = 0;

  /// Batched variant: scores every item for each of `users`, writing
  /// user i's scores at `(*scores)[i * num_items .. (i+1) * num_items)`
  /// (the vector is resized to users.size() * num_items). The default
  /// loops over ScoreItemsForUser; inner-product rankers override it with
  /// the blocked multi-user kernel (tensor/score_kernel.h) so the item
  /// table streams through cache once per batch instead of once per user.
  /// Overrides must be bit-identical to the per-user path — the evaluator
  /// relies on it (same ascending-dim fp32 accumulation per pair).
  /// Same thread-safety contract as ScoreItemsForUser.
  virtual void ScoreItemsForUsers(const std::vector<int64_t>& users,
                                  std::vector<float>* scores) const;

  /// Builds any lazily derived evaluation state (propagated factor
  /// caches, ...) up front. Rankers whose ScoreItemsForUser would
  /// otherwise materialise a shared cache on first call must override
  /// this so the cache is built once, single-threaded, before the
  /// parallel fan-out. Default: nothing to prepare.
  virtual void PrepareScoring() const {}
};

/// Averaged metrics over the evaluated users.
struct EvalResult {
  double recall = 0.0;
  double ndcg = 0.0;
  double precision = 0.0;
  double hit_rate = 0.0;
  double mrr = 0.0;
  int64_t num_users = 0;  ///< Users with at least one held-out item.
};

/// Evaluates rankers against a fixed dataset/split. The evaluator
/// precomputes each user's training-item mask and can evaluate on the
/// validation or test partition (or any edge list).
class Evaluator {
 public:
  Evaluator(const Dataset& dataset, const DataSplit& split);

  /// Evaluates `ranker` at cutoff `top_n` on `eval_edges` (typically
  /// split.validation or split.test). Training items are excluded from the
  /// candidate ranking. Optionally restricts to `user_subset` (empty =>
  /// all users). When `pool` is non-null the per-user scoring fans out
  /// across it; the result is bit-identical to the serial path (index-
  /// ordered reduction) for any thread count.
  EvalResult Evaluate(const Ranker& ranker, const EdgeList& eval_edges,
                      int top_n, const std::vector<int64_t>& user_subset = {},
                      ThreadPool* pool = nullptr) const;

  /// Returns the ranked top-N items for one user (training items masked).
  std::vector<int64_t> TopNForUser(const Ranker& ranker, int64_t user,
                                   int top_n) const;

  /// Rank from precomputed scores: masks `user`'s training items to -inf
  /// in `scores` (one full-catalogue row, mutated in place) and returns
  /// the top-N ids (score desc, id asc; masked-tail truncated). The
  /// batched Evaluate path calls this once per user on its slice of the
  /// multi-user score buffer; TopNForUser is this after a scalar scoring
  /// call, so the two paths rank identically by construction.
  std::vector<int64_t> TopNFromScores(int64_t user, float* scores,
                                      int top_n) const;

  /// Users scored per batched ScoreItemsForUsers call inside Evaluate
  /// (default 8). 1 reproduces the per-user scoring path exactly; any
  /// value yields bit-identical results (the contract the batch-identity
  /// property suite pins), larger values amortise the item-table cache
  /// streaming better up to the point where batch x block_items score
  /// rows outgrow L2. Applies to serial and pooled evaluation alike.
  void set_batch_users(int64_t batch_users);
  int64_t batch_users() const { return batch_users_; }

  int64_t num_items() const { return num_items_; }

  /// Training-degree of a user (number of training interactions).
  int64_t UserTrainDegree(int64_t user) const {
    return static_cast<int64_t>(train_items_[user].size());
  }

  /// Training-degree of an item.
  int64_t ItemTrainDegree(int64_t item) const { return item_degree_[item]; }

  /// Per-user relevant sets for an edge list, exposed for group analyses.
  std::vector<ItemSet> RelevantSets(const EdgeList& eval_edges) const;

  /// Enables instrumentation (DESIGN.md §9): each Evaluate call bumps
  /// `eval_runs_total`, adds the evaluated-user count to
  /// `eval_users_total` and records its wall time into `eval_wall_ms`.
  /// Null (the default) disables all of it, clock reads included.
  void set_metrics(MetricsRegistry* metrics);

 private:
  int64_t num_users_ = 0;
  int64_t num_items_ = 0;
  int64_t batch_users_ = 8;
  std::vector<std::vector<int64_t>> train_items_;  // Sorted per user.
  std::vector<int64_t> item_degree_;
  Counter* runs_total_ = nullptr;
  Counter* users_total_ = nullptr;
  Histogram* wall_ms_ = nullptr;
};

}  // namespace imcat

#endif  // IMCAT_EVAL_EVALUATOR_H_
