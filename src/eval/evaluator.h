#ifndef IMCAT_EVAL_EVALUATOR_H_
#define IMCAT_EVAL_EVALUATOR_H_

#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

/// \file evaluator.h
/// Full-ranking evaluation (Sec. V-B): for every user with held-out items,
/// score all items, mask the user's training items, take the top N and
/// average the ranking metrics over users. Evaluation parallelizes per
/// user over a ThreadPool with a reduction that is deterministic by
/// construction: per-user metrics are written into slots owned by the
/// user's position and accumulated serially in index order afterwards, so
/// the EvalResult — floating-point summation order included — is
/// bit-identical to the serial path at any thread count.

namespace imcat {

/// Anything that can score the full item catalogue for a user. Implemented
/// by every model in the library.
class Ranker {
 public:
  virtual ~Ranker() = default;

  /// Writes a relevance score for every item (resizing `scores` to the
  /// item count). Higher is better. Must not depend on held-out data.
  ///
  /// Thread-safety contract: after PrepareScoring() has returned, and
  /// until the next parameter update, concurrent calls for distinct users
  /// must be safe — the parallel evaluator calls this from many threads.
  virtual void ScoreItemsForUser(int64_t user,
                                 std::vector<float>* scores) const = 0;

  /// Builds any lazily derived evaluation state (propagated factor
  /// caches, ...) up front. Rankers whose ScoreItemsForUser would
  /// otherwise materialise a shared cache on first call must override
  /// this so the cache is built once, single-threaded, before the
  /// parallel fan-out. Default: nothing to prepare.
  virtual void PrepareScoring() const {}
};

/// Averaged metrics over the evaluated users.
struct EvalResult {
  double recall = 0.0;
  double ndcg = 0.0;
  double precision = 0.0;
  double hit_rate = 0.0;
  double mrr = 0.0;
  int64_t num_users = 0;  ///< Users with at least one held-out item.
};

/// Evaluates rankers against a fixed dataset/split. The evaluator
/// precomputes each user's training-item mask and can evaluate on the
/// validation or test partition (or any edge list).
class Evaluator {
 public:
  Evaluator(const Dataset& dataset, const DataSplit& split);

  /// Evaluates `ranker` at cutoff `top_n` on `eval_edges` (typically
  /// split.validation or split.test). Training items are excluded from the
  /// candidate ranking. Optionally restricts to `user_subset` (empty =>
  /// all users). When `pool` is non-null the per-user scoring fans out
  /// across it; the result is bit-identical to the serial path (index-
  /// ordered reduction) for any thread count.
  EvalResult Evaluate(const Ranker& ranker, const EdgeList& eval_edges,
                      int top_n, const std::vector<int64_t>& user_subset = {},
                      ThreadPool* pool = nullptr) const;

  /// Returns the ranked top-N items for one user (training items masked).
  std::vector<int64_t> TopNForUser(const Ranker& ranker, int64_t user,
                                   int top_n) const;

  int64_t num_items() const { return num_items_; }

  /// Training-degree of a user (number of training interactions).
  int64_t UserTrainDegree(int64_t user) const {
    return static_cast<int64_t>(train_items_[user].size());
  }

  /// Training-degree of an item.
  int64_t ItemTrainDegree(int64_t item) const { return item_degree_[item]; }

  /// Per-user relevant sets for an edge list, exposed for group analyses.
  std::vector<ItemSet> RelevantSets(const EdgeList& eval_edges) const;

  /// Enables instrumentation (DESIGN.md §9): each Evaluate call bumps
  /// `eval_runs_total`, adds the evaluated-user count to
  /// `eval_users_total` and records its wall time into `eval_wall_ms`.
  /// Null (the default) disables all of it, clock reads included.
  void set_metrics(MetricsRegistry* metrics);

 private:
  int64_t num_users_ = 0;
  int64_t num_items_ = 0;
  std::vector<std::vector<int64_t>> train_items_;  // Sorted per user.
  std::vector<int64_t> item_degree_;
  Counter* runs_total_ = nullptr;
  Counter* users_total_ = nullptr;
  Histogram* wall_ms_ = nullptr;
};

}  // namespace imcat

#endif  // IMCAT_EVAL_EVALUATOR_H_
