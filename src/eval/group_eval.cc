#include "eval/group_eval.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace imcat {

std::vector<int> PopularityGroups(const Evaluator& evaluator, int num_groups) {
  IMCAT_CHECK_GT(num_groups, 0);
  const int64_t n = evaluator.num_items();
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return evaluator.ItemTrainDegree(a) < evaluator.ItemTrainDegree(b);
  });
  std::vector<int> group(n, 0);
  for (int64_t rank = 0; rank < n; ++rank) {
    group[order[rank]] = static_cast<int>(
        std::min<int64_t>(num_groups - 1, rank * num_groups / std::max<int64_t>(n, 1)));
  }
  return group;
}

std::vector<double> GroupRecallContribution(const Evaluator& evaluator,
                                            const Ranker& ranker,
                                            const EdgeList& eval_edges,
                                            int top_n,
                                            const std::vector<int>& item_group,
                                            int num_groups) {
  IMCAT_CHECK_EQ(static_cast<int64_t>(item_group.size()),
                 evaluator.num_items());
  const std::vector<ItemSet> relevant = evaluator.RelevantSets(eval_edges);
  std::vector<double> contribution(num_groups, 0.0);
  int64_t evaluated_users = 0;
  for (int64_t u = 0; u < static_cast<int64_t>(relevant.size()); ++u) {
    if (relevant[u].empty()) continue;
    ++evaluated_users;
    const std::vector<int64_t> top = evaluator.TopNForUser(ranker, u, top_n);
    for (int64_t v : top) {
      if (relevant[u].count(v)) {
        contribution[item_group[v]] +=
            1.0 / static_cast<double>(relevant[u].size());
      }
    }
  }
  if (evaluated_users > 0) {
    for (double& c : contribution) c /= static_cast<double>(evaluated_users);
  }
  return contribution;
}

std::vector<int64_t> SparseUsers(const Evaluator& evaluator, int64_t num_users,
                                 int64_t max_degree) {
  std::vector<int64_t> users;
  for (int64_t u = 0; u < num_users; ++u) {
    const int64_t deg = evaluator.UserTrainDegree(u);
    if (deg > 0 && deg < max_degree) users.push_back(u);
  }
  return users;
}

}  // namespace imcat
