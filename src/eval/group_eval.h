#ifndef IMCAT_EVAL_GROUP_EVAL_H_
#define IMCAT_EVAL_GROUP_EVAL_H_

#include <vector>

#include "eval/evaluator.h"

/// \file group_eval.h
/// Group-wise analyses behind Fig. 7 (item-popularity groups) and Fig. 8
/// (cold-start users).

namespace imcat {

/// Assigns every item to one of `num_groups` popularity groups with equal
/// item counts; group 0 holds the least-interacted items and group
/// num_groups-1 the most popular (matching the paper's G1..G5 ordering).
std::vector<int> PopularityGroups(const Evaluator& evaluator, int num_groups);

/// Per-group contribution to overall Recall@N, following [40]: for each
/// user, hits are partitioned by the hit item's group; group g's
/// contribution is mean over users of |hits in g| / |relevant|. The values
/// sum to the overall Recall@N.
std::vector<double> GroupRecallContribution(const Evaluator& evaluator,
                                            const Ranker& ranker,
                                            const EdgeList& eval_edges,
                                            int top_n,
                                            const std::vector<int>& item_group,
                                            int num_groups);

/// Users whose training degree is strictly below `max_degree` (the paper's
/// sparse-user protocol for Fig. 8).
std::vector<int64_t> SparseUsers(const Evaluator& evaluator,
                                 int64_t num_users, int64_t max_degree);

}  // namespace imcat

#endif  // IMCAT_EVAL_GROUP_EVAL_H_
