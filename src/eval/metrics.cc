#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace imcat {

namespace {
int64_t TopLimit(const std::vector<int64_t>& ranked, int n) {
  IMCAT_CHECK_GT(n, 0);
  return std::min<int64_t>(n, static_cast<int64_t>(ranked.size()));
}
}  // namespace

double RecallAtN(const std::vector<int64_t>& ranked, const ItemSet& relevant,
                 int n) {
  if (relevant.empty()) return 0.0;
  const int64_t limit = TopLimit(ranked, n);
  int64_t hits = 0;
  for (int64_t i = 0; i < limit; ++i) hits += relevant.count(ranked[i]);
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

double PrecisionAtN(const std::vector<int64_t>& ranked, const ItemSet& relevant,
                    int n) {
  const int64_t limit = TopLimit(ranked, n);
  if (limit == 0) return 0.0;
  int64_t hits = 0;
  for (int64_t i = 0; i < limit; ++i) hits += relevant.count(ranked[i]);
  return static_cast<double>(hits) / static_cast<double>(n);
}

double NdcgAtN(const std::vector<int64_t>& ranked, const ItemSet& relevant,
               int n) {
  if (relevant.empty()) return 0.0;
  const int64_t limit = TopLimit(ranked, n);
  double dcg = 0.0;
  for (int64_t i = 0; i < limit; ++i) {
    if (relevant.count(ranked[i])) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  const int64_t ideal_hits =
      std::min<int64_t>(n, static_cast<int64_t>(relevant.size()));
  double idcg = 0.0;
  for (int64_t i = 0; i < ideal_hits; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

double HitRateAtN(const std::vector<int64_t>& ranked, const ItemSet& relevant,
                  int n) {
  const int64_t limit = TopLimit(ranked, n);
  for (int64_t i = 0; i < limit; ++i) {
    if (relevant.count(ranked[i])) return 1.0;
  }
  return 0.0;
}

double MrrAtN(const std::vector<int64_t>& ranked, const ItemSet& relevant,
              int n) {
  const int64_t limit = TopLimit(ranked, n);
  for (int64_t i = 0; i < limit; ++i) {
    if (relevant.count(ranked[i])) return 1.0 / static_cast<double>(i + 1);
  }
  return 0.0;
}

}  // namespace imcat
