#ifndef IMCAT_EVAL_METRICS_H_
#define IMCAT_EVAL_METRICS_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

/// \file metrics.h
/// Per-user top-N ranking metrics (Sec. V-B). Each function takes the
/// ranked recommendation list (best first, already truncated or not) and
/// the user's set of relevant (held-out) items.

namespace imcat {

using ItemSet = std::unordered_set<int64_t>;

/// Recall@N: fraction of relevant items appearing in the top N.
double RecallAtN(const std::vector<int64_t>& ranked, const ItemSet& relevant,
                 int n);

/// Precision@N: fraction of the top N that is relevant.
double PrecisionAtN(const std::vector<int64_t>& ranked, const ItemSet& relevant,
                    int n);

/// NDCG@N with binary relevance: DCG@N / IDCG@N, where
/// DCG = sum over hits at rank r (1-based) of 1/log2(r+1).
double NdcgAtN(const std::vector<int64_t>& ranked, const ItemSet& relevant,
               int n);

/// HitRate@N: 1 if any relevant item is in the top N, else 0.
double HitRateAtN(const std::vector<int64_t>& ranked, const ItemSet& relevant,
                  int n);

/// MRR@N: reciprocal rank of the first relevant item in the top N (0 if
/// none).
double MrrAtN(const std::vector<int64_t>& ranked, const ItemSet& relevant,
              int n);

}  // namespace imcat

#endif  // IMCAT_EVAL_METRICS_H_
