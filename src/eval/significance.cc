#include "eval/significance.h"

#include <cmath>

#include "util/check.h"

namespace imcat {

namespace {

/// Continued fraction for the incomplete beta function (Lentz's method,
/// after Numerical Recipes' betacf).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 200;
  constexpr double kEps = 3e-12;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  IMCAT_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_beta =
      std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  const double front =
      std::exp(ln_beta + a * std::log(x) + b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

TTestResult PairedTTest(const std::vector<double>& x,
                        const std::vector<double>& y) {
  IMCAT_CHECK_EQ(x.size(), y.size());
  IMCAT_CHECK_GE(x.size(), 2u);
  const int64_t n = static_cast<int64_t>(x.size());

  double mean_diff = 0.0;
  for (int64_t i = 0; i < n; ++i) mean_diff += x[i] - y[i];
  mean_diff /= static_cast<double>(n);

  double ss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = (x[i] - y[i]) - mean_diff;
    ss += d * d;
  }
  const double var = ss / static_cast<double>(n - 1);

  TTestResult result;
  result.degrees_of_freedom = static_cast<double>(n - 1);
  if (var <= 0.0) {
    result.t_statistic = mean_diff == 0.0 ? 0.0
                         : (mean_diff > 0.0 ? 1e30 : -1e30);
    result.p_value = mean_diff == 0.0 ? 1.0 : 0.0;
    return result;
  }
  const double se = std::sqrt(var / static_cast<double>(n));
  const double t = mean_diff / se;
  result.t_statistic = t;
  const double df = result.degrees_of_freedom;
  // Two-sided p-value via the incomplete beta identity.
  result.p_value = RegularizedIncompleteBeta(df / 2.0, 0.5,
                                             df / (df + t * t));
  return result;
}

}  // namespace imcat
