#ifndef IMCAT_EVAL_SIGNIFICANCE_H_
#define IMCAT_EVAL_SIGNIFICANCE_H_

#include <vector>

/// \file significance.h
/// Paired t-test used by the paper to compare the best model against the
/// best baseline across repeated runs (Table II caption).

namespace imcat {

/// Result of a paired t-test on matched samples.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;  ///< Two-sided.
};

/// Paired two-sided t-test of H0: mean(x - y) == 0. Requires x and y to
/// have the same size >= 2. Degenerate inputs (zero variance of the
/// differences) yield p = 0 when the means differ and p = 1 otherwise.
TTestResult PairedTTest(const std::vector<double>& x,
                        const std::vector<double>& y);

/// Regularised incomplete beta function I_x(a, b) (continued-fraction
/// evaluation), exposed for testing.
double RegularizedIncompleteBeta(double a, double b, double x);

}  // namespace imcat

#endif  // IMCAT_EVAL_SIGNIFICANCE_H_
