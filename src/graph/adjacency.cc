#include "graph/adjacency.h"

#include <cmath>

#include "util/check.h"

namespace imcat {

namespace {

/// Builds D^{-1/2} A D^{-1/2} for an undirected graph given as directed
/// triplets (both directions must be present in the inputs).
SparseMatrix NormalizeSymmetric(int64_t num_nodes,
                                const std::vector<int64_t>& rows,
                                const std::vector<int64_t>& cols,
                                const std::vector<float>& weights) {
  std::vector<double> degree(num_nodes, 0.0);
  for (size_t e = 0; e < rows.size(); ++e) degree[rows[e]] += weights[e];
  std::vector<float> norm_weights(weights.size());
  for (size_t e = 0; e < rows.size(); ++e) {
    const double dr = degree[rows[e]];
    const double dc = degree[cols[e]];
    norm_weights[e] =
        dr > 0.0 && dc > 0.0
            ? static_cast<float>(weights[e] / std::sqrt(dr * dc))
            : 0.0f;
  }
  return SparseMatrix::FromTriplets(num_nodes, num_nodes, rows, cols,
                                    norm_weights);
}

}  // namespace

SparseMatrix BuildUserItemAdjacency(int64_t num_users, int64_t num_items,
                                    const EdgeList& interactions) {
  const int64_t n = num_users + num_items;
  std::vector<int64_t> rows, cols;
  std::vector<float> w;
  rows.reserve(2 * interactions.size());
  cols.reserve(2 * interactions.size());
  w.reserve(2 * interactions.size());
  for (const auto& [u, v] : interactions) {
    IMCAT_CHECK(u >= 0 && u < num_users);
    IMCAT_CHECK(v >= 0 && v < num_items);
    rows.push_back(u);
    cols.push_back(num_users + v);
    w.push_back(1.0f);
    rows.push_back(num_users + v);
    cols.push_back(u);
    w.push_back(1.0f);
  }
  return NormalizeSymmetric(n, rows, cols, w);
}

SparseMatrix BuildUnifiedAdjacency(int64_t num_users, int64_t num_items,
                                   int64_t num_tags,
                                   const EdgeList& interactions,
                                   const EdgeList& item_tags,
                                   float tag_edge_weight) {
  const int64_t n = num_users + num_items + num_tags;
  std::vector<int64_t> rows, cols;
  std::vector<float> w;
  const size_t total = 2 * (interactions.size() + item_tags.size());
  rows.reserve(total);
  cols.reserve(total);
  w.reserve(total);
  for (const auto& [u, v] : interactions) {
    rows.push_back(u);
    cols.push_back(num_users + v);
    w.push_back(1.0f);
    rows.push_back(num_users + v);
    cols.push_back(u);
    w.push_back(1.0f);
  }
  for (const auto& [v, t] : item_tags) {
    IMCAT_CHECK(v >= 0 && v < num_items);
    IMCAT_CHECK(t >= 0 && t < num_tags);
    rows.push_back(num_users + v);
    cols.push_back(num_users + num_items + t);
    w.push_back(tag_edge_weight);
    rows.push_back(num_users + num_items + t);
    cols.push_back(num_users + v);
    w.push_back(tag_edge_weight);
  }
  return NormalizeSymmetric(n, rows, cols, w);
}

SparseMatrix BuildItemTagAdjacency(int64_t num_items, int64_t num_tags,
                                   const EdgeList& item_tags) {
  const int64_t n = num_items + num_tags;
  std::vector<int64_t> rows, cols;
  std::vector<float> w;
  rows.reserve(2 * item_tags.size());
  cols.reserve(2 * item_tags.size());
  w.reserve(2 * item_tags.size());
  for (const auto& [v, t] : item_tags) {
    rows.push_back(v);
    cols.push_back(num_items + t);
    w.push_back(1.0f);
    rows.push_back(num_items + t);
    cols.push_back(v);
    w.push_back(1.0f);
  }
  return NormalizeSymmetric(n, rows, cols, w);
}

EdgeList DropEdges(const EdgeList& edges, double keep_prob, Rng* rng) {
  IMCAT_CHECK(keep_prob > 0.0 && keep_prob <= 1.0);
  EdgeList kept;
  kept.reserve(static_cast<size_t>(edges.size() * keep_prob) + 1);
  for (const auto& edge : edges) {
    if (rng->Uniform() < keep_prob) kept.push_back(edge);
  }
  if (kept.empty() && !edges.empty()) {
    kept.push_back(edges[rng->UniformInt(static_cast<int64_t>(edges.size()))]);
  }
  return kept;
}

}  // namespace imcat
