#ifndef IMCAT_GRAPH_ADJACENCY_H_
#define IMCAT_GRAPH_ADJACENCY_H_

#include "data/dataset.h"
#include "tensor/sparse.h"
#include "util/rng.h"

/// \file adjacency.h
/// Builders for the normalised adjacency matrices used by the GNN models:
/// LightGCN's bipartite user-item graph, the unified user-item-tag graph
/// (TGCN/KGCL), and SGL's edge-dropout augmentations.

namespace imcat {

/// Builds the symmetrically normalised adjacency D^{-1/2} A D^{-1/2} over
/// the node set [users (0..U-1), items (U..U+V-1)] from the (user, item)
/// training edges. The matrix is symmetric, so it equals its own transpose
/// for SpMM backward purposes.
SparseMatrix BuildUserItemAdjacency(int64_t num_users, int64_t num_items,
                                    const EdgeList& interactions);

/// Builds the symmetrically normalised adjacency over the unified node set
/// [users, items, tags] from (user, item) and (item, tag) edges. Item-tag
/// edges are weighted by `tag_edge_weight` before normalisation.
SparseMatrix BuildUnifiedAdjacency(int64_t num_users, int64_t num_items,
                                   int64_t num_tags,
                                   const EdgeList& interactions,
                                   const EdgeList& item_tags,
                                   float tag_edge_weight = 1.0f);

/// Builds the symmetrically normalised adjacency over [items, tags] from
/// the (item, tag) edges (the knowledge-graph view used by KGCL).
SparseMatrix BuildItemTagAdjacency(int64_t num_items, int64_t num_tags,
                                   const EdgeList& item_tags);

/// Randomly keeps each edge with probability `keep_prob` (SGL's edge
/// dropout augmentation). Always keeps at least one edge if any exist.
EdgeList DropEdges(const EdgeList& edges, double keep_prob, Rng* rng);

}  // namespace imcat

#endif  // IMCAT_GRAPH_ADJACENCY_H_
