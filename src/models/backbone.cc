#include "models/backbone.h"

#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace imcat {

BprModel::BprModel(std::unique_ptr<Backbone> backbone, const Dataset& dataset,
                   const DataSplit& split, const AdamOptions& adam,
                   int64_t batch_size)
    : backbone_(std::move(backbone)),
      sampler_(dataset.num_users, dataset.num_items, split.train),
      optimizer_(adam),
      batch_size_(batch_size) {
  optimizer_.AddParameters(backbone_->Parameters());
}

double BprModel::TrainStep(Rng* rng) {
  TripletBatch batch;
  sampler_.SampleBatch(batch_size_, rng, &batch, pool_);
  backbone_->BeginStep();
  Tensor loss = BprLossFromBackbone(backbone_.get(), batch);
  optimizer_.ZeroGrad();
  Backward(loss);
  optimizer_.Step();
  backbone_->InvalidateEvalCache();
  return loss.item();
}

int64_t BprModel::StepsPerEpoch() const {
  return (sampler_.num_edges() + batch_size_ - 1) / batch_size_;
}

std::vector<Tensor> BprModel::Parameters() { return backbone_->Parameters(); }

std::string BprModel::name() const { return backbone_->name(); }

void BprModel::ScoreItemsForUser(int64_t user,
                                 std::vector<float>* scores) const {
  backbone_->ScoreItemsForUser(user, scores);
}

Tensor BprLossFromBackbone(Backbone* backbone, const TripletBatch& batch) {
  Tensor pos = backbone->PairScores(batch.anchors, batch.positives);
  Tensor neg = backbone->PairScores(batch.anchors, batch.negatives);
  Tensor margin = ops::Sub(pos, neg);
  return ops::ScalarMul(ops::Mean(ops::LogSigmoid(margin)), -1.0f);
}

}  // namespace imcat
