#ifndef IMCAT_MODELS_BACKBONE_H_
#define IMCAT_MODELS_BACKBONE_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/evaluator.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"
#include "train/sampler.h"
#include "train/trainer.h"
#include "util/rng.h"

/// \file backbone.h
/// The recommendation-backbone abstraction. IMCAT is model-agnostic
/// (Sec. I): it can be plugged into any backbone that exposes user/item
/// embeddings and pairwise scores. The library ships BPRMF (MF-based),
/// NeuMF (MLP-based) and LightGCN (GNN-based), matching the paper's
/// B-/N-/L-IMCAT variants.

namespace imcat {

/// A trainable user/item representation model.
///
/// Training-time contract: call BeginStep() once per optimisation step,
/// then UserEmbeddings()/ItemEmbeddings()/PairScores() return
/// graph-connected tensors whose gradients flow to Parameters().
///
/// Evaluation-time contract: ScoreItemsForUser() is a forward-only fast
/// path; implementations cache derived state and must have the cache
/// invalidated (InvalidateEvalCache) whenever parameters change.
class Backbone : public Ranker {
 public:
  ~Backbone() override = default;

  virtual std::string name() const = 0;
  virtual int64_t embedding_dim() const = 0;
  virtual int64_t num_users() const = 0;
  virtual int64_t num_items() const = 0;

  /// Recomputes per-step state (e.g. LightGCN propagation). Must be called
  /// before the embedding/score accessors in each training step.
  virtual void BeginStep() {}

  /// Final user representations (num_users x d), graph-connected.
  virtual Tensor UserEmbeddings() = 0;

  /// Final item representations (num_items x d), graph-connected.
  virtual Tensor ItemEmbeddings() = 0;

  /// Relevance scores for aligned (users[i], items[i]) pairs, shape (B x 1).
  virtual Tensor PairScores(const std::vector<int64_t>& users,
                            const std::vector<int64_t>& items) = 0;

  /// All trainable tensors.
  virtual std::vector<Tensor> Parameters() = 0;

  /// Drops any cached evaluation state (call after parameter updates).
  virtual void InvalidateEvalCache() {}
};

/// Options shared by the bundled backbones.
struct BackboneOptions {
  int64_t embedding_dim = 64;
  uint64_t seed = 13;
};

/// Wraps a backbone into a standalone TrainableModel optimising the BPR
/// ranking loss L_UV (Eq. 1). This is how the three backbone baselines of
/// Table II (BPRMF, NeuMF, LightGCN rows) are trained; IMCAT replaces this
/// wrapper with its joint objective.
class BprModel : public TrainableModel {
 public:
  /// Trains `backbone` on the training interactions of `split`.
  BprModel(std::unique_ptr<Backbone> backbone, const Dataset& dataset,
           const DataSplit& split, const AdamOptions& adam,
           int64_t batch_size = 1024);

  double TrainStep(Rng* rng) override;
  int64_t StepsPerEpoch() const override;
  std::vector<Tensor> Parameters() override;
  std::string name() const override;
  AdamOptimizer* optimizer() override { return &optimizer_; }
  void set_thread_pool(ThreadPool* pool) override { pool_ = pool; }
  void ScoreItemsForUser(int64_t user,
                         std::vector<float>* scores) const override;
  void ScoreItemsForUsers(const std::vector<int64_t>& users,
                          std::vector<float>* scores) const override {
    backbone_->ScoreItemsForUsers(users, scores);
  }
  void PrepareScoring() const override { backbone_->PrepareScoring(); }

  Backbone* backbone() { return backbone_.get(); }

 private:
  std::unique_ptr<Backbone> backbone_;
  TripletSampler sampler_;
  AdamOptimizer optimizer_;
  int64_t batch_size_;
  ThreadPool* pool_ = nullptr;  ///< Optional parallel-sampling pool.
};

/// Builds the BPR ranking loss -log sigma(s+ - s-) for a triplet batch
/// against a backbone (shared by IMCAT and the baselines).
Tensor BprLossFromBackbone(Backbone* backbone, const TripletBatch& batch);

}  // namespace imcat

#endif  // IMCAT_MODELS_BACKBONE_H_
