#include "models/bprmf.h"

#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/score_kernel.h"

namespace imcat {

Bprmf::Bprmf(int64_t num_users, int64_t num_items,
             const BackboneOptions& options)
    : num_users_(num_users), num_items_(num_items),
      dim_(options.embedding_dim) {
  Rng rng(options.seed);
  user_table_ = XavierUniform(num_users, dim_, &rng, /*treat_as_embedding=*/true);
  item_table_ = XavierUniform(num_items, dim_, &rng, /*treat_as_embedding=*/true);
}

Tensor Bprmf::PairScores(const std::vector<int64_t>& users,
                         const std::vector<int64_t>& items) {
  Tensor u = ops::Gather(user_table_, users);
  Tensor v = ops::Gather(item_table_, items);
  return ops::RowSum(ops::Mul(u, v));
}

std::vector<Tensor> Bprmf::Parameters() { return {user_table_, item_table_}; }

void Bprmf::ScoreItemsForUser(int64_t user,
                              std::vector<float>* scores) const {
  scores->assign(num_items_, 0.0f);
  const float* u = user_table_.data() + user * dim_;
  const float* items = item_table_.data();
  for (int64_t v = 0; v < num_items_; ++v) {
    const float* iv = items + v * dim_;
    float acc = 0.0f;
    for (int64_t c = 0; c < dim_; ++c) acc += u[c] * iv[c];
    (*scores)[v] = acc;
  }
}

void Bprmf::ScoreItemsForUsers(const std::vector<int64_t>& users,
                               std::vector<float>* scores) const {
  scores->assign(users.size() * static_cast<size_t>(num_items_), 0.0f);
  std::vector<const float*> user_rows(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    user_rows[i] = user_table_.data() + users[i] * dim_;
  }
  ScoreAllItemsBlocked(user_rows.data(), static_cast<int64_t>(users.size()),
                       item_table_.data(), num_items_, dim_,
                       kDefaultScoreBlockItems, scores->data(), num_items_);
}

}  // namespace imcat
