#ifndef IMCAT_MODELS_BPRMF_H_
#define IMCAT_MODELS_BPRMF_H_

#include <string>
#include <vector>

#include "models/backbone.h"

/// \file bprmf.h
/// Matrix-factorisation backbone (BPRMF [55] in the paper): a user table
/// and an item table scored by inner product. The simplest and fastest
/// backbone; B-IMCAT plugs IMCAT into this model.

namespace imcat {

class Bprmf : public Backbone {
 public:
  Bprmf(int64_t num_users, int64_t num_items, const BackboneOptions& options);

  std::string name() const override { return "BPRMF"; }
  int64_t embedding_dim() const override { return dim_; }
  int64_t num_users() const override { return num_users_; }
  int64_t num_items() const override { return num_items_; }

  Tensor UserEmbeddings() override { return user_table_; }
  Tensor ItemEmbeddings() override { return item_table_; }
  Tensor PairScores(const std::vector<int64_t>& users,
                    const std::vector<int64_t>& items) override;
  std::vector<Tensor> Parameters() override;

  void ScoreItemsForUser(int64_t user,
                         std::vector<float>* scores) const override;
  /// Batched scoring via the blocked multi-user kernel
  /// (tensor/score_kernel.h); bit-identical to the per-user loop.
  void ScoreItemsForUsers(const std::vector<int64_t>& users,
                          std::vector<float>* scores) const override;

 private:
  int64_t num_users_;
  int64_t num_items_;
  int64_t dim_;
  Tensor user_table_;
  Tensor item_table_;
};

}  // namespace imcat

#endif  // IMCAT_MODELS_BPRMF_H_
