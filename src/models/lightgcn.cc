#include "models/lightgcn.h"

#include <numeric>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace imcat {

LightGcn::LightGcn(int64_t num_users, int64_t num_items,
                   const EdgeList& train_edges, const BackboneOptions& options,
                   int num_layers)
    : num_users_(num_users), num_items_(num_items),
      dim_(options.embedding_dim), num_layers_(num_layers),
      adjacency_(BuildUserItemAdjacency(num_users, num_items, train_edges)) {
  IMCAT_CHECK_GE(num_layers_, 1);
  Rng rng(options.seed);
  base_table_ = XavierUniform(num_users + num_items, dim_, &rng,
                              /*treat_as_embedding=*/true);
}

void LightGcn::BeginStep() {
  // E = mean over layers of A^l E0.
  Tensor layer = base_table_;
  Tensor sum = base_table_;
  for (int l = 0; l < num_layers_; ++l) {
    layer = ops::SpMM(adjacency_, layer);
    sum = ops::Add(sum, layer);
  }
  Tensor final_table =
      ops::ScalarMul(sum, 1.0f / static_cast<float>(num_layers_ + 1));
  std::vector<int64_t> user_ids(num_users_);
  std::iota(user_ids.begin(), user_ids.end(), 0);
  std::vector<int64_t> item_ids(num_items_);
  std::iota(item_ids.begin(), item_ids.end(), num_users_);
  user_final_ = ops::Gather(final_table, user_ids);
  item_final_ = ops::Gather(final_table, item_ids);
  propagated_ = true;
}

void LightGcn::EnsurePropagated() {
  if (!propagated_) BeginStep();
}

Tensor LightGcn::UserEmbeddings() {
  EnsurePropagated();
  return user_final_;
}

Tensor LightGcn::ItemEmbeddings() {
  EnsurePropagated();
  return item_final_;
}

Tensor LightGcn::PairScores(const std::vector<int64_t>& users,
                            const std::vector<int64_t>& items) {
  EnsurePropagated();
  Tensor u = ops::Gather(user_final_, users);
  Tensor v = ops::Gather(item_final_, items);
  return ops::RowSum(ops::Mul(u, v));
}

std::vector<Tensor> LightGcn::Parameters() { return {base_table_}; }

void LightGcn::RefreshEvalCache() const {
  // Forward-only propagation on raw buffers.
  const int64_t n = num_users_ + num_items_;
  std::vector<float> layer(base_table_.data(), base_table_.data() + n * dim_);
  std::vector<float> sum = layer;
  std::vector<float> next(n * dim_);
  for (int l = 0; l < num_layers_; ++l) {
    adjacency_.Multiply(layer.data(), dim_, next.data());
    layer.swap(next);
    for (int64_t i = 0; i < n * dim_; ++i) sum[i] += layer[i];
  }
  const float scale = 1.0f / static_cast<float>(num_layers_ + 1);
  for (float& v : sum) v *= scale;
  eval_factors_ = std::move(sum);
  eval_cache_valid_ = true;
}

void LightGcn::ScoreItemsForUser(int64_t user,
                                 std::vector<float>* scores) const {
  if (!eval_cache_valid_) RefreshEvalCache();
  scores->assign(num_items_, 0.0f);
  const float* u = eval_factors_.data() + user * dim_;
  const float* items = eval_factors_.data() + num_users_ * dim_;
  for (int64_t v = 0; v < num_items_; ++v) {
    const float* iv = items + v * dim_;
    float acc = 0.0f;
    for (int64_t c = 0; c < dim_; ++c) acc += u[c] * iv[c];
    (*scores)[v] = acc;
  }
}

}  // namespace imcat
