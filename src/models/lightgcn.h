#ifndef IMCAT_MODELS_LIGHTGCN_H_
#define IMCAT_MODELS_LIGHTGCN_H_

#include <string>
#include <vector>

#include "graph/adjacency.h"
#include "models/backbone.h"
#include "tensor/sparse.h"

/// \file lightgcn.h
/// LightGCN backbone [57]: linear propagation over the symmetrically
/// normalised user-item graph with layer averaging,
///   E^(l+1) = A_hat E^(l),  E = mean(E^(0..L)).
/// The paper uses two convolution layers for all GNN models (Sec. V-D).
/// L-IMCAT plugs IMCAT into this model.

namespace imcat {

class LightGcn : public Backbone {
 public:
  /// Builds the propagation graph from the *training* interactions only.
  LightGcn(int64_t num_users, int64_t num_items, const EdgeList& train_edges,
           const BackboneOptions& options, int num_layers = 2);

  std::string name() const override { return "LightGCN"; }
  int64_t embedding_dim() const override { return dim_; }
  int64_t num_users() const override { return num_users_; }
  int64_t num_items() const override { return num_items_; }

  /// Runs the propagation for this step; the embedding accessors return
  /// the propagated (layer-averaged) tables.
  void BeginStep() override;
  Tensor UserEmbeddings() override;
  Tensor ItemEmbeddings() override;
  Tensor PairScores(const std::vector<int64_t>& users,
                    const std::vector<int64_t>& items) override;
  std::vector<Tensor> Parameters() override;

  void ScoreItemsForUser(int64_t user,
                         std::vector<float>* scores) const override;
  /// Builds the propagated factor cache up front; required before
  /// concurrent ScoreItemsForUser calls (the cache is shared state).
  void PrepareScoring() const override {
    if (!eval_cache_valid_) RefreshEvalCache();
  }
  void InvalidateEvalCache() override { eval_cache_valid_ = false; }

  int num_layers() const { return num_layers_; }

 private:
  void EnsurePropagated();
  void RefreshEvalCache() const;

  int64_t num_users_;
  int64_t num_items_;
  int64_t dim_;
  int num_layers_;
  SparseMatrix adjacency_;  ///< Symmetric, so it equals its transpose.
  Tensor base_table_;       ///< (U+V x d) trainable layer-0 embeddings.
  Tensor user_final_;       ///< Per-step propagated user table.
  Tensor item_final_;       ///< Per-step propagated item table.
  bool propagated_ = false;

  mutable bool eval_cache_valid_ = false;
  mutable std::vector<float> eval_factors_;  ///< (U+V x d) propagated, raw.
};

}  // namespace imcat

#endif  // IMCAT_MODELS_LIGHTGCN_H_
