#include "models/neumf.h"

#include <algorithm>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace imcat {

NeuMf::NeuMf(int64_t num_users, int64_t num_items,
             const BackboneOptions& options)
    : num_users_(num_users), num_items_(num_items),
      dim_(options.embedding_dim), half_(options.embedding_dim / 2) {
  IMCAT_CHECK_GE(half_, 1);
  IMCAT_CHECK_EQ(half_ * 2, dim_);
  Rng rng(options.seed);
  user_table_ = XavierUniform(num_users, dim_, &rng, /*treat_as_embedding=*/true);
  item_table_ = XavierUniform(num_items, dim_, &rng, /*treat_as_embedding=*/true);
  mlp_w1_ = XavierUniform(dim_, half_, &rng);
  mlp_b1_ = ZerosParameter(1, half_);
  fusion_ = XavierUniform(dim_, 1, &rng);
}

Tensor NeuMf::PairScores(const std::vector<int64_t>& users,
                         const std::vector<int64_t>& items) {
  Tensor u = ops::Gather(user_table_, users);
  Tensor v = ops::Gather(item_table_, items);
  Tensor u_gmf = ops::SliceCols(u, 0, half_);
  Tensor v_gmf = ops::SliceCols(v, 0, half_);
  Tensor u_mlp = ops::SliceCols(u, half_, dim_);
  Tensor v_mlp = ops::SliceCols(v, half_, dim_);

  Tensor gmf = ops::Mul(u_gmf, v_gmf);                        // (B x half)
  Tensor mlp_in = ops::ConcatCols({u_mlp, v_mlp});            // (B x d)
  Tensor hidden = ops::Relu(
      ops::AddRowBroadcast(ops::MatMul(mlp_in, mlp_w1_), mlp_b1_));
  Tensor fused = ops::ConcatCols({gmf, hidden});              // (B x d)
  return ops::MatMul(fused, fusion_);                          // (B x 1)
}

std::vector<Tensor> NeuMf::Parameters() {
  return {user_table_, item_table_, mlp_w1_, mlp_b1_, fusion_};
}

void NeuMf::ScoreItemsForUser(int64_t user,
                              std::vector<float>* scores) const {
  scores->assign(num_items_, 0.0f);
  const float* u = user_table_.data() + user * dim_;
  const float* u_gmf = u;
  const float* u_mlp = u + half_;
  const float* w1 = mlp_w1_.data();       // (d x half), row-major.
  const float* b1 = mlp_b1_.data();
  const float* h = fusion_.data();        // (d x 1).

  // Precompute the user's contribution to the hidden layer:
  // hidden_j = relu(b1_j + sum_c u_mlp[c] * w1[c][j] + sum_c v_mlp[c] * w1[half+c][j]).
  std::vector<float> user_hidden(half_, 0.0f);
  for (int64_t j = 0; j < half_; ++j) {
    float acc = b1[j];
    for (int64_t c = 0; c < half_; ++c) acc += u_mlp[c] * w1[c * half_ + j];
    user_hidden[j] = acc;
  }

  std::vector<float> hidden(half_);
  for (int64_t v = 0; v < num_items_; ++v) {
    const float* iv = item_table_.data() + v * dim_;
    const float* v_gmf = iv;
    const float* v_mlp = iv + half_;
    float score = 0.0f;
    for (int64_t c = 0; c < half_; ++c) score += h[c] * u_gmf[c] * v_gmf[c];
    for (int64_t j = 0; j < half_; ++j) hidden[j] = user_hidden[j];
    for (int64_t c = 0; c < half_; ++c) {
      const float vm = v_mlp[c];
      if (vm == 0.0f) continue;
      const float* w_row = w1 + (half_ + c) * half_;
      for (int64_t j = 0; j < half_; ++j) hidden[j] += vm * w_row[j];
    }
    for (int64_t j = 0; j < half_; ++j) {
      score += h[half_ + j] * std::max(hidden[j], 0.0f);
    }
    (*scores)[v] = score;
  }
}

}  // namespace imcat
