#ifndef IMCAT_MODELS_NEUMF_H_
#define IMCAT_MODELS_NEUMF_H_

#include <string>
#include <vector>

#include "models/backbone.h"

/// \file neumf.h
/// Neural collaborative filtering backbone (NeuMF [56]): the user/item
/// representations are split into a GMF half and an MLP half. The GMF half
/// is an elementwise product; the MLP half passes the concatenated
/// user/item vectors through a hidden layer. A fusion vector combines both
/// paths into the final score. N-IMCAT plugs IMCAT into this model.
///
/// The total embedding width is `embedding_dim` (d), matching the paper's
/// fair-comparison convention of equal parameter budgets: the GMF and MLP
/// paths each use d/2 dimensions of the same table.

namespace imcat {

class NeuMf : public Backbone {
 public:
  NeuMf(int64_t num_users, int64_t num_items, const BackboneOptions& options);

  std::string name() const override { return "NeuMF"; }
  int64_t embedding_dim() const override { return dim_; }
  int64_t num_users() const override { return num_users_; }
  int64_t num_items() const override { return num_items_; }

  Tensor UserEmbeddings() override { return user_table_; }
  Tensor ItemEmbeddings() override { return item_table_; }
  Tensor PairScores(const std::vector<int64_t>& users,
                    const std::vector<int64_t>& items) override;
  std::vector<Tensor> Parameters() override;

  void ScoreItemsForUser(int64_t user,
                         std::vector<float>* scores) const override;

 private:
  int64_t num_users_;
  int64_t num_items_;
  int64_t dim_;   ///< Total embedding width d.
  int64_t half_;  ///< d / 2: width of each of the GMF and MLP paths.

  Tensor user_table_;  ///< (U x d): [GMF | MLP] halves.
  Tensor item_table_;  ///< (V x d).
  Tensor mlp_w1_;      ///< (d x half): hidden layer over [u_mlp ; v_mlp].
  Tensor mlp_b1_;      ///< (1 x half).
  Tensor fusion_;      ///< (d x 1): weights over [gmf ; mlp_hidden].
};

}  // namespace imcat

#endif  // IMCAT_MODELS_NEUMF_H_
