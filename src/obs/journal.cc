#include "obs/journal.h"

#include <cmath>
#include <cstdio>

#include "util/atomic_file.h"

namespace imcat {

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace

JournalEvent& JournalEvent::Set(const std::string& key,
                                const std::string& value) {
  std::string field;
  AppendJsonString(key, &field);
  field += ':';
  AppendJsonString(value, &field);
  fields_.push_back(std::move(field));
  return *this;
}

JournalEvent& JournalEvent::Set(const std::string& key, const char* value) {
  return Set(key, std::string(value));
}

JournalEvent& JournalEvent::Set(const std::string& key, int64_t value) {
  std::string field;
  AppendJsonString(key, &field);
  field += ':' + std::to_string(value);
  fields_.push_back(std::move(field));
  return *this;
}

JournalEvent& JournalEvent::Set(const std::string& key, double value) {
  std::string field;
  AppendJsonString(key, &field);
  char buf[64];
  // JSON has no NaN/Inf literals; encode them as strings.
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    field += ':';
    field += buf;
  } else {
    std::snprintf(buf, sizeof(buf), "\"%s\"",
                  std::isnan(value) ? "nan" : (value > 0 ? "inf" : "-inf"));
    field += ':';
    field += buf;
  }
  fields_.push_back(std::move(field));
  return *this;
}

JournalEvent& JournalEvent::Set(const std::string& key, bool value) {
  std::string field;
  AppendJsonString(key, &field);
  field += ':';
  field += value ? "true" : "false";
  fields_.push_back(std::move(field));
  return *this;
}

std::string JournalEvent::ToJsonLine(int64_t seq) const {
  std::string line = "{\"event\":";
  AppendJsonString(type_, &line);
  line += ",\"seq\":" + std::to_string(seq);
  for (const std::string& field : fields_) {
    line += ',';
    line += field;
  }
  line += '}';
  return line;
}

RunJournal::RunJournal(std::string path)
    : RunJournal(std::move(path), Options{}) {}

RunJournal::RunJournal(std::string path, const Options& options)
    : path_(std::move(path)), options_(options) {}

RunJournal::~RunJournal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (appends_since_flush_ > 0) (void)FlushLocked();
}

void RunJournal::Append(const JournalEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(event.ToJsonLine(next_seq_++));
  ++appends_since_flush_;
  if (options_.flush_every > 0 &&
      appends_since_flush_ >= options_.flush_every) {
    last_flush_status_ = FlushLocked();
  }
}

Status RunJournal::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  last_flush_status_ = FlushLocked();
  return last_flush_status_;
}

Status RunJournal::FlushLocked() {
  AtomicFileWriter writer(path_);
  Status st = writer.Open();
  if (!st.ok()) return st;
  for (const std::string& line : lines_) {
    st = writer.Write(line);
    if (st.ok()) st = writer.Write("\n", 1);
    if (!st.ok()) return st;
  }
  st = writer.Commit();
  if (st.ok()) appends_since_flush_ = 0;
  return st;
}

int64_t RunJournal::events_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

Status RunJournal::last_flush_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_flush_status_;
}

}  // namespace imcat
