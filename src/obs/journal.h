#ifndef IMCAT_OBS_JOURNAL_H_
#define IMCAT_OBS_JOURNAL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

/// \file journal.h
/// A structured run journal: every operationally interesting event (train
/// epoch stats, health-guard rollbacks, checkpoint writes, snapshot
/// reloads, circuit-breaker transitions, ingestion quarantine summaries)
/// is appended as one JSON object per line (JSONL), so a run can be
/// replayed, diffed and grepped after the fact.
///
/// Durability contract: `Flush` rewrites the whole journal through
/// `AtomicFileWriter` (tmp + fsync + rename), so the file on disk is
/// always a *complete, valid* JSONL document — a crash or injected I/O
/// fault mid-flush leaves the previous complete journal intact, never a
/// torn line (asserted under FaultInjector crash faults in
/// tests/obs_test.cc). Events are buffered in memory between flushes;
/// `Options::flush_every` bounds how many appends can be lost to a crash.
///
/// Thread-safe: Append/Flush may be called from any thread (the serving
/// layer journals breaker transitions from worker threads).

namespace imcat {

/// One journal event: a type tag plus ordered key/value fields, serialised
/// as {"event":"<type>","seq":N,...fields...}.
class JournalEvent {
 public:
  explicit JournalEvent(std::string type) : type_(std::move(type)) {}

  JournalEvent& Set(const std::string& key, const std::string& value);
  JournalEvent& Set(const std::string& key, const char* value);
  JournalEvent& Set(const std::string& key, int64_t value);
  JournalEvent& Set(const std::string& key, int value) {
    return Set(key, static_cast<int64_t>(value));
  }
  JournalEvent& Set(const std::string& key, double value);
  JournalEvent& Set(const std::string& key, bool value);

  const std::string& type() const { return type_; }

  /// Serialises the event with the given sequence number (assigned by the
  /// journal at append time).
  std::string ToJsonLine(int64_t seq) const;

 private:
  std::string type_;
  /// Pre-serialised `"key":value` fragments in insertion order.
  std::vector<std::string> fields_;
};

/// Append-oriented JSONL journal with atomic whole-file flushes.
class RunJournal {
 public:
  struct Options {
    /// Auto-flush after this many appends (<= 0 disables auto-flush; the
    /// owner then controls durability with explicit Flush calls).
    int64_t flush_every = 16;
  };

  explicit RunJournal(std::string path);
  RunJournal(std::string path, const Options& options);

  /// Best-effort final flush (failures already surfaced via
  /// last_flush_status are not re-reported).
  ~RunJournal();

  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  /// Buffers one event (assigning it the next sequence number) and
  /// auto-flushes when `flush_every` appends have accumulated. Never
  /// fails: flush errors are recorded in last_flush_status so journalling
  /// can never take down the instrumented subsystem.
  void Append(const JournalEvent& event);

  /// Writes the full journal atomically. On failure the previous on-disk
  /// journal is untouched and the buffered events are retained for the
  /// next attempt.
  Status Flush();

  const std::string& path() const { return path_; }
  int64_t events_appended() const;
  /// Status of the most recent flush attempt (OK before the first one).
  Status last_flush_status() const;

 private:
  Status FlushLocked();

  const std::string path_;
  const Options options_;
  mutable std::mutex mu_;
  std::vector<std::string> lines_;  ///< Every serialised event, in order.
  int64_t next_seq_ = 0;
  int64_t appends_since_flush_ = 0;
  Status last_flush_status_;
};

}  // namespace imcat

#endif  // IMCAT_OBS_JOURNAL_H_
