#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/atomic_file.h"
#include "util/check.h"

namespace imcat {

namespace obs_internal {

int ThreadShardIndex() {
  // Threads take slots round-robin, so the first kShards concurrent
  // threads are fully uncontended; later ones share slots (still atomic,
  // still exact). The slot is computed once per thread.
  static std::atomic<unsigned> next_slot{0};
  thread_local const int slot = static_cast<int>(
      next_slot.fetch_add(1, std::memory_order_relaxed) % kShards);
  return slot;
}

}  // namespace obs_internal

namespace {

/// Relaxed CAS-add for atomic doubles (no fetch_add for floating point).
void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

/// Relaxed CAS min/max update.
template <typename Cmp>
void AtomicExtreme(std::atomic<double>* target, double value, Cmp better) {
  double current = target->load(std::memory_order_relaxed);
  while (better(value, current) &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

std::string FormatMetricDouble(double v) {
  char buf[64];
  // %.17g round-trips doubles; trim to %g readability for typical values.
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

int64_t Counter::value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Add(double delta) { AtomicAddDouble(&value_, delta); }

int Histogram::BucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // Underflow bucket (also NaN).
  // floor(kSubBuckets * log2(value)), computed in double precision; the
  // sub-bucket index within the octave comes from the mantissa.
  const double idx = std::floor(std::log2(value) *
                                static_cast<double>(kSubBuckets));
  const double lo = static_cast<double>(kMinOctave * kSubBuckets);
  const double hi = static_cast<double>(kMaxOctave * kSubBuckets);
  if (idx < lo) return 0;
  if (idx >= hi) return kNumBuckets - 1;
  return static_cast<int>(idx - lo) + 1;
}

double Histogram::BucketValue(int bucket) {
  if (bucket <= 0) return std::exp2(static_cast<double>(kMinOctave));
  if (bucket >= kNumBuckets - 1) {
    return std::exp2(static_cast<double>(kMaxOctave));
  }
  // Geometric midpoint of [2^(k/S), 2^((k+1)/S)).
  const double k = static_cast<double>(bucket - 1 + kMinOctave * kSubBuckets);
  return std::exp2((k + 0.5) / static_cast<double>(kSubBuckets));
}

void Histogram::Record(double value) {
  Shard& shard = shards_[obs_internal::ThreadShardIndex()];
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  const int64_t prior = shard.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&shard.sum, value);
  if (prior == 0) {
    // First value on this shard seeds both extremes; races with a
    // concurrent second value resolve through the CAS loops below.
    double expected = 0.0;
    shard.min.compare_exchange_strong(expected, value,
                                      std::memory_order_relaxed);
    expected = 0.0;
    shard.max.compare_exchange_strong(expected, value,
                                      std::memory_order_relaxed);
  }
  AtomicExtreme(&shard.min, value, [](double a, double b) { return a < b; });
  AtomicExtreme(&shard.max, value, [](double a, double b) { return a > b; });
}

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0 || buckets.empty()) return 0.0;
  // Rank of the q-th order statistic (nearest-rank definition, 1-based).
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count))));
  int64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Clamp the bucket estimate by the exact extremes so tiny histograms
      // report sane values.
      const double est = Histogram::BucketValue(static_cast<int>(b));
      return std::min(std::max(est, min), max);
    }
  }
  return max;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  out.buckets.assign(kNumBuckets, 0);
  bool any = false;
  for (const Shard& shard : shards_) {
    const int64_t shard_count = shard.count.load(std::memory_order_relaxed);
    if (shard_count == 0) continue;
    out.count += shard_count;
    out.sum += shard.sum.load(std::memory_order_relaxed);
    const double shard_min = shard.min.load(std::memory_order_relaxed);
    const double shard_max = shard.max.load(std::memory_order_relaxed);
    if (!any) {
      out.min = shard_min;
      out.max = shard_max;
      any = true;
    } else {
      out.min = std::min(out.min, shard_min);
      out.max = std::max(out.max, shard_max);
    }
    for (int b = 0; b < kNumBuckets; ++b) {
      out.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  out.p50 = out.Quantile(0.50);
  out.p90 = out.Quantile(0.90);
  out.p99 = out.Quantile(0.99);
  return out;
}

int64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return &registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = Kind::kCounter;
    entry.counter.reset(new Counter());
    it = entries_.emplace(name, std::move(entry)).first;
  }
  IMCAT_CHECK(it->second.kind == Kind::kCounter);
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = Kind::kGauge;
    entry.gauge.reset(new Gauge());
    it = entries_.emplace(name, std::move(entry)).first;
  }
  IMCAT_CHECK(it->second.kind == Kind::kGauge);
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = Kind::kHistogram;
    entry.histogram.reset(new Histogram());
    it = entries_.emplace(name, std::move(entry)).first;
  }
  IMCAT_CHECK(it->second.kind == Kind::kHistogram);
  return it->second.histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  // std::map iteration is already name-sorted, so exports are stable.
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out.counters.emplace_back(name, entry.counter->value());
        break;
      case Kind::kGauge:
        out.gauges.emplace_back(name, entry.gauge->value());
        break;
      case Kind::kHistogram:
        out.histograms.emplace_back(name, entry.histogram->Snapshot());
        break;
    }
  }
  return out;
}

namespace {

/// Prometheus metric names cannot contain braces; split a name like
/// `ingest_errors_total{class="x"}` into its base name and label block.
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
  } else {
    *base = name.substr(0, brace);
    *labels = name.substr(brace);
  }
}

}  // namespace

std::string DumpPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string base, labels;
  for (const auto& [name, value] : snapshot.counters) {
    SplitLabels(name, &base, &labels);
    out += "# TYPE " + base + " counter\n";
    out += base + labels + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    SplitLabels(name, &base, &labels);
    out += "# TYPE " + base + " gauge\n";
    out += base + labels + " " + FormatMetricDouble(value) + "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    SplitLabels(name, &base, &labels);
    out += "# TYPE " + base + " summary\n";
    out += base + "{quantile=\"0.5\"} " + FormatMetricDouble(hist.p50) + "\n";
    out += base + "{quantile=\"0.9\"} " + FormatMetricDouble(hist.p90) + "\n";
    out += base + "{quantile=\"0.99\"} " + FormatMetricDouble(hist.p99) + "\n";
    out += base + "_count " + std::to_string(hist.count) + "\n";
    out += base + "_sum " + FormatMetricDouble(hist.sum) + "\n";
    out += base + "_min " + FormatMetricDouble(hist.min) + "\n";
    out += base + "_max " + FormatMetricDouble(hist.max) + "\n";
  }
  return out;
}

std::string DumpJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(name, &out);
    out += "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(name, &out);
    out += "\":" + FormatMetricDouble(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(name, &out);
    out += "\":{\"count\":" + std::to_string(hist.count) +
           ",\"sum\":" + FormatMetricDouble(hist.sum) +
           ",\"min\":" + FormatMetricDouble(hist.min) +
           ",\"max\":" + FormatMetricDouble(hist.max) +
           ",\"p50\":" + FormatMetricDouble(hist.p50) +
           ",\"p90\":" + FormatMetricDouble(hist.p90) +
           ",\"p99\":" + FormatMetricDouble(hist.p99) + "}";
  }
  out += "}}";
  return out;
}

Status WriteMetricsFile(const MetricsRegistry& registry,
                        const std::string& path) {
  const MetricsSnapshot snapshot = registry.Snapshot();
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  std::string body = json ? DumpJson(snapshot) : DumpPrometheusText(snapshot);
  if (json) body += "\n";
  AtomicFileWriter writer(path);
  Status st = writer.Open();
  if (!st.ok()) return st;
  st = writer.Write(body);
  if (!st.ok()) return st;
  return writer.Commit();
}

}  // namespace imcat
