#ifndef IMCAT_OBS_METRICS_H_
#define IMCAT_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

/// \file metrics.h
/// Lock-cheap metrics for every subsystem: named counters, gauges and
/// log-bucketed latency histograms collected in a `MetricsRegistry` and
/// read out as one consistent `MetricsSnapshot` (Prometheus text or JSON).
///
/// Design contracts (see DESIGN.md §9):
///
///  - **Uncontended hot path.** Counter increments and histogram records
///    are relaxed atomic adds on a *per-thread shard*: each thread is
///    assigned a cache-line-padded slot (round-robin over `kShards`), so
///    concurrent writers on different threads never touch the same cache
///    line and never take a lock. Shards are merged only on snapshot.
///  - **Exact counts.** Shard merging is integer addition, so counter
///    values and histogram bucket counts are exact regardless of thread
///    count or interleaving — the serving chaos suite asserts exact
///    request accounting identities on live counters.
///  - **Log-bucketed histograms.** Values land in geometric buckets
///    (`kSubBuckets` per octave, ~9% relative width), so p50/p90/p99 read
///    from the merged bucket counts are within one bucket of the true
///    order statistic at any scale from nanoseconds to hours. Min, max
///    and count are tracked exactly; sum is a double reduction over
///    shards (deterministic given per-shard contents).
///  - **Stable handles.** `GetCounter`/`GetGauge`/`GetHistogram` return
///    pointers owned by the registry that stay valid for its lifetime;
///    subsystems resolve their handles once at construction and the hot
///    path never touches the registry map or its mutex.
///
/// Naming scheme: `<subsystem>_<what>[_<unit>][_total]`, e.g.
/// `serve_requests_shed_total`, `train_epoch_ms`, `pool_queue_wait_ms`.
/// `_total` marks monotonic counters; `_ms` marks millisecond histograms.
/// Per-class counts encode the class as a Prometheus label in the name,
/// e.g. `ingest_errors_total{class="bad-column-count"}`.

namespace imcat {

/// Steady-clock reading in milliseconds; the time base for every
/// ScopedTimer and queue-wait measurement.
inline double MetricsNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace obs_internal {

/// Number of per-thread shards per metric. Threads are assigned slots
/// round-robin, so up to kShards concurrent writers are fully uncontended;
/// beyond that, writers share slots but still only pay a relaxed atomic add.
inline constexpr int kShards = 16;

/// Index of the calling thread's shard (stable for the thread's lifetime).
int ThreadShardIndex();

}  // namespace obs_internal

/// A monotonically increasing counter. Thread-safe; increments are relaxed
/// atomic adds on the caller's shard.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(int64_t n) {
    shards_[obs_internal::ThreadShardIndex()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over all shards. Exact once concurrent writers have synchronised
  /// with the reader (e.g. via a joined thread or a satisfied future).
  int64_t value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, obs_internal::kShards> shards_;
};

/// A last-value-wins instantaneous measurement (queue depth, current loss).
/// Thread-safe; Set is a relaxed store, Add a CAS loop. Gauges are low-rate
/// by design and are not sharded.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Read-out of one histogram at snapshot time.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Exact smallest recorded value (0 when empty).
  double max = 0.0;  ///< Exact largest recorded value (0 when empty).
  double p50 = 0.0;  ///< Estimated percentiles (geometric bucket midpoint).
  double p90 = 0.0;
  double p99 = 0.0;

  /// Estimates an arbitrary quantile q in [0, 1] from the merged buckets.
  double Quantile(double q) const;

  /// Merged per-bucket counts (exporters may emit cumulative buckets).
  std::vector<int64_t> buckets;
};

/// A log-bucketed histogram of positive values (latencies in ms, sizes,
/// ...). Thread-safe; Record is two relaxed atomic adds plus a bounded CAS
/// for the min/max extremes on the caller's shard.
class Histogram {
 public:
  /// Geometric bucket resolution: kSubBuckets buckets per power of two
  /// (relative bucket width 2^(1/8) ≈ 9%).
  static constexpr int kSubBuckets = 8;
  /// Bucketed range: [2^kMinOctave, 2^kMaxOctave); values outside land in
  /// the underflow/overflow buckets (and still count exactly).
  static constexpr int kMinOctave = -20;  ///< ~1e-6 (1 ns as ms).
  static constexpr int kMaxOctave = 30;   ///< ~1e9 ms (~12 days).
  static constexpr int kNumBuckets =
      (kMaxOctave - kMinOctave) * kSubBuckets + 2;  ///< + under/overflow.

  void Record(double value);

  /// Maps a value to its bucket index (0 = underflow incl. v <= 0,
  /// kNumBuckets-1 = overflow). Pure function, exposed for tests.
  static int BucketIndex(double value);
  /// Representative value of a bucket (geometric midpoint of its bounds).
  static double BucketValue(int bucket);

  /// Merges all shards into one snapshot with estimated percentiles.
  HistogramSnapshot Snapshot() const;

 private:
  friend class MetricsRegistry;
  Histogram() = default;
  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, kNumBuckets> buckets{};
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};  ///< Valid when count > 0.
    std::atomic<double> max{0.0};
  };
  std::array<Shard, obs_internal::kShards> shards_;
};

/// RAII helper: records the elapsed wall time in milliseconds into a
/// histogram on destruction. A null histogram disables the timer (no clock
/// read), so call sites stay branch-cheap when metrics are off.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram),
        start_ms_(histogram ? MetricsNowMs() : 0.0) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(MetricsNowMs() - start_ms_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  double start_ms_;
};

/// One consistent read of every metric in a registry, sorted by name so
/// exports are deterministic.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Value of a counter by exact name; 0 when absent (convenience for
  /// tests and identity checks).
  int64_t CounterValue(const std::string& name) const;
};

/// Owner of named metrics. Registration (`Get*`) takes a mutex and is
/// expected once per handle at subsystem construction; the returned
/// pointers are valid for the registry's lifetime and their hot-path
/// operations never lock. Asking for an existing name with a different
/// type is a programming error (CHECK).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// A process-wide registry for callers without a natural owner
  /// (examples, benchmarks). Tests should own their own registry.
  static MetricsRegistry* Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Merges every metric's shards into one sorted snapshot.
  MetricsSnapshot Snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Renders a snapshot in Prometheus text exposition format: `# TYPE`
/// comments, `name value` lines, histogram quantiles as
/// `name{quantile="0.5"}` plus `_count`/`_sum`/`_min`/`_max`.
std::string DumpPrometheusText(const MetricsSnapshot& snapshot);

/// Renders a snapshot as one JSON object:
/// {"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}.
std::string DumpJson(const MetricsSnapshot& snapshot);

/// Snapshots `registry` and writes it atomically (tmp + fsync + rename) to
/// `path`: JSON when the path ends in `.json`, Prometheus text otherwise.
Status WriteMetricsFile(const MetricsRegistry& registry,
                        const std::string& path);

}  // namespace imcat

#endif  // IMCAT_OBS_METRICS_H_
