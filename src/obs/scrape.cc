#include "obs/scrape.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace imcat {

namespace {

/// Poll interval of the accept loop; bounds how long Stop() can wait for
/// the thread to notice the stop flag.
constexpr int kPollMs = 100;

/// Writes the whole buffer, retrying on EINTR/partial writes. Best-effort:
/// a scraper that hung up mid-response is its own problem — MSG_NOSIGNAL
/// turns the resulting SIGPIPE (which would kill the whole process) into a
/// plain EPIPE that ends this response only.
void WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n =
        ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    written += static_cast<size_t>(n);
  }
}

std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string response = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n";
  response += body;
  return response;
}

}  // namespace

MetricsScrapeServer::MetricsScrapeServer(const MetricsRegistry* registry)
    : registry_(registry) {}

void MetricsScrapeServer::set_health_provider(
    std::function<std::string()> provider) {
  health_provider_ = std::move(provider);
}

MetricsScrapeServer::~MetricsScrapeServer() { Stop(); }

Status MetricsScrapeServer::Start(const std::string& socket_path) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("scrape server already running on " +
                                      socket_path_);
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::IoError(socket_path + ": socket path too long (max " +
                           std::to_string(sizeof(addr.sun_path) - 1) +
                           " bytes)");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  // Replace a stale socket file from a previous run; a live server on the
  // same path loses its endpoint, which is the standard Unix-socket
  // single-owner convention.
  ::unlink(socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 16) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError(socket_path + ": bind/listen failed: " + error);
  }
  socket_path_ = socket_path;
  listen_fd_ = fd;
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MetricsScrapeServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!socket_path_.empty()) ::unlink(socket_path_.c_str());
}

void MetricsScrapeServer::AcceptLoop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;  // Timeout (re-check stop flag) or EINTR.
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    HandleConnection(client);
    ::close(client);
  }
}

void MetricsScrapeServer::HandleConnection(int client_fd) {
  // One bounded read is enough: the only supported request line fits well
  // within one buffer, and anything longer is not a request we serve.
  char buffer[2048];
  ssize_t n;
  do {
    n = ::read(client_fd, buffer, sizeof(buffer) - 1);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return;
  buffer[n] = '\0';
  const char* line_end = std::strstr(buffer, "\r\n");
  const std::string request_line(
      buffer, line_end != nullptr ? static_cast<size_t>(line_end - buffer)
                                  : static_cast<size_t>(n));

  std::string response;
  if (request_line.rfind("GET ", 0) != 0) {
    response = HttpResponse(405, "Method Not Allowed", "text/plain",
                            "only GET is supported\n");
  } else if (request_line.rfind("GET /metrics ", 0) == 0 ||
             request_line == "GET /metrics") {
    response = HttpResponse(
        200, "OK", "text/plain; version=0.0.4",
        DumpPrometheusText(registry_->Snapshot()));
  } else if (health_provider_ != nullptr &&
             (request_line.rfind("GET /healthz ", 0) == 0 ||
              request_line == "GET /healthz")) {
    response =
        HttpResponse(200, "OK", "application/json", health_provider_());
  } else {
    response =
        HttpResponse(404, "Not Found", "text/plain", "try /metrics\n");
  }
  WriteAll(client_fd, response.data(), response.size());
}

}  // namespace imcat
