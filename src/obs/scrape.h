#ifndef IMCAT_OBS_SCRAPE_H_
#define IMCAT_OBS_SCRAPE_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/status.h"

/// \file scrape.h
/// Live metrics scrape endpoint. DumpPrometheusText was dump-on-exit only;
/// this serves it as a minimal `GET /metrics` HTTP/1.0 pull over a Unix
/// domain socket, so a scraper (curl --unix-socket, a Prometheus
/// node-exporter sidecar) can watch a long run — delta lag, quarantine
/// gauges, the serve accounting counters — while it happens.
///
/// Deliberately minimal: one accept loop on one background thread, one
/// request per connection, Connection: close semantics. A Unix socket
/// instead of TCP keeps the endpoint local-only (filesystem permissions
/// are the ACL) and free of port-collision flakiness in tests and sweeps.

namespace imcat {

/// Serves `GET /metrics` (Prometheus text over HTTP/1.0) for one
/// MetricsRegistry on a Unix domain socket, plus an optional
/// `GET /healthz` JSON health report. Every request snapshots the
/// registry at that moment. Unknown paths get 404, other methods 405.
class MetricsScrapeServer {
 public:
  /// `registry` must outlive the server.
  explicit MetricsScrapeServer(const MetricsRegistry* registry);
  ~MetricsScrapeServer();

  MetricsScrapeServer(const MetricsScrapeServer&) = delete;
  MetricsScrapeServer& operator=(const MetricsScrapeServer&) = delete;

  /// Enables `GET /healthz`: the provider is called per request (on the
  /// accept thread) and must return a JSON document — typically
  /// RecService::HealthJson, which reports breaker, brownout-ladder and
  /// snapshot-staleness state. Without a provider, /healthz is 404 like
  /// any other unknown path. Set before Start(); the provider must stay
  /// callable until Stop().
  void set_health_provider(std::function<std::string()> provider);

  /// Binds `socket_path` (an existing stale socket file is replaced) and
  /// starts the accept loop. Fails with kIoError when the path cannot be
  /// bound (too long, unwritable directory) and kFailedPrecondition when
  /// already started.
  Status Start(const std::string& socket_path);

  /// Stops the accept loop, joins the thread and unlinks the socket file.
  /// Idempotent; also run by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& socket_path() const { return socket_path_; }

 private:
  void AcceptLoop();
  void HandleConnection(int client_fd);

  const MetricsRegistry* registry_;
  std::function<std::string()> health_provider_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;
};

}  // namespace imcat

#endif  // IMCAT_OBS_SCRAPE_H_
