#include "serve/circuit_breaker.h"

#include "serve/recommender.h"
#include "util/check.h"

namespace imcat {

CircuitBreaker::CircuitBreaker(const Options& options,
                               std::function<double()> now_ms)
    : options_(options), now_ms_(now_ms ? std::move(now_ms) : SteadyNowMs) {
  IMCAT_CHECK(options_.failure_threshold >= 1);
  IMCAT_CHECK(options_.cooldown_ms >= 0.0);
}

void CircuitBreaker::set_on_transition(
    std::function<void(State, State)> listener) {
  std::lock_guard<std::mutex> lock(mu_);
  on_transition_ = std::move(listener);
}

void CircuitBreaker::TransitionLocked(std::unique_lock<std::mutex>& lock,
                                      State to) {
  const State from = state_;
  state_ = to;
  if (from == to || !on_transition_) return;
  // Fire outside the lock so the listener may query the breaker (or take
  // its own locks, e.g. the journal's) without deadlocking.
  auto listener = on_transition_;
  lock.unlock();
  listener(from, to);
}

bool CircuitBreaker::AllowRequest() {
  std::unique_lock<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_ms_() - opened_at_ms_ >= options_.cooldown_ms) {
        probe_in_flight_ = true;
        TransitionLocked(lock, State::kHalfOpen);
        return true;  // This caller is the probe.
      }
      return false;
    case State::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      return false;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::unique_lock<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  TransitionLocked(lock, State::kClosed);
}

void CircuitBreaker::RecordFailure() {
  std::unique_lock<std::mutex> lock(mu_);
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen ||
      consecutive_failures_ >= options_.failure_threshold) {
    opened_at_ms_ = now_ms_();
    probe_in_flight_ = false;
    TransitionLocked(lock, State::kOpen);
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int64_t CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace imcat
