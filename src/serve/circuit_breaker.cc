#include "serve/circuit_breaker.h"

#include "serve/recommender.h"
#include "util/check.h"

namespace imcat {

CircuitBreaker::CircuitBreaker(const Options& options,
                               std::function<double()> now_ms)
    : options_(options), now_ms_(now_ms ? std::move(now_ms) : SteadyNowMs) {
  IMCAT_CHECK(options_.failure_threshold >= 1);
  IMCAT_CHECK(options_.cooldown_ms >= 0.0);
}

bool CircuitBreaker::AllowRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_ms_() - opened_at_ms_ >= options_.cooldown_ms) {
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        return true;  // This caller is the probe.
      }
      return false;
    case State::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      return false;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen ||
      consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ms_ = now_ms_();
    probe_in_flight_ = false;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int64_t CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace imcat
