#ifndef IMCAT_SERVE_CIRCUIT_BREAKER_H_
#define IMCAT_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <functional>
#include <mutex>

/// \file circuit_breaker.h
/// A classic three-state circuit breaker guarding the real scoring path.
///
///   Closed ──(failure_threshold consecutive failures)──▶ Open
///   Open ──(cooldown elapsed; one probe admitted)──▶ HalfOpen
///   HalfOpen ──success──▶ Closed        HalfOpen ──failure──▶ Open
///
/// While open, AllowRequest() returns false and the service answers from
/// the popularity fallback instead of hammering a failing snapshot/scoring
/// path. Successful out-of-band recoveries (a snapshot reload that
/// succeeds) may call RecordSuccess() directly, which closes the breaker
/// from any state.

namespace imcat {

/// Thread-safe circuit breaker with an injectable monotonic clock.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Consecutive failures that trip the breaker.
    int64_t failure_threshold = 3;
    /// Time the breaker stays open before admitting a half-open probe.
    double cooldown_ms = 100.0;
  };

  /// `now_ms` is a monotonic millisecond clock; empty uses steady_clock.
  explicit CircuitBreaker(const Options& options,
                          std::function<double()> now_ms = {});

  /// True when the request may take the real path. While open, returns
  /// false until the cooldown elapses, then admits exactly one probe
  /// (transitioning to half-open); further requests are rejected until the
  /// probe reports back via RecordSuccess/RecordFailure.
  bool AllowRequest();

  /// Reports a real-path success: resets the failure streak and closes the
  /// breaker from any state.
  void RecordSuccess();

  /// Reports a real-path (or snapshot-load) failure: extends the failure
  /// streak, trips the breaker at the threshold and re-opens it from
  /// half-open.
  void RecordFailure();

  State state() const;
  int64_t consecutive_failures() const;

  /// Registers an observer invoked on every state change with (from, to).
  /// The callback runs *outside* the breaker's lock (so it may query the
  /// breaker or journal the transition) but on the thread that caused the
  /// change — keep it cheap. The serving layer uses this to journal
  /// transitions and keep the `serve_breaker_state` gauge current
  /// (DESIGN.md §9). Set before the breaker sees concurrent traffic.
  void set_on_transition(std::function<void(State, State)> listener);

  /// Human-readable state name ("closed" / "open" / "half-open").
  static const char* StateName(State state);

 private:
  /// Mutates state under the lock and reports the change to the listener
  /// after unlocking (never fires for from == to).
  void TransitionLocked(std::unique_lock<std::mutex>& lock, State to);

  Options options_;
  std::function<double()> now_ms_;
  std::function<void(State, State)> on_transition_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int64_t consecutive_failures_ = 0;
  double opened_at_ms_ = 0.0;
  bool probe_in_flight_ = false;
};

}  // namespace imcat

#endif  // IMCAT_SERVE_CIRCUIT_BREAKER_H_
