#include "serve/overload.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace imcat {

OverloadController::OverloadController(const OverloadOptions& options)
    : options_(options) {
  if (options_.target_ms <= 0.0) options_.target_ms = 5.0;
  if (options_.interval_ms <= 0.0) options_.interval_ms = 100.0;
  if (options_.ewma_alpha <= 0.0 || options_.ewma_alpha > 1.0) {
    options_.ewma_alpha = 0.3;
  }
  if (options_.ladder_up_ms <= 0.0) options_.ladder_up_ms = 400.0;
  if (options_.ladder_down_ms <= 0.0) options_.ladder_down_ms = 800.0;
  if (options_.max_level < 0) options_.max_level = 0;
  if (options_.scoring_fraction <= 0.0 || options_.scoring_fraction > 1.0) {
    options_.scoring_fraction = 0.5;
  }
  now_ms_ = options_.now_ms ? options_.now_ms : [] { return MetricsNowMs(); };
}

void OverloadController::set_on_brownout(
    std::function<void(int64_t, int64_t)> listener) {
  std::lock_guard<std::mutex> lock(mu_);
  on_brownout_ = std::move(listener);
}

std::pair<int64_t, int64_t> OverloadController::UpdateLocked(double now) {
  // Drain detection: overload was declared from dequeue evidence, so a full
  // interval with no dequeues at all means the queue emptied — clear it.
  if (overloaded_ && last_sample_ms_ >= 0.0 &&
      now - last_sample_ms_ >= options_.interval_ms) {
    overloaded_ = false;
    first_above_ms_ = -1.0;
  }

  // Track the edges of the pressure signal so ladder steps are measured
  // from the start of the current episode, not from stale history.
  if (overloaded_) {
    if (pressure_since_ms_ < 0.0) pressure_since_ms_ = now;
    calm_since_ms_ = -1.0;
  } else {
    if (calm_since_ms_ < 0.0) calm_since_ms_ = now;
    pressure_since_ms_ = -1.0;
  }

  const int64_t from = level_;
  if (overloaded_ && level_ < options_.max_level) {
    // Step up after ladder_up_ms of continuous pressure, and again after
    // each further ladder_up_ms (last_level_change gates the cadence).
    const double since =
        std::max(pressure_since_ms_, last_level_change_ms_);
    if (now - since >= options_.ladder_up_ms) {
      ++level_;
      last_level_change_ms_ = now;
    }
  } else if (!overloaded_ && level_ > 0) {
    const double since = std::max(calm_since_ms_, last_level_change_ms_);
    if (now - since >= options_.ladder_down_ms) {
      --level_;
      last_level_change_ms_ = now;
    }
  }
  return {from, level_};
}

OverloadController::Decision OverloadController::Admit(
    RequestPriority priority, double deadline_budget_ms) {
  Decision decision = Decision::kAdmit;
  std::pair<int64_t, int64_t> transition;
  std::function<void(int64_t, int64_t)> listener;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const double now = now_ms_();
    transition = UpdateLocked(now);
    if (transition.first != transition.second) listener = on_brownout_;
    if (options_.predict_late && deadline_budget_ms > 0.0 && have_sample_) {
      const double estimate = std::max(ewma_ms_, last_sojourn_ms_);
      if (deadline_budget_ms < estimate) {
        decision = Decision::kShedPredictedLate;
      }
    }
    if (decision == Decision::kAdmit && overloaded_ &&
        priority == RequestPriority::kBatch) {
      decision = Decision::kShedQueueDelay;
    }
  }
  if (listener) listener(transition.first, transition.second);
  return decision;
}

void OverloadController::OnDequeue(double sojourn_ms) {
  if (sojourn_ms < 0.0) sojourn_ms = 0.0;
  std::pair<int64_t, int64_t> transition;
  std::function<void(int64_t, int64_t)> listener;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const double now = now_ms_();
    if (!have_sample_) {
      ewma_ms_ = sojourn_ms;
      have_sample_ = true;
    } else {
      ewma_ms_ += options_.ewma_alpha * (sojourn_ms - ewma_ms_);
    }
    last_sojourn_ms_ = sojourn_ms;
    last_sample_ms_ = now;

    // CoDel control law: one sojourn below target clears overload
    // immediately; sojourn continuously above target for a full interval
    // declares it.
    if (sojourn_ms < options_.target_ms) {
      first_above_ms_ = -1.0;
      overloaded_ = false;
    } else if (first_above_ms_ < 0.0) {
      first_above_ms_ = now + options_.interval_ms;
    } else if (now >= first_above_ms_) {
      overloaded_ = true;
    }
    transition = UpdateLocked(now);
    if (transition.first != transition.second) listener = on_brownout_;
  }
  if (listener) listener(transition.first, transition.second);
}

bool OverloadController::overloaded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overloaded_;
}

int64_t OverloadController::brownout_level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

double OverloadController::smoothed_wait_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!have_sample_) return 0.0;
  return std::max(ewma_ms_, last_sojourn_ms_);
}

const char* DecisionName(OverloadController::Decision decision) {
  switch (decision) {
    case OverloadController::Decision::kAdmit:
      return "admit";
    case OverloadController::Decision::kShedQueueDelay:
      return "shed-queue-delay";
    case OverloadController::Decision::kShedPredictedLate:
      return "shed-predicted-late";
  }
  return "unknown";
}

}  // namespace imcat
