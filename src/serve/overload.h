#ifndef IMCAT_SERVE_OVERLOAD_H_
#define IMCAT_SERVE_OVERLOAD_H_

#include <cstdint>
#include <functional>
#include <mutex>

#include "serve/types.h"

/// \file overload.h
/// Adaptive overload control for the serving front end: a CoDel-style
/// admission controller driven by *measured queue delay*, plus a stepwise
/// brownout ladder that trades answer quality for capacity under sustained
/// pressure.
///
/// Why not just a bounded queue? A fixed-capacity queue defends the server
/// but not the requests: under a sustained QPS ramp it either queues until
/// every request blows its deadline inside the queue (goodput collapses to
/// zero while the server runs at 100% — the metastable-failure shape) or
/// sheds blindly at queue-full with no notion of priority or deadline
/// budget. This controller sheds *early* and *selectively*:
///
///  - **CoDel control law on sojourn time.** Workers report each request's
///    measured queue wait (sojourn) via `OnDequeue`. When the sojourn has
///    stayed above `target_ms` continuously for `interval_ms`, the
///    controller declares overload; one sojourn below target (or
///    `interval_ms` with no dequeues at all — the queue drained) clears it.
///    While overloaded, *batch-priority* arrivals are shed immediately
///    (`Decision::kShedQueueDelay`) so interactive traffic keeps the queue.
///  - **Deadline-aware (predicted-late) rejection.** An arrival whose
///    remaining deadline budget is below the current smoothed queue-wait
///    estimate (EWMA of measured sojourns, floored by the latest sample so
///    ramps are seen immediately) cannot possibly answer in time; it is
///    refused at admission (`Decision::kShedPredictedLate`) instead of
///    being scored and then expired — the wasted-work path that turns
///    overload into collapse.
///  - **Brownout ladder.** Sustained overload (continuous CoDel pressure
///    for `ladder_up_ms`) steps a degradation level up, one step per
///    further `ladder_up_ms` of pressure, up to `max_level`; a
///    pressure-free `ladder_down_ms` steps it back down one level at a
///    time (hysteresis: up is harder than down is slow, so the ladder
///    never flaps with the control signal). The service maps levels to
///    cheaper answers (shrunken scoring budgets, popularity fallback for
///    batch traffic); the controller only decides *when*. Transitions are
///    edge-triggered and reported through `set_on_brownout` exactly once
///    each, so the service can journal them like breaker transitions.
///
/// Determinism: every decision is a pure function of the option values,
/// the injected clock readings and the exact sequence of Admit/OnDequeue
/// calls — on a fake clock with a scripted call sequence, transitions are
/// bit-identical run to run (asserted across worker counts by the
/// `overload` test suite).
///
/// Thread-safe; one mutex, held only for a handful of arithmetic ops —
/// negligible next to scoring.

namespace imcat {

/// Controller configuration. The defaults suit a ~50 ms request deadline;
/// see docs/OPERATIONS.md §6 for how to tune target/interval against a
/// saturation sweep.
struct OverloadOptions {
  /// Master switch. Disabled (the default, the pre-controller behaviour)
  /// the service sheds only at queue-full; the load-generator's baseline
  /// mode measures exactly this contrast.
  bool enabled = false;
  /// CoDel sojourn target: queue delay the controller tries to keep the
  /// standing queue under.
  double target_ms = 5.0;
  /// CoDel interval: how long sojourn must stay above target before the
  /// controller declares overload (and how long "no dequeues" must last
  /// before overload is cleared as drained).
  double interval_ms = 100.0;
  /// Smoothing factor of the queue-wait EWMA in (0, 1]; higher tracks
  /// faster.
  double ewma_alpha = 0.3;
  /// When true, arrivals whose remaining deadline budget is below the
  /// smoothed queue-wait estimate are refused at admission.
  bool predict_late = true;
  /// Continuous overload pressure before the brownout ladder steps up one
  /// level (and between successive step-ups).
  double ladder_up_ms = 400.0;
  /// Continuous pressure-free time before the ladder steps down one level
  /// (and between successive step-downs). Larger than ladder_up_ms by
  /// default: recovery is deliberately slower than degradation.
  double ladder_down_ms = 800.0;
  /// Deepest brownout level. Level semantics are the service's; the
  /// controller just walks [0, max_level].
  int64_t max_level = 2;
  /// Catalogue fraction scored per brownout level: at level L the service
  /// scores `pow(fraction, L)` of the requested item range (applied by
  /// RecService, carried here so the whole policy is one knob bundle).
  double scoring_fraction = 0.5;
  /// Monotonic millisecond clock; empty uses steady_clock. Tests inject a
  /// fake clock.
  std::function<double()> now_ms;
};

/// The admission controller + brownout ladder. One instance per service.
class OverloadController {
 public:
  /// Admission verdicts, in shedding order: batch queue-delay sheds fire
  /// only while overloaded; predicted-late sheds fire whenever the
  /// deadline math says the request cannot make it.
  enum class Decision {
    kAdmit = 0,
    kShedQueueDelay = 1,
    kShedPredictedLate = 2,
  };

  explicit OverloadController(const OverloadOptions& options);

  /// Admission decision for one arrival. `deadline_budget_ms` is the
  /// request's total deadline budget (<= 0 means no deadline — such a
  /// request can never be predicted late).
  Decision Admit(RequestPriority priority, double deadline_budget_ms);

  /// Reports one request's measured queue sojourn, on dequeue. Feeds the
  /// CoDel control law and the smoothed estimate.
  void OnDequeue(double sojourn_ms);

  /// True while the CoDel law currently declares overload.
  bool overloaded() const;
  /// Current brownout level in [0, options.max_level].
  int64_t brownout_level() const;
  /// Smoothed queue-wait estimate (EWMA floored by the latest sample);
  /// 0 before the first measurement.
  double smoothed_wait_ms() const;

  /// Registers an observer invoked on every ladder transition with
  /// (from_level, to_level), outside the controller lock but on the
  /// transitioning thread — same contract as
  /// CircuitBreaker::set_on_transition. Set before concurrent traffic.
  void set_on_brownout(std::function<void(int64_t, int64_t)> listener);

  const OverloadOptions& options() const { return options_; }

 private:
  /// Re-evaluates overload freshness and the ladder at `now`; returns the
  /// (from, to) pair to report, or (level, level) when nothing changed.
  /// Caller must hold `lock` and fire the listener after unlocking.
  std::pair<int64_t, int64_t> UpdateLocked(double now);

  OverloadOptions options_;
  std::function<double()> now_ms_;
  std::function<void(int64_t, int64_t)> on_brownout_;

  mutable std::mutex mu_;
  /// CoDel state: when the sojourn first rose above target (-1 while
  /// below), whether overload is currently declared, and the clock of the
  /// newest sojourn sample (for drain detection).
  double first_above_ms_ = -1.0;
  bool overloaded_ = false;
  double last_sample_ms_ = -1.0;
  /// Queue-wait estimate: EWMA + the latest raw sample.
  double ewma_ms_ = 0.0;
  double last_sojourn_ms_ = 0.0;
  bool have_sample_ = false;
  /// Ladder state: current level, when the current pressure episode
  /// started (-1 while calm), when calm started (-1 while pressured), and
  /// the clock of the last level change (rate-limits successive steps).
  int64_t level_ = 0;
  double pressure_since_ms_ = -1.0;
  double calm_since_ms_ = -1.0;
  double last_level_change_ms_ = -1.0;
};

/// Human-readable decision name ("admit" / "shed-queue-delay" /
/// "shed-predicted-late"), for logs and journals.
const char* DecisionName(OverloadController::Decision decision);

}  // namespace imcat

#endif  // IMCAT_SERVE_OVERLOAD_H_
