#include "serve/popularity.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace imcat {

PopularityRanker::PopularityRanker(int64_t num_items,
                                   const EdgeList& train_edges) {
  IMCAT_CHECK(num_items >= 0);
  std::vector<int64_t> degree(static_cast<size_t>(num_items), 0);
  for (const auto& [user, item] : train_edges) {
    (void)user;
    IMCAT_CHECK(item >= 0 && item < num_items);
    ++degree[item];
  }
  ranking_.resize(static_cast<size_t>(num_items));
  for (int64_t i = 0; i < num_items; ++i) {
    ranking_[i] = {i, static_cast<float>(degree[i])};
  }
  std::sort(ranking_.begin(), ranking_.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
}

void PopularityRanker::TopK(int64_t k, const std::vector<int64_t>& exclude,
                            std::vector<ScoredItem>* out) const {
  TopKFiltered(k, exclude, nullptr, out);
}

void PopularityRanker::TopKFiltered(int64_t k,
                                    const std::vector<int64_t>& exclude,
                                    const std::function<bool(int64_t)>& keep,
                                    std::vector<ScoredItem>* out) const {
  out->clear();
  if (k <= 0) return;
  const std::unordered_set<int64_t> excluded(exclude.begin(), exclude.end());
  for (const ScoredItem& entry : ranking_) {
    if (excluded.count(entry.item) != 0) continue;
    if (keep && !keep(entry.item)) continue;
    out->push_back(entry);
    if (static_cast<int64_t>(out->size()) == k) break;
  }
}

}  // namespace imcat
