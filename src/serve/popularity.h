#ifndef IMCAT_SERVE_POPULARITY_H_
#define IMCAT_SERVE_POPULARITY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "data/dataset.h"
#include "serve/types.h"

/// \file popularity.h
/// The degraded-mode fallback ranker: a precomputed, user-independent
/// popularity ranking from train-split item degrees. Serving it keeps the
/// product answering (with honest `degraded=true` responses) while the
/// circuit breaker is open or no snapshot is loadable.

namespace imcat {

/// Immutable most-popular-first item ranking. Construct once from the
/// train split; thread-safe to query concurrently.
class PopularityRanker {
 public:
  /// Ranks all `num_items` items by their degree in `train_edges`
  /// ((user, item) pairs), most interactions first, ties broken by item id
  /// so the ranking is deterministic. Items with no train interactions
  /// rank last with score 0.
  PopularityRanker(int64_t num_items, const EdgeList& train_edges);

  int64_t num_items() const { return static_cast<int64_t>(ranking_.size()); }

  /// Copies the top `k` ranked items into `out`, skipping ids present in
  /// `exclude` (unsorted; out-of-range ids are ignored).
  void TopK(int64_t k, const std::vector<int64_t>& exclude,
            std::vector<ScoredItem>* out) const;

  /// Filtered variant: only items for which `keep(item)` returns true are
  /// eligible. Used for range-restricted degraded responses and for
  /// backfilling quarantined item ranges in partial-degraded serving.
  void TopKFiltered(int64_t k, const std::vector<int64_t>& exclude,
                    const std::function<bool(int64_t)>& keep,
                    std::vector<ScoredItem>* out) const;

 private:
  std::vector<ScoredItem> ranking_;  // Sorted once at construction.
};

}  // namespace imcat

#endif  // IMCAT_SERVE_POPULARITY_H_
