#include "serve/rec_service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "util/check.h"

namespace imcat {

namespace {

void DefaultSleepMs(double millis) {
  if (millis <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(millis));
}

ThreadPoolOptions ServicePoolOptions(const RecServiceOptions& options) {
  IMCAT_CHECK(options.num_workers >= 1);
  IMCAT_CHECK(options.queue_capacity >= 1);
  ThreadPoolOptions popts;
  popts.num_threads = options.num_workers;
  popts.queue_capacity = options.queue_capacity;
  popts.metrics = options.metrics;
  popts.metrics_prefix = "serve_pool";
  return popts;
}

}  // namespace

RecService::RecService(std::shared_ptr<const PopularityRanker> fallback,
                       const RecServiceOptions& options)
    : options_(options),
      fallback_(std::move(fallback)),
      recommender_([&] {
        RecommenderOptions ropts = options.recommender;
        if (!ropts.now_ms && options.now_ms) ropts.now_ms = options.now_ms;
        return ropts;
      }()),
      breaker_(options.breaker, options.now_ms),
      sleep_ms_(options.sleep_ms ? options.sleep_ms : DefaultSleepMs),
      journal_(options.journal),
      pool_(ServicePoolOptions(options)) {
  IMCAT_CHECK(fallback_ != nullptr);
  IMCAT_CHECK(options_.default_top_k >= 1);
  if (options.metrics != nullptr) {
    MetricsRegistry* m = options.metrics;
    requests_total_ = m->GetCounter("serve_requests_total");
    requests_ok_ = m->GetCounter("serve_requests_ok_total");
    requests_degraded_ = m->GetCounter("serve_requests_degraded_total");
    requests_shed_ = m->GetCounter("serve_requests_shed_total");
    requests_deadline_ =
        m->GetCounter("serve_requests_deadline_exceeded_total");
    requests_invalid_ = m->GetCounter("serve_requests_invalid_total");
    requests_error_ = m->GetCounter("serve_requests_error_total");
    requests_cancelled_ = m->GetCounter("serve_requests_cancelled_total");
    snapshot_reloads_total_ = m->GetCounter("serve_snapshot_reloads_total");
    snapshot_load_failures_total_ =
        m->GetCounter("serve_snapshot_load_failures_total");
    breaker_transitions_total_ =
        m->GetCounter("serve_breaker_transitions_total");
    breaker_state_gauge_ = m->GetGauge("serve_breaker_state");
    request_latency_ms_ = m->GetHistogram("serve_request_latency_ms");
  }
  if (options.metrics != nullptr || journal_ != nullptr) {
    // Observe breaker transitions for the gauge / counter / journal. The
    // listener runs outside the breaker lock, on the transitioning thread.
    breaker_.set_on_transition(
        [this](CircuitBreaker::State from, CircuitBreaker::State to) {
          if (breaker_transitions_total_ != nullptr) {
            breaker_transitions_total_->Increment();
          }
          if (breaker_state_gauge_ != nullptr) {
            breaker_state_gauge_->Set(static_cast<double>(to));
          }
          if (journal_ != nullptr) {
            journal_->Append(JournalEvent("breaker")
                                 .Set("from", CircuitBreaker::StateName(from))
                                 .Set("to", CircuitBreaker::StateName(to)));
          }
        });
  }
}

RecService::~RecService() { Shutdown(); }

Status RecService::LoadSnapshot(const std::string& path) {
  std::lock_guard<std::mutex> load_lock(load_mu_);
  Backoff backoff(options_.load_backoff);
  Status last;
  while (true) {
    auto result = EmbeddingSnapshot::Load(path);
    if (result.ok()) {
      std::shared_ptr<EmbeddingSnapshot> loaded = std::move(result).value();
      loaded->set_version(
          next_snapshot_version_.fetch_add(1, std::memory_order_relaxed));
      const int64_t version = loaded->version();
      // Atomic publish: readers holding the old snapshot keep it alive
      // until their request completes.
      PublishSnapshot(std::move(loaded));
      breaker_.RecordSuccess();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.snapshot_reloads;
      }
      if (snapshot_reloads_total_ != nullptr) {
        snapshot_reloads_total_->Increment();
      }
      if (journal_ != nullptr) {
        journal_->Append(JournalEvent("snapshot_reload")
                             .Set("ok", true)
                             .Set("path", path)
                             .Set("version", version));
      }
      return Status::OK();
    }
    last = result.status();
    const double delay_ms = backoff.NextDelayMs();
    if (!backoff.ShouldRetry()) break;
    sleep_ms_(delay_ms);
  }
  breaker_.RecordFailure();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.snapshot_load_failures;
  }
  if (snapshot_load_failures_total_ != nullptr) {
    snapshot_load_failures_total_->Increment();
  }
  if (journal_ != nullptr) {
    journal_->Append(JournalEvent("snapshot_reload")
                         .Set("ok", false)
                         .Set("path", path)
                         .Set("error", last.message()));
  }
  return Status(last.code(),
                "snapshot load failed after " +
                    std::to_string(options_.load_backoff.max_attempts) +
                    " attempts: " + last.message());
}

std::future<RecResponse> RecService::Submit(RecRequest request) {
  auto task = std::make_shared<Task>();
  task->request = std::move(request);
  std::future<RecResponse> future = task->promise.get_future();
  if (requests_total_ != nullptr) requests_total_->Increment();
  // Admission rides on the pool's bounded queue. The cancel callback is
  // the shutdown contract: a request still queued when Shutdown() runs is
  // resolved to kUnavailable — its future is always eventually satisfied,
  // never hung, never dropped.
  Status admitted = pool_.TrySubmit(
      [this, task] { task->promise.set_value(Handle(task->request)); },
      [this, task] {
        if (requests_cancelled_ != nullptr) requests_cancelled_->Increment();
        RecResponse response;
        response.status = Status::Unavailable("service is shut down");
        task->promise.set_value(std::move(response));
      });
  if (admitted.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
    return future;
  }
  // Load shedding: reject immediately with a definite status instead of
  // queueing unboundedly.
  RecResponse shed;
  shed.status = Status::Unavailable(
      pool_.stopped() ? "service is shut down"
                      : "work queue full (" +
                            std::to_string(options_.queue_capacity) +
                            " requests); load shed, retry later");
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed;
  }
  if (requests_shed_ != nullptr) requests_shed_->Increment();
  task->promise.set_value(std::move(shed));
  return future;
}

RecResponse RecService::Recommend(RecRequest request) {
  return Submit(std::move(request)).get();
}

void RecService::Shutdown() { pool_.Shutdown(); }

void RecService::PublishSnapshot(
    std::shared_ptr<const EmbeddingSnapshot> snapshot) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snapshot);
}

std::shared_ptr<const EmbeddingSnapshot> RecService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

RecServiceStats RecService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

RecResponse RecService::Handle(const RecRequest& request) {
  ScopedTimer latency_timer(request_latency_ms_);
  const int64_t top_k =
      request.top_k > 0 ? request.top_k : options_.default_top_k;
  const double deadline_ms = request.deadline_ms == 0.0
                                 ? options_.default_deadline_ms
                                 : request.deadline_ms;
  std::shared_ptr<const EmbeddingSnapshot> snapshot = this->snapshot();

  // Validation: out-of-range ids are a clean error, never UB. The upper
  // bound is checked against the snapshot when one is published; in
  // snapshotless degraded mode any non-negative user is servable (the
  // popularity ranking is user-independent).
  Status invalid;
  if (request.user < 0) {
    invalid = Status::InvalidArgument("negative user id " +
                                      std::to_string(request.user));
  } else if (snapshot != nullptr && request.user >= snapshot->num_users()) {
    invalid = Status::InvalidArgument(
        "unknown user id " + std::to_string(request.user) + " (snapshot has " +
        std::to_string(snapshot->num_users()) + " users)");
  }
  if (invalid.ok() && request.top_k < 0) {
    invalid = Status::InvalidArgument("negative top_k " +
                                      std::to_string(request.top_k));
  }
  if (!invalid.ok()) {
    if (requests_invalid_ != nullptr) requests_invalid_->Increment();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.invalid_requests;
    RecResponse response;
    response.status = std::move(invalid);
    return response;
  }

  // Degraded path: no loadable snapshot, or the breaker refuses the real
  // path. Either way the caller gets an answer.
  if (snapshot == nullptr || !breaker_.AllowRequest()) {
    return DegradedResponse(top_k, request.exclude);
  }

  RecResponse response;
  response.status = recommender_.TopK(*snapshot, request.user, top_k,
                                      deadline_ms, request.exclude,
                                      &response.items);
  if (response.status.ok()) {
    response.snapshot_version = snapshot->version();
    breaker_.RecordSuccess();
    if (requests_ok_ != nullptr) requests_ok_->Increment();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.served_real;
    return response;
  }
  // Scoring failure: feed the breaker and surface the definite status.
  breaker_.RecordFailure();
  if (response.status.code() == StatusCode::kDeadlineExceeded) {
    if (requests_deadline_ != nullptr) requests_deadline_->Increment();
  } else if (requests_error_ != nullptr) {
    requests_error_->Increment();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (response.status.code() == StatusCode::kDeadlineExceeded) {
      ++stats_.deadline_exceeded;
    }
  }
  response.items.clear();
  return response;
}

RecResponse RecService::DegradedResponse(
    int64_t top_k, const std::vector<int64_t>& exclude) {
  RecResponse response;
  response.degraded = true;
  fallback_->TopK(top_k, exclude, &response.items);
  if (requests_degraded_ != nullptr) requests_degraded_->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.served_degraded;
  }
  return response;
}

}  // namespace imcat
