#include "serve/rec_service.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "util/check.h"

namespace imcat {

namespace {

void DefaultSleepMs(double millis) {
  if (millis <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(millis));
}

ThreadPoolOptions ServicePoolOptions(const RecServiceOptions& options) {
  IMCAT_CHECK(options.num_workers >= 1);
  IMCAT_CHECK(options.queue_capacity >= 1);
  ThreadPoolOptions popts;
  popts.num_threads = options.num_workers;
  popts.queue_capacity = options.queue_capacity;
  popts.metrics = options.metrics;
  popts.metrics_prefix = "serve_pool";
  return popts;
}

}  // namespace

RecService::RecService(std::shared_ptr<const PopularityRanker> fallback,
                       const RecServiceOptions& options)
    : options_(options),
      fallback_(std::move(fallback)),
      recommender_([&] {
        RecommenderOptions ropts = options.recommender;
        if (!ropts.now_ms && options.now_ms) ropts.now_ms = options.now_ms;
        return ropts;
      }()),
      breaker_(options.breaker, options.now_ms),
      now_ms_(options.now_ms ? options.now_ms : SteadyNowMs),
      sleep_ms_(options.sleep_ms ? options.sleep_ms : DefaultSleepMs),
      journal_(options.journal),
      pool_(ServicePoolOptions(options)) {
  IMCAT_CHECK(fallback_ != nullptr);
  IMCAT_CHECK(options_.default_top_k >= 1);
  IMCAT_CHECK(options_.max_batch_size >= 1);
  if (options_.overload.enabled) {
    OverloadOptions oopts = options_.overload;
    if (!oopts.now_ms) oopts.now_ms = now_ms_;
    overload_ = std::make_unique<OverloadController>(oopts);
  }
  if (options.metrics != nullptr) {
    MetricsRegistry* m = options.metrics;
    requests_total_ = m->GetCounter("serve_requests_total");
    requests_ok_ = m->GetCounter("serve_requests_ok_total");
    requests_degraded_ = m->GetCounter("serve_requests_degraded_total");
    requests_partial_degraded_ =
        m->GetCounter("serve_requests_partial_degraded_total");
    requests_shed_ = m->GetCounter("serve_requests_shed_total");
    requests_shed_queue_delay_ =
        m->GetCounter("serve_requests_shed_queue_delay_total");
    requests_shed_predicted_late_ =
        m->GetCounter("serve_requests_shed_predicted_late_total");
    requests_deadline_ =
        m->GetCounter("serve_requests_deadline_exceeded_total");
    requests_invalid_ = m->GetCounter("serve_requests_invalid_total");
    requests_error_ = m->GetCounter("serve_requests_error_total");
    requests_cancelled_ = m->GetCounter("serve_requests_cancelled_total");
    snapshot_reloads_total_ = m->GetCounter("serve_snapshot_reloads_total");
    snapshot_load_failures_total_ =
        m->GetCounter("serve_snapshot_load_failures_total");
    snapshot_rejected_publishes_total_ =
        m->GetCounter("serve_snapshot_rejected_publishes_total");
    snapshot_shards_quarantined_total_ =
        m->GetCounter("serve_snapshot_shards_quarantined_total");
    staleness_trips_total_ = m->GetCounter("serve_staleness_trips_total");
    breaker_transitions_total_ =
        m->GetCounter("serve_breaker_transitions_total");
    delta_publishes_total_ = m->GetCounter("serve_delta_publishes_total");
    delta_rejected_total_ = m->GetCounter("serve_delta_rejected_total");
    brownout_transitions_total_ =
        m->GetCounter("serve_brownout_transitions_total");
    brownout_level_gauge_ = m->GetGauge("serve_brownout_level");
    breaker_state_gauge_ = m->GetGauge("serve_breaker_state");
    quarantined_shards_gauge_ =
        m->GetGauge("serve_snapshot_quarantined_shards");
    staleness_ms_gauge_ = m->GetGauge("serve_snapshot_staleness_ms");
    stale_shards_gauge_ = m->GetGauge("serve_snapshot_stale_shards");
    delta_lag_ms_gauge_ = m->GetGauge("serve_snapshot_delta_lag_ms");
    request_latency_ms_ = m->GetHistogram("serve_request_latency_ms");
    queue_wait_ms_ = m->GetHistogram("serve_queue_wait_ms");
    if (options_.max_batch_size > 1) {
      batch_size_ = m->GetHistogram("serve_batch_size");
      batched_requests_total_ =
          m->GetCounter("serve_batched_requests_total");
    }
  }
  if (options.metrics != nullptr || journal_ != nullptr) {
    // Observe breaker transitions for the gauge / counter / journal. The
    // listener runs outside the breaker lock, on the transitioning thread.
    breaker_.set_on_transition(
        [this](CircuitBreaker::State from, CircuitBreaker::State to) {
          if (breaker_transitions_total_ != nullptr) {
            breaker_transitions_total_->Increment();
          }
          if (breaker_state_gauge_ != nullptr) {
            breaker_state_gauge_->Set(static_cast<double>(to));
          }
          if (journal_ != nullptr) {
            journal_->Append(JournalEvent("breaker")
                                 .Set("from", CircuitBreaker::StateName(from))
                                 .Set("to", CircuitBreaker::StateName(to)));
          }
        });
  }
  if (overload_ != nullptr) {
    // Brownout ladder transitions are observable exactly like breaker
    // transitions: one stats bump + counter + gauge + journal event per
    // edge, fired outside the controller lock on the transitioning thread.
    overload_->set_on_brownout([this](int64_t from, int64_t to) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.brownout_transitions;
      }
      if (brownout_transitions_total_ != nullptr) {
        brownout_transitions_total_->Increment();
      }
      if (brownout_level_gauge_ != nullptr) {
        brownout_level_gauge_->Set(static_cast<double>(to));
      }
      if (journal_ != nullptr) {
        journal_->Append(
            JournalEvent("brownout").Set("from", from).Set("to", to));
      }
    });
  }
}

RecService::~RecService() { Shutdown(); }

Status RecService::LoadSnapshot(const std::string& path) {
  std::lock_guard<std::mutex> load_lock(load_mu_);
  Backoff backoff(options_.load_backoff);
  Status last;
  while (true) {
    auto result = EmbeddingSnapshot::Load(path, options_.snapshot_load);
    if (result.ok()) {
      std::shared_ptr<EmbeddingSnapshot> loaded = std::move(result).value();
      // Version: the exporter's manifest version when assigned, else the
      // service's own monotonic counter (v2 files and unversioned
      // exports).
      const std::shared_ptr<const EmbeddingSnapshot> live = snapshot();
      const int64_t version =
          loaded->parent_version() > 0
              ? loaded->parent_version()
              : next_snapshot_version_.fetch_add(1,
                                                 std::memory_order_relaxed);
      if (live != nullptr && version <= live->version()) {
        // Monotonicity refusal: publishing this snapshot would roll the
        // service backwards (a stale export re-pushed, a duplicate
        // publish). The file itself is intact, so the breaker is not fed
        // and no retry can help.
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.rejected_publishes;
        }
        if (snapshot_rejected_publishes_total_ != nullptr) {
          snapshot_rejected_publishes_total_->Increment();
        }
        if (journal_ != nullptr) {
          journal_->Append(JournalEvent("snapshot_rejected")
                               .Set("path", path)
                               .Set("live_version", live->version())
                               .Set("candidate_version", version));
        }
        return Status::FailedPrecondition(
            path + ": snapshot version " + std::to_string(version) +
            " is not greater than live version " +
            std::to_string(live->version()) + "; publish refused");
      }
      loaded->set_version(version);
      const int64_t quarantined = loaded->quarantined_count();
      const int64_t shards = loaded->num_shards();
      const int64_t parent_version = loaded->parent_version();
      // Keep counter-assigned versions ahead of manifest-assigned ones so
      // the two sources interleave monotonically.
      int64_t next = next_snapshot_version_.load(std::memory_order_relaxed);
      while (next <= version &&
             !next_snapshot_version_.compare_exchange_weak(
                 next, version + 1, std::memory_order_relaxed)) {
      }
      // Atomic publish: readers holding the old snapshot keep it alive
      // until their request completes.
      PublishSnapshot(std::move(loaded));
      breaker_.RecordSuccess();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.snapshot_reloads;
      }
      if (snapshot_reloads_total_ != nullptr) {
        snapshot_reloads_total_->Increment();
      }
      if (snapshot_shards_quarantined_total_ != nullptr &&
          quarantined > 0) {
        snapshot_shards_quarantined_total_->Add(quarantined);
      }
      if (quarantined_shards_gauge_ != nullptr) {
        quarantined_shards_gauge_->Set(static_cast<double>(quarantined));
      }
      if (stale_shards_gauge_ != nullptr) stale_shards_gauge_->Set(0.0);
      if (journal_ != nullptr) {
        journal_->Append(JournalEvent("snapshot_reload")
                             .Set("ok", true)
                             .Set("path", path)
                             .Set("version", version)
                             .Set("parent_version", parent_version)
                             .Set("shards", shards)
                             .Set("quarantined_shards", quarantined));
      }
      return Status::OK();
    }
    last = result.status();
    const double delay_ms = backoff.NextDelayMs();
    if (!backoff.ShouldRetry()) break;
    sleep_ms_(delay_ms);
  }
  breaker_.RecordFailure();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.snapshot_load_failures;
  }
  if (snapshot_load_failures_total_ != nullptr) {
    snapshot_load_failures_total_->Increment();
  }
  if (journal_ != nullptr) {
    journal_->Append(JournalEvent("snapshot_reload")
                         .Set("ok", false)
                         .Set("path", path)
                         .Set("error", last.message()));
  }
  return Status(last.code(),
                "snapshot load failed after " +
                    std::to_string(options_.load_backoff.max_attempts) +
                    " attempts: " + last.message());
}

void RecService::RecordDeltaRejected(const std::string& path,
                                     int64_t live_version,
                                     int64_t base_version,
                                     const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_deltas;
  }
  if (delta_rejected_total_ != nullptr) delta_rejected_total_->Increment();
  if (journal_ != nullptr) {
    journal_->Append(JournalEvent("delta_rejected")
                         .Set("path", path)
                         .Set("live_version", live_version)
                         .Set("base_version", base_version)
                         .Set("reason", reason));
  }
}

Status RecService::LoadDelta(const std::string& path) {
  std::lock_guard<std::mutex> load_lock(load_mu_);
  const std::shared_ptr<const EmbeddingSnapshot> live = snapshot();
  if (live == nullptr) {
    RecordDeltaRejected(path, 0, 0, "no live snapshot to chain onto");
    return Status::FailedPrecondition(
        path + ": no live snapshot to apply a delta onto; publish a full "
               "snapshot first");
  }
  Backoff backoff(options_.load_backoff);
  Status last;
  while (true) {
    auto result =
        EmbeddingSnapshot::ApplyDelta(live, path, options_.snapshot_load);
    if (result.ok()) {
      std::shared_ptr<EmbeddingSnapshot> applied = std::move(result).value();
      const int64_t version = applied->version();
      const int64_t base_version = applied->base_version();
      const int64_t quarantined = applied->quarantined_count();
      const int64_t stale = applied->stale_count();
      const int64_t shards = applied->num_shards();
      // Keep counter-assigned versions ahead of delta-assigned ones, same
      // contract as LoadSnapshot.
      int64_t next = next_snapshot_version_.load(std::memory_order_relaxed);
      while (next <= version &&
             !next_snapshot_version_.compare_exchange_weak(
                 next, version + 1, std::memory_order_relaxed)) {
      }
      PublishSnapshot(std::move(applied));
      last_delta_publish_ms_.store(now_ms_(), std::memory_order_relaxed);
      if (delta_lag_ms_gauge_ != nullptr) delta_lag_ms_gauge_->Set(0.0);
      breaker_.RecordSuccess();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.delta_publishes;
      }
      if (delta_publishes_total_ != nullptr) {
        delta_publishes_total_->Increment();
      }
      if (snapshot_shards_quarantined_total_ != nullptr && quarantined > 0) {
        snapshot_shards_quarantined_total_->Add(quarantined);
      }
      if (quarantined_shards_gauge_ != nullptr) {
        quarantined_shards_gauge_->Set(static_cast<double>(quarantined));
      }
      if (stale_shards_gauge_ != nullptr) {
        stale_shards_gauge_->Set(static_cast<double>(stale));
      }
      if (journal_ != nullptr) {
        journal_->Append(JournalEvent("delta_publish")
                             .Set("ok", true)
                             .Set("path", path)
                             .Set("version", version)
                             .Set("base_version", base_version)
                             .Set("shards", shards)
                             .Set("quarantined_shards", quarantined)
                             .Set("stale_shards", stale));
      }
      return Status::OK();
    }
    last = result.status();
    if (last.code() == StatusCode::kFailedPrecondition) {
      // Out-of-order / stale / duplicate delta: refused, not failed — the
      // file is intact and retrying cannot change its base_version, so no
      // backoff and no breaker feedback.
      int64_t delta_base = -1;
      auto manifest = ReadDeltaSnapshotManifest(path);
      if (manifest.ok()) delta_base = manifest.value().base_version;
      RecordDeltaRejected(path, live->version(), delta_base, last.message());
      return last;
    }
    const double delay_ms = backoff.NextDelayMs();
    if (!backoff.ShouldRetry()) break;
    sleep_ms_(delay_ms);
  }
  // Unrecoverable delta (corrupt manifest/user table, bad geometry, every
  // changed shard corrupt): the base snapshot stays live.
  breaker_.RecordFailure();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.snapshot_load_failures;
  }
  if (snapshot_load_failures_total_ != nullptr) {
    snapshot_load_failures_total_->Increment();
  }
  if (journal_ != nullptr) {
    journal_->Append(JournalEvent("delta_publish")
                         .Set("ok", false)
                         .Set("path", path)
                         .Set("live_version", live->version())
                         .Set("error", last.message()));
  }
  return Status(last.code(),
                "delta publish failed after " +
                    std::to_string(options_.load_backoff.max_attempts) +
                    " attempts: " + last.message());
}

std::future<RecResponse> RecService::Submit(RecRequest request) {
  auto task = std::make_shared<Task>();
  task->request = std::move(request);
  std::future<RecResponse> future = task->promise.get_future();
  if (requests_total_ != nullptr) requests_total_->Increment();
  // Adaptive admission control: the overload controller sheds *before*
  // enqueue — batch traffic while the CoDel law declares overload, any
  // request whose deadline budget the smoothed queue-wait estimate already
  // exceeds. Both resolve immediately with kUnavailable, same contract as
  // a queue-full shed.
  if (overload_ != nullptr) {
    const RecRequest& req = task->request;
    const double deadline_ms = req.deadline_ms == 0.0
                                   ? options_.default_deadline_ms
                                   : req.deadline_ms;
    const OverloadController::Decision decision =
        overload_->Admit(req.priority, deadline_ms);
    if (decision != OverloadController::Decision::kAdmit) {
      RecResponse shed;
      if (decision == OverloadController::Decision::kShedQueueDelay) {
        shed.status = Status::Unavailable(
            "overloaded: queue delay above target; " +
            std::string(PriorityName(req.priority)) +
            " request shed, retry later");
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.shed_queue_delay;
        }
        if (requests_shed_queue_delay_ != nullptr) {
          requests_shed_queue_delay_->Increment();
        }
      } else {
        shed.status = Status::Unavailable(
            "overloaded: deadline budget " + std::to_string(deadline_ms) +
            " ms below queue-wait estimate " +
            std::to_string(overload_->smoothed_wait_ms()) +
            " ms; refused as predicted late");
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.shed_predicted_late;
        }
        if (requests_shed_predicted_late_ != nullptr) {
          requests_shed_predicted_late_->Increment();
        }
      }
      task->promise.set_value(std::move(shed));
      return future;
    }
  }
  // Admission rides on the pool's bounded queue. The cancel callback is
  // the shutdown contract: a request still queued when Shutdown() runs is
  // resolved to kUnavailable — its future is always eventually satisfied,
  // never hung, never dropped.
  task->enqueue_ms = now_ms_();
  Status admitted;
  if (options_.max_batch_size > 1) {
    // Coalescing mode: the task goes onto the batch queue and a
    // lightweight drain ticket onto the pool — admission (and queue-full
    // shedding) still rides the pool's bounded queue, one ticket per
    // request. A running ticket drains a compatible FIFO prefix of up to
    // max_batch_size tasks; surplus tickets find an empty queue and
    // no-op. #queued tasks never exceeds #outstanding tickets, so
    // shutdown's per-ticket cancellations resolve every queued future.
    {
      std::lock_guard<std::mutex> lock(batch_mu_);
      batch_queue_.push_back(task);
    }
    admitted = pool_.TrySubmit([this] { DrainAndProcess(); },
                               [this] { CancelOneQueued(); });
    if (!admitted.ok()) {
      // Ticket refused: reclaim the queued task so it can be shed — unless
      // a concurrently running drain (or a shutdown cancellation) already
      // claimed and resolved it, in which case the request went through.
      bool reclaimed = false;
      {
        std::lock_guard<std::mutex> lock(batch_mu_);
        for (auto it = batch_queue_.rbegin(); it != batch_queue_.rend();
             ++it) {
          if (it->get() == task.get()) {
            batch_queue_.erase(std::next(it).base());
            reclaimed = true;
            break;
          }
        }
      }
      if (!reclaimed) admitted = Status::OK();
    }
  } else {
    admitted = pool_.TrySubmit(
        [this, task] {
          // Measured sojourn: the number the controller, the response
          // field and the serve_queue_wait_ms histogram all agree on.
          const double wait_ms = std::max(0.0, now_ms_() - task->enqueue_ms);
          if (overload_ != nullptr) overload_->OnDequeue(wait_ms);
          task->promise.set_value(Handle(task->request, wait_ms));
        },
        [this, task] {
          if (requests_cancelled_ != nullptr) {
            requests_cancelled_->Increment();
          }
          RecResponse response;
          response.status = Status::Unavailable("service is shut down");
          task->promise.set_value(std::move(response));
        });
  }
  if (admitted.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
    return future;
  }
  // Load shedding: reject immediately with a definite status instead of
  // queueing unboundedly.
  RecResponse shed;
  shed.status = Status::Unavailable(
      pool_.stopped() ? "service is shut down"
                      : "work queue full (" +
                            std::to_string(options_.queue_capacity) +
                            " requests); load shed, retry later");
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed;
  }
  if (requests_shed_ != nullptr) requests_shed_->Increment();
  task->promise.set_value(std::move(shed));
  return future;
}

RecResponse RecService::Recommend(RecRequest request) {
  return Submit(std::move(request)).get();
}

void RecService::Shutdown() { pool_.Shutdown(); }

void RecService::PublishSnapshot(
    std::shared_ptr<const EmbeddingSnapshot> snapshot) {
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snapshot);
  }
  // A fresh publish restarts the staleness budget and re-arms the
  // edge-triggered watchdog journal event.
  last_publish_ms_.store(now_ms_(), std::memory_order_relaxed);
  stale_tripped_.store(false, std::memory_order_relaxed);
  if (staleness_ms_gauge_ != nullptr) staleness_ms_gauge_->Set(0.0);
}

std::shared_ptr<const EmbeddingSnapshot> RecService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

RecServiceStats RecService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

int64_t RecService::brownout_level() const {
  return overload_ != nullptr ? overload_->brownout_level() : 0;
}

bool RecService::overloaded() const {
  return overload_ != nullptr && overload_->overloaded();
}

std::string RecService::HealthJson() const {
  const std::shared_ptr<const EmbeddingSnapshot> snap = snapshot();
  const int64_t level = brownout_level();
  const bool over = overloaded();
  const double published = last_publish_ms_.load(std::memory_order_relaxed);
  const double staleness_ms =
      (snap != nullptr && published >= 0.0)
          ? std::max(0.0, now_ms_() - published)
          : 0.0;
  const bool stale =
      options_.max_snapshot_staleness_ms > 0.0 &&
      staleness_ms > options_.max_snapshot_staleness_ms;
  const CircuitBreaker::State breaker = breaker_.state();
  // Coarse triage verdict, most severe first: "degraded" (no real scores
  // for at least some traffic), "browned_out" (reduced quality), "ok".
  const char* status = "ok";
  if (snap == nullptr || breaker == CircuitBreaker::State::kOpen || stale) {
    status = "degraded";
  } else if (level > 0 || over) {
    status = "browned_out";
  }
  std::ostringstream out;
  out << "{\"status\":\"" << status << "\""
      << ",\"breaker\":\"" << CircuitBreaker::StateName(breaker) << "\""
      << ",\"brownout_level\":" << level
      << ",\"overloaded\":" << (over ? "true" : "false")
      << ",\"smoothed_queue_wait_ms\":"
      << (overload_ != nullptr ? overload_->smoothed_wait_ms() : 0.0)
      << ",\"batching\":{"
      << "\"max_batch_size\":" << options_.max_batch_size
      << ",\"block_items\":" << recommender_.block_items() << "}"
      << ",\"snapshot\":{"
      << "\"loaded\":" << (snap != nullptr ? "true" : "false")
      << ",\"version\":" << (snap != nullptr ? snap->version() : 0)
      << ",\"staleness_ms\":" << staleness_ms
      << ",\"stale\":" << (stale ? "true" : "false")
      << ",\"quarantined_shards\":"
      << (snap != nullptr ? snap->quarantined_count() : 0)
      << ",\"stale_shards\":" << (snap != nullptr ? snap->stale_count() : 0)
      << "}}";
  return out.str();
}

RecResponse RecService::Handle(const RecRequest& request,
                               double queue_wait_ms) {
  ScopedTimer latency_timer(request_latency_ms_);
  if (queue_wait_ms_ != nullptr) queue_wait_ms_->Record(queue_wait_ms);
  // Ladder level is read once per request so one response reflects one
  // consistent level.
  const int64_t level =
      overload_ != nullptr ? overload_->brownout_level() : 0;
  RecResponse response = HandleScored(request, queue_wait_ms, level);
  response.queue_wait_ms = queue_wait_ms;
  response.brownout_level = level;
  return response;
}

RecResponse RecService::HandleScored(const RecRequest& request,
                                     double queue_wait_ms,
                                     int64_t brownout_level) {
  std::shared_ptr<const EmbeddingSnapshot> snapshot = this->snapshot();
  ScorePlan plan =
      PlanRequest(request, queue_wait_ms, snapshot, brownout_level);
  if (plan.done) return plan.response;
  std::vector<ScoredItem> items;
  int64_t quarantined_skipped = 0;
  Status status = recommender_.TopK(
      *snapshot, request.user, plan.top_k, plan.scoring_deadline_ms,
      request.exclude, request.item_begin, request.item_end, &items,
      &quarantined_skipped, plan.max_scored_items);
  return FinishScored(request, *snapshot, plan.top_k, std::move(status),
                      std::move(items), quarantined_skipped);
}

RecService::ScorePlan RecService::PlanRequest(
    const RecRequest& request, double queue_wait_ms,
    const std::shared_ptr<const EmbeddingSnapshot>& snapshot,
    int64_t brownout_level) {
  ScorePlan plan;
  const int64_t top_k =
      request.top_k > 0 ? request.top_k : options_.default_top_k;
  const double deadline_ms = request.deadline_ms == 0.0
                                 ? options_.default_deadline_ms
                                 : request.deadline_ms;

  // Validation: out-of-range ids are a clean error, never UB. The upper
  // bound is checked against the snapshot when one is published; in
  // snapshotless degraded mode any non-negative user is servable (the
  // popularity ranking is user-independent).
  Status invalid;
  if (request.user < 0) {
    invalid = Status::InvalidArgument("negative user id " +
                                      std::to_string(request.user));
  } else if (snapshot != nullptr && request.user >= snapshot->num_users()) {
    invalid = Status::InvalidArgument(
        "unknown user id " + std::to_string(request.user) + " (snapshot has " +
        std::to_string(snapshot->num_users()) + " users)");
  }
  if (invalid.ok() && request.top_k < 0) {
    invalid = Status::InvalidArgument("negative top_k " +
                                      std::to_string(request.top_k));
  }
  if (invalid.ok() &&
      (request.item_begin != 0 || request.item_end != 0)) {
    // Range restriction: validated against the snapshot catalogue when one
    // is live, else against the fallback ranking it will be served from.
    const int64_t catalogue = snapshot != nullptr ? snapshot->num_items()
                                                  : fallback_->num_items();
    if (request.item_begin < 0 || request.item_end <= request.item_begin ||
        request.item_end > catalogue) {
      invalid = Status::InvalidArgument(
          "item range [" + std::to_string(request.item_begin) + ", " +
          std::to_string(request.item_end) + ") invalid for catalogue of " +
          std::to_string(catalogue) + " items");
    }
  }
  if (!invalid.ok()) {
    if (requests_invalid_ != nullptr) requests_invalid_->Increment();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.invalid_requests;
    }
    plan.done = true;
    plan.response.status = std::move(invalid);
    return plan;
  }

  // Deadline already burned in the queue: with the controller on, a
  // request whose measured sojourn ate its whole budget is refused here —
  // scoring it would waste a worker on an answer nobody can use, the
  // wasted-work path that turns overload into collapse. Same
  // `shed_predicted_late` outcome as the admission-time prediction; only
  // the timing of the refusal differs.
  if (overload_ != nullptr && deadline_ms > 0.0 &&
      queue_wait_ms >= deadline_ms) {
    if (requests_shed_predicted_late_ != nullptr) {
      requests_shed_predicted_late_->Increment();
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shed_predicted_late;
    }
    plan.done = true;
    plan.response.status = Status::Unavailable(
        "overloaded: deadline budget " + std::to_string(deadline_ms) +
        " ms expired in queue (waited " + std::to_string(queue_wait_ms) +
        " ms); refused instead of scored");
    return plan;
  }

  // Delta lag: time since the live snapshot last advanced via a delta
  // publish. Exported on every request so a scraper watches the lag grow
  // live while deltas are rejected or failing.
  if (delta_lag_ms_gauge_ != nullptr) {
    const double last_delta =
        last_delta_publish_ms_.load(std::memory_order_relaxed);
    if (last_delta >= 0.0) {
      delta_lag_ms_gauge_->Set(now_ms_() - last_delta);
    }
  }

  // Staleness watchdog: repeated reload failures leave the live snapshot
  // older than the bounded-staleness budget; past it the model scores are
  // no longer trustworthy and the popularity fallback takes over until a
  // fresh snapshot publishes.
  if (snapshot != nullptr && options_.max_snapshot_staleness_ms > 0.0) {
    const double published = last_publish_ms_.load(std::memory_order_relaxed);
    const double staleness_ms = published >= 0.0 ? now_ms_() - published : 0.0;
    if (staleness_ms_gauge_ != nullptr) {
      staleness_ms_gauge_->Set(staleness_ms);
    }
    if (staleness_ms > options_.max_snapshot_staleness_ms) {
      if (!stale_tripped_.exchange(true, std::memory_order_relaxed)) {
        // Edge-triggered: one journal event + trip count per episode, not
        // one per request in the storm.
        if (staleness_trips_total_ != nullptr) {
          staleness_trips_total_->Increment();
        }
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.staleness_trips;
        }
        if (journal_ != nullptr) {
          journal_->Append(
              JournalEvent("staleness")
                  .Set("staleness_ms", staleness_ms)
                  .Set("budget_ms", options_.max_snapshot_staleness_ms)
                  .Set("snapshot_version", snapshot->version()));
        }
      }
      plan.done = true;
      plan.response = DegradedResponse(top_k, request.exclude,
                                       request.item_begin, request.item_end);
      return plan;
    }
  }

  // Degraded path: no loadable snapshot, or the breaker refuses the real
  // path. Either way the caller gets an answer.
  if (snapshot == nullptr || !breaker_.AllowRequest()) {
    plan.done = true;
    plan.response = DegradedResponse(top_k, request.exclude,
                                     request.item_begin, request.item_end);
    return plan;
  }

  // Brownout level >= 2: batch-priority traffic is served from the
  // popularity fallback so the remaining scoring capacity goes to
  // interactive requests. Same `degraded` outcome as the breaker path —
  // the response's brownout_level tells the two apart.
  if (brownout_level >= 2 && request.priority == RequestPriority::kBatch) {
    plan.done = true;
    plan.response = DegradedResponse(top_k, request.exclude,
                                     request.item_begin, request.item_end);
    return plan;
  }

  // Overload-aware budgets. Scoring gets the *remaining* deadline (total
  // minus measured queue wait) so the client-observed latency honours the
  // deadline the client set; with the controller off the legacy semantics
  // (full budget from scoring start) are preserved bit-for-bit. Brownout
  // level >= 1 additionally caps how much of the catalogue is scored:
  // fraction^level of the requested range.
  plan.top_k = top_k;
  plan.scoring_deadline_ms = deadline_ms;
  if (overload_ != nullptr && deadline_ms > 0.0) {
    plan.scoring_deadline_ms = deadline_ms - queue_wait_ms;
  }
  if (overload_ != nullptr && brownout_level > 0) {
    const int64_t range_begin = request.item_begin;
    const int64_t range_end =
        request.item_end > 0 ? request.item_end : snapshot->num_items();
    double fraction = 1.0;
    for (int64_t l = 0; l < brownout_level; ++l) {
      fraction *= overload_->options().scoring_fraction;
    }
    plan.max_scored_items = std::max<int64_t>(
        1, static_cast<int64_t>(
               static_cast<double>(range_end - range_begin) * fraction));
  }
  return plan;
}

RecResponse RecService::FinishScored(const RecRequest& request,
                                     const EmbeddingSnapshot& snapshot,
                                     int64_t top_k, Status status,
                                     std::vector<ScoredItem> items,
                                     int64_t quarantined_skipped) {
  RecResponse response;
  response.status = std::move(status);
  response.items = std::move(items);
  if (response.status.ok()) {
    response.snapshot_version = snapshot.version();
    response.quarantined_shards = snapshot.quarantined_count();
    breaker_.RecordSuccess();
    if (quarantined_skipped > 0) {
      // kPartialDegraded: healthy shards scored normally; items the
      // quarantine excluded are backfilled from the popularity ranking,
      // restricted to the quarantined slice of the requested range so a
      // healthy item can never be displaced by a fallback one.
      response.partial_degraded = true;
      if (static_cast<int64_t>(response.items.size()) < top_k) {
        std::vector<int64_t> already = request.exclude;
        already.reserve(already.size() + response.items.size());
        for (const ScoredItem& chosen : response.items) {
          already.push_back(chosen.item);
        }
        const int64_t begin = request.item_begin;
        const int64_t end = request.item_end > 0 ? request.item_end
                                                 : snapshot.num_items();
        std::vector<ScoredItem> backfill;
        fallback_->TopKFiltered(
            top_k - static_cast<int64_t>(response.items.size()), already,
            [&snapshot, begin, end](int64_t item) {
              return item >= begin && item < end &&
                     !snapshot.item_available(item);
            },
            &backfill);
        response.items.insert(response.items.end(), backfill.begin(),
                              backfill.end());
      }
      if (requests_partial_degraded_ != nullptr) {
        requests_partial_degraded_->Increment();
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.served_partial_degraded;
      return response;
    }
    // Stale shards (a delta failed to replace them; old rows kept): the
    // scores are real but one publish behind, so a request whose range
    // touches a stale shard is surfaced as partial_degraded — no backfill,
    // just the flag.
    const int64_t range_begin = request.item_begin;
    const int64_t range_end =
        request.item_end > 0 ? request.item_end : snapshot.num_items();
    if (snapshot.RangeTouchesStale(range_begin, range_end)) {
      response.partial_degraded = true;
      if (requests_partial_degraded_ != nullptr) {
        requests_partial_degraded_->Increment();
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.served_partial_degraded;
      return response;
    }
    if (requests_ok_ != nullptr) requests_ok_->Increment();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.served_real;
    return response;
  }
  // Scoring failure: feed the breaker and surface the definite status.
  breaker_.RecordFailure();
  if (response.status.code() == StatusCode::kDeadlineExceeded) {
    if (requests_deadline_ != nullptr) requests_deadline_->Increment();
  } else if (requests_error_ != nullptr) {
    requests_error_->Increment();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (response.status.code() == StatusCode::kDeadlineExceeded) {
      ++stats_.deadline_exceeded;
    }
  }
  response.items.clear();
  return response;
}

RecResponse RecService::DegradedResponse(
    int64_t top_k, const std::vector<int64_t>& exclude, int64_t item_begin,
    int64_t item_end) {
  RecResponse response;
  response.degraded = true;
  if (item_end > 0) {
    fallback_->TopKFiltered(
        top_k, exclude,
        [item_begin, item_end](int64_t item) {
          return item >= item_begin && item < item_end;
        },
        &response.items);
  } else {
    fallback_->TopK(top_k, exclude, &response.items);
  }
  if (requests_degraded_ != nullptr) requests_degraded_->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.served_degraded;
  }
  return response;
}

void RecService::DrainAndProcess() {
  std::vector<std::shared_ptr<Task>> batch;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    // An earlier ticket may have over-drained this ticket's request
    // already; the surplus wakeup is a no-op.
    if (batch_queue_.empty()) return;
    batch.push_back(std::move(batch_queue_.front()));
    batch_queue_.pop_front();
    // Compatibility rule: a batch shares one TopKBatch call, so every
    // member must share the head's (item_begin, item_end). The scan is a
    // FIFO prefix — an incompatible head-of-line request ends the batch
    // rather than being jumped over, preserving per-range ordering.
    const RecRequest& head = batch.front()->request;
    while (static_cast<int64_t>(batch.size()) < options_.max_batch_size &&
           !batch_queue_.empty()) {
      const RecRequest& next = batch_queue_.front()->request;
      if (next.item_begin != head.item_begin ||
          next.item_end != head.item_end) {
        break;
      }
      batch.push_back(std::move(batch_queue_.front()));
      batch_queue_.pop_front();
    }
  }
  ProcessBatch(batch);
}

void RecService::CancelOneQueued() {
  std::shared_ptr<Task> task;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    if (!batch_queue_.empty()) {
      task = std::move(batch_queue_.front());
      batch_queue_.pop_front();
    }
  }
  // No task: a drain consumed more requests than its own, leaving this
  // ticket nothing to cancel — the corresponding future already resolved.
  if (task == nullptr) return;
  if (requests_cancelled_ != nullptr) requests_cancelled_->Increment();
  RecResponse response;
  response.status = Status::Unavailable("service is shut down");
  task->promise.set_value(std::move(response));
}

void RecService::ProcessBatch(
    const std::vector<std::shared_ptr<Task>>& batch) {
  const double start_ms = now_ms_();
  if (batch_size_ != nullptr) {
    batch_size_->Record(static_cast<double>(batch.size()));
  }
  if (batched_requests_total_ != nullptr) {
    batched_requests_total_->Add(static_cast<int64_t>(batch.size()));
  }
  // Snapshot and ladder level are pinned once per batch: every member
  // scores against the same snapshot and reports one consistent level.
  const int64_t level =
      overload_ != nullptr ? overload_->brownout_level() : 0;
  std::shared_ptr<const EmbeddingSnapshot> snapshot = this->snapshot();

  // Per-member pre-scoring pass: measured sojourns feed the controller,
  // and PlanRequest resolves everything that must not reach the kernel —
  // invalid requests, deadline-expired-in-queue refusals, degraded and
  // brownout fallbacks — exactly as the per-request path would.
  std::vector<double> waits(batch.size());
  std::vector<ScorePlan> plans(batch.size());
  std::vector<size_t> scored;
  std::vector<Recommender::BatchQuery> queries;
  for (size_t i = 0; i < batch.size(); ++i) {
    waits[i] = std::max(0.0, start_ms - batch[i]->enqueue_ms);
    if (overload_ != nullptr) overload_->OnDequeue(waits[i]);
    if (queue_wait_ms_ != nullptr) queue_wait_ms_->Record(waits[i]);
    plans[i] = PlanRequest(batch[i]->request, waits[i], snapshot, level);
    if (plans[i].done) continue;
    Recommender::BatchQuery query;
    query.user = batch[i]->request.user;
    query.k = plans[i].top_k;
    query.deadline_ms = plans[i].scoring_deadline_ms;
    query.exclude = &batch[i]->request.exclude;
    queries.push_back(query);
    scored.push_back(i);
  }

  // The survivors share one blocked multi-user kernel pass. All plans of
  // a batch agree on max_scored_items: the brownout budget is a function
  // of the shared item range and the pinned level.
  std::vector<Recommender::BatchQueryResult> results;
  if (!queries.empty()) {
    const RecRequest& head = batch[scored.front()]->request;
    const Status batch_status = recommender_.TopKBatch(
        *snapshot, queries, head.item_begin, head.item_end,
        plans[scored.front()].max_scored_items, &results);
    if (!batch_status.ok()) {
      // A malformed shared range (PlanRequest validated against this same
      // snapshot, so only reachable through a racing catalogue change):
      // every scored member carries the definite batch status.
      for (Recommender::BatchQueryResult& result : results) {
        result.status = batch_status;
        result.items.clear();
        result.quarantined_skipped = 0;
      }
    }
    for (size_t s = 0; s < scored.size(); ++s) {
      const size_t i = scored[s];
      plans[i].response = FinishScored(
          batch[i]->request, *snapshot, plans[i].top_k,
          std::move(results[s].status), std::move(results[s].items),
          results[s].quarantined_skipped);
    }
  }

  const double handle_ms = std::max(0.0, now_ms_() - start_ms);
  for (size_t i = 0; i < batch.size(); ++i) {
    RecResponse response = std::move(plans[i].response);
    response.queue_wait_ms = waits[i];
    response.brownout_level = level;
    if (request_latency_ms_ != nullptr) {
      request_latency_ms_->Record(handle_ms);
    }
    batch[i]->promise.set_value(std::move(response));
  }
}

}  // namespace imcat
