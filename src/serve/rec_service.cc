#include "serve/rec_service.h"

#include <chrono>
#include <utility>

#include "util/check.h"

namespace imcat {

namespace {

void DefaultSleepMs(double millis) {
  if (millis <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(millis));
}

std::future<RecResponse> ReadyResponse(RecResponse response) {
  std::promise<RecResponse> promise;
  promise.set_value(std::move(response));
  return promise.get_future();
}

}  // namespace

RecService::RecService(std::shared_ptr<const PopularityRanker> fallback,
                       const RecServiceOptions& options)
    : options_(options),
      fallback_(std::move(fallback)),
      recommender_([&] {
        RecommenderOptions ropts = options.recommender;
        if (!ropts.now_ms && options.now_ms) ropts.now_ms = options.now_ms;
        return ropts;
      }()),
      breaker_(options.breaker, options.now_ms),
      sleep_ms_(options.sleep_ms ? options.sleep_ms : DefaultSleepMs) {
  IMCAT_CHECK(fallback_ != nullptr);
  IMCAT_CHECK(options_.num_workers >= 1);
  IMCAT_CHECK(options_.queue_capacity >= 1);
  IMCAT_CHECK(options_.default_top_k >= 1);
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int64_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

RecService::~RecService() { Shutdown(); }

Status RecService::LoadSnapshot(const std::string& path) {
  std::lock_guard<std::mutex> load_lock(load_mu_);
  Backoff backoff(options_.load_backoff);
  Status last;
  while (true) {
    auto result = EmbeddingSnapshot::Load(path);
    if (result.ok()) {
      std::shared_ptr<EmbeddingSnapshot> loaded = std::move(result).value();
      loaded->set_version(
          next_snapshot_version_.fetch_add(1, std::memory_order_relaxed));
      // Atomic publish: readers holding the old snapshot keep it alive
      // until their request completes.
      snapshot_.store(std::shared_ptr<const EmbeddingSnapshot>(loaded));
      breaker_.RecordSuccess();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.snapshot_reloads;
      }
      return Status::OK();
    }
    last = result.status();
    const double delay_ms = backoff.NextDelayMs();
    if (!backoff.ShouldRetry()) break;
    sleep_ms_(delay_ms);
  }
  breaker_.RecordFailure();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.snapshot_load_failures;
  }
  return Status(last.code(),
                "snapshot load failed after " +
                    std::to_string(options_.load_backoff.max_attempts) +
                    " attempts: " + last.message());
}

std::future<RecResponse> RecService::Submit(RecRequest request) {
  bool was_stopped = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    was_stopped = stopped_;
    if (!stopped_ &&
        static_cast<int64_t>(queue_.size()) < options_.queue_capacity) {
      Task task;
      task.request = std::move(request);
      std::future<RecResponse> future = task.promise.get_future();
      queue_.push_back(std::move(task));
      queue_cv_.notify_one();
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.accepted;
      return future;
    }
  }
  // Load shedding: reject immediately with a definite status instead of
  // queueing unboundedly.
  RecResponse shed;
  shed.status = Status::Unavailable(
      was_stopped ? "service is shut down"
                  : "work queue full (" +
                        std::to_string(options_.queue_capacity) +
                        " requests); load shed, retry later");
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed;
  }
  return ReadyResponse(std::move(shed));
}

RecResponse RecService::Recommend(RecRequest request) {
  return Submit(std::move(request)).get();
}

void RecService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Fail whatever is still queued with a definite status.
  std::deque<Task> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftover.swap(queue_);
  }
  for (Task& task : leftover) {
    RecResponse response;
    response.status = Status::Unavailable("service is shut down");
    task.promise.set_value(std::move(response));
  }
}

std::shared_ptr<const EmbeddingSnapshot> RecService::snapshot() const {
  return snapshot_.load();
}

RecServiceStats RecService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void RecService::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
      if (stopped_) return;  // Leftovers are failed by Shutdown().
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task.promise.set_value(Handle(task.request));
  }
}

RecResponse RecService::Handle(const RecRequest& request) {
  const int64_t top_k =
      request.top_k > 0 ? request.top_k : options_.default_top_k;
  const double deadline_ms = request.deadline_ms == 0.0
                                 ? options_.default_deadline_ms
                                 : request.deadline_ms;
  std::shared_ptr<const EmbeddingSnapshot> snapshot = snapshot_.load();

  // Validation: out-of-range ids are a clean error, never UB. The upper
  // bound is checked against the snapshot when one is published; in
  // snapshotless degraded mode any non-negative user is servable (the
  // popularity ranking is user-independent).
  Status invalid;
  if (request.user < 0) {
    invalid = Status::InvalidArgument("negative user id " +
                                      std::to_string(request.user));
  } else if (snapshot != nullptr && request.user >= snapshot->num_users()) {
    invalid = Status::InvalidArgument(
        "unknown user id " + std::to_string(request.user) + " (snapshot has " +
        std::to_string(snapshot->num_users()) + " users)");
  }
  if (invalid.ok() && request.top_k < 0) {
    invalid = Status::InvalidArgument("negative top_k " +
                                      std::to_string(request.top_k));
  }
  if (!invalid.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.invalid_requests;
    RecResponse response;
    response.status = std::move(invalid);
    return response;
  }

  // Degraded path: no loadable snapshot, or the breaker refuses the real
  // path. Either way the caller gets an answer.
  if (snapshot == nullptr || !breaker_.AllowRequest()) {
    return DegradedResponse(top_k, request.exclude);
  }

  RecResponse response;
  response.status = recommender_.TopK(*snapshot, request.user, top_k,
                                      deadline_ms, request.exclude,
                                      &response.items);
  if (response.status.ok()) {
    response.snapshot_version = snapshot->version();
    breaker_.RecordSuccess();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.served_real;
    return response;
  }
  // Scoring failure: feed the breaker and surface the definite status.
  breaker_.RecordFailure();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (response.status.code() == StatusCode::kDeadlineExceeded) {
      ++stats_.deadline_exceeded;
    }
  }
  response.items.clear();
  return response;
}

RecResponse RecService::DegradedResponse(
    int64_t top_k, const std::vector<int64_t>& exclude) {
  RecResponse response;
  response.degraded = true;
  fallback_->TopK(top_k, exclude, &response.items);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.served_degraded;
  }
  return response;
}

}  // namespace imcat
