#ifndef IMCAT_SERVE_REC_SERVICE_H_
#define IMCAT_SERVE_REC_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "serve/circuit_breaker.h"
#include "serve/overload.h"
#include "serve/popularity.h"
#include "serve/recommender.h"
#include "serve/snapshot.h"
#include "serve/types.h"
#include "util/backoff.h"
#include "util/status.h"
#include "util/thread_pool.h"

/// \file rec_service.h
/// The fault-tolerant recommendation service front end. Robustness
/// properties, each individually testable and chaos-tested together:
///
///  - request validation: malformed requests (negative/unknown user ids,
///    non-positive k) get a clean kInvalidArgument, never UB;
///  - bounded work queue with load shedding: when the queue is full a
///    request is rejected immediately with kUnavailable instead of
///    queueing unboundedly and blowing latency for everyone (admission
///    control and workers ride on the shared ThreadPool substrate, so the
///    enqueue-vs-shutdown contract is the pool's tested contract);
///  - adaptive overload control (opt-in, overload.h): a CoDel-style
///    controller on measured queue sojourn sheds batch-priority traffic
///    early instead of at queue-full, refuses requests predicted to miss
///    their deadline in the queue (`shed_predicted_late`), and under
///    sustained pressure walks a hysteretic brownout ladder — reduced
///    scoring budgets, then popularity fallback for batch traffic — so
///    goodput holds instead of collapsing metastably;
///  - deadline budgets: scoring checks the per-request deadline between
///    blocks and returns kDeadlineExceeded instead of hanging;
///  - snapshot loading retries with exponential backoff + jitter;
///  - a circuit breaker trips after consecutive snapshot/scoring failures
///    so a broken dependency is not hammered;
///  - graceful degradation: while the breaker is open or no snapshot is
///    loadable, requests are answered from the precomputed popularity
///    ranking with `degraded=true` — the service keeps answering;
///  - partial degradation: when the live snapshot is sharded (v3) and some
///    item shards are quarantined, requests touching those item ranges
///    still get real model scores for healthy shards, backfilled from the
///    popularity ranking for the quarantined ranges, and are surfaced with
///    `partial_degraded=true`; requests confined to healthy ranges are
///    served normally;
///  - snapshot version monotonicity: a snapshot whose version is not
///    strictly greater than the live one is refused (kFailedPrecondition,
///    "snapshot_rejected" journal event), so a stale file republished by a
///    confused deployer can never roll the service backwards;
///  - bounded staleness: an optional watchdog compares the age of the live
///    snapshot against a budget and trips the degraded path when repeated
///    reload failures leave the snapshot too stale to trust;
///  - hot snapshot reload via an atomically published shared_ptr: a
///    mid-flight request keeps scoring against the snapshot it started
///    with.

namespace imcat {

/// Monotonic counters describing service activity (one consistent read).
struct RecServiceStats {
  int64_t accepted = 0;          ///< Requests admitted to the queue.
  int64_t shed = 0;              ///< Rejected kUnavailable: queue full.
  /// Rejected kUnavailable by the overload controller: queue sojourn above
  /// the CoDel target for a full interval, batch-priority arrival shed.
  int64_t shed_queue_delay = 0;
  /// Rejected kUnavailable by the overload controller: remaining deadline
  /// budget below the smoothed queue-wait estimate (at admission), or the
  /// deadline already expired in the queue (at dequeue) — either way the
  /// request is refused instead of scored-then-expired.
  int64_t shed_predicted_late = 0;
  /// Brownout ladder level changes (each step up or down counts one).
  int64_t brownout_transitions = 0;
  int64_t served_real = 0;       ///< Answered with real model scores.
  int64_t served_degraded = 0;   ///< Answered from the popularity fallback.
  /// Answered with real scores for healthy shards plus popularity backfill
  /// for quarantined item ranges (kPartialDegraded outcome).
  int64_t served_partial_degraded = 0;
  int64_t deadline_exceeded = 0; ///< Scoring passes cut off by deadline.
  int64_t invalid_requests = 0;  ///< Validation rejections.
  int64_t snapshot_reloads = 0;  ///< Successful snapshot (re)loads.
  int64_t snapshot_load_failures = 0;  ///< LoadSnapshot calls that gave up.
  /// Loads refused because the candidate's version was not strictly
  /// greater than the live snapshot's.
  int64_t rejected_publishes = 0;
  /// Times the staleness watchdog tripped (edge-triggered; resets on a
  /// successful publish).
  int64_t staleness_trips = 0;
  /// Successful delta publishes (LoadDelta applied and swapped in).
  int64_t delta_publishes = 0;
  /// Deltas refused with kFailedPrecondition: base-version mismatch
  /// (stale/out-of-order delta) or no live snapshot to chain onto.
  int64_t rejected_deltas = 0;
};

/// Service configuration.
struct RecServiceOptions {
  int64_t num_workers = 2;
  int64_t queue_capacity = 32;
  /// Request coalescing (DESIGN.md §12): a worker wakeup drains up to this
  /// many compatible queued requests — same (item_begin, item_end) range,
  /// FIFO prefix — and scores them through the multi-user batched kernel
  /// against one pinned snapshot and one brownout-ladder level. Per-request
  /// deadlines, exclusions, validation and the full response taxonomy are
  /// preserved per batch member; deadline-expired and predicted-late
  /// requests are still refused at dequeue, before scoring. 1 (the
  /// default) keeps the strict one-request-per-wakeup behaviour; 8 is a
  /// good starting point for throughput-bound deployments (see
  /// docs/PERFORMANCE.md for tuning).
  int64_t max_batch_size = 1;
  int64_t default_top_k = 20;
  /// Deadline applied when a request does not set one.
  double default_deadline_ms = 50.0;
  RecommenderOptions recommender;
  CircuitBreaker::Options breaker;
  /// Retry policy for LoadSnapshot (attempts, exponential envelope,
  /// jitter).
  BackoffOptions load_backoff;
  /// Loader policy for snapshot files (partial loads, per-shard re-reads).
  SnapshotLoadOptions snapshot_load;
  /// Adaptive overload control (overload.h). Disabled by default — the
  /// service then sheds only at queue-full, exactly the pre-controller
  /// behaviour. When `overload.enabled` is true and `overload.now_ms` is
  /// empty, the controller shares the service clock below.
  OverloadOptions overload;
  /// Bounded-staleness budget: when > 0 and the live snapshot was
  /// published more than this many milliseconds ago (repeated reload
  /// failures), requests are answered from the popularity fallback until a
  /// fresh snapshot publishes. 0 disables the watchdog.
  double max_snapshot_staleness_ms = 0.0;
  /// Monotonic millisecond clock shared by the breaker and deadline
  /// checks; empty uses steady_clock. Tests inject a fake clock.
  std::function<double()> now_ms;
  /// Sleeper for backoff delays; empty uses this_thread::sleep_for. Tests
  /// inject a no-op to keep retry loops instant.
  std::function<void(double)> sleep_ms;
  /// Optional instrumentation (DESIGN.md §9). When non-null the service
  /// maintains the `serve_*` request-accounting counters (which satisfy
  /// `serve_requests_total` == sum of the per-outcome counters once every
  /// submitted future has resolved), the `serve_request_latency_ms`
  /// histogram (Handle wall time; with coalescing on, each batch member
  /// records the batch's handling wall time) and `serve_queue_wait_ms`
  /// (measured per-request sojourn, the overload controller's input
  /// signal), the `serve_batch_size` histogram + `serve_batched_requests_
  /// total` counter (one sample per worker drain / one count per coalesced
  /// request, recorded only when max_batch_size > 1), the
  /// `serve_breaker_state` / `serve_brownout_level` gauges, and the
  /// snapshot reload counters. Null keeps the service uninstrumented.
  MetricsRegistry* metrics = nullptr;
  /// Optional run journal: snapshot (re)loads and circuit-breaker state
  /// transitions are appended as "snapshot_reload" / "breaker" events.
  RunJournal* journal = nullptr;
};

/// The serving front end. Thread-safe; owns its worker pool.
class RecService {
 public:
  /// `fallback` is the precomputed popularity ranking used in degraded
  /// mode; it must be non-null so the service can always answer.
  RecService(std::shared_ptr<const PopularityRanker> fallback,
             const RecServiceOptions& options);
  ~RecService();

  RecService(const RecService&) = delete;
  RecService& operator=(const RecService&) = delete;

  /// Loads (or hot-reloads) the serving snapshot from `path`, retrying
  /// with exponential backoff + jitter. On success the new snapshot is
  /// swapped in atomically (mid-flight requests keep the old one) and the
  /// breaker records a success; after the final failed attempt the breaker
  /// records a failure and the previous snapshot, if any, stays live.
  ///
  /// Version monotonicity: the candidate's version is the manifest's
  /// parent_version when assigned (> 0), otherwise the service's own
  /// monotonic counter. A candidate whose version is not strictly greater
  /// than the live snapshot's is refused with kFailedPrecondition (journal
  /// event "snapshot_rejected"; no breaker feedback — the file is intact,
  /// the publish is just stale).
  ///
  /// Self-healing: a sharded snapshot with quarantined shards publishes
  /// partially (healthy ranges serve normally); the next LoadSnapshot of a
  /// clean file replaces it wholesale, un-quarantining everything.
  Status LoadSnapshot(const std::string& path);

  /// Applies a delta snapshot file (shard_format.h, "IMD3") on top of the
  /// live snapshot and publishes the result atomically — requests see the
  /// old snapshot until the swap, then the new one; a delta is never
  /// half-applied.
  ///
  /// Refusals with kFailedPrecondition (journal event "delta_rejected",
  /// `serve_delta_rejected_total`; no breaker feedback, no retries — a
  /// stale delta cannot become fresh by retrying): no live snapshot to
  /// chain onto, or the delta's base_version does not match the live
  /// version (out-of-order / stale / duplicate delta).
  ///
  /// Corruption containment follows EmbeddingSnapshot::ApplyDelta: a
  /// corrupt changed shard keeps the base's old rows (stale — requests
  /// touching it are flagged partial_degraded) or quarantines when the
  /// base cannot cover it; a corrupt manifest or user table fails the
  /// publish after the load-backoff retries, the base stays live, and the
  /// breaker records the failure.
  Status LoadDelta(const std::string& path);

  /// Enqueues a request. Returns a future that is always eventually
  /// satisfied with a definite RecResponse; when the queue is full the
  /// future is ready immediately with kUnavailable (load shed).
  std::future<RecResponse> Submit(RecRequest request);

  /// Synchronous convenience wrapper around Submit.
  RecResponse Recommend(RecRequest request);

  /// Stops the workers; queued-but-unprocessed requests resolve to
  /// kUnavailable. Idempotent; also run by the destructor.
  void Shutdown();

  /// The currently published snapshot (may be null before the first
  /// successful load).
  std::shared_ptr<const EmbeddingSnapshot> snapshot() const;

  CircuitBreaker::State breaker_state() const { return breaker_.state(); }
  RecServiceStats stats() const;

  /// Current brownout ladder level (0 when the controller is disabled).
  int64_t brownout_level() const;
  /// True while the overload controller declares CoDel overload.
  bool overloaded() const;

  /// One-line JSON health report: breaker state, brownout ladder level,
  /// overload flag, smoothed queue-wait estimate, snapshot health
  /// (version, staleness, quarantined/stale shards), and the effective
  /// batch configuration (max_batch_size, kernel block_items). Wire it
  /// into MetricsScrapeServer::set_health_provider to serve `GET /healthz`.
  std::string HealthJson() const;

 private:
  struct Task {
    RecRequest request;
    std::promise<RecResponse> promise;
    /// now_ms_ reading when the request entered the work queue; the worker
    /// measures the sojourn against it (satellite of the overload layer:
    /// controller and client see the same number).
    double enqueue_ms = 0.0;
  };

  /// Full request handling; `queue_wait_ms` is the measured sojourn the
  /// worker computed from Task::enqueue_ms (threaded into the response and
  /// the deadline math).
  RecResponse Handle(const RecRequest& request, double queue_wait_ms);
  /// Handle minus the latency timer / response-field stamping:
  /// `brownout_level` is the ladder level read once at dequeue.
  RecResponse HandleScored(const RecRequest& request, double queue_wait_ms,
                           int64_t brownout_level);

  /// Everything HandleScored decides *before* scoring: validation,
  /// expired-in-queue refusal, staleness/degraded/brownout early-outs, and
  /// the scoring budgets. When `done` is set the response is final without
  /// touching the recommender (its outcome counters are already bumped);
  /// otherwise top_k / scoring_deadline_ms / max_scored_items parameterise
  /// the scoring call, scalar or batched.
  struct ScorePlan {
    bool done = false;
    RecResponse response;
    int64_t top_k = 0;
    double scoring_deadline_ms = 0.0;
    int64_t max_scored_items = 0;
  };
  ScorePlan PlanRequest(const RecRequest& request, double queue_wait_ms,
                        const std::shared_ptr<const EmbeddingSnapshot>& snap,
                        int64_t brownout_level);
  /// Everything HandleScored does *after* scoring: partial-degraded
  /// backfill, stale-range flagging, outcome counters and breaker
  /// feedback. Shared verbatim by the scalar and batched paths so one
  /// request's accounting is identical whichever path scored it.
  RecResponse FinishScored(const RecRequest& request,
                           const EmbeddingSnapshot& snap, int64_t top_k,
                           Status status, std::vector<ScoredItem> items,
                           int64_t quarantined_skipped);

  /// Coalescing worker body (max_batch_size > 1): pops a FIFO prefix of up
  /// to max_batch_size compatible requests (same item range) off
  /// batch_queue_ and scores them as one TopKBatch call. A wakeup whose
  /// request was already drained by an earlier wakeup is a no-op — there
  /// is one pool ticket per submitted request, so #queued requests never
  /// exceeds #outstanding tickets and shutdown resolves every future.
  void DrainAndProcess();
  /// Coalescing cancel path (pool shutdown): resolves one queued request
  /// to kUnavailable, mirroring the per-request cancel contract.
  void CancelOneQueued();
  void ProcessBatch(const std::vector<std::shared_ptr<Task>>& batch);
  /// Full-fallback response; when `item_end` > 0 the popularity ranking is
  /// restricted to [item_begin, item_end).
  RecResponse DegradedResponse(int64_t top_k,
                               const std::vector<int64_t>& exclude,
                               int64_t item_begin, int64_t item_end);

  RecServiceOptions options_;
  std::shared_ptr<const PopularityRanker> fallback_;
  Recommender recommender_;
  CircuitBreaker breaker_;
  /// Overload controller; null when options.overload.enabled is false.
  std::unique_ptr<OverloadController> overload_;
  std::function<double()> now_ms_;
  std::function<void(double)> sleep_ms_;

  /// The published snapshot, guarded by its own mutex. Readers copy the
  /// shared_ptr under the lock and then score lock-free against their
  /// copy, which stays alive across a concurrent hot swap. (A plain
  /// mutex instead of std::atomic<shared_ptr>: the libstdc++ lock-bit
  /// implementation is opaque to ThreadSanitizer, and the uncontended
  /// lock is negligible next to scoring.)
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const EmbeddingSnapshot> snapshot_;
  /// Atomically replaces the published snapshot.
  void PublishSnapshot(std::shared_ptr<const EmbeddingSnapshot> snapshot);

  std::mutex load_mu_;  ///< Serialises LoadSnapshot calls.
  std::atomic<int64_t> next_snapshot_version_{1};

  /// Staleness watchdog state: when the live snapshot was published
  /// (now_ms_ clock; negative = nothing published yet) and whether the
  /// watchdog already journalled the current trip (edge-triggering keeps a
  /// request storm from flooding the journal).
  std::atomic<double> last_publish_ms_{-1.0};
  std::atomic<bool> stale_tripped_{false};

  mutable std::mutex stats_mu_;
  RecServiceStats stats_;

  /// Request-accounting metric handles (all null when options.metrics is
  /// null). The exact-accounting identity, asserted by the chaos suite:
  ///   requests_total == ok + degraded + partial_degraded + shed
  ///                     + shed_queue_delay + shed_predicted_late
  ///                     + deadline_exceeded + invalid + error + cancelled
  /// once every submitted future has resolved.
  Counter* requests_total_ = nullptr;
  Counter* requests_ok_ = nullptr;
  Counter* requests_degraded_ = nullptr;
  Counter* requests_partial_degraded_ = nullptr;
  Counter* requests_shed_ = nullptr;
  Counter* requests_shed_queue_delay_ = nullptr;
  Counter* requests_shed_predicted_late_ = nullptr;
  Counter* requests_deadline_ = nullptr;
  Counter* requests_invalid_ = nullptr;
  Counter* requests_error_ = nullptr;
  Counter* requests_cancelled_ = nullptr;
  Counter* snapshot_reloads_total_ = nullptr;
  Counter* snapshot_load_failures_total_ = nullptr;
  Counter* snapshot_rejected_publishes_total_ = nullptr;
  Counter* snapshot_shards_quarantined_total_ = nullptr;
  Counter* staleness_trips_total_ = nullptr;
  Counter* breaker_transitions_total_ = nullptr;
  Counter* delta_publishes_total_ = nullptr;
  Counter* delta_rejected_total_ = nullptr;
  Counter* brownout_transitions_total_ = nullptr;
  Gauge* brownout_level_gauge_ = nullptr;
  Gauge* breaker_state_gauge_ = nullptr;
  Gauge* quarantined_shards_gauge_ = nullptr;
  Gauge* staleness_ms_gauge_ = nullptr;
  Gauge* stale_shards_gauge_ = nullptr;
  Gauge* delta_lag_ms_gauge_ = nullptr;
  Histogram* request_latency_ms_ = nullptr;
  /// Measured per-request queue sojourn (the controller's input signal),
  /// recorded for every dequeued request whether or not the controller is
  /// enabled.
  Histogram* queue_wait_ms_ = nullptr;
  /// Coalescing instrumentation (recorded only when max_batch_size > 1):
  /// one serve_batch_size sample per worker drain, one
  /// serve_batched_requests_total count per request scored via a drain.
  Histogram* batch_size_ = nullptr;
  Counter* batched_requests_total_ = nullptr;
  RunJournal* journal_ = nullptr;

  /// Records a delta refusal (stats + counter + "delta_rejected" journal).
  void RecordDeltaRejected(const std::string& path, int64_t live_version,
                           int64_t base_version, const std::string& reason);

  /// When >= 0, the now_ms_ time of the last successful delta publish;
  /// `serve_snapshot_delta_lag_ms` measures against it on every request so
  /// a scraper sees delta lag grow live while publishes fail.
  std::atomic<double> last_delta_publish_ms_{-1.0};

  /// Coalescing queue (used only when max_batch_size > 1). Each Submit
  /// pushes its task here and enqueues one lightweight drain ticket on the
  /// pool; a running ticket drains a compatible FIFO prefix. Declared
  /// before pool_ so it outlives the pool's shutdown cancellations.
  std::mutex batch_mu_;
  std::deque<std::shared_ptr<Task>> batch_queue_;

  /// Workers + bounded queue + shutdown contract. Declared last so the
  /// pool (and with it every in-flight Handle referencing this service)
  /// is torn down before any other member.
  ThreadPool pool_;
};

}  // namespace imcat

#endif  // IMCAT_SERVE_REC_SERVICE_H_
