#include "serve/recommender.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>

#include "util/check.h"
#include "util/fault_injector.h"

namespace imcat {

double SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Recommender::Recommender(const RecommenderOptions& options)
    : block_items_(options.block_items),
      now_ms_(options.now_ms ? options.now_ms : SteadyNowMs) {
  IMCAT_CHECK(block_items_ > 0);
}

Status Recommender::TopK(const EmbeddingSnapshot& snapshot, int64_t user,
                         int64_t k, double deadline_ms,
                         const std::vector<int64_t>& exclude,
                         std::vector<ScoredItem>* out) const {
  return TopK(snapshot, user, k, deadline_ms, exclude, /*item_begin=*/0,
              /*item_end=*/0, out, /*quarantined_skipped=*/nullptr);
}

Status Recommender::TopK(const EmbeddingSnapshot& snapshot, int64_t user,
                         int64_t k, double deadline_ms,
                         const std::vector<int64_t>& exclude,
                         int64_t item_begin, int64_t item_end,
                         std::vector<ScoredItem>* out,
                         int64_t* quarantined_skipped,
                         int64_t max_items) const {
  out->clear();
  if (quarantined_skipped != nullptr) *quarantined_skipped = 0;
  IMCAT_RETURN_IF_ERROR(snapshot.ValidateUser(user));
  if (k <= 0) {
    return Status::InvalidArgument("top_k must be positive, got " +
                                   std::to_string(k));
  }
  if (item_end == 0 && item_begin == 0) item_end = snapshot.num_items();
  if (item_begin < 0 || item_end <= item_begin ||
      item_end > snapshot.num_items()) {
    return Status::InvalidArgument(
        "item range [" + std::to_string(item_begin) + ", " +
        std::to_string(item_end) + ") invalid for catalogue of " +
        std::to_string(snapshot.num_items()) + " items");
  }
  if (max_items > 0) {
    // Brownout scoring budget: truncate the scan to a prefix of the range
    // (validation above still ran against the caller's full range).
    item_end = std::min(item_end, item_begin + max_items);
  }
  const double start_ms = now_ms_();
  const std::unordered_set<int64_t> excluded(exclude.begin(), exclude.end());
  const int64_t num_items = item_end;

  // Per-item availability checks only cost anything when the snapshot
  // actually has quarantined shards overlapping the requested range.
  bool check_quarantine = false;
  if (snapshot.quarantined_count() > 0) {
    const int64_t first = snapshot.shard_of_item(item_begin);
    const int64_t last = snapshot.shard_of_item(item_end - 1);
    for (int64_t s = first; s <= last && !check_quarantine; ++s) {
      check_quarantine = snapshot.shard_quarantined(s);
    }
  }
  int64_t skipped = 0;

  // Partial top-k: a min-heap of the best k seen so far (heap top = the
  // current cutoff). `better` is the ranking order (score desc, id asc);
  // used as the heap's "less-than" it keeps the worst kept item on top.
  std::vector<ScoredItem> heap;
  heap.reserve(static_cast<size_t>(std::min(k, num_items - item_begin)));
  const auto better = [](const ScoredItem& a, const ScoredItem& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.item < b.item;
  };

  for (int64_t begin = item_begin; begin < num_items; begin += block_items_) {
    if (begin > item_begin) {
      // Deadline checkpoint between scoring blocks. The injected
      // forced-slow fault burns budget here, exactly where a production
      // stall (page fault storm, NUMA misplacement) would.
      FaultInjector& injector = FaultInjector::Instance();
      if (injector.enabled()) {
        const double slow_ms = injector.ConsumeSlowOp();
        if (slow_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(slow_ms));
        }
      }
      if (deadline_ms > 0.0 && now_ms_() - start_ms > deadline_ms) {
        return Status::DeadlineExceeded(
            "top-k scoring exceeded " + std::to_string(deadline_ms) +
            " ms after " + std::to_string(begin - item_begin) + "/" +
            std::to_string(num_items - item_begin) + " items");
      }
    }
    const int64_t end = std::min(begin + block_items_, num_items);
    for (int64_t item = begin; item < end; ++item) {
      if (excluded.count(item) != 0) continue;
      if (check_quarantine && !snapshot.item_available(item)) {
        ++skipped;
        continue;
      }
      const ScoredItem candidate{item, snapshot.Score(user, item)};
      if (static_cast<int64_t>(heap.size()) < k) {
        heap.push_back(candidate);
        std::push_heap(heap.begin(), heap.end(), better);
      } else if (better(candidate, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), better);
        heap.back() = candidate;
        std::push_heap(heap.begin(), heap.end(), better);
      }
    }
  }
  // Ascending under `better` = best first.
  std::sort_heap(heap.begin(), heap.end(), better);
  *out = std::move(heap);
  if (quarantined_skipped != nullptr) *quarantined_skipped = skipped;
  return Status::OK();
}

}  // namespace imcat
