#include "serve/recommender.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>

#include "tensor/score_kernel.h"
#include "util/check.h"
#include "util/fault_injector.h"

namespace imcat {

namespace {

/// The ranking order (score desc, id asc); used as a heap "less-than" it
/// keeps the worst kept item on top. A strict total order: the top-k *set*
/// it selects is independent of candidate arrival order, which is what
/// lets the batched path reuse the scalar path's heaps unchanged.
bool Better(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

}  // namespace

double SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Recommender::Recommender(const RecommenderOptions& options)
    : block_items_(options.block_items),
      now_ms_(options.now_ms ? options.now_ms : SteadyNowMs) {
  IMCAT_CHECK(block_items_ > 0);
}

Status Recommender::TopK(const EmbeddingSnapshot& snapshot, int64_t user,
                         int64_t k, double deadline_ms,
                         const std::vector<int64_t>& exclude,
                         std::vector<ScoredItem>* out) const {
  return TopK(snapshot, user, k, deadline_ms, exclude, /*item_begin=*/0,
              /*item_end=*/0, out, /*quarantined_skipped=*/nullptr);
}

Status Recommender::TopK(const EmbeddingSnapshot& snapshot, int64_t user,
                         int64_t k, double deadline_ms,
                         const std::vector<int64_t>& exclude,
                         int64_t item_begin, int64_t item_end,
                         std::vector<ScoredItem>* out,
                         int64_t* quarantined_skipped,
                         int64_t max_items) const {
  out->clear();
  if (quarantined_skipped != nullptr) *quarantined_skipped = 0;
  BatchQuery query;
  query.user = user;
  query.k = k;
  query.deadline_ms = deadline_ms;
  query.exclude = &exclude;
  BatchQueryResult result;
  const Status batch_status = TopKBatchImpl(snapshot, &query, 1, item_begin,
                                            item_end, max_items, &result);
  // Per-query validation (user, then k) outranks the range check, matching
  // the historical scalar precedence.
  if (!result.status.ok()) return std::move(result.status);
  if (!batch_status.ok()) return batch_status;
  *out = std::move(result.items);
  if (quarantined_skipped != nullptr) {
    *quarantined_skipped = result.quarantined_skipped;
  }
  return Status::OK();
}

Status Recommender::TopKBatch(const EmbeddingSnapshot& snapshot,
                              const std::vector<BatchQuery>& queries,
                              int64_t item_begin, int64_t item_end,
                              int64_t max_items,
                              std::vector<BatchQueryResult>* results) const {
  results->clear();
  results->resize(queries.size());
  if (queries.empty()) return Status::OK();
  return TopKBatchImpl(snapshot, queries.data(),
                       static_cast<int64_t>(queries.size()), item_begin,
                       item_end, max_items, results->data());
}

Status Recommender::TopKBatchImpl(const EmbeddingSnapshot& snapshot,
                                  const BatchQuery* queries,
                                  int64_t num_queries, int64_t item_begin,
                                  int64_t item_end, int64_t max_items,
                                  BatchQueryResult* results) const {
  static const std::vector<int64_t> kNoExclusions;

  // Per-query state for the queries that passed validation and have not
  // yet finished (completed queries leave `live` when their deadline
  // expires; everyone else runs to the end of the range).
  struct ActiveQuery {
    int64_t index;  // Position in `queries` / `results`.
    std::unordered_set<int64_t> excluded;
    std::vector<ScoredItem> heap;
    int64_t skipped = 0;
  };

  // Per-query validation first: a bad user or k poisons only that query.
  bool any_active = false;
  for (int64_t i = 0; i < num_queries; ++i) {
    results[i] = BatchQueryResult();
    Status valid = snapshot.ValidateUser(queries[i].user);
    if (valid.ok() && queries[i].k <= 0) {
      valid = Status::InvalidArgument("top_k must be positive, got " +
                                      std::to_string(queries[i].k));
    }
    results[i].status = std::move(valid);
    any_active = any_active || results[i].status.ok();
  }
  // The shared range check: a malformed range fails the whole batch.
  if (item_end == 0 && item_begin == 0) item_end = snapshot.num_items();
  if (item_begin < 0 || item_end <= item_begin ||
      item_end > snapshot.num_items()) {
    return Status::InvalidArgument(
        "item range [" + std::to_string(item_begin) + ", " +
        std::to_string(item_end) + ") invalid for catalogue of " +
        std::to_string(snapshot.num_items()) + " items");
  }
  if (max_items > 0) {
    // Brownout scoring budget: truncate the scan to a prefix of the range
    // (validation above still ran against the caller's full range).
    item_end = std::min(item_end, item_begin + max_items);
  }
  if (!any_active) return Status::OK();

  const double start_ms = now_ms_();
  const int64_t num_items = item_end;

  std::vector<ActiveQuery> active;
  active.reserve(static_cast<size_t>(num_queries));
  for (int64_t i = 0; i < num_queries; ++i) {
    if (!results[i].status.ok()) continue;
    active.emplace_back();
    ActiveQuery& q = active.back();
    q.index = i;
    const std::vector<int64_t>& exclude =
        queries[i].exclude != nullptr ? *queries[i].exclude : kNoExclusions;
    q.excluded.insert(exclude.begin(), exclude.end());
    q.heap.reserve(static_cast<size_t>(
        std::min(queries[i].k, num_items - item_begin)));
  }

  // Per-item availability checks only cost anything when the snapshot
  // actually has quarantined shards overlapping the requested range.
  bool check_quarantine = false;
  if (snapshot.quarantined_count() > 0) {
    const int64_t first = snapshot.shard_of_item(item_begin);
    const int64_t last = snapshot.shard_of_item(item_end - 1);
    for (int64_t s = first; s <= last && !check_quarantine; ++s) {
      check_quarantine = snapshot.shard_quarantined(s);
    }
  }

  // `live[r]` indexes into `active`; score-buffer row r belongs to it.
  // Row pointers are rebuilt only when the live set changes (a deadline
  // expiry), not per block.
  std::vector<size_t> live(active.size());
  for (size_t r = 0; r < live.size(); ++r) live[r] = r;
  std::vector<const float*> user_rows;
  bool rows_dirty = true;
  std::vector<float> scores(live.size() * static_cast<size_t>(block_items_));

  for (int64_t begin = item_begin; begin < num_items; begin += block_items_) {
    if (begin > item_begin) {
      // Deadline checkpoint between scoring blocks. The injected
      // forced-slow fault burns budget here, exactly where a production
      // stall (page fault storm, NUMA misplacement) would — once per
      // block boundary for the whole batch, the same as one scalar pass.
      FaultInjector& injector = FaultInjector::Instance();
      if (injector.enabled()) {
        const double slow_ms = injector.ConsumeSlowOp();
        if (slow_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(slow_ms));
        }
      }
      // One clock read per boundary, shared by every live query — the
      // same read sequence as a scalar pass, so fake-clock tests see
      // identical timings at batch size 1.
      bool any_deadline = false;
      for (size_t r : live) {
        any_deadline = any_deadline || queries[active[r].index].deadline_ms > 0.0;
      }
      if (any_deadline) {
        const double elapsed_ms = now_ms_() - start_ms;
        for (size_t r = 0; r < live.size();) {
          ActiveQuery& q = active[live[r]];
          const double deadline_ms = queries[q.index].deadline_ms;
          if (deadline_ms > 0.0 && elapsed_ms > deadline_ms) {
            results[q.index].status = Status::DeadlineExceeded(
                "top-k scoring exceeded " + std::to_string(deadline_ms) +
                " ms after " + std::to_string(begin - item_begin) + "/" +
                std::to_string(num_items - item_begin) + " items");
            live.erase(live.begin() + static_cast<int64_t>(r));
            rows_dirty = true;
          } else {
            ++r;
          }
        }
        if (live.empty()) break;
      }
    }
    if (rows_dirty) {
      user_rows.resize(live.size());
      for (size_t r = 0; r < live.size(); ++r) {
        user_rows[r] = snapshot.user(queries[active[live[r]].index].user);
      }
      rows_dirty = false;
    }
    const int64_t end = std::min(begin + block_items_, num_items);
    // The blocked kernel: this item block streams through cache once for
    // the whole batch. Excluded/quarantined items are scored too and
    // discarded during selection below — branchless scoring keeps the
    // inner loop tight, and a discarded score cannot change the selected
    // set (the ranking order is a strict total order).
    ScoreBlock(user_rows.data(), static_cast<int64_t>(live.size()),
               snapshot.item(begin), end - begin, snapshot.dim(),
               scores.data(), block_items_);
    for (size_t r = 0; r < live.size(); ++r) {
      ActiveQuery& q = active[live[r]];
      const int64_t k = queries[q.index].k;
      const float* row = scores.data() + r * static_cast<size_t>(block_items_);
      for (int64_t item = begin; item < end; ++item) {
        if (q.excluded.count(item) != 0) continue;
        if (check_quarantine && !snapshot.item_available(item)) {
          ++q.skipped;
          continue;
        }
        const ScoredItem candidate{item, row[item - begin]};
        if (static_cast<int64_t>(q.heap.size()) < k) {
          q.heap.push_back(candidate);
          std::push_heap(q.heap.begin(), q.heap.end(), Better);
        } else if (Better(candidate, q.heap.front())) {
          std::pop_heap(q.heap.begin(), q.heap.end(), Better);
          q.heap.back() = candidate;
          std::push_heap(q.heap.begin(), q.heap.end(), Better);
        }
      }
    }
  }
  for (size_t r : live) {
    ActiveQuery& q = active[r];
    // Ascending under Better = best first.
    std::sort_heap(q.heap.begin(), q.heap.end(), Better);
    results[q.index].items = std::move(q.heap);
    results[q.index].quarantined_skipped = q.skipped;
  }
  return Status::OK();
}

}  // namespace imcat
