#include "serve/recommender.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>

#include "util/check.h"
#include "util/fault_injector.h"

namespace imcat {

double SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Recommender::Recommender(const RecommenderOptions& options)
    : block_items_(options.block_items),
      now_ms_(options.now_ms ? options.now_ms : SteadyNowMs) {
  IMCAT_CHECK(block_items_ > 0);
}

Status Recommender::TopK(const EmbeddingSnapshot& snapshot, int64_t user,
                         int64_t k, double deadline_ms,
                         const std::vector<int64_t>& exclude,
                         std::vector<ScoredItem>* out) const {
  out->clear();
  if (user < 0 || user >= snapshot.num_users()) {
    return Status::InvalidArgument("user id " + std::to_string(user) +
                                   " out of range [0, " +
                                   std::to_string(snapshot.num_users()) + ")");
  }
  if (k <= 0) {
    return Status::InvalidArgument("top_k must be positive, got " +
                                   std::to_string(k));
  }
  const double start_ms = now_ms_();
  const std::unordered_set<int64_t> excluded(exclude.begin(), exclude.end());
  const int64_t num_items = snapshot.num_items();

  // Partial top-k: a min-heap of the best k seen so far (heap top = the
  // current cutoff). `better` is the ranking order (score desc, id asc);
  // used as the heap's "less-than" it keeps the worst kept item on top.
  std::vector<ScoredItem> heap;
  heap.reserve(static_cast<size_t>(std::min(k, num_items)));
  const auto better = [](const ScoredItem& a, const ScoredItem& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.item < b.item;
  };

  for (int64_t begin = 0; begin < num_items; begin += block_items_) {
    if (begin > 0) {
      // Deadline checkpoint between scoring blocks. The injected
      // forced-slow fault burns budget here, exactly where a production
      // stall (page fault storm, NUMA misplacement) would.
      FaultInjector& injector = FaultInjector::Instance();
      if (injector.enabled()) {
        const double slow_ms = injector.ConsumeSlowOp();
        if (slow_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(slow_ms));
        }
      }
      if (deadline_ms > 0.0 && now_ms_() - start_ms > deadline_ms) {
        return Status::DeadlineExceeded(
            "top-k scoring exceeded " + std::to_string(deadline_ms) +
            " ms after " + std::to_string(begin) + "/" +
            std::to_string(num_items) + " items");
      }
    }
    const int64_t end = std::min(begin + block_items_, num_items);
    for (int64_t item = begin; item < end; ++item) {
      if (excluded.count(item) != 0) continue;
      const ScoredItem candidate{item, snapshot.Score(user, item)};
      if (static_cast<int64_t>(heap.size()) < k) {
        heap.push_back(candidate);
        std::push_heap(heap.begin(), heap.end(), better);
      } else if (better(candidate, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), better);
        heap.back() = candidate;
        std::push_heap(heap.begin(), heap.end(), better);
      }
    }
  }
  // Ascending under `better` = best first.
  std::sort_heap(heap.begin(), heap.end(), better);
  *out = std::move(heap);
  return Status::OK();
}

}  // namespace imcat
