#ifndef IMCAT_SERVE_RECOMMENDER_H_
#define IMCAT_SERVE_RECOMMENDER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "serve/snapshot.h"
#include "serve/types.h"
#include "util/status.h"

/// \file recommender.h
/// Deadline-aware top-k scoring over an EmbeddingSnapshot: the full item
/// catalogue is scored in fixed-size blocks with the per-request deadline
/// budget checked between blocks, so a slow or stalled scoring pass
/// surfaces as a clean kDeadlineExceeded instead of a hung request.

namespace imcat {

/// Scoring configuration. The defaults suit catalogues up to a few million
/// items; shrink `block_items` for tighter deadline granularity.
struct RecommenderOptions {
  /// Items scored between two deadline checks.
  int64_t block_items = 1024;
  /// Monotonic clock in milliseconds; overridable for deterministic tests.
  /// Defaults to std::chrono::steady_clock.
  std::function<double()> now_ms;
};

/// Returns the default steady-clock millisecond reading (exposed so the
/// service and breaker share one clock source).
double SteadyNowMs();

/// Stateless scoring engine; thread-safe (all state is per-call).
class Recommender {
 public:
  explicit Recommender(const RecommenderOptions& options = {});

  /// Scores every item of `snapshot` for `user` and fills `out` with the
  /// top `k` by inner product (score desc, item id asc), skipping ids in
  /// `exclude`. `deadline_ms` is the total budget from call entry; spent
  /// budget is checked between scoring blocks and exceeding it returns
  /// kDeadlineExceeded with `out` empty. A non-positive deadline means no
  /// limit. `user` must be in range (the service validates ahead of time;
  /// out-of-range ids here are a clean kInvalidArgument, never UB).
  Status TopK(const EmbeddingSnapshot& snapshot, int64_t user, int64_t k,
              double deadline_ms, const std::vector<int64_t>& exclude,
              std::vector<ScoredItem>* out) const;

  /// Range- and quarantine-aware variant: ranks only items in
  /// [item_begin, item_end) (item_end == 0 means the full catalogue) and
  /// skips items whose snapshot shard is quarantined — their rows are
  /// zero-filled placeholders, not scores. The number of in-range items
  /// skipped that way is reported through `quarantined_skipped` (may be
  /// null); when it is non-zero the caller should backfill from the
  /// popularity ranking and mark the response partially degraded. A
  /// malformed range is kInvalidArgument.
  ///
  /// `max_items` caps how many in-range items are scored (a brownout
  /// scoring budget): a positive value truncates the scan to the first
  /// `max_items` ids of the range, trading ranking coverage for a
  /// proportionally cheaper pass. 0 (the default) scores the whole range.
  Status TopK(const EmbeddingSnapshot& snapshot, int64_t user, int64_t k,
              double deadline_ms, const std::vector<int64_t>& exclude,
              int64_t item_begin, int64_t item_end,
              std::vector<ScoredItem>* out, int64_t* quarantined_skipped,
              int64_t max_items = 0) const;

 private:
  int64_t block_items_;
  std::function<double()> now_ms_;
};

}  // namespace imcat

#endif  // IMCAT_SERVE_RECOMMENDER_H_
