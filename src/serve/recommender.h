#ifndef IMCAT_SERVE_RECOMMENDER_H_
#define IMCAT_SERVE_RECOMMENDER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "serve/snapshot.h"
#include "serve/types.h"
#include "util/status.h"

/// \file recommender.h
/// Deadline-aware top-k scoring over an EmbeddingSnapshot: the full item
/// catalogue is scored in fixed-size blocks with the per-request deadline
/// budget checked between blocks, so a slow or stalled scoring pass
/// surfaces as a clean kDeadlineExceeded instead of a hung request. A
/// batch entry point (TopKBatch) scores many users against each resident
/// item block before moving on, so the item table streams through cache
/// once per batch instead of once per user (DESIGN.md §12).

namespace imcat {

/// Scoring configuration. The defaults suit catalogues up to a few million
/// items.
struct RecommenderOptions {
  /// Items scored between two deadline checks — and the item-block tile of
  /// the batched kernel: each block of item factors stays cache-resident
  /// while every user of a batch scores against it, so `block_items * dim`
  /// floats should fit comfortably in L2 alongside the batch's score
  /// buffer. Smaller blocks give tighter deadline granularity (and faster
  /// brownout/deadline reaction mid-request); larger blocks amortise the
  /// per-block bookkeeping better. The default suits dims up to a few
  /// hundred.
  int64_t block_items = 1024;
  /// Monotonic clock in milliseconds; overridable for deterministic tests.
  /// Defaults to std::chrono::steady_clock.
  std::function<double()> now_ms;
};

/// Returns the default steady-clock millisecond reading (exposed so the
/// service and breaker share one clock source).
double SteadyNowMs();

/// Stateless scoring engine; thread-safe (all state is per-call).
class Recommender {
 public:
  /// One user's query within a TopKBatch call. All queries of a batch
  /// share the item range; deadline and exclusions are per query.
  struct BatchQuery {
    int64_t user = 0;
    int64_t k = 0;
    /// Total budget from TopKBatch entry; checked between scoring blocks.
    /// Non-positive = no limit.
    double deadline_ms = 0.0;
    /// Item ids excluded from this user's ranking (may be null = none).
    const std::vector<int64_t>* exclude = nullptr;
  };

  /// Per-query outcome of a TopKBatch call.
  struct BatchQueryResult {
    /// kInvalidArgument (bad user/k), kDeadlineExceeded (this query's
    /// budget ran out between blocks; `items` empty), or OK.
    Status status;
    std::vector<ScoredItem> items;
    /// In-range items skipped because their shard is quarantined (0 when
    /// the query did not finish).
    int64_t quarantined_skipped = 0;
  };

  explicit Recommender(const RecommenderOptions& options = {});

  /// Scores every item of `snapshot` for `user` and fills `out` with the
  /// top `k` by inner product (score desc, item id asc), skipping ids in
  /// `exclude`. `deadline_ms` is the total budget from call entry; spent
  /// budget is checked between scoring blocks and exceeding it returns
  /// kDeadlineExceeded with `out` empty. A non-positive deadline means no
  /// limit. `user` must be in range (the service validates ahead of time;
  /// out-of-range ids here are a clean kInvalidArgument, never UB).
  Status TopK(const EmbeddingSnapshot& snapshot, int64_t user, int64_t k,
              double deadline_ms, const std::vector<int64_t>& exclude,
              std::vector<ScoredItem>* out) const;

  /// Range- and quarantine-aware variant: ranks only items in
  /// [item_begin, item_end) (item_end == 0 means the full catalogue) and
  /// skips items whose snapshot shard is quarantined — their rows are
  /// zero-filled placeholders, not scores. The number of in-range items
  /// skipped that way is reported through `quarantined_skipped` (may be
  /// null); when it is non-zero the caller should backfill from the
  /// popularity ranking and mark the response partially degraded. A
  /// malformed range is kInvalidArgument.
  ///
  /// `max_items` caps how many in-range items are scored (a brownout
  /// scoring budget): a positive value truncates the scan to the first
  /// `max_items` ids of the range, trading ranking coverage for a
  /// proportionally cheaper pass. 0 (the default) scores the whole range.
  Status TopK(const EmbeddingSnapshot& snapshot, int64_t user, int64_t k,
              double deadline_ms, const std::vector<int64_t>& exclude,
              int64_t item_begin, int64_t item_end,
              std::vector<ScoredItem>* out, int64_t* quarantined_skipped,
              int64_t max_items = 0) const;

  /// Multi-user batch: scores all of `queries` over the shared item range
  /// in one blocked pass — each item block streams through cache once for
  /// the whole batch. Results land in `results` (resized to match
  /// `queries`, index-aligned). Per-query validation failures (bad user,
  /// non-positive k) land in that query's result status; the returned
  /// batch status is kInvalidArgument for a malformed range (all results
  /// then carry empty items) and OK otherwise.
  ///
  /// Semantics per query are identical to the scalar TopK above —
  /// bit-identical scores, the same (score desc, id asc) order, the same
  /// quarantine skip counts, and per-query deadlines still checked at
  /// every block boundary (an expired query drops out of the batch with
  /// kDeadlineExceeded while the others keep scoring). `max_items`
  /// applies to the shared range, as in the scalar variant.
  Status TopKBatch(const EmbeddingSnapshot& snapshot,
                   const std::vector<BatchQuery>& queries, int64_t item_begin,
                   int64_t item_end, int64_t max_items,
                   std::vector<BatchQueryResult>* results) const;

  int64_t block_items() const { return block_items_; }

 private:
  Status TopKBatchImpl(const EmbeddingSnapshot& snapshot,
                       const BatchQuery* queries, int64_t num_queries,
                       int64_t item_begin, int64_t item_end,
                       int64_t max_items, BatchQueryResult* results) const;

  int64_t block_items_;
  std::function<double()> now_ms_;
};

}  // namespace imcat

#endif  // IMCAT_SERVE_RECOMMENDER_H_
