#include "serve/shard_format.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/atomic_file.h"
#include "util/check.h"
#include "util/checksum.h"
#include "util/fault_injector.h"

namespace imcat {

namespace {

constexpr char kShardMagic[4] = {'I', 'M', 'S', '3'};
constexpr uint32_t kShardVersion = 3;

/// Fixed manifest sizes (see the layout in shard_format.h).
constexpr int64_t kHeaderBytes = 4 + 4 + 6 * 8;   // magic..num_item_shards.
constexpr int64_t kUserEntryBytes = 3 * 8;        // offset, size, checksum.
constexpr int64_t kShardEntryBytes = 5 * 8;       // begin..checksum.
constexpr int64_t kChecksumBytes = 8;

/// Upper bound on any single dimension read from an untrusted manifest;
/// generous for real catalogues, small enough that products of two bounded
/// values cannot overflow int64 (2^40 * 2^40 >> int64, so products are
/// checked by division below).
constexpr int64_t kMaxDimension = int64_t{1} << 40;

int64_t ManifestBytes(int64_t num_item_shards) {
  return kHeaderBytes + kUserEntryBytes + num_item_shards * kShardEntryBytes +
         kChecksumBytes;
}

template <typename T>
void HashValue(Fnv1a* hash, T value) {
  hash->Update(&value, sizeof(value));
}

template <typename T>
Status WriteValue(AtomicFileWriter* out, Fnv1a* hash, T value) {
  hash->Update(&value, sizeof(value));
  return out->Write(&value, sizeof(value));
}

/// Positioned reads with the FaultInjector read hooks applied (read-side
/// bit flips, short reads), mirroring the checkpoint Reader but seekable so
/// shards can be re-read on checksum mismatch.
class ShardFileReader {
 public:
  Status Open(const std::string& path) {
    path_ = path;
    in_.open(path, std::ios::binary | std::ios::ate);
    if (!in_.is_open()) return Status::IoError("cannot open " + path);
    file_size_ = static_cast<int64_t>(in_.tellg());
    return Status::OK();
  }

  const std::string& path() const { return path_; }
  int64_t file_size() const { return file_size_; }

  /// Reads exactly `size` bytes at absolute offset `offset`. Truncation —
  /// real (past EOF) or injected (short read) — is kDataLoss.
  Status ReadAt(int64_t offset, void* out, size_t size) {
    if (offset < 0 || offset + static_cast<int64_t>(size) > file_size_) {
      return Status::DataLoss(path_ + ": truncated sharded snapshot");
    }
    FaultInjector& injector = FaultInjector::Instance();
    if (injector.enabled() &&
        injector.FilterReadLength(offset, size) < size) {
      return Status::DataLoss(path_ + ": short read in sharded snapshot");
    }
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(offset), std::ios::beg);
    in_.read(static_cast<char*>(out), static_cast<std::streamsize>(size));
    if (!in_.good()) {
      return Status::DataLoss(path_ + ": truncated sharded snapshot");
    }
    // Injected read-side corruption: the on-disk file stays intact; the
    // caller checksums what the reader actually saw.
    if (injector.enabled()) {
      injector.FilterRead(offset, static_cast<unsigned char*>(out), size);
    }
    return Status::OK();
  }

 private:
  std::string path_;
  std::ifstream in_;
  int64_t file_size_ = 0;
};

/// Sequential manifest cursor over a ShardFileReader: tracks the position
/// and the running FNV-1a over every byte read.
class ManifestCursor {
 public:
  explicit ManifestCursor(ShardFileReader* reader) : reader_(reader) {}

  Status ReadBytes(void* out, size_t size) {
    IMCAT_RETURN_IF_ERROR(reader_->ReadAt(pos_, out, size));
    hash_.Update(out, size);
    pos_ += static_cast<int64_t>(size);
    return Status::OK();
  }

  template <typename T>
  Status Read(T* value) {
    return ReadBytes(value, sizeof(*value));
  }

  int64_t position() const { return pos_; }
  uint64_t checksum() const { return hash_.value(); }

 private:
  ShardFileReader* reader_;
  Fnv1a hash_;
  int64_t pos_ = 0;
};

Status ReadEntry(ManifestCursor* cursor, bool with_range, ShardEntry* entry) {
  if (with_range) {
    IMCAT_RETURN_IF_ERROR(cursor->Read(&entry->begin));
    IMCAT_RETURN_IF_ERROR(cursor->Read(&entry->end));
  }
  IMCAT_RETURN_IF_ERROR(cursor->Read(&entry->byte_offset));
  IMCAT_RETURN_IF_ERROR(cursor->Read(&entry->byte_size));
  return cursor->Read(&entry->checksum);
}

/// Reads and validates the manifest: magic, version, geometry, entry
/// layout and the manifest checksum. Nothing of the payload is trusted
/// (or touched) here.
Status ReadManifest(ShardFileReader* reader, ShardManifest* manifest) {
  ManifestCursor cursor(reader);
  char magic[4];
  Status magic_status = cursor.ReadBytes(magic, sizeof(magic));
  if (!magic_status.ok() ||
      std::memcmp(magic, kShardMagic, sizeof(kShardMagic)) != 0) {
    return Status::InvalidArgument(reader->path() +
                                   ": not a sharded IMCAT snapshot");
  }
  uint32_t version = 0;
  IMCAT_RETURN_IF_ERROR(cursor.Read(&version));
  if (version != kShardVersion) {
    return Status::InvalidArgument(
        reader->path() + ": unsupported sharded snapshot version " +
        std::to_string(version));
  }
  int64_t num_item_shards = 0;
  IMCAT_RETURN_IF_ERROR(cursor.Read(&manifest->num_users));
  IMCAT_RETURN_IF_ERROR(cursor.Read(&manifest->num_items));
  IMCAT_RETURN_IF_ERROR(cursor.Read(&manifest->dim));
  IMCAT_RETURN_IF_ERROR(cursor.Read(&manifest->parent_version));
  IMCAT_RETURN_IF_ERROR(cursor.Read(&manifest->items_per_shard));
  IMCAT_RETURN_IF_ERROR(cursor.Read(&num_item_shards));

  // Geometry sanity before any allocation: a bit-flipped count must fail
  // cleanly here (or at the checksum), never as bad_alloc.
  const auto bounded = [](int64_t v) { return v > 0 && v < kMaxDimension; };
  if (!bounded(manifest->num_users) || !bounded(manifest->num_items) ||
      !bounded(manifest->dim) || !bounded(manifest->items_per_shard) ||
      manifest->parent_version < 0 || num_item_shards <= 0) {
    return Status::DataLoss(reader->path() +
                            ": sharded snapshot manifest geometry corrupt");
  }
  const int64_t expected_shards =
      (manifest->num_items + manifest->items_per_shard - 1) /
      manifest->items_per_shard;
  if (num_item_shards != expected_shards ||
      ManifestBytes(num_item_shards) > reader->file_size()) {
    return Status::DataLoss(reader->path() +
                            ": sharded snapshot manifest geometry corrupt");
  }
  const int64_t row_bytes = manifest->dim * static_cast<int64_t>(sizeof(float));
  const int64_t payload_start = ManifestBytes(num_item_shards);

  IMCAT_RETURN_IF_ERROR(ReadEntry(&cursor, /*with_range=*/false,
                                  &manifest->user_table));
  manifest->user_table.begin = 0;
  manifest->user_table.end = manifest->num_users;
  if (manifest->user_table.byte_offset != payload_start ||
      manifest->user_table.byte_size != manifest->num_users * row_bytes) {
    return Status::DataLoss(reader->path() +
                            ": sharded snapshot user-table entry corrupt");
  }

  manifest->item_shards.resize(static_cast<size_t>(num_item_shards));
  int64_t expected_offset =
      manifest->user_table.byte_offset + manifest->user_table.byte_size;
  for (int64_t i = 0; i < num_item_shards; ++i) {
    ShardEntry& entry = manifest->item_shards[static_cast<size_t>(i)];
    IMCAT_RETURN_IF_ERROR(ReadEntry(&cursor, /*with_range=*/true, &entry));
    const int64_t begin = i * manifest->items_per_shard;
    const int64_t end =
        std::min(begin + manifest->items_per_shard, manifest->num_items);
    if (entry.begin != begin || entry.end != end ||
        entry.byte_offset != expected_offset ||
        entry.byte_size != (end - begin) * row_bytes) {
      return Status::DataLoss(reader->path() + ": sharded snapshot shard " +
                              std::to_string(i) + " entry corrupt");
    }
    expected_offset += entry.byte_size;
  }

  const uint64_t computed = cursor.checksum();
  uint64_t stored = 0;
  // The stored checksum is read outside the running hash by construction
  // (it is the last manifest field; the cursor hash already covers
  // everything before it).
  IMCAT_RETURN_IF_ERROR(reader->ReadAt(cursor.position(), &stored,
                                       sizeof(stored)));
  if (stored != computed) {
    return Status::DataLoss(reader->path() +
                            ": sharded snapshot manifest checksum mismatch");
  }
  return Status::OK();
}

constexpr char kDeltaMagic[4] = {'I', 'M', 'D', '3'};
constexpr uint32_t kDeltaVersion = 1;

/// Fixed delta-manifest sizes (see the delta layout in shard_format.h).
constexpr int64_t kDeltaHeaderBytes = 4 + 4 + 7 * 8;  // magic..num_changed.
constexpr int64_t kDeltaShardEntryBytes = 6 * 8;      // index..checksum.

int64_t DeltaManifestBytes(int64_t num_changed_shards) {
  return kDeltaHeaderBytes + kUserEntryBytes +
         num_changed_shards * kDeltaShardEntryBytes + kChecksumBytes;
}

/// Reads and validates a delta manifest: magic, version chain, geometry,
/// shard-entry layout and the manifest checksum. Payload untouched.
Status ReadDeltaManifest(ShardFileReader* reader, DeltaManifest* manifest) {
  ManifestCursor cursor(reader);
  char magic[4];
  Status magic_status = cursor.ReadBytes(magic, sizeof(magic));
  if (!magic_status.ok() ||
      std::memcmp(magic, kDeltaMagic, sizeof(kDeltaMagic)) != 0) {
    return Status::InvalidArgument(reader->path() +
                                   ": not an IMCAT delta snapshot");
  }
  uint32_t version = 0;
  IMCAT_RETURN_IF_ERROR(cursor.Read(&version));
  if (version != kDeltaVersion) {
    return Status::InvalidArgument(
        reader->path() + ": unsupported delta snapshot version " +
        std::to_string(version));
  }
  int64_t num_changed = 0;
  IMCAT_RETURN_IF_ERROR(cursor.Read(&manifest->base_version));
  IMCAT_RETURN_IF_ERROR(cursor.Read(&manifest->version));
  IMCAT_RETURN_IF_ERROR(cursor.Read(&manifest->num_users));
  IMCAT_RETURN_IF_ERROR(cursor.Read(&manifest->num_items));
  IMCAT_RETURN_IF_ERROR(cursor.Read(&manifest->dim));
  IMCAT_RETURN_IF_ERROR(cursor.Read(&manifest->items_per_shard));
  IMCAT_RETURN_IF_ERROR(cursor.Read(&num_changed));

  // Geometry sanity before any allocation, mirroring the full format: a
  // bit-flipped count fails cleanly here or at the checksum, never as
  // bad_alloc or a half-applied delta.
  const auto bounded = [](int64_t v) { return v > 0 && v < kMaxDimension; };
  const int64_t total_shards =
      bounded(manifest->num_items) && bounded(manifest->items_per_shard)
          ? (manifest->num_items + manifest->items_per_shard - 1) /
                manifest->items_per_shard
          : 0;
  if (!bounded(manifest->num_users) || !bounded(manifest->num_items) ||
      !bounded(manifest->dim) || !bounded(manifest->items_per_shard) ||
      manifest->base_version < 0 ||
      manifest->version <= manifest->base_version || num_changed < 0 ||
      num_changed > total_shards ||
      DeltaManifestBytes(num_changed) > reader->file_size()) {
    return Status::DataLoss(reader->path() +
                            ": delta snapshot manifest geometry corrupt");
  }
  const int64_t row_bytes =
      manifest->dim * static_cast<int64_t>(sizeof(float));
  const int64_t payload_start = DeltaManifestBytes(num_changed);

  IMCAT_RETURN_IF_ERROR(ReadEntry(&cursor, /*with_range=*/false,
                                  &manifest->user_table));
  manifest->user_table.begin = 0;
  manifest->user_table.end = manifest->num_users;
  if (manifest->user_table.byte_offset != payload_start ||
      manifest->user_table.byte_size != manifest->num_users * row_bytes) {
    return Status::DataLoss(reader->path() +
                            ": delta snapshot user-table entry corrupt");
  }

  manifest->changed_shards.resize(static_cast<size_t>(num_changed));
  int64_t expected_offset =
      manifest->user_table.byte_offset + manifest->user_table.byte_size;
  int64_t previous_index = -1;
  for (int64_t i = 0; i < num_changed; ++i) {
    DeltaShardEntry& entry = manifest->changed_shards[static_cast<size_t>(i)];
    IMCAT_RETURN_IF_ERROR(cursor.Read(&entry.shard_index));
    IMCAT_RETURN_IF_ERROR(ReadEntry(&cursor, /*with_range=*/true,
                                    &entry.shard));
    const int64_t begin = entry.shard_index * manifest->items_per_shard;
    const int64_t end =
        std::min(begin + manifest->items_per_shard, manifest->num_items);
    if (entry.shard_index <= previous_index ||
        entry.shard_index >= total_shards || entry.shard.begin != begin ||
        entry.shard.end != end ||
        entry.shard.byte_offset != expected_offset ||
        entry.shard.byte_size != (end - begin) * row_bytes) {
      return Status::DataLoss(reader->path() + ": delta snapshot shard " +
                              std::to_string(i) + " entry corrupt");
    }
    previous_index = entry.shard_index;
    expected_offset += entry.shard.byte_size;
  }

  const uint64_t computed = cursor.checksum();
  uint64_t stored = 0;
  IMCAT_RETURN_IF_ERROR(reader->ReadAt(cursor.position(), &stored,
                                       sizeof(stored)));
  if (stored != computed) {
    return Status::DataLoss(reader->path() +
                            ": delta snapshot manifest checksum mismatch");
  }
  return Status::OK();
}

/// Reads one integrity unit into `out` (already sized), re-reading up to
/// `attempts` times on corruption. OK means the checksum matched.
Status ReadValidated(ShardFileReader* reader, const ShardEntry& entry,
                     int64_t attempts, float* out) {
  Status last = Status::DataLoss(reader->path() + ": shard unreadable");
  for (int64_t attempt = 0; attempt < std::max<int64_t>(attempts, 1);
       ++attempt) {
    Status read = reader->ReadAt(entry.byte_offset, out,
                                 static_cast<size_t>(entry.byte_size));
    if (!read.ok()) {
      last = std::move(read);
      continue;
    }
    if (Fnv1aHash(out, static_cast<size_t>(entry.byte_size)) ==
        entry.checksum) {
      return Status::OK();
    }
    last = Status::DataLoss(reader->path() + ": shard checksum mismatch");
  }
  return last;
}

}  // namespace

bool IsShardedSnapshotFile(const std::string& path) {
  // A raw peek, deliberately outside the FaultInjector hooks: the real
  // loader re-reads from offset 0 with the hooks applied, and the peek
  // must not consume armed read faults.
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {0, 0, 0, 0};
  in.read(magic, sizeof(magic));
  return in.good() && std::memcmp(magic, kShardMagic, sizeof(kShardMagic)) == 0;
}

Status WriteShardedSnapshot(const std::string& path, const Tensor& users,
                            const Tensor& items,
                            const ShardedSnapshotOptions& options) {
  IMCAT_CHECK(users.defined() && items.defined());
  if (users.rows() <= 0 || items.rows() <= 0 || users.cols() <= 0 ||
      users.cols() != items.cols()) {
    return Status::InvalidArgument(
        path + ": sharded snapshot needs factor matrices over one embedding "
               "dimension, got user table " +
        std::to_string(users.rows()) + "x" + std::to_string(users.cols()) +
        " and item table " + std::to_string(items.rows()) + "x" +
        std::to_string(items.cols()));
  }
  if (options.items_per_shard <= 0) {
    return Status::InvalidArgument(path + ": items_per_shard must be > 0");
  }
  if (options.version < 0) {
    return Status::InvalidArgument(path + ": snapshot version must be >= 0");
  }
  const int64_t num_users = users.rows();
  const int64_t num_items = items.rows();
  const int64_t dim = users.cols();
  const int64_t items_per_shard = options.items_per_shard;
  const int64_t num_shards =
      (num_items + items_per_shard - 1) / items_per_shard;
  const int64_t row_bytes = dim * static_cast<int64_t>(sizeof(float));
  const int64_t payload_start = ManifestBytes(num_shards);

  AtomicFileWriter out(path);
  IMCAT_RETURN_IF_ERROR(out.Open());
  Fnv1a hash;
  hash.Update(kShardMagic, sizeof(kShardMagic));
  IMCAT_RETURN_IF_ERROR(out.Write(kShardMagic, sizeof(kShardMagic)));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, kShardVersion));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, num_users));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, num_items));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, dim));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, options.version));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, items_per_shard));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, num_shards));

  // User-table entry.
  const int64_t user_bytes = num_users * row_bytes;
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, payload_start));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, user_bytes));
  IMCAT_RETURN_IF_ERROR(WriteValue(
      &out, &hash, Fnv1aHash(users.data(), static_cast<size_t>(user_bytes))));

  // Item-shard entries, payload laid out contiguously after the user table.
  int64_t offset = payload_start + user_bytes;
  for (int64_t s = 0; s < num_shards; ++s) {
    const int64_t begin = s * items_per_shard;
    const int64_t end = std::min(begin + items_per_shard, num_items);
    const int64_t bytes = (end - begin) * row_bytes;
    IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, begin));
    IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, end));
    IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, offset));
    IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, bytes));
    IMCAT_RETURN_IF_ERROR(WriteValue(
        &out, &hash,
        Fnv1aHash(items.data() + begin * dim, static_cast<size_t>(bytes))));
    offset += bytes;
  }
  const uint64_t manifest_checksum = hash.value();
  IMCAT_RETURN_IF_ERROR(
      out.Write(&manifest_checksum, sizeof(manifest_checksum)));

  // Payload: user table, then each shard in order.
  IMCAT_RETURN_IF_ERROR(
      out.Write(users.data(), static_cast<size_t>(user_bytes)));
  for (int64_t s = 0; s < num_shards; ++s) {
    const int64_t begin = s * items_per_shard;
    const int64_t end = std::min(begin + items_per_shard, num_items);
    IMCAT_RETURN_IF_ERROR(
        out.Write(items.data() + begin * dim,
                  static_cast<size_t>((end - begin) * row_bytes)));
  }
  return out.Commit();
}

StatusOr<ShardManifest> ReadShardedSnapshotManifest(const std::string& path) {
  ShardFileReader reader;
  IMCAT_RETURN_IF_ERROR(reader.Open(path));
  ShardManifest manifest;
  IMCAT_RETURN_IF_ERROR(ReadManifest(&reader, &manifest));
  return manifest;
}

StatusOr<ShardedLoadResult> LoadShardedSnapshot(
    const std::string& path, const SnapshotLoadOptions& options) {
  ShardFileReader reader;
  IMCAT_RETURN_IF_ERROR(reader.Open(path));
  ShardedLoadResult result;
  IMCAT_RETURN_IF_ERROR(ReadManifest(&reader, &result.manifest));
  const ShardManifest& manifest = result.manifest;

  // The user table must validate: every request scores against a user row,
  // so there is no partial-degraded mode without it.
  result.users.resize(
      static_cast<size_t>(manifest.num_users * manifest.dim));
  Status user_status =
      ReadValidated(&reader, manifest.user_table,
                    options.shard_read_attempts, result.users.data());
  if (!user_status.ok()) {
    return Status(user_status.code(),
                  "user table failed validation: " + user_status.message());
  }

  // Item shards stream through one shard of staging memory: each shard is
  // read and checksummed in the scratch buffer, and only validated bytes
  // are copied into the table — so peak transient memory is one shard, and
  // a corrupt shard leaves zeroed rows, never half-read garbage.
  result.items.assign(
      static_cast<size_t>(manifest.num_items * manifest.dim), 0.0f);
  result.quarantined.assign(manifest.item_shards.size(), 0);
  std::vector<float> scratch(
      static_cast<size_t>(manifest.items_per_shard * manifest.dim));
  for (size_t s = 0; s < manifest.item_shards.size(); ++s) {
    const ShardEntry& entry = manifest.item_shards[s];
    Status shard_status = ReadValidated(&reader, entry,
                                        options.shard_read_attempts,
                                        scratch.data());
    if (shard_status.ok()) {
      std::memcpy(result.items.data() + entry.begin * manifest.dim,
                  scratch.data(), static_cast<size_t>(entry.byte_size));
      continue;
    }
    if (!options.allow_partial) {
      return Status(shard_status.code(),
                    "shard " + std::to_string(s) + " [" +
                        std::to_string(entry.begin) + ", " +
                        std::to_string(entry.end) + ") failed validation: " +
                        shard_status.message());
    }
    result.quarantined[s] = 1;
    ++result.quarantined_count;
  }
  if (result.quarantined_count == manifest.num_item_shards()) {
    return Status::DataLoss(path +
                            ": every item shard failed validation; nothing "
                            "left to serve");
  }
  return result;
}

bool IsDeltaSnapshotFile(const std::string& path) {
  // Same raw peek as IsShardedSnapshotFile: deliberately outside the
  // FaultInjector hooks so the peek never consumes an armed read fault.
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {0, 0, 0, 0};
  in.read(magic, sizeof(magic));
  return in.good() && std::memcmp(magic, kDeltaMagic, sizeof(kDeltaMagic)) == 0;
}

Status WriteDeltaSnapshot(const std::string& path, const Tensor& users,
                          const Tensor& items,
                          const std::vector<int64_t>& changed_shards,
                          const DeltaSnapshotOptions& options) {
  IMCAT_CHECK(users.defined() && items.defined());
  if (users.rows() <= 0 || items.rows() <= 0 || users.cols() <= 0 ||
      users.cols() != items.cols()) {
    return Status::InvalidArgument(
        path + ": delta snapshot needs factor matrices over one embedding "
               "dimension, got user table " +
        std::to_string(users.rows()) + "x" + std::to_string(users.cols()) +
        " and item table " + std::to_string(items.rows()) + "x" +
        std::to_string(items.cols()));
  }
  if (options.items_per_shard <= 0) {
    return Status::InvalidArgument(path + ": items_per_shard must be > 0");
  }
  if (options.base_version < 0 || options.version <= options.base_version) {
    return Status::InvalidArgument(
        path + ": delta version chain must satisfy 0 <= base_version < "
               "version, got base " +
        std::to_string(options.base_version) + " -> " +
        std::to_string(options.version));
  }
  const int64_t num_users = users.rows();
  const int64_t num_items = items.rows();
  const int64_t dim = users.cols();
  const int64_t items_per_shard = options.items_per_shard;
  const int64_t total_shards =
      (num_items + items_per_shard - 1) / items_per_shard;
  int64_t previous_index = -1;
  for (int64_t index : changed_shards) {
    if (index <= previous_index || index >= total_shards) {
      return Status::InvalidArgument(
          path + ": changed shard indices must be strictly increasing and "
                 "< " +
          std::to_string(total_shards) + ", got " + std::to_string(index) +
          " after " + std::to_string(previous_index));
    }
    previous_index = index;
  }
  const int64_t num_changed = static_cast<int64_t>(changed_shards.size());
  const int64_t row_bytes = dim * static_cast<int64_t>(sizeof(float));
  const int64_t payload_start = DeltaManifestBytes(num_changed);

  AtomicFileWriter out(path);
  IMCAT_RETURN_IF_ERROR(out.Open());
  Fnv1a hash;
  hash.Update(kDeltaMagic, sizeof(kDeltaMagic));
  IMCAT_RETURN_IF_ERROR(out.Write(kDeltaMagic, sizeof(kDeltaMagic)));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, kDeltaVersion));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, options.base_version));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, options.version));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, num_users));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, num_items));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, dim));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, items_per_shard));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, num_changed));

  // User-table entry (the user table always ships in full: fold-in touches
  // arbitrary user rows and the table is small next to the catalogue).
  const int64_t user_bytes = num_users * row_bytes;
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, payload_start));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, user_bytes));
  IMCAT_RETURN_IF_ERROR(WriteValue(
      &out, &hash, Fnv1aHash(users.data(), static_cast<size_t>(user_bytes))));

  // Changed-shard entries, payload contiguous after the user table.
  int64_t offset = payload_start + user_bytes;
  for (int64_t index : changed_shards) {
    const int64_t begin = index * items_per_shard;
    const int64_t end = std::min(begin + items_per_shard, num_items);
    const int64_t bytes = (end - begin) * row_bytes;
    IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, index));
    IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, begin));
    IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, end));
    IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, offset));
    IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, bytes));
    IMCAT_RETURN_IF_ERROR(WriteValue(
        &out, &hash,
        Fnv1aHash(items.data() + begin * dim, static_cast<size_t>(bytes))));
    offset += bytes;
  }
  const uint64_t manifest_checksum = hash.value();
  IMCAT_RETURN_IF_ERROR(
      out.Write(&manifest_checksum, sizeof(manifest_checksum)));

  IMCAT_RETURN_IF_ERROR(
      out.Write(users.data(), static_cast<size_t>(user_bytes)));
  for (int64_t index : changed_shards) {
    const int64_t begin = index * items_per_shard;
    const int64_t end = std::min(begin + items_per_shard, num_items);
    IMCAT_RETURN_IF_ERROR(
        out.Write(items.data() + begin * dim,
                  static_cast<size_t>((end - begin) * row_bytes)));
  }
  return out.Commit();
}

StatusOr<DeltaManifest> ReadDeltaSnapshotManifest(const std::string& path) {
  ShardFileReader reader;
  IMCAT_RETURN_IF_ERROR(reader.Open(path));
  DeltaManifest manifest;
  IMCAT_RETURN_IF_ERROR(ReadDeltaManifest(&reader, &manifest));
  return manifest;
}

StatusOr<DeltaLoadResult> LoadDeltaSnapshot(
    const std::string& path, const SnapshotLoadOptions& options) {
  ShardFileReader reader;
  IMCAT_RETURN_IF_ERROR(reader.Open(path));
  DeltaLoadResult result;
  IMCAT_RETURN_IF_ERROR(ReadDeltaManifest(&reader, &result.manifest));
  const DeltaManifest& manifest = result.manifest;

  // The user table must validate in full: a delta replaces the whole user
  // table, so without it the delta cannot be applied at all.
  result.users.resize(
      static_cast<size_t>(manifest.num_users * manifest.dim));
  Status user_status =
      ReadValidated(&reader, manifest.user_table,
                    options.shard_read_attempts, result.users.data());
  if (!user_status.ok()) {
    return Status(user_status.code(),
                  "delta user table failed validation: " +
                      user_status.message());
  }

  // Each changed shard validates independently. A corrupt shard's payload
  // stays empty and is reported through shard_ok — the *apply* layer then
  // decides whether the base's old rows can keep serving that range.
  const size_t num_changed = manifest.changed_shards.size();
  result.shard_ok.assign(num_changed, 1);
  result.shard_data.resize(num_changed);
  for (size_t s = 0; s < num_changed; ++s) {
    const DeltaShardEntry& entry = manifest.changed_shards[s];
    std::vector<float> payload(
        static_cast<size_t>(entry.shard.end - entry.shard.begin) *
        static_cast<size_t>(manifest.dim));
    Status shard_status = ReadValidated(&reader, entry.shard,
                                        options.shard_read_attempts,
                                        payload.data());
    if (shard_status.ok()) {
      result.shard_data[s] = std::move(payload);
      continue;
    }
    if (!options.allow_partial) {
      return Status(shard_status.code(),
                    "delta shard " + std::to_string(entry.shard_index) +
                        " [" + std::to_string(entry.shard.begin) + ", " +
                        std::to_string(entry.shard.end) +
                        ") failed validation: " + shard_status.message());
    }
    result.shard_ok[s] = 0;
    ++result.corrupt_count;
  }
  if (num_changed > 0 &&
      result.corrupt_count == static_cast<int64_t>(num_changed)) {
    return Status::DataLoss(path +
                            ": every changed shard failed validation; delta "
                            "refused");
  }
  return result;
}

}  // namespace imcat
