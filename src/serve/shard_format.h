#ifndef IMCAT_SERVE_SHARD_FORMAT_H_
#define IMCAT_SERVE_SHARD_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

/// \file shard_format.h
/// The sharded serving-snapshot format (v3). The monolithic v2 snapshot is
/// one blob with one trailing checksum: a single flipped bit rejects the
/// entire catalogue, and reloading stages the whole thing twice. Format v3
/// range-partitions the item table into fixed item-range shards, each with
/// its own FNV-1a checksum, under a checksummed manifest — so corruption is
/// contained to one shard, loads stream shard-by-shard with one shard of
/// staging memory, and the serving layer can keep answering for the healthy
/// item ranges while a corrupt shard is quarantined.
///
/// Layout (little-endian; every integer is fixed-width):
///
///   magic "IMS3" | u32 format version (3) |
///   u64 num_users | u64 num_items | u64 dim |
///   i64 parent_version  (publisher-assigned version; 0 = unassigned) |
///   u64 items_per_shard | u64 num_item_shards |
///   user-table entry:  u64 byte_offset | u64 byte_size | u64 checksum |
///   per item shard:    u64 begin_item | u64 end_item |
///                      u64 byte_offset | u64 byte_size | u64 checksum |
///   u64 manifest checksum  (FNV-1a over every preceding byte)
///   --- payload ---
///   user table floats (row-major num_users x dim)
///   item shard payloads, in shard order ((end-begin) x dim floats each)
///
/// Integrity rules, enforced by the loader before any data is served:
///  - the manifest (everything before the payload) must validate in full:
///    magic, version, shapes, shard geometry, offsets and its own checksum.
///    A corrupt manifest fails the whole load — without it no byte of
///    payload can be trusted.
///  - the user table must validate: every request needs the user row, so a
///    corrupt user table also fails the whole load.
///  - each item shard validates independently. A corrupt/truncated shard is
///    re-read (transient faults self-heal) and, if still bad, quarantined:
///    its rows are zeroed, its range is reported, and the rest of the
///    catalogue loads normally. Only when every shard is bad does the load
///    fail outright.
///
/// All reads are routed through the FaultInjector read hooks (bit flips,
/// short reads), and the writer uses AtomicFileWriter, so the whole chaos
/// harness applies to this format too.

namespace imcat {

/// One integrity unit recorded in the manifest. For the user table,
/// begin/end span rows of the user matrix; for item shards, item ids.
struct ShardEntry {
  int64_t begin = 0;        ///< First row/item id covered (inclusive).
  int64_t end = 0;          ///< One past the last row/item id covered.
  int64_t byte_offset = 0;  ///< Absolute payload offset in the file.
  int64_t byte_size = 0;    ///< Payload bytes ((end-begin) * dim * 4).
  uint64_t checksum = 0;    ///< FNV-1a over the payload bytes.
};

/// The validated manifest of a sharded snapshot file.
struct ShardManifest {
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t dim = 0;
  /// Publisher-assigned snapshot version (0 = unassigned; the service
  /// falls back to its own monotonic counter). RecService refuses to
  /// publish a snapshot whose version is not strictly greater than the
  /// live one.
  int64_t parent_version = 0;
  int64_t items_per_shard = 0;
  ShardEntry user_table;
  std::vector<ShardEntry> item_shards;

  int64_t num_item_shards() const {
    return static_cast<int64_t>(item_shards.size());
  }
};

/// Writer configuration for `WriteShardedSnapshot`.
struct ShardedSnapshotOptions {
  /// Items per shard (the last shard may be smaller). Smaller shards give
  /// finer failure containment at the cost of more manifest entries.
  int64_t items_per_shard = 4096;
  /// Recorded as the manifest's parent_version (see ShardManifest).
  int64_t version = 0;
};

/// Loader configuration (shared with `EmbeddingSnapshot::Load`).
struct SnapshotLoadOptions {
  /// When true (the serving default), a corrupt item shard is quarantined
  /// and the rest of the catalogue still loads; when false any corruption
  /// fails the load with kDataLoss (strict mode for offline validation).
  bool allow_partial = true;
  /// Total read attempts per shard (>= 1). A checksum mismatch triggers a
  /// re-read, so transient faults (a flipped bit in transit, not at rest)
  /// self-heal without quarantining anything.
  int64_t shard_read_attempts = 2;
};

/// The result of loading a sharded snapshot: the manifest, both tables and
/// the quarantine map. Rows of quarantined shards are zero-filled.
struct ShardedLoadResult {
  ShardManifest manifest;
  std::vector<float> users;
  std::vector<float> items;
  /// Per-item-shard quarantine flags (1 = corrupt, rows zeroed).
  std::vector<uint8_t> quarantined;
  int64_t quarantined_count = 0;
};

/// --- Delta snapshots ---------------------------------------------------
///
/// A delta snapshot ("IMD3") publishes an incremental update on top of an
/// already-live sharded snapshot instead of rewriting the whole catalogue:
/// the full (possibly grown) user table plus only the item shards whose
/// item ranges changed since the base was published. Every delta is chained
/// to an explicit `base_version`; applying it to any other live version is
/// a precondition failure, never a half-applied snapshot.
///
/// Layout (little-endian):
///
///   magic "IMD3" | u32 delta format version (1) |
///   i64 base_version | i64 version  (version > base_version) |
///   u64 num_users | u64 num_items | u64 dim | u64 items_per_shard |
///   u64 num_changed_shards |
///   user-table entry:    u64 byte_offset | u64 byte_size | u64 checksum |
///   per changed shard:   i64 shard_index | u64 begin_item | u64 end_item |
///                        u64 byte_offset | u64 byte_size | u64 checksum |
///   u64 manifest checksum  (FNV-1a over every preceding byte)
///   --- payload ---
///   user table floats (row-major num_users x dim)
///   changed shard payloads, in manifest order
///
/// `num_users`/`num_items` are the totals of the snapshot the delta
/// produces; they may exceed the base's (cold-start fold-in grows the
/// tables), never shrink them. `items_per_shard` must match the base, so a
/// shard index addresses the same item range in both. Changed shards are
/// listed in strictly increasing shard order and may include brand-new
/// shards past the base's last one.
///
/// Integrity rules mirror the full format: a corrupt manifest or user
/// table refuses the whole delta (the base stays live); each changed shard
/// validates independently (re-read, then reported corrupt); when *every*
/// changed shard is corrupt the delta is refused outright rather than
/// publishing an update that updates nothing.

/// One changed item shard recorded in a delta manifest.
struct DeltaShardEntry {
  int64_t shard_index = 0;  ///< Shard slot in the base's shard topology.
  ShardEntry shard;         ///< Range, payload location and checksum.
};

/// The validated manifest of a delta snapshot file.
struct DeltaManifest {
  /// Version of the live snapshot this delta applies on top of.
  int64_t base_version = 0;
  /// Version the applied snapshot becomes (always > base_version).
  int64_t version = 0;
  int64_t num_users = 0;   ///< Post-apply totals (>= the base's).
  int64_t num_items = 0;
  int64_t dim = 0;
  int64_t items_per_shard = 0;
  ShardEntry user_table;
  std::vector<DeltaShardEntry> changed_shards;

  int64_t num_changed_shards() const {
    return static_cast<int64_t>(changed_shards.size());
  }
};

/// Writer configuration for `WriteDeltaSnapshot`.
struct DeltaSnapshotOptions {
  int64_t items_per_shard = 4096;
  /// Version of the snapshot this delta chains to (>= 0).
  int64_t base_version = 0;
  /// Version the applied snapshot becomes; must be > base_version.
  int64_t version = 0;
};

/// The result of reading a delta snapshot file: the manifest, the full new
/// user table, and each changed shard's payload with its validation
/// outcome (`shard_ok[i]` == 0 means corrupt after re-reads; its
/// `shard_data[i]` is empty).
struct DeltaLoadResult {
  DeltaManifest manifest;
  std::vector<float> users;
  std::vector<uint8_t> shard_ok;
  std::vector<std::vector<float>> shard_data;
  int64_t corrupt_count = 0;
};

/// True when the file starts with the delta-snapshot magic ("IMD3").
bool IsDeltaSnapshotFile(const std::string& path);

/// Writes the user table and the listed item shards of `items` as a delta
/// snapshot chained to `options.base_version` (atomic write). The shard
/// indices must be unique, in range for `items`' shard topology, and the
/// tensors must share one embedding dimension.
Status WriteDeltaSnapshot(const std::string& path, const Tensor& users,
                          const Tensor& items,
                          const std::vector<int64_t>& changed_shards,
                          const DeltaSnapshotOptions& options);

/// Reads and fully validates only the delta manifest; payload untouched.
StatusOr<DeltaManifest> ReadDeltaSnapshotManifest(const std::string& path);

/// Reads a delta snapshot: manifest and user table must validate in full
/// (kDataLoss otherwise — without them the delta cannot be applied), each
/// changed shard validates independently with `options.shard_read_attempts`
/// total reads. With `options.allow_partial` a corrupt shard is reported
/// through `shard_ok` and loading continues; without it any corruption
/// fails the read. A delta whose every changed shard is corrupt is refused
/// with kDataLoss.
StatusOr<DeltaLoadResult> LoadDeltaSnapshot(
    const std::string& path, const SnapshotLoadOptions& options = {});

/// True when the file starts with the sharded-snapshot magic ("IMS3").
/// Missing/unreadable files return false (the caller's loader will then
/// produce the real error).
bool IsShardedSnapshotFile(const std::string& path);

/// Writes `users` (num_users x dim) and `items` (num_items x dim) as a
/// sharded snapshot at `path` (atomic write: tmp + fsync + rename).
Status WriteShardedSnapshot(const std::string& path, const Tensor& users,
                            const Tensor& items,
                            const ShardedSnapshotOptions& options = {});

/// Reads and fully validates only the manifest (geometry + manifest
/// checksum); payload bytes are not touched. For inspection and tests.
StatusOr<ShardManifest> ReadShardedSnapshotManifest(const std::string& path);

/// Loads a sharded snapshot shard-by-shard (see file comment for the
/// integrity rules). Fails with kIoError on missing/unreadable files,
/// kInvalidArgument on bad geometry and kDataLoss on corruption that
/// cannot be contained (manifest, user table, or every item shard).
StatusOr<ShardedLoadResult> LoadShardedSnapshot(
    const std::string& path, const SnapshotLoadOptions& options = {});

}  // namespace imcat

#endif  // IMCAT_SERVE_SHARD_FORMAT_H_
