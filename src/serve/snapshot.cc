#include "serve/snapshot.h"

#include <cstring>
#include <utility>

#include "serve/shard_format.h"
#include "tensor/checkpoint.h"
#include "tensor/tensor.h"
#include "util/fault_injector.h"

namespace imcat {

namespace {

/// Loads the monolithic v2 checkpoint layout: exactly two tensors (user
/// table, item table) over one embedding dimension, validated in full by
/// the checkpoint trailer checksum before any byte is published. The
/// result is modelled as one never-quarantined shard spanning the whole
/// catalogue, so the shard-topology accessors stay meaningful.
Status LoadMonolithic(const std::string& path, int64_t* num_users,
                      int64_t* num_items, int64_t* dim,
                      std::vector<float>* users, std::vector<float>* items) {
  auto shapes = ReadCheckpointShapes(path);
  IMCAT_RETURN_IF_ERROR(shapes.status());
  if (shapes.value().size() != 2) {
    return Status::InvalidArgument(
        path + ": serving snapshot needs exactly 2 tensors (user table, "
               "item table), found " +
        std::to_string(shapes.value().size()));
  }
  const auto [users_rows, user_dim] = shapes.value()[0];
  const auto [items_rows, item_dim] = shapes.value()[1];
  if (users_rows <= 0 || items_rows <= 0 || user_dim <= 0 ||
      user_dim != item_dim) {
    return Status::InvalidArgument(
        path + ": user table " + std::to_string(users_rows) + "x" +
        std::to_string(user_dim) + " and item table " +
        std::to_string(items_rows) + "x" + std::to_string(item_dim) +
        " are not factor matrices over one embedding dimension");
  }
  // Stage through tensors so the full checksum validation in LoadCheckpoint
  // runs before any data is published.
  std::vector<Tensor> tensors;
  tensors.emplace_back(users_rows, user_dim);
  tensors.emplace_back(items_rows, item_dim);
  IMCAT_RETURN_IF_ERROR(LoadCheckpoint(path, &tensors));

  *num_users = users_rows;
  *num_items = items_rows;
  *dim = user_dim;
  users->assign(tensors[0].data(), tensors[0].data() + tensors[0].size());
  items->assign(tensors[1].data(), tensors[1].data() + tensors[1].size());
  return Status::OK();
}

}  // namespace

StatusOr<std::shared_ptr<EmbeddingSnapshot>> EmbeddingSnapshot::Load(
    const std::string& path, const SnapshotLoadOptions& options) {
  FaultInjector& injector = FaultInjector::Instance();
  if (injector.enabled() && injector.ConsumeLoadFailure()) {
    return Status::IoError(path + ": injected snapshot load failure");
  }
  std::shared_ptr<EmbeddingSnapshot> snapshot(new EmbeddingSnapshot());
  if (IsShardedSnapshotFile(path)) {
    auto loaded = LoadShardedSnapshot(path, options);
    IMCAT_RETURN_IF_ERROR(loaded.status());
    ShardedLoadResult result = std::move(loaded).value();
    snapshot->num_users_ = result.manifest.num_users;
    snapshot->num_items_ = result.manifest.num_items;
    snapshot->dim_ = result.manifest.dim;
    snapshot->parent_version_ = result.manifest.parent_version;
    snapshot->items_per_shard_ = result.manifest.items_per_shard;
    snapshot->quarantined_ = std::move(result.quarantined);
    snapshot->quarantined_count_ = result.quarantined_count;
    snapshot->stale_.assign(snapshot->quarantined_.size(), 0);
    snapshot->users_ = std::move(result.users);
    snapshot->items_ = std::move(result.items);
    return snapshot;
  }
  IMCAT_RETURN_IF_ERROR(LoadMonolithic(
      path, &snapshot->num_users_, &snapshot->num_items_, &snapshot->dim_,
      &snapshot->users_, &snapshot->items_));
  snapshot->items_per_shard_ = snapshot->num_items_;
  snapshot->quarantined_.assign(1, 0);
  snapshot->stale_.assign(1, 0);
  return snapshot;
}

StatusOr<std::shared_ptr<EmbeddingSnapshot>> EmbeddingSnapshot::ApplyDelta(
    const std::shared_ptr<const EmbeddingSnapshot>& base,
    const std::string& delta_path, const SnapshotLoadOptions& options) {
  if (base == nullptr) {
    return Status::InvalidArgument(delta_path +
                                   ": cannot apply a delta without a base "
                                   "snapshot");
  }
  FaultInjector& injector = FaultInjector::Instance();
  if (injector.enabled() && injector.ConsumeLoadFailure()) {
    return Status::IoError(delta_path + ": injected delta load failure");
  }
  // Version-chain check on the manifest alone, before any payload is read:
  // a stale or out-of-order delta is refused cheaply and unambiguously.
  auto manifest_or = ReadDeltaSnapshotManifest(delta_path);
  IMCAT_RETURN_IF_ERROR(manifest_or.status());
  const DeltaManifest& peek = manifest_or.value();
  if (peek.base_version != base->version()) {
    return Status::FailedPrecondition(
        delta_path + ": delta chains to base version " +
        std::to_string(peek.base_version) + " but live snapshot is version " +
        std::to_string(base->version()));
  }
  if (peek.dim != base->dim() ||
      peek.items_per_shard != base->items_per_shard()) {
    return Status::InvalidArgument(
        delta_path + ": delta geometry (dim " + std::to_string(peek.dim) +
        ", items/shard " + std::to_string(peek.items_per_shard) +
        ") does not match base (dim " + std::to_string(base->dim()) +
        ", items/shard " + std::to_string(base->items_per_shard()) + ")");
  }
  if (peek.num_users < base->num_users() ||
      peek.num_items < base->num_items()) {
    return Status::InvalidArgument(
        delta_path + ": delta shrinks the catalogue (" +
        std::to_string(peek.num_users) + " users, " +
        std::to_string(peek.num_items) + " items vs base " +
        std::to_string(base->num_users()) + ", " +
        std::to_string(base->num_items()) + ")");
  }

  auto loaded = LoadDeltaSnapshot(delta_path, options);
  IMCAT_RETURN_IF_ERROR(loaded.status());
  DeltaLoadResult result = std::move(loaded).value();
  const DeltaManifest& manifest = result.manifest;

  // Everything below builds the complete replacement snapshot before the
  // caller can publish it — a delta is applied in full or not at all.
  std::shared_ptr<EmbeddingSnapshot> snapshot(new EmbeddingSnapshot());
  snapshot->num_users_ = manifest.num_users;
  snapshot->num_items_ = manifest.num_items;
  snapshot->dim_ = manifest.dim;
  snapshot->items_per_shard_ = manifest.items_per_shard;
  snapshot->parent_version_ = manifest.version;
  snapshot->base_version_ = base->version();
  snapshot->version_ = manifest.version;
  snapshot->users_ = std::move(result.users);

  const int64_t dim = manifest.dim;
  const int64_t ips = manifest.items_per_shard;
  const int64_t base_items = base->num_items();
  const int64_t num_shards = (manifest.num_items + ips - 1) / ips;
  snapshot->items_.assign(
      static_cast<size_t>(manifest.num_items * dim), 0.0f);
  std::memcpy(snapshot->items_.data(), base->items_.data(),
              static_cast<size_t>(base_items * dim) * sizeof(float));

  // A shard whose new range [begin, end) lies entirely inside the base's
  // catalogue inherits the base's health; a shard whose range extends past
  // it (brand-new, or the old tail shard grown by cold-start items) has no
  // complete fallback and starts quarantined until the delta ships it.
  snapshot->quarantined_.assign(static_cast<size_t>(num_shards), 0);
  snapshot->stale_.assign(static_cast<size_t>(num_shards), 0);
  for (int64_t s = 0; s < num_shards; ++s) {
    const int64_t end = std::min((s + 1) * ips, manifest.num_items);
    if (end <= base_items) {
      snapshot->quarantined_[s] = base->quarantined_[s];
      snapshot->stale_[s] = base->stale_[s];
    } else {
      snapshot->quarantined_[s] = 1;
    }
  }
  for (size_t i = 0; i < manifest.changed_shards.size(); ++i) {
    const DeltaShardEntry& entry = manifest.changed_shards[i];
    const int64_t s = entry.shard_index;
    if (result.shard_ok[i]) {
      std::memcpy(snapshot->items_.data() + entry.shard.begin * dim,
                  result.shard_data[i].data(),
                  static_cast<size_t>(entry.shard.byte_size));
      snapshot->quarantined_[s] = 0;
      snapshot->stale_[s] = 0;
      continue;
    }
    // Corrupt changed shard: fall back to the base's old rows when they
    // cover the whole range and were healthy (stale), else quarantine.
    const bool covered = entry.shard.end <= base_items;
    if (covered && !base->shard_quarantined(s)) {
      snapshot->stale_[s] = 1;
    } else {
      snapshot->quarantined_[s] = 1;
      snapshot->stale_[s] = 0;
      // Quarantined rows are zero-filled by contract; clear any base rows
      // copied into the prefix of a partially-covered range.
      const int64_t zero_end = std::min(entry.shard.end, base_items);
      if (zero_end > entry.shard.begin) {
        std::memset(snapshot->items_.data() + entry.shard.begin * dim, 0,
                    static_cast<size_t>((zero_end - entry.shard.begin) * dim) *
                        sizeof(float));
      }
    }
  }
  for (int64_t s = 0; s < num_shards; ++s) {
    snapshot->quarantined_count_ += snapshot->quarantined_[s];
    snapshot->stale_count_ += snapshot->stale_[s];
  }
  if (snapshot->quarantined_count_ == num_shards) {
    return Status::DataLoss(delta_path +
                            ": applying the delta would quarantine every "
                            "shard; delta refused");
  }
  return snapshot;
}

Status EmbeddingSnapshot::ValidateUser(int64_t u) const {
  if (u < 0 || u >= num_users_) {
    return Status::InvalidArgument(
        "user id " + std::to_string(u) + " outside [0, " +
        std::to_string(num_users_) + ")");
  }
  return Status::OK();
}

Status EmbeddingSnapshot::ValidateItem(int64_t i) const {
  if (i < 0 || i >= num_items_) {
    return Status::InvalidArgument(
        "item id " + std::to_string(i) + " outside [0, " +
        std::to_string(num_items_) + ")");
  }
  return Status::OK();
}

StatusOr<float> EmbeddingSnapshot::ScoreChecked(int64_t u, int64_t i) const {
  IMCAT_RETURN_IF_ERROR(ValidateUser(u));
  IMCAT_RETURN_IF_ERROR(ValidateItem(i));
  if (!item_available(i)) {
    return Status::Unavailable(
        "item " + std::to_string(i) + " is in quarantined shard " +
        std::to_string(shard_of_item(i)));
  }
  return Score(u, i);
}

std::vector<std::pair<int64_t, int64_t>> EmbeddingSnapshot::QuarantinedRanges()
    const {
  std::vector<std::pair<int64_t, int64_t>> ranges;
  for (int64_t s = 0; s < num_shards(); ++s) {
    if (!shard_quarantined(s)) continue;
    const auto [begin, end] = shard_range(s);
    if (!ranges.empty() && ranges.back().second == begin) {
      ranges.back().second = end;  // Coalesce adjacent quarantined shards.
    } else {
      ranges.emplace_back(begin, end);
    }
  }
  return ranges;
}

std::vector<std::pair<int64_t, int64_t>> EmbeddingSnapshot::StaleRanges()
    const {
  std::vector<std::pair<int64_t, int64_t>> ranges;
  for (int64_t s = 0; s < num_shards(); ++s) {
    if (!shard_stale(s)) continue;
    const auto [begin, end] = shard_range(s);
    if (!ranges.empty() && ranges.back().second == begin) {
      ranges.back().second = end;
    } else {
      ranges.emplace_back(begin, end);
    }
  }
  return ranges;
}

}  // namespace imcat
