#include "serve/snapshot.h"

#include <cstring>
#include <utility>

#include "serve/shard_format.h"
#include "tensor/checkpoint.h"
#include "tensor/tensor.h"
#include "util/fault_injector.h"

namespace imcat {

namespace {

/// Loads the monolithic v2 checkpoint layout: exactly two tensors (user
/// table, item table) over one embedding dimension, validated in full by
/// the checkpoint trailer checksum before any byte is published. The
/// result is modelled as one never-quarantined shard spanning the whole
/// catalogue, so the shard-topology accessors stay meaningful.
Status LoadMonolithic(const std::string& path, int64_t* num_users,
                      int64_t* num_items, int64_t* dim,
                      std::vector<float>* users, std::vector<float>* items) {
  auto shapes = ReadCheckpointShapes(path);
  IMCAT_RETURN_IF_ERROR(shapes.status());
  if (shapes.value().size() != 2) {
    return Status::InvalidArgument(
        path + ": serving snapshot needs exactly 2 tensors (user table, "
               "item table), found " +
        std::to_string(shapes.value().size()));
  }
  const auto [users_rows, user_dim] = shapes.value()[0];
  const auto [items_rows, item_dim] = shapes.value()[1];
  if (users_rows <= 0 || items_rows <= 0 || user_dim <= 0 ||
      user_dim != item_dim) {
    return Status::InvalidArgument(
        path + ": user table " + std::to_string(users_rows) + "x" +
        std::to_string(user_dim) + " and item table " +
        std::to_string(items_rows) + "x" + std::to_string(item_dim) +
        " are not factor matrices over one embedding dimension");
  }
  // Stage through tensors so the full checksum validation in LoadCheckpoint
  // runs before any data is published.
  std::vector<Tensor> tensors;
  tensors.emplace_back(users_rows, user_dim);
  tensors.emplace_back(items_rows, item_dim);
  IMCAT_RETURN_IF_ERROR(LoadCheckpoint(path, &tensors));

  *num_users = users_rows;
  *num_items = items_rows;
  *dim = user_dim;
  users->assign(tensors[0].data(), tensors[0].data() + tensors[0].size());
  items->assign(tensors[1].data(), tensors[1].data() + tensors[1].size());
  return Status::OK();
}

}  // namespace

StatusOr<std::shared_ptr<EmbeddingSnapshot>> EmbeddingSnapshot::Load(
    const std::string& path, const SnapshotLoadOptions& options) {
  FaultInjector& injector = FaultInjector::Instance();
  if (injector.enabled() && injector.ConsumeLoadFailure()) {
    return Status::IoError(path + ": injected snapshot load failure");
  }
  std::shared_ptr<EmbeddingSnapshot> snapshot(new EmbeddingSnapshot());
  if (IsShardedSnapshotFile(path)) {
    auto loaded = LoadShardedSnapshot(path, options);
    IMCAT_RETURN_IF_ERROR(loaded.status());
    ShardedLoadResult result = std::move(loaded).value();
    snapshot->num_users_ = result.manifest.num_users;
    snapshot->num_items_ = result.manifest.num_items;
    snapshot->dim_ = result.manifest.dim;
    snapshot->parent_version_ = result.manifest.parent_version;
    snapshot->items_per_shard_ = result.manifest.items_per_shard;
    snapshot->quarantined_ = std::move(result.quarantined);
    snapshot->quarantined_count_ = result.quarantined_count;
    snapshot->users_ = std::move(result.users);
    snapshot->items_ = std::move(result.items);
    return snapshot;
  }
  IMCAT_RETURN_IF_ERROR(LoadMonolithic(
      path, &snapshot->num_users_, &snapshot->num_items_, &snapshot->dim_,
      &snapshot->users_, &snapshot->items_));
  snapshot->items_per_shard_ = snapshot->num_items_;
  snapshot->quarantined_.assign(1, 0);
  return snapshot;
}

Status EmbeddingSnapshot::ValidateUser(int64_t u) const {
  if (u < 0 || u >= num_users_) {
    return Status::InvalidArgument(
        "user id " + std::to_string(u) + " outside [0, " +
        std::to_string(num_users_) + ")");
  }
  return Status::OK();
}

Status EmbeddingSnapshot::ValidateItem(int64_t i) const {
  if (i < 0 || i >= num_items_) {
    return Status::InvalidArgument(
        "item id " + std::to_string(i) + " outside [0, " +
        std::to_string(num_items_) + ")");
  }
  return Status::OK();
}

StatusOr<float> EmbeddingSnapshot::ScoreChecked(int64_t u, int64_t i) const {
  IMCAT_RETURN_IF_ERROR(ValidateUser(u));
  IMCAT_RETURN_IF_ERROR(ValidateItem(i));
  if (!item_available(i)) {
    return Status::Unavailable(
        "item " + std::to_string(i) + " is in quarantined shard " +
        std::to_string(shard_of_item(i)));
  }
  return Score(u, i);
}

std::vector<std::pair<int64_t, int64_t>> EmbeddingSnapshot::QuarantinedRanges()
    const {
  std::vector<std::pair<int64_t, int64_t>> ranges;
  for (int64_t s = 0; s < num_shards(); ++s) {
    if (!shard_quarantined(s)) continue;
    const auto [begin, end] = shard_range(s);
    if (!ranges.empty() && ranges.back().second == begin) {
      ranges.back().second = end;  // Coalesce adjacent quarantined shards.
    } else {
      ranges.emplace_back(begin, end);
    }
  }
  return ranges;
}

}  // namespace imcat
