#include "serve/snapshot.h"

#include <cstring>
#include <utility>

#include "tensor/checkpoint.h"
#include "tensor/tensor.h"
#include "util/fault_injector.h"

namespace imcat {

StatusOr<std::shared_ptr<EmbeddingSnapshot>> EmbeddingSnapshot::Load(
    const std::string& path) {
  FaultInjector& injector = FaultInjector::Instance();
  if (injector.enabled() && injector.ConsumeLoadFailure()) {
    return Status::IoError(path + ": injected snapshot load failure");
  }
  auto shapes = ReadCheckpointShapes(path);
  IMCAT_RETURN_IF_ERROR(shapes.status());
  if (shapes.value().size() != 2) {
    return Status::InvalidArgument(
        path + ": serving snapshot needs exactly 2 tensors (user table, "
               "item table), found " +
        std::to_string(shapes.value().size()));
  }
  const auto [num_users, user_dim] = shapes.value()[0];
  const auto [num_items, item_dim] = shapes.value()[1];
  if (num_users <= 0 || num_items <= 0 || user_dim <= 0 ||
      user_dim != item_dim) {
    return Status::InvalidArgument(
        path + ": user table " + std::to_string(num_users) + "x" +
        std::to_string(user_dim) + " and item table " +
        std::to_string(num_items) + "x" + std::to_string(item_dim) +
        " are not factor matrices over one embedding dimension");
  }
  // Stage through tensors so the full checksum validation in LoadCheckpoint
  // runs before any data is published.
  std::vector<Tensor> tensors;
  tensors.emplace_back(num_users, user_dim);
  tensors.emplace_back(num_items, item_dim);
  IMCAT_RETURN_IF_ERROR(LoadCheckpoint(path, &tensors));

  std::shared_ptr<EmbeddingSnapshot> snapshot(new EmbeddingSnapshot());
  snapshot->num_users_ = num_users;
  snapshot->num_items_ = num_items;
  snapshot->dim_ = user_dim;
  snapshot->users_.assign(tensors[0].data(),
                          tensors[0].data() + tensors[0].size());
  snapshot->items_.assign(tensors[1].data(),
                          tensors[1].data() + tensors[1].size());
  return snapshot;
}

}  // namespace imcat
