#ifndef IMCAT_SERVE_SNAPSHOT_H_
#define IMCAT_SERVE_SNAPSHOT_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/shard_format.h"
#include "util/status.h"

/// \file snapshot.h
/// Immutable factor-matrix snapshots for serving. Two on-disk formats load
/// into the same in-memory snapshot:
///
///  - the sharded v3 format (shard_format.h): the item table is split into
///    fixed item-range shards, each with its own checksum, so the loader
///    streams shard-by-shard (peak staging memory = one shard) and a
///    corrupt shard is quarantined — its item range drops out of scoring
///    while the rest of the catalogue serves normally;
///  - the monolithic v2 checkpoint (trailing FNV-1a over the whole file):
///    all-or-nothing validation, loaded as a single never-quarantined
///    shard spanning the entire catalogue.
///
/// Snapshots are shared immutably (shared_ptr<const>): the service
/// hot-swaps them atomically and mid-flight requests keep scoring against
/// the snapshot they started with, including its quarantine map.

namespace imcat {

/// Immutable user/item embedding matrices loaded from a checkpoint.
class EmbeddingSnapshot {
 public:
  /// Loads a snapshot from a sharded v3 snapshot file or a monolithic
  /// IMCAT checkpoint (v1/v2), auto-detected by magic. The file must hold
  /// a user table (num_users x d) and an item table (num_items x d) — the
  /// layout `ExportServingCheckpoint` writes for factor models. Fails with
  /// kDataLoss on corruption the format cannot contain, kIoError on
  /// missing/unreadable files and kInvalidArgument on a layout the serving
  /// path cannot score. With `options.allow_partial` (the default), a
  /// corrupt item shard of a v3 file quarantines that shard instead of
  /// failing the load.
  static StatusOr<std::shared_ptr<EmbeddingSnapshot>> Load(
      const std::string& path, const SnapshotLoadOptions& options);

  /// Load with default options (partial loads allowed, one re-read).
  static StatusOr<std::shared_ptr<EmbeddingSnapshot>> Load(
      const std::string& path) {
    return Load(path, SnapshotLoadOptions{});
  }

  /// Applies a delta snapshot file (shard_format.h, "IMD3") on top of
  /// `base`, producing a complete new snapshot — the base is never mutated
  /// and a delta is never half-applied: any failure returns an error and
  /// leaves the caller serving the base unchanged.
  ///
  /// Refusals:
  ///  - kFailedPrecondition when the delta's `base_version` does not match
  ///    `base->version()` (stale or out-of-order delta);
  ///  - kInvalidArgument when the delta's geometry cannot chain onto the
  ///    base (dim / items_per_shard mismatch, or shrinking tables);
  ///  - kDataLoss when the delta's manifest, user table, or every changed
  ///    shard fails validation.
  ///
  /// Per-shard containment (with `options.allow_partial`): a corrupt
  /// changed shard whose item range is fully covered by healthy base data
  /// keeps the base's old rows and is marked **stale** — real scores, one
  /// publish behind — while a corrupt shard that is brand-new (past the
  /// base's catalogue) or was already quarantined in the base is
  /// **quarantined** (rows zeroed). A shard the delta replaces with valid
  /// data always comes out fresh, healing base quarantine/staleness.
  static StatusOr<std::shared_ptr<EmbeddingSnapshot>> ApplyDelta(
      const std::shared_ptr<const EmbeddingSnapshot>& base,
      const std::string& delta_path,
      const SnapshotLoadOptions& options = {});

  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }
  int64_t dim() const { return dim_; }

  /// Row pointers into the factor matrices (row-major, `dim()` floats).
  /// Unchecked: callers must validate ids first (see ValidateUser /
  /// ValidateItem); rows of quarantined shards are zero-filled.
  const float* user(int64_t u) const { return users_.data() + u * dim_; }
  const float* item(int64_t i) const { return items_.data() + i * dim_; }

  /// Inner-product relevance score for one (user, item) pair. Unchecked.
  float Score(int64_t u, int64_t i) const {
    const float* a = user(u);
    const float* b = item(i);
    float s = 0.0f;
    for (int64_t d = 0; d < dim_; ++d) s += a[d] * b[d];
    return s;
  }

  /// Bounds-checked id validation: kInvalidArgument for ids outside
  /// [0, num_users) / [0, num_items). The serving entry points call these
  /// so an out-of-range id from a request can never become an out-of-bounds
  /// read of the factor matrices.
  Status ValidateUser(int64_t u) const;
  Status ValidateItem(int64_t i) const;

  /// Checked scoring: kInvalidArgument for out-of-range ids, kUnavailable
  /// when the item's shard is quarantined (its row is zeroed — a silent 0.0
  /// score would be wrong, not missing).
  StatusOr<float> ScoreChecked(int64_t u, int64_t i) const;

  /// --- Shard topology (v2 files load as one shard spanning the whole
  /// catalogue; all of these stay meaningful). ---

  int64_t num_shards() const {
    return static_cast<int64_t>(quarantined_.size());
  }
  int64_t items_per_shard() const { return items_per_shard_; }
  int64_t shard_of_item(int64_t i) const { return i / items_per_shard_; }

  /// Item-id range [begin, end) covered by shard `s`.
  std::pair<int64_t, int64_t> shard_range(int64_t s) const {
    const int64_t begin = s * items_per_shard_;
    return {begin, std::min(begin + items_per_shard_, num_items_)};
  }

  bool shard_quarantined(int64_t s) const { return quarantined_[s] != 0; }

  /// True when shard `s` kept the previous publish's rows because a delta
  /// failed to replace them (see ApplyDelta): the data is real but one
  /// publish behind. Stale shards still score — responses touching them
  /// are flagged partial_degraded, not backfilled.
  bool shard_stale(int64_t s) const { return stale_[s] != 0; }

  /// True when item `i`'s embedding is trustworthy (its shard validated).
  /// Hot path: one branch when nothing is quarantined. Stale shards count
  /// as available — their rows are real, just old.
  bool item_available(int64_t i) const {
    return quarantined_count_ == 0 || quarantined_[i / items_per_shard_] == 0;
  }

  int64_t quarantined_count() const { return quarantined_count_; }
  int64_t stale_count() const { return stale_count_; }

  /// True when any shard overlapping item range [begin, end) is stale.
  /// Hot path: one branch when nothing is stale.
  bool RangeTouchesStale(int64_t begin, int64_t end) const {
    if (stale_count_ == 0) return false;
    const int64_t first = begin / items_per_shard_;
    const int64_t last = (end - 1) / items_per_shard_;
    for (int64_t s = first; s <= last && s < num_shards(); ++s) {
      if (stale_[s] != 0) return true;
    }
    return false;
  }

  /// Item-id ranges currently quarantined (adjacent quarantined shards are
  /// coalesced). Empty when the snapshot is fully healthy.
  std::vector<std::pair<int64_t, int64_t>> QuarantinedRanges() const;

  /// Item-id ranges currently stale (adjacent stale shards coalesced).
  std::vector<std::pair<int64_t, int64_t>> StaleRanges() const;

  /// Version recorded in the file's manifest by the exporter (0 for v2
  /// files and unversioned exports). For a delta-applied snapshot, the
  /// delta manifest's `version`.
  int64_t parent_version() const { return parent_version_; }

  /// For a snapshot produced by ApplyDelta: the version of the base it was
  /// chained onto (0 for snapshots loaded whole from disk). Gives logs the
  /// full lineage: base_version -> version.
  int64_t base_version() const { return base_version_; }

  /// Monotonically increasing id assigned by the service on publish
  /// (0 = never published).
  int64_t version() const { return version_; }
  void set_version(int64_t version) { version_ = version; }

 private:
  EmbeddingSnapshot() = default;

  int64_t num_users_ = 0;
  int64_t num_items_ = 0;
  int64_t dim_ = 0;
  int64_t version_ = 0;
  int64_t parent_version_ = 0;
  int64_t base_version_ = 0;
  int64_t items_per_shard_ = 0;
  int64_t quarantined_count_ = 0;
  int64_t stale_count_ = 0;
  std::vector<uint8_t> quarantined_;  ///< Per-shard flags (1 = quarantined).
  std::vector<uint8_t> stale_;        ///< Per-shard flags (1 = stale rows).
  std::vector<float> users_;
  std::vector<float> items_;
};

}  // namespace imcat

#endif  // IMCAT_SERVE_SNAPSHOT_H_
