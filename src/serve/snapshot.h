#ifndef IMCAT_SERVE_SNAPSHOT_H_
#define IMCAT_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

/// \file snapshot.h
/// Immutable factor-matrix snapshots for serving. A snapshot is exported
/// from training as an ordinary IMCAT checkpoint (v2 format, trailing
/// FNV-1a checksum) holding the user table then the item table; the loader
/// validates the whole file — magic, shapes, length fields and checksum —
/// before a single byte becomes visible to scoring, so a corrupt file can
/// never be served. Snapshots are shared immutably (shared_ptr<const>):
/// the service hot-swaps them atomically and mid-flight requests keep
/// scoring against the snapshot they started with.

namespace imcat {

/// Immutable user/item embedding matrices loaded from a checkpoint.
class EmbeddingSnapshot {
 public:
  /// Loads a snapshot from an IMCAT checkpoint (v1 or v2; training state,
  /// if present, is validated and discarded). The checkpoint must hold
  /// exactly two tensors with one embedding dimension: the user table
  /// (num_users x d) then the item table (num_items x d) — the layout
  /// `ExportServingCheckpoint` writes for factor models. Fails with
  /// kDataLoss on corruption, kIoError on missing/unreadable files and
  /// kInvalidArgument on a layout the serving path cannot score.
  static StatusOr<std::shared_ptr<EmbeddingSnapshot>> Load(
      const std::string& path);

  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }
  int64_t dim() const { return dim_; }

  /// Row pointers into the factor matrices (row-major, `dim()` floats).
  const float* user(int64_t u) const { return users_.data() + u * dim_; }
  const float* item(int64_t i) const { return items_.data() + i * dim_; }

  /// Inner-product relevance score for one (user, item) pair.
  float Score(int64_t u, int64_t i) const {
    const float* a = user(u);
    const float* b = item(i);
    float s = 0.0f;
    for (int64_t d = 0; d < dim_; ++d) s += a[d] * b[d];
    return s;
  }

  /// Monotonically increasing id assigned by the service on publish
  /// (0 = never published).
  int64_t version() const { return version_; }
  void set_version(int64_t version) { version_ = version; }

 private:
  EmbeddingSnapshot() = default;

  int64_t num_users_ = 0;
  int64_t num_items_ = 0;
  int64_t dim_ = 0;
  int64_t version_ = 0;
  std::vector<float> users_;
  std::vector<float> items_;
};

}  // namespace imcat

#endif  // IMCAT_SERVE_SNAPSHOT_H_
