#include "serve/snapshot_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "serve/rec_service.h"
#include "serve/shard_format.h"
#include "util/atomic_file.h"
#include "util/checksum.h"
#include "util/fault_injector.h"

namespace imcat {

namespace {

namespace fs = std::filesystem;

constexpr char kManifestName[] = "STORE_MANIFEST";
constexpr char kManifestMagic[] = "IMCATSTORE 1";
constexpr char kCorruptSuffix[] = ".corrupt";

std::string VersionToken(int64_t v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%012" PRId64, v);
  return buffer;
}

std::string FullName(int64_t version) {
  return "full-" + VersionToken(version) + ".ims3";
}

std::string DeltaName(int64_t base_version, int64_t version) {
  return "delta-" + VersionToken(base_version) + "-" +
         VersionToken(version) + ".imd3";
}

/// Parses a store artifact filename back into kind/version/base. Returns
/// false for names the store does not manage (which the scan ignores).
bool ParseArtifactName(const std::string& name, StoreArtifact* out) {
  int64_t a = 0;
  int64_t b = 0;
  char tail = '\0';
  if (std::sscanf(name.c_str(), "full-%" SCNd64 ".ims3%c", &a, &tail) == 1 &&
      name == FullName(a)) {
    out->kind = StoreArtifact::Kind::kFull;
    out->version = a;
    out->base_version = 0;
    out->filename = name;
    return true;
  }
  if (std::sscanf(name.c_str(), "delta-%" SCNd64 "-%" SCNd64 ".imd3%c", &a,
                  &b, &tail) == 2 &&
      name == DeltaName(a, b)) {
    out->kind = StoreArtifact::Kind::kDelta;
    out->version = b;
    out->base_version = a;
    out->filename = name;
    return true;
  }
  return false;
}

/// Poll point at a durable-step boundary: when the armed crash fires, the
/// caller must return this error immediately and leave every later step
/// undone — on-disk state is then exactly what a kill between the two
/// steps would leave.
Status CrashPoint(const char* step) {
  FaultInjector& injector = FaultInjector::Instance();
  if (injector.enabled() && injector.ConsumeCrashStep()) {
    return Status::IoError(std::string("injected crash before ") + step);
  }
  return Status::OK();
}

int64_t FileBytes(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<int64_t>(size);
}

/// Validates an artifact file against its own internal manifest AND the
/// versions encoded in its name: a file that parses but claims different
/// versions than its name is mis-labeled (a copy/rename gone wrong) and
/// must not enter a chain under the wrong identity.
Status ValidateArtifactFile(const std::string& path,
                            const StoreArtifact& artifact) {
  if (artifact.kind == StoreArtifact::Kind::kFull) {
    StatusOr<ShardManifest> manifest = ReadShardedSnapshotManifest(path);
    if (!manifest.ok()) return manifest.status();
    const int64_t recorded = manifest.value().parent_version;
    if (recorded != 0 && recorded != artifact.version) {
      return Status::DataLoss(path + ": manifest version " +
                              std::to_string(recorded) +
                              " does not match filename version " +
                              std::to_string(artifact.version));
    }
    return Status::OK();
  }
  StatusOr<DeltaManifest> manifest = ReadDeltaSnapshotManifest(path);
  if (!manifest.ok()) return manifest.status();
  if (manifest.value().base_version != artifact.base_version ||
      manifest.value().version != artifact.version) {
    return Status::DataLoss(
        path + ": delta chain " +
        std::to_string(manifest.value().base_version) + "->" +
        std::to_string(manifest.value().version) +
        " does not match filename chain " +
        std::to_string(artifact.base_version) + "->" +
        std::to_string(artifact.version));
  }
  return Status::OK();
}

}  // namespace

SnapshotStore::SnapshotStore(std::string dir,
                             const SnapshotStoreOptions& options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.metrics != nullptr) {
    gc_deleted_total_ = options_.metrics->GetCounter("store_gc_deleted_total");
    recovered_total_ = options_.metrics->GetCounter("store_recovered_total");
    quarantined_total_ =
        options_.metrics->GetCounter("store_quarantined_total");
    artifacts_gauge_ = options_.metrics->GetGauge("store_artifacts_total");
    bytes_gauge_ = options_.metrics->GetGauge("store_bytes");
  }
}

StatusOr<std::unique_ptr<SnapshotStore>> SnapshotStore::Open(
    const std::string& dir, const SnapshotStoreOptions& options) {
  if (options.retain_full < 1) {
    return Status::InvalidArgument(
        "SnapshotStoreOptions::retain_full must be >= 1 (got " +
        std::to_string(options.retain_full) + ")");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create store directory " + dir + ": " +
                           ec.message());
  }
  std::unique_ptr<SnapshotStore> store(new SnapshotStore(dir, options));
  IMCAT_RETURN_IF_ERROR(store->Recover());
  return store;
}

std::string SnapshotStore::PathFor(const std::string& filename) const {
  return dir_ + "/" + filename;
}

std::string SnapshotStore::FullPath(int64_t version) const {
  return PathFor(FullName(version));
}

std::string SnapshotStore::DeltaPath(int64_t base_version,
                                     int64_t version) const {
  return PathFor(DeltaName(base_version, version));
}

void SnapshotStore::QuarantineLocked(const std::string& filename,
                                     const std::string& reason) {
  std::error_code ec;
  fs::rename(PathFor(filename), PathFor(filename + kCorruptSuffix), ec);
  ++stats_.quarantined_total;
  if (quarantined_total_ != nullptr) quarantined_total_->Increment();
  if (options_.journal != nullptr) {
    options_.journal->Append(JournalEvent("store_quarantine")
                                 .Set("file", filename)
                                 .Set("reason", reason)
                                 .Set("renamed", !static_cast<bool>(ec)));
  }
}

Status SnapshotStore::WriteManifestLocked() {
  std::ostringstream body;
  body << kManifestMagic << "\n";
  for (const StoreArtifact& a : artifacts_) {
    body << "artifact "
         << (a.kind == StoreArtifact::Kind::kFull ? "full" : "delta") << " "
         << a.version << " " << a.base_version << " "
         << (a.condemned ? "condemned" : "active") << " " << a.filename
         << "\n";
  }
  const std::string text = body.str();
  char checksum_line[32];
  std::snprintf(checksum_line, sizeof(checksum_line), "checksum %016llx\n",
                static_cast<unsigned long long>(
                    Fnv1aHash(text.data(), text.size())));
  AtomicFileWriter writer(PathFor(kManifestName));
  IMCAT_RETURN_IF_ERROR(writer.Open());
  IMCAT_RETURN_IF_ERROR(writer.Write(text));
  IMCAT_RETURN_IF_ERROR(writer.Write(std::string(checksum_line)));
  return writer.Commit();
}

namespace {

/// Outcome of parsing STORE_MANIFEST: entries in file order. A manifest
/// that is unreadable, fails its checksum, or has any malformed line is
/// reported corrupt as a whole — recovery then rebuilds from the scan.
Status ParseManifestFile(const std::string& path,
                         std::vector<StoreArtifact>* entries) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError(path + ": cannot read store manifest");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  const size_t checksum_at = content.rfind("checksum ");
  if (checksum_at == std::string::npos || checksum_at == 0 ||
      content[checksum_at - 1] != '\n') {
    return Status::DataLoss(path + ": store manifest has no checksum line");
  }
  unsigned long long recorded = 0;
  if (std::sscanf(content.c_str() + checksum_at, "checksum %llx",
                  &recorded) != 1) {
    return Status::DataLoss(path + ": unparseable manifest checksum");
  }
  const uint64_t actual = Fnv1aHash(content.data(), checksum_at);
  if (actual != static_cast<uint64_t>(recorded)) {
    return Status::DataLoss(path + ": store manifest checksum mismatch");
  }

  std::istringstream lines(content.substr(0, checksum_at));
  std::string line;
  if (!std::getline(lines, line) || line != kManifestMagic) {
    return Status::DataLoss(path + ": bad store manifest magic");
  }
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag, kind, state;
    StoreArtifact artifact;
    if (!(fields >> tag >> kind >> artifact.version >>
          artifact.base_version >> state >> artifact.filename) ||
        tag != "artifact" || (kind != "full" && kind != "delta") ||
        (state != "active" && state != "condemned")) {
      return Status::DataLoss(path + ": malformed manifest line: " + line);
    }
    artifact.kind = kind == "full" ? StoreArtifact::Kind::kFull
                                   : StoreArtifact::Kind::kDelta;
    artifact.condemned = state == "condemned";
    entries->push_back(std::move(artifact));
  }
  return Status::OK();
}

}  // namespace

Status SnapshotStore::Recover() {
  std::lock_guard<std::mutex> lock(mu_);

  // Step 1: the durable manifest, if it survives its own checksum.
  std::vector<StoreArtifact> listed;
  bool have_manifest = false;
  const std::string manifest_path = PathFor(kManifestName);
  if (fs::exists(manifest_path)) {
    Status parsed = ParseManifestFile(manifest_path, &listed);
    if (parsed.ok()) {
      have_manifest = true;
    } else {
      listed.clear();
      recovery_.manifest_rebuilt = true;
      QuarantineLocked(kManifestName, parsed.message());
    }
  } else {
    recovery_.manifest_rebuilt = true;
  }

  std::set<std::string> active_names;
  std::set<std::string> condemned_names;
  for (const StoreArtifact& a : listed) {
    (a.condemned ? condemned_names : active_names).insert(a.filename);
  }

  // Step 2: scan the directory. Condemned files are a crashed GC's
  // unfinished deletions — finish them now, before validation, so a
  // half-deleted chain cannot be readmitted. `.tmp` files are torn atomic
  // writes (never linked into any chain): plain debris.
  std::vector<StoreArtifact> found;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name == kManifestName) continue;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      std::error_code ec;
      fs::remove(entry.path(), ec);
      ++recovery_.tmp_removed;
      continue;
    }
    if (name.size() >= sizeof(kCorruptSuffix) &&
        name.compare(name.size() - (sizeof(kCorruptSuffix) - 1),
                     sizeof(kCorruptSuffix) - 1, kCorruptSuffix) == 0) {
      continue;  // Already quarantined by an earlier recovery.
    }
    if (condemned_names.count(name) != 0) {
      std::error_code ec;
      fs::remove(entry.path(), ec);
      ++stats_.gc_deleted_total;
      if (gc_deleted_total_ != nullptr) gc_deleted_total_->Increment();
      continue;
    }
    StoreArtifact artifact;
    if (!ParseArtifactName(name, &artifact)) continue;  // Not ours.
    Status valid = ValidateArtifactFile(entry.path().string(), artifact);
    if (!valid.ok()) {
      QuarantineLocked(name, valid.message());
      continue;
    }
    artifact.bytes = FileBytes(entry.path().string());
    found.push_back(std::move(artifact));
  }
  // Every condemned entry is one resumed deletion, whether recovery just
  // unlinked the file or the crashed GC already had.
  recovery_.gc_resumed += static_cast<int64_t>(condemned_names.size());

  // Step 3: reconcile scan against manifest. A valid file the manifest
  // does not list is a publish that crashed before its manifest commit —
  // readmit it (that is the "recovered" in store_recovered_total). An
  // active entry with no file is an operator rm or a lost rename.
  std::sort(found.begin(), found.end(),
            [](const StoreArtifact& a, const StoreArtifact& b) {
              if (a.version != b.version) return a.version < b.version;
              return a.filename < b.filename;
            });
  std::set<std::string> found_names;
  for (const StoreArtifact& a : found) found_names.insert(a.filename);
  for (const std::string& name : active_names) {
    if (found_names.count(name) == 0 &&
        !fs::exists(PathFor(name + kCorruptSuffix))) {
      ++recovery_.missing;
    }
  }
  // Step 4: chain validation. A delta is loadable only if its base chain
  // reaches a full snapshot; orphans (their base was corrupted, removed,
  // or never existed) can never be applied and are quarantined.
  std::set<int64_t> reachable;
  for (const StoreArtifact& a : found) {
    if (a.kind == StoreArtifact::Kind::kFull) reachable.insert(a.version);
  }
  bool grew = true;
  while (grew) {
    grew = false;
    for (const StoreArtifact& a : found) {
      if (a.kind == StoreArtifact::Kind::kDelta &&
          reachable.count(a.version) == 0 &&
          reachable.count(a.base_version) != 0) {
        reachable.insert(a.version);
        grew = true;
      }
    }
  }
  std::vector<StoreArtifact> registered;
  for (StoreArtifact& a : found) {
    if (a.kind == StoreArtifact::Kind::kDelta &&
        reachable.count(a.version) == 0) {
      QuarantineLocked(a.filename,
                       "orphaned delta: no chain of registered artifacts "
                       "reaches base version " +
                           std::to_string(a.base_version));
      continue;
    }
    registered.push_back(std::move(a));
  }
  artifacts_ = std::move(registered);

  // "Recovered" counts only artifacts actually readmitted: valid, chained,
  // and absent from the durable manifest (orphans quarantined above never
  // count — they were not readmitted).
  for (const StoreArtifact& a : artifacts_) {
    if (!have_manifest || active_names.count(a.filename) == 0) {
      ++recovery_.recovered;
      ++stats_.recovered_total;
      if (recovered_total_ != nullptr) recovered_total_->Increment();
    }
  }
  // The store is freshly constructed, so every quarantine counted so far
  // happened during this recovery.
  recovery_.quarantined = stats_.quarantined_total;

  // Step 5: make the durable manifest match reality.
  IMCAT_RETURN_IF_ERROR(WriteManifestLocked());
  UpdateGaugesLocked();

  if (options_.journal != nullptr) {
    int64_t newest = 0;
    for (const StoreArtifact& a : artifacts_) {
      newest = std::max(newest, a.version);
    }
    options_.journal->Append(
        JournalEvent("store_recovery")
            .Set("dir", dir_)
            .Set("manifest_rebuilt", recovery_.manifest_rebuilt)
            .Set("recovered", recovery_.recovered)
            .Set("quarantined", recovery_.quarantined)
            .Set("missing", recovery_.missing)
            .Set("gc_resumed", recovery_.gc_resumed)
            .Set("tmp_removed", recovery_.tmp_removed)
            .Set("artifacts", static_cast<int64_t>(artifacts_.size()))
            .Set("newest_version", newest));
  }
  return Status::OK();
}

Status SnapshotStore::CommitFull(int64_t version) {
  StoreArtifact artifact;
  artifact.kind = StoreArtifact::Kind::kFull;
  artifact.version = version;
  artifact.base_version = 0;
  artifact.filename = FullName(version);
  return CommitArtifact(std::move(artifact));
}

Status SnapshotStore::CommitDelta(int64_t base_version, int64_t version) {
  StoreArtifact artifact;
  artifact.kind = StoreArtifact::Kind::kDelta;
  artifact.version = version;
  artifact.base_version = base_version;
  artifact.filename = DeltaName(base_version, version);
  return CommitArtifact(std::move(artifact));
}

Status SnapshotStore::CommitArtifact(StoreArtifact artifact) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const StoreArtifact& existing : artifacts_) {
    if (existing.filename == artifact.filename) {
      return Status::FailedPrecondition(artifact.filename +
                                        ": already registered");
    }
  }
  const std::string path = PathFor(artifact.filename);
  Status valid = ValidateArtifactFile(path, artifact);
  if (!valid.ok()) {
    if (valid.code() == StatusCode::kDataLoss && fs::exists(path)) {
      QuarantineLocked(artifact.filename, valid.message());
    }
    return valid;
  }
  artifact.bytes = FileBytes(path);

  // Durable step boundary: the artifact exists, the manifest does not
  // list it yet. A kill here is the recovery suite's "recovered" case.
  IMCAT_RETURN_IF_ERROR(CrashPoint("store manifest commit"));

  artifacts_.push_back(artifact);
  std::sort(artifacts_.begin(), artifacts_.end(),
            [](const StoreArtifact& a, const StoreArtifact& b) {
              if (a.condemned != b.condemned) return !a.condemned;
              if (a.version != b.version) return a.version < b.version;
              return a.filename < b.filename;
            });
  Status written = WriteManifestLocked();
  if (!written.ok()) {
    // The durable manifest still has the old contents; keep the in-memory
    // view consistent with it. The artifact file stays on disk and the
    // next recovery readmits it.
    artifacts_.erase(
        std::remove_if(artifacts_.begin(), artifacts_.end(),
                       [&](const StoreArtifact& a) {
                         return a.filename == artifact.filename;
                       }),
        artifacts_.end());
    return written;
  }
  ++stats_.committed_total;
  UpdateGaugesLocked();
  if (options_.journal != nullptr) {
    options_.journal->Append(
        JournalEvent("store_commit")
            .Set("kind", artifact.kind == StoreArtifact::Kind::kFull
                             ? "full"
                             : "delta")
            .Set("version", artifact.version)
            .Set("base_version", artifact.base_version)
            .Set("bytes", artifact.bytes));
  }
  if (options_.gc_on_commit) return RunGCLocked();
  return Status::OK();
}

Status SnapshotStore::RunGC() {
  std::lock_guard<std::mutex> lock(mu_);
  return RunGCLocked();
}

Status SnapshotStore::RunGCLocked() {
  // Retained full snapshots: the newest retain_full of them, plus the
  // root of the live lineage.
  std::vector<int64_t> full_versions;
  for (const StoreArtifact& a : artifacts_) {
    if (!a.condemned && a.kind == StoreArtifact::Kind::kFull) {
      full_versions.push_back(a.version);
    }
  }
  std::sort(full_versions.rbegin(), full_versions.rend());
  std::set<int64_t> retained_fulls(
      full_versions.begin(),
      full_versions.begin() +
          std::min<size_t>(full_versions.size(),
                           static_cast<size_t>(options_.retain_full)));

  // Versions reachable from a retained full — those deltas stay. Chains
  // rooted at a dropped full die with it (chain-aware retention).
  std::set<int64_t> reachable(retained_fulls);
  bool grew = true;
  while (grew) {
    grew = false;
    for (const StoreArtifact& a : artifacts_) {
      if (!a.condemned && a.kind == StoreArtifact::Kind::kDelta &&
          reachable.count(a.version) == 0 &&
          reachable.count(a.base_version) != 0) {
        reachable.insert(a.version);
        grew = true;
      }
    }
  }

  // The live lineage is untouchable regardless of retention: walk back
  // from live_version_ through whatever chain produces it.
  std::set<std::string> protected_names;
  if (live_version_ >= 0) {
    int64_t cursor = live_version_;
    bool walked = true;
    while (walked) {
      walked = false;
      for (const StoreArtifact& a : artifacts_) {
        if (a.condemned || a.version != cursor) continue;
        protected_names.insert(a.filename);
        if (a.kind == StoreArtifact::Kind::kDelta) {
          cursor = a.base_version;
          walked = true;
        }
        break;
      }
    }
  }

  // Victims: deltas first, chain tip before its parent, so an interrupted
  // deletion always leaves a loadable chain *prefix* (base without tip),
  // never a delta whose base is gone.
  std::vector<std::string> victims;
  auto is_victim = [&](const StoreArtifact& a) {
    if (a.condemned) return false;
    if (protected_names.count(a.filename) != 0) return false;
    if (a.kind == StoreArtifact::Kind::kFull) {
      return retained_fulls.count(a.version) == 0;
    }
    return reachable.count(a.version) == 0;
  };
  std::vector<const StoreArtifact*> ordered;
  for (const StoreArtifact& a : artifacts_) {
    if (is_victim(a)) ordered.push_back(&a);
  }
  if (ordered.empty()) return Status::OK();
  std::sort(ordered.begin(), ordered.end(),
            [](const StoreArtifact* a, const StoreArtifact* b) {
              const bool a_delta = a->kind == StoreArtifact::Kind::kDelta;
              const bool b_delta = b->kind == StoreArtifact::Kind::kDelta;
              if (a_delta != b_delta) return a_delta;
              return a->version > b->version;
            });
  for (const StoreArtifact* a : ordered) victims.push_back(a->filename);
  std::set<std::string> victim_names(victims.begin(), victims.end());

  // Durable step 1: condemn the victims in the manifest BEFORE touching
  // any file. A kill after this write leaves condemned entries whose
  // files recovery deletes; a kill before it leaves the store unchanged.
  IMCAT_RETURN_IF_ERROR(CrashPoint("gc condemn manifest write"));
  for (StoreArtifact& a : artifacts_) {
    if (victim_names.count(a.filename) != 0) a.condemned = true;
  }
  Status condemned_written = WriteManifestLocked();
  if (!condemned_written.ok()) {
    for (StoreArtifact& a : artifacts_) {
      if (victim_names.count(a.filename) != 0) a.condemned = false;
    }
    return condemned_written;
  }

  // Durable steps 2..n: the unlinks, deltas before bases.
  int64_t deleted = 0;
  int64_t bytes_freed = 0;
  for (const std::string& name : victims) {
    IMCAT_RETURN_IF_ERROR(CrashPoint("gc unlink"));
    const std::string path = PathFor(name);
    bytes_freed += FileBytes(path);
    std::error_code ec;
    fs::remove(path, ec);
    ++deleted;
    ++stats_.gc_deleted_total;
    if (gc_deleted_total_ != nullptr) gc_deleted_total_->Increment();
  }

  // Durable step n+1: drop the condemned entries.
  IMCAT_RETURN_IF_ERROR(CrashPoint("gc final manifest write"));
  std::vector<StoreArtifact> survivors;
  for (StoreArtifact& a : artifacts_) {
    if (victim_names.count(a.filename) == 0) survivors.push_back(a);
  }
  std::vector<StoreArtifact> previous = artifacts_;
  artifacts_ = std::move(survivors);
  Status final_written = WriteManifestLocked();
  if (!final_written.ok()) {
    artifacts_ = std::move(previous);  // Still condemned; recovery resumes.
    return final_written;
  }
  UpdateGaugesLocked();
  if (options_.journal != nullptr) {
    options_.journal->Append(
        JournalEvent("store_gc")
            .Set("deleted", deleted)
            .Set("bytes_freed", bytes_freed)
            .Set("retained", static_cast<int64_t>(artifacts_.size()))
            .Set("live_version", live_version_));
  }
  return Status::OK();
}

StatusOr<StoreLineage> SnapshotStore::NewestLineage() const {
  std::lock_guard<std::mutex> lock(mu_);
  return NewestLineageLocked();
}

StatusOr<StoreLineage> SnapshotStore::NewestLineageLocked() const {
  // Try terminal versions from newest to oldest; the first one whose
  // chain walks back to a full snapshot wins. Post-recovery every
  // registered delta is reachable, so the first candidate succeeds; this
  // stays robust anyway against a store mutated behind our back.
  std::vector<int64_t> terminals;
  for (const StoreArtifact& a : artifacts_) {
    if (!a.condemned) terminals.push_back(a.version);
  }
  std::sort(terminals.rbegin(), terminals.rend());
  terminals.erase(std::unique(terminals.begin(), terminals.end()),
                  terminals.end());
  for (int64_t terminal : terminals) {
    StoreLineage lineage;
    lineage.version = terminal;
    int64_t cursor = terminal;
    std::vector<std::string> reversed_deltas;
    bool broken = false;
    while (true) {
      // Prefer a full snapshot at this version (shortest chain).
      const StoreArtifact* full = nullptr;
      const StoreArtifact* delta = nullptr;
      for (const StoreArtifact& a : artifacts_) {
        if (a.condemned || a.version != cursor) continue;
        if (a.kind == StoreArtifact::Kind::kFull) full = &a;
        if (a.kind == StoreArtifact::Kind::kDelta) delta = &a;
      }
      if (full != nullptr) {
        lineage.full_path = PathFor(full->filename);
        break;
      }
      if (delta == nullptr) {
        broken = true;
        break;
      }
      reversed_deltas.push_back(PathFor(delta->filename));
      cursor = delta->base_version;
    }
    if (broken) continue;
    lineage.delta_paths.assign(reversed_deltas.rbegin(),
                               reversed_deltas.rend());
    return lineage;
  }
  return Status::NotFound(dir_ + ": no loadable snapshot lineage");
}

Status SnapshotStore::LoadInto(RecService* service) const {
  StoreLineage lineage;
  {
    std::lock_guard<std::mutex> lock(mu_);
    StatusOr<StoreLineage> newest = NewestLineageLocked();
    if (!newest.ok()) return newest.status();
    lineage = std::move(newest).value();
  }
  // Load outside the store lock: RecService does its own retries.
  IMCAT_RETURN_IF_ERROR(service->LoadSnapshot(lineage.full_path));
  for (const std::string& delta : lineage.delta_paths) {
    IMCAT_RETURN_IF_ERROR(service->LoadDelta(delta));
  }
  return Status::OK();
}

void SnapshotStore::set_live_version(int64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  live_version_ = version;
}

int64_t SnapshotStore::NextVersion() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t newest = 0;
  for (const StoreArtifact& a : artifacts_) {
    if (!a.condemned) newest = std::max(newest, a.version);
  }
  newest = std::max(newest, live_version_);
  return newest + 1;
}

StoreStats SnapshotStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<StoreArtifact> SnapshotStore::Artifacts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return artifacts_;
}

void SnapshotStore::UpdateGaugesLocked() {
  int64_t count = 0;
  int64_t bytes = 0;
  for (const StoreArtifact& a : artifacts_) {
    if (a.condemned) continue;
    ++count;
    bytes += a.bytes;
  }
  stats_.artifacts = count;
  stats_.bytes = bytes;
  if (artifacts_gauge_ != nullptr) {
    artifacts_gauge_->Set(static_cast<double>(count));
  }
  if (bytes_gauge_ != nullptr) bytes_gauge_->Set(static_cast<double>(bytes));
}

}  // namespace imcat
