#ifndef IMCAT_SERVE_SNAPSHOT_STORE_H_
#define IMCAT_SERVE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/status.h"

/// \file snapshot_store.h
/// Crash-safe lifecycle management for the snapshot directory the
/// train->serve loop publishes into. The publishers (OnlineUpdater,
/// ExportServingCheckpoint) write durable artifacts — full sharded
/// snapshots ("IMS3") and delta snapshots ("IMD3") — but a directory of
/// artifacts is not a system: a crash mid-publish strands a valid file
/// nobody knows about, a disk-full or an operator `rm` breaks the delta
/// chain RecService needs, and nothing ever deletes anything. The store
/// owns the directory end-to-end:
///
///  - **publish**: versioned file naming (`full-<version>.ims3`,
///    `delta-<base>-<version>.imd3`), every artifact written atomically by
///    its format writer, and a checksummed `STORE_MANIFEST` rewritten
///    (atomically) *last* — so a publish is one atomic transition:
///    either the manifest lists the artifact or the next startup recovery
///    finds-and-readmits it;
///  - **startup recovery** (`Open`): scan the directory, drop `*.tmp`
///    debris, validate every artifact's internal manifest, quarantine
///    anything torn or mis-labeled (rename to `<name>.corrupt`, journal
///    event), readmit valid artifacts the store manifest missed
///    (crashed publishes), finish deletions a crashed GC left behind
///    (condemned entries), quarantine deltas whose chain to a full
///    snapshot is broken, and rewrite the manifest to match reality;
///  - **retention GC** (`RunGC`): keep the newest `retain_full` full
///    snapshots plus every delta still chained to a retained base,
///    never touching the live-loaded lineage, and delete the rest
///    crash-safely — manifest first (victims marked *condemned*), then
///    files (deltas before their base, chain tip first), then the
///    manifest again (condemned entries dropped). A crash at any point
///    leaves either extra-but-consistent files (recovery resumes the
///    deletion) or a shorter-but-loadable chain, never an unloadable
///    store.
///
/// The recovery state machine, spelled out (DESIGN.md durability
/// section): a file can be *unregistered* (valid on disk, not in the
/// manifest -> readmitted, `store_recovered_total`), *active* (listed and
/// valid), *condemned* (listed, deletion decided but possibly unfinished
/// -> deletion resumed), *torn* (fails validation -> `.corrupt`,
/// `store_quarantined_total`), or *debris* (`*.tmp` -> removed). The
/// manifest-last publish order and the condemn-first GC order make every
/// crash interleaving land in exactly one of those states.
///
/// Metrics (when `options.metrics` is set): `store_artifacts_total` /
/// `store_bytes` gauges of the current registered store,
/// `store_gc_deleted_total`, `store_recovered_total`,
/// `store_quarantined_total` counters. Journal events: `store_recovery`
/// (one per Open), `store_gc` (one per collecting run), `store_commit`
/// (one per registered publish), `store_quarantine` (one per renamed
/// file).
///
/// Thread-safe: one mutex over all store state. The store is a
/// control-plane object (publishes and GCs are rare); serving reads go
/// through RecService's own snapshot pointer, never through the store.

namespace imcat {

class RecService;

/// One artifact registered in the store manifest.
struct StoreArtifact {
  enum class Kind { kFull, kDelta };
  Kind kind = Kind::kFull;
  /// Version this artifact produces when loaded/applied.
  int64_t version = 0;
  /// For deltas, the version the delta chains onto; 0 for full snapshots.
  int64_t base_version = 0;
  /// File name inside the store directory.
  std::string filename;
  int64_t bytes = 0;
  /// GC tombstone: deletion decided (manifest committed) but possibly not
  /// finished. Recovery completes it; the artifact is never loadable.
  bool condemned = false;
};

/// Store configuration.
struct SnapshotStoreOptions {
  /// Full snapshots to retain (>= 1). Deltas survive exactly as long as
  /// the full snapshot their chain is rooted at.
  int64_t retain_full = 2;
  /// Run retention GC automatically after every successful commit.
  bool gc_on_commit = true;
  /// Optional instrumentation (metrics + journal names above).
  MetricsRegistry* metrics = nullptr;
  RunJournal* journal = nullptr;
};

/// What startup recovery found and fixed (one per Open).
struct StoreRecoveryReport {
  /// STORE_MANIFEST was missing or failed its checksum and was rebuilt
  /// from the directory scan (the corrupt file, if any, is quarantined).
  bool manifest_rebuilt = false;
  /// Valid artifacts readmitted that the durable manifest did not list
  /// (publishes that crashed between artifact write and manifest commit,
  /// or everything when the manifest itself was rebuilt).
  int64_t recovered = 0;
  /// Files renamed to `.corrupt`: torn artifacts, mis-labeled artifacts,
  /// orphaned deltas (chain to a full snapshot broken), corrupt manifest.
  int64_t quarantined = 0;
  /// Manifest entries whose file vanished (operator rm, lost directory
  /// entry after an unsynced rename).
  int64_t missing = 0;
  /// Condemned entries whose deletion a crashed GC left unfinished and
  /// recovery completed.
  int64_t gc_resumed = 0;
  /// `*.tmp` files (torn atomic writes) removed.
  int64_t tmp_removed = 0;
};

/// Monotonic store counters (one consistent read; the lifetime counters
/// also feed the `store_*` metrics when instrumentation is wired).
struct StoreStats {
  int64_t artifacts = 0;  ///< Currently registered (non-condemned).
  int64_t bytes = 0;      ///< Their total on-disk size.
  int64_t committed_total = 0;
  int64_t gc_deleted_total = 0;
  int64_t recovered_total = 0;
  int64_t quarantined_total = 0;
};

/// The newest loadable base+delta chain: load `full_path`, then apply
/// `delta_paths` in order to reach `version`.
struct StoreLineage {
  int64_t version = 0;
  std::string full_path;
  std::vector<std::string> delta_paths;
};

/// Owns one snapshot directory: publish registration, startup recovery,
/// chain-aware retention GC.
class SnapshotStore {
 public:
  /// Opens (creating if needed) the store directory and runs startup
  /// recovery (see file comment). Fails with kIoError when the directory
  /// cannot be created or the recovered manifest cannot be written.
  static StatusOr<std::unique_ptr<SnapshotStore>> Open(
      const std::string& dir, const SnapshotStoreOptions& options = {});

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Path an artifact of the given version must be written to (inside the
  /// store directory, versioned name). The writer (WriteShardedSnapshot /
  /// WriteDeltaSnapshot) is atomic, so the file appears fully-formed.
  std::string FullPath(int64_t version) const;
  std::string DeltaPath(int64_t base_version, int64_t version) const;

  /// Registers an artifact previously written to FullPath/DeltaPath: the
  /// file is validated (its internal manifest must parse, checksum and
  /// agree with the versions in its name — a torn file is quarantined and
  /// kDataLoss returned), then the store manifest is rewritten atomically.
  /// With `gc_on_commit`, a successful commit triggers RunGC; a GC error
  /// is returned but the commit itself is already durable.
  Status CommitFull(int64_t version);
  Status CommitDelta(int64_t base_version, int64_t version);

  /// The newest version reachable through registered artifacts, with the
  /// full snapshot and delta chain that loads it. kNotFound when the
  /// store has no loadable chain.
  StatusOr<StoreLineage> NewestLineage() const;

  /// Hands the newest valid lineage to a RecService: LoadSnapshot on the
  /// chain's full snapshot, then LoadDelta for each chained delta.
  Status LoadInto(RecService* service) const;

  /// Retention GC (see file comment). No-op when nothing is deletable.
  Status RunGC();

  /// The version RecService currently serves. GC never condemns any
  /// artifact in this version's lineage, even when retention would drop
  /// it. Negative (the default) protects only by retention.
  void set_live_version(int64_t version);

  /// One past the newest version the store knows (>= 1); the version a
  /// store-assigned full publish should use.
  int64_t NextVersion() const;

  const std::string& dir() const { return dir_; }
  const StoreRecoveryReport& recovery_report() const { return recovery_; }
  StoreStats stats() const;
  /// Registered artifacts, ascending by version (condemned ones last).
  std::vector<StoreArtifact> Artifacts() const;

 private:
  SnapshotStore(std::string dir, const SnapshotStoreOptions& options);

  /// Startup recovery; only called from Open.
  Status Recover();

  Status CommitArtifact(StoreArtifact artifact);
  Status RunGCLocked();
  Status WriteManifestLocked();
  StatusOr<StoreLineage> NewestLineageLocked() const;
  /// Renames `filename` to `filename.corrupt` and journals it.
  void QuarantineLocked(const std::string& filename,
                        const std::string& reason);
  void UpdateGaugesLocked();
  std::string PathFor(const std::string& filename) const;

  const std::string dir_;
  const SnapshotStoreOptions options_;

  mutable std::mutex mu_;
  std::vector<StoreArtifact> artifacts_;
  int64_t live_version_ = -1;
  StoreRecoveryReport recovery_;
  StoreStats stats_;

  Counter* gc_deleted_total_ = nullptr;
  Counter* recovered_total_ = nullptr;
  Counter* quarantined_total_ = nullptr;
  Gauge* artifacts_gauge_ = nullptr;
  Gauge* bytes_gauge_ = nullptr;
};

}  // namespace imcat

#endif  // IMCAT_SERVE_SNAPSHOT_STORE_H_
