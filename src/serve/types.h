#ifndef IMCAT_SERVE_TYPES_H_
#define IMCAT_SERVE_TYPES_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

/// \file types.h
/// Request/response value types shared across the serving layer.

namespace imcat {

/// One recommended item with its relevance score (inner-product score on
/// the real path, train-split item degree on the popularity fallback).
struct ScoredItem {
  int64_t item = -1;
  float score = 0.0f;
};

/// Request priority class, used by the overload controller's shedding
/// order: under CoDel-declared overload, batch traffic is shed first so
/// interactive traffic keeps the queue.
enum class RequestPriority {
  kInteractive = 0,
  kBatch = 1,
};

/// Human-readable priority name ("interactive" / "batch").
inline const char* PriorityName(RequestPriority priority) {
  return priority == RequestPriority::kBatch ? "batch" : "interactive";
}

/// A recommendation request. Zero-valued fields fall back to the service
/// defaults, so `RecRequest{.user = 7}` is a complete request.
struct RecRequest {
  int64_t user = 0;
  /// Number of items wanted; 0 uses the service default.
  int64_t top_k = 0;
  /// Per-request deadline budget. 0 uses the service default; negative
  /// disables the deadline entirely.
  double deadline_ms = 0.0;
  /// Item ids to exclude from the ranking (e.g. the user's seen items).
  /// Out-of-range ids are ignored.
  std::vector<int64_t> exclude;
  /// Restricts ranking to the item-id range [item_begin, item_end) — e.g. a
  /// category encoded as a contiguous id block. Both zero (the default)
  /// means the full catalogue. A malformed range (begin < 0, end > the
  /// catalogue size, or end <= begin) is kInvalidArgument.
  int64_t item_begin = 0;
  int64_t item_end = 0;
  /// Priority class for overload shedding; interactive by default.
  RequestPriority priority = RequestPriority::kInteractive;
};

/// A recommendation response. `status` is always definite: OK (possibly
/// degraded), kInvalidArgument, kDeadlineExceeded or kUnavailable — the
/// service never hangs and never crashes the caller.
struct RecResponse {
  Status status;
  std::vector<ScoredItem> items;
  /// True when the items come from the popularity fallback rather than
  /// model scores (circuit breaker open or no loadable snapshot).
  bool degraded = false;
  /// True when the request's item range overlaps one or more quarantined
  /// snapshot shards: items in healthy shards carry real model scores, and
  /// the quarantined ranges are backfilled from the popularity ranking.
  /// Mutually exclusive with `degraded` (which means no model scores at
  /// all).
  bool partial_degraded = false;
  /// Number of quarantined shards in the serving snapshot at response time
  /// (0 when fully healthy or degraded-without-snapshot).
  int64_t quarantined_shards = 0;
  /// Version of the snapshot that scored this response (0 for degraded
  /// fallback responses, which use no snapshot).
  int64_t snapshot_version = 0;
  /// Measured time this request spent in the work queue (enqueue to
  /// dequeue), in milliseconds — the same sojourn the overload controller
  /// sees. 0 for requests refused before enqueue (shed / invalid).
  double queue_wait_ms = 0.0;
  /// Brownout ladder level in effect when this response was produced
  /// (0 = full quality). Level >= 1 shrinks the scoring budget; level >= 2
  /// additionally serves batch-priority traffic from the popularity
  /// fallback.
  int64_t brownout_level = 0;
};

}  // namespace imcat

#endif  // IMCAT_SERVE_TYPES_H_
