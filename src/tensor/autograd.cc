#include "tensor/autograd.h"

#include <unordered_set>
#include <vector>

namespace imcat {

void Backward(const Tensor& loss) {
  IMCAT_CHECK_EQ(loss.size(), 1);
  using Node = internal::TensorNode;
  Node* root = loss.node_ptr().get();
  if (!root->requires_grad) return;

  // Iterative post-order DFS to produce a topological order (children after
  // all parents-of-children... i.e. node appears after everything it feeds).
  std::vector<Node*> topo;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && visited.insert(p).second) {
        stack.push_back({p, 0});
      }
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }

  root->EnsureGrad();
  root->grad[0] += 1.0f;

  // topo holds nodes with all consumers later in the vector (post-order),
  // so iterating in reverse visits each node before its producers.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

}  // namespace imcat
