#ifndef IMCAT_TENSOR_AUTOGRAD_H_
#define IMCAT_TENSOR_AUTOGRAD_H_

#include "tensor/tensor.h"

/// \file autograd.h
/// Reverse-mode differentiation over the op graph built by ops.h.

namespace imcat {

/// Runs the backward pass from a scalar (1x1) `loss` tensor: seeds its
/// gradient with 1 and accumulates d(loss)/d(node) into every node that
/// requires gradients, in reverse topological order.
///
/// Gradients accumulate across calls; callers are responsible for zeroing
/// parameter gradients between optimisation steps (Optimizer::ZeroGrad).
void Backward(const Tensor& loss);

}  // namespace imcat

#endif  // IMCAT_TENSOR_AUTOGRAD_H_
