#include "tensor/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/atomic_file.h"
#include "util/checksum.h"
#include "util/fault_injector.h"

namespace imcat {

namespace {

constexpr char kMagic[4] = {'I', 'M', 'C', 'T'};
constexpr uint32_t kVersionLegacy = 1;  ///< Tensors only, no state byte.
constexpr uint32_t kVersion = 2;        ///< Tensors + optional train state.

template <typename T>
Status WriteValue(AtomicFileWriter* out, Fnv1a* hash, T value) {
  hash->Update(&value, sizeof(value));
  return out->Write(&value, sizeof(value));
}

Status WriteFloats(AtomicFileWriter* out, Fnv1a* hash, const float* data,
                   size_t count) {
  const size_t bytes = count * sizeof(float);
  hash->Update(data, bytes);
  return out->Write(data, bytes);
}

/// Checkpoint byte-stream reader: tracks the running checksum and the
/// total file size so length fields can be validated before any
/// allocation (a bit-flipped length must fail cleanly, never bad_alloc).
class Reader {
 public:
  Status Open(const std::string& path) {
    path_ = path;
    in_.open(path, std::ios::binary | std::ios::ate);
    if (!in_.is_open()) return Status::IoError("cannot open " + path);
    file_size_ = static_cast<int64_t>(in_.tellg());
    in_.seekg(0, std::ios::beg);
    return Status::OK();
  }

  const std::string& path() const { return path_; }
  uint64_t checksum() const { return hash_.value(); }
  int64_t remaining() const { return file_size_ - pos_; }

  Status ReadBytes(void* out, size_t size, bool hashed = true) {
    if (static_cast<int64_t>(size) > remaining()) {
      return Status::DataLoss(path_ + ": truncated checkpoint");
    }
    in_.read(static_cast<char*>(out), static_cast<std::streamsize>(size));
    if (!in_.good()) return Status::DataLoss(path_ + ": truncated checkpoint");
    // Injected read-side corruption (the on-disk file stays intact); the
    // running checksum hashes what the reader actually saw, so a flipped
    // byte surfaces as a checksum mismatch.
    FaultInjector& injector = FaultInjector::Instance();
    if (injector.enabled()) {
      injector.FilterRead(pos_, static_cast<unsigned char*>(out), size);
    }
    pos_ += static_cast<int64_t>(size);
    if (hashed) hash_.Update(out, size);
    return Status::OK();
  }

  template <typename T>
  Status Read(T* value) {
    return ReadBytes(value, sizeof(*value));
  }

  /// Validates `count` floats fit in the remaining bytes, then reads them.
  Status ReadFloats(uint64_t count, std::vector<float>* out) {
    if (count > static_cast<uint64_t>(remaining()) / sizeof(float)) {
      return Status::DataLoss(path_ + ": truncated checkpoint");
    }
    out->resize(count);
    return ReadBytes(out->data(), count * sizeof(float));
  }

  Status Skip(uint64_t bytes) {
    if (bytes > static_cast<uint64_t>(remaining())) {
      return Status::DataLoss(path_ + ": truncated checkpoint");
    }
    in_.seekg(static_cast<std::streamoff>(bytes), std::ios::cur);
    if (!in_.good()) return Status::DataLoss(path_ + ": truncated checkpoint");
    pos_ += static_cast<int64_t>(bytes);
    return Status::OK();
  }

 private:
  std::string path_;
  std::ifstream in_;
  Fnv1a hash_;
  int64_t file_size_ = 0;
  int64_t pos_ = 0;
};

Status ReadHeader(Reader* in, uint32_t* version, uint64_t* count) {
  char magic[4];
  Status st = in->ReadBytes(magic, sizeof(magic));
  if (!st.ok() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(in->path() + ": not an IMCAT checkpoint");
  }
  IMCAT_RETURN_IF_ERROR(in->Read(version));
  if (*version != kVersionLegacy && *version != kVersion) {
    return Status::InvalidArgument(in->path() +
                                   ": unsupported checkpoint version " +
                                   std::to_string(*version));
  }
  return in->Read(count);
}

Status WriteTrainState(AtomicFileWriter* out, Fnv1a* hash,
                       const TrainState& state) {
  IMCAT_RETURN_IF_ERROR(WriteValue(out, hash, state.epoch));
  IMCAT_RETURN_IF_ERROR(WriteValue(out, hash, state.best_epoch));
  IMCAT_RETURN_IF_ERROR(WriteValue(out, hash, state.best_recall));
  IMCAT_RETURN_IF_ERROR(WriteValue(out, hash, state.best_ndcg));
  IMCAT_RETURN_IF_ERROR(WriteValue(out, hash, state.best_precision));
  IMCAT_RETURN_IF_ERROR(WriteValue(out, hash, state.best_hit_rate));
  IMCAT_RETURN_IF_ERROR(WriteValue(out, hash, state.best_mrr));
  IMCAT_RETURN_IF_ERROR(WriteValue(out, hash, state.best_num_users));
  IMCAT_RETURN_IF_ERROR(WriteValue(out, hash, state.train_seconds));
  IMCAT_RETURN_IF_ERROR(
      WriteValue(out, hash, state.evals_without_improvement));
  IMCAT_RETURN_IF_ERROR(WriteValue(out, hash, state.lr_scale));
  for (uint64_t word : state.rng.s) {
    IMCAT_RETURN_IF_ERROR(WriteValue(out, hash, word));
  }
  IMCAT_RETURN_IF_ERROR(WriteValue(
      out, hash, static_cast<uint8_t>(state.rng.have_cached_normal)));
  IMCAT_RETURN_IF_ERROR(WriteValue(out, hash, state.rng.cached_normal));

  IMCAT_RETURN_IF_ERROR(
      WriteValue(out, hash, static_cast<uint8_t>(state.has_optimizer)));
  if (state.has_optimizer) {
    IMCAT_RETURN_IF_ERROR(WriteValue(out, hash, state.optimizer.step));
    IMCAT_RETURN_IF_ERROR(WriteValue(
        out, hash, static_cast<uint64_t>(state.optimizer.m.size())));
    for (size_t i = 0; i < state.optimizer.m.size(); ++i) {
      IMCAT_CHECK_EQ(state.optimizer.m[i].size(), state.optimizer.v[i].size());
      IMCAT_RETURN_IF_ERROR(WriteValue(
          out, hash, static_cast<uint64_t>(state.optimizer.m[i].size())));
      IMCAT_RETURN_IF_ERROR(WriteFloats(out, hash, state.optimizer.m[i].data(),
                                        state.optimizer.m[i].size()));
      IMCAT_RETURN_IF_ERROR(WriteFloats(out, hash, state.optimizer.v[i].data(),
                                        state.optimizer.v[i].size()));
    }
  }

  IMCAT_RETURN_IF_ERROR(
      WriteValue(out, hash, static_cast<uint8_t>(state.has_best_params)));
  if (state.has_best_params) {
    IMCAT_RETURN_IF_ERROR(WriteValue(
        out, hash, static_cast<uint64_t>(state.best_params.size())));
    for (const std::vector<float>& p : state.best_params) {
      IMCAT_RETURN_IF_ERROR(
          WriteValue(out, hash, static_cast<uint64_t>(p.size())));
      IMCAT_RETURN_IF_ERROR(WriteFloats(out, hash, p.data(), p.size()));
    }
  }
  return Status::OK();
}

Status ReadTrainState(Reader* in, TrainState* state) {
  IMCAT_RETURN_IF_ERROR(in->Read(&state->epoch));
  IMCAT_RETURN_IF_ERROR(in->Read(&state->best_epoch));
  IMCAT_RETURN_IF_ERROR(in->Read(&state->best_recall));
  IMCAT_RETURN_IF_ERROR(in->Read(&state->best_ndcg));
  IMCAT_RETURN_IF_ERROR(in->Read(&state->best_precision));
  IMCAT_RETURN_IF_ERROR(in->Read(&state->best_hit_rate));
  IMCAT_RETURN_IF_ERROR(in->Read(&state->best_mrr));
  IMCAT_RETURN_IF_ERROR(in->Read(&state->best_num_users));
  IMCAT_RETURN_IF_ERROR(in->Read(&state->train_seconds));
  IMCAT_RETURN_IF_ERROR(in->Read(&state->evals_without_improvement));
  IMCAT_RETURN_IF_ERROR(in->Read(&state->lr_scale));
  for (uint64_t& word : state->rng.s) {
    IMCAT_RETURN_IF_ERROR(in->Read(&word));
  }
  uint8_t have_cached = 0;
  IMCAT_RETURN_IF_ERROR(in->Read(&have_cached));
  state->rng.have_cached_normal = have_cached != 0;
  IMCAT_RETURN_IF_ERROR(in->Read(&state->rng.cached_normal));

  uint8_t has_optimizer = 0;
  IMCAT_RETURN_IF_ERROR(in->Read(&has_optimizer));
  state->has_optimizer = has_optimizer != 0;
  if (state->has_optimizer) {
    IMCAT_RETURN_IF_ERROR(in->Read(&state->optimizer.step));
    uint64_t param_count = 0;
    IMCAT_RETURN_IF_ERROR(in->Read(&param_count));
    // Each parameter contributes at least a length field; a bit-flipped
    // count must fail before the resize below can over-allocate.
    if (param_count >
        static_cast<uint64_t>(in->remaining()) / sizeof(uint64_t)) {
      return Status::DataLoss(in->path() + ": truncated checkpoint");
    }
    state->optimizer.m.resize(param_count);
    state->optimizer.v.resize(param_count);
    for (uint64_t i = 0; i < param_count; ++i) {
      uint64_t n = 0;
      IMCAT_RETURN_IF_ERROR(in->Read(&n));
      if (n > static_cast<uint64_t>(in->remaining()) / (2 * sizeof(float))) {
        return Status::DataLoss(in->path() + ": truncated checkpoint");
      }
      IMCAT_RETURN_IF_ERROR(in->ReadFloats(n, &state->optimizer.m[i]));
      IMCAT_RETURN_IF_ERROR(in->ReadFloats(n, &state->optimizer.v[i]));
    }
  }

  uint8_t has_best = 0;
  IMCAT_RETURN_IF_ERROR(in->Read(&has_best));
  state->has_best_params = has_best != 0;
  if (state->has_best_params) {
    uint64_t count = 0;
    IMCAT_RETURN_IF_ERROR(in->Read(&count));
    if (count > static_cast<uint64_t>(in->remaining()) / sizeof(uint64_t)) {
      return Status::DataLoss(in->path() + ": truncated checkpoint");
    }
    state->best_params.resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t n = 0;
      IMCAT_RETURN_IF_ERROR(in->Read(&n));
      IMCAT_RETURN_IF_ERROR(in->ReadFloats(n, &state->best_params[i]));
    }
  }
  return Status::OK();
}

Status SaveImpl(const std::string& path, const std::vector<Tensor>& tensors,
                const TrainState* state) {
  AtomicFileWriter out(path);
  IMCAT_RETURN_IF_ERROR(out.Open());
  Fnv1a hash;
  hash.Update(kMagic, sizeof(kMagic));
  IMCAT_RETURN_IF_ERROR(out.Write(kMagic, sizeof(kMagic)));
  IMCAT_RETURN_IF_ERROR(WriteValue(&out, &hash, kVersion));
  IMCAT_RETURN_IF_ERROR(
      WriteValue(&out, &hash, static_cast<uint64_t>(tensors.size())));
  for (const Tensor& t : tensors) {
    IMCAT_CHECK(t.defined());
    IMCAT_RETURN_IF_ERROR(
        WriteValue(&out, &hash, static_cast<uint64_t>(t.rows())));
    IMCAT_RETURN_IF_ERROR(
        WriteValue(&out, &hash, static_cast<uint64_t>(t.cols())));
    IMCAT_RETURN_IF_ERROR(
        WriteFloats(&out, &hash, t.data(), static_cast<size_t>(t.size())));
  }
  IMCAT_RETURN_IF_ERROR(
      WriteValue(&out, &hash, static_cast<uint8_t>(state != nullptr)));
  if (state != nullptr) {
    IMCAT_RETURN_IF_ERROR(WriteTrainState(&out, &hash, *state));
  }
  const uint64_t checksum = hash.value();
  IMCAT_RETURN_IF_ERROR(out.Write(&checksum, sizeof(checksum)));
  return out.Commit();
}

Status LoadImpl(const std::string& path, std::vector<Tensor>* tensors,
                TrainState* state, bool* has_state) {
  Reader in;
  IMCAT_RETURN_IF_ERROR(in.Open(path));
  uint32_t version = 0;
  uint64_t count = 0;
  IMCAT_RETURN_IF_ERROR(ReadHeader(&in, &version, &count));
  if (count != tensors->size()) {
    return Status::InvalidArgument(
        path + ": checkpoint holds " + std::to_string(count) +
        " tensors, model expects " + std::to_string(tensors->size()));
  }
  // Stage into scratch buffers first so a corrupt file leaves the model
  // parameters (and any caller-provided state) untouched.
  std::vector<std::vector<float>> staged(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t rows = 0, cols = 0;
    IMCAT_RETURN_IF_ERROR(in.Read(&rows));
    IMCAT_RETURN_IF_ERROR(in.Read(&cols));
    const Tensor& target = (*tensors)[i];
    if (static_cast<int64_t>(rows) != target.rows() ||
        static_cast<int64_t>(cols) != target.cols()) {
      return Status::InvalidArgument(
          path + ": tensor " + std::to_string(i) + " shape mismatch");
    }
    IMCAT_RETURN_IF_ERROR(in.ReadFloats(rows * cols, &staged[i]));
  }
  TrainState staged_state;
  bool staged_has_state = false;
  if (version >= kVersion) {
    uint8_t flag = 0;
    IMCAT_RETURN_IF_ERROR(in.Read(&flag));
    staged_has_state = flag != 0;
    if (staged_has_state) {
      IMCAT_RETURN_IF_ERROR(ReadTrainState(&in, &staged_state));
    }
  }
  const uint64_t computed = in.checksum();
  uint64_t stored_checksum = 0;
  IMCAT_RETURN_IF_ERROR(
      in.ReadBytes(&stored_checksum, sizeof(stored_checksum), false));
  if (in.remaining() != 0) {
    return Status::DataLoss(path + ": trailing bytes after checksum");
  }
  if (stored_checksum != computed) {
    return Status::DataLoss(path + ": checksum mismatch");
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::memcpy((*tensors)[i].data(), staged[i].data(),
                staged[i].size() * sizeof(float));
  }
  if (state != nullptr && staged_has_state) *state = std::move(staged_state);
  if (has_state != nullptr) *has_state = staged_has_state;
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(const std::string& path,
                      const std::vector<Tensor>& tensors) {
  return SaveImpl(path, tensors, nullptr);
}

Status SaveTrainingCheckpoint(const std::string& path,
                              const std::vector<Tensor>& tensors,
                              const TrainState& state) {
  return SaveImpl(path, tensors, &state);
}

Status LoadCheckpoint(const std::string& path, std::vector<Tensor>* tensors) {
  return LoadImpl(path, tensors, nullptr, nullptr);
}

Status LoadTrainingCheckpoint(const std::string& path,
                              std::vector<Tensor>* tensors, TrainState* state,
                              bool* has_state) {
  return LoadImpl(path, tensors, state, has_state);
}

StatusOr<std::vector<std::pair<int64_t, int64_t>>> ReadCheckpointShapes(
    const std::string& path) {
  Reader in;
  IMCAT_RETURN_IF_ERROR(in.Open(path));
  uint32_t version = 0;
  uint64_t count = 0;
  IMCAT_RETURN_IF_ERROR(ReadHeader(&in, &version, &count));
  std::vector<std::pair<int64_t, int64_t>> shapes;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t rows = 0, cols = 0;
    IMCAT_RETURN_IF_ERROR(in.Read(&rows));
    IMCAT_RETURN_IF_ERROR(in.Read(&cols));
    shapes.emplace_back(static_cast<int64_t>(rows),
                        static_cast<int64_t>(cols));
    // Overflow-safe bound before the multiply: the payload cannot exceed
    // the bytes left in the file.
    if (rows != 0 && cols > static_cast<uint64_t>(in.remaining()) /
                                sizeof(float) / rows) {
      return Status::DataLoss(path + ": truncated checkpoint");
    }
    // Checksum cannot be verified when skipping data; shapes only.
    IMCAT_RETURN_IF_ERROR(in.Skip(rows * cols * sizeof(float)));
  }
  return shapes;
}

}  // namespace imcat
