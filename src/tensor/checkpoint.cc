#include "tensor/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace imcat {

namespace {

constexpr char kMagic[4] = {'I', 'M', 'C', 'T'};
constexpr uint32_t kVersion = 1;

/// Incremental FNV-1a over byte ranges.
class Fnv1a {
 public:
  void Update(const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;
};

template <typename T>
void WriteValue(std::ofstream* out, Fnv1a* hash, T value) {
  out->write(reinterpret_cast<const char*>(&value), sizeof(value));
  hash->Update(&value, sizeof(value));
}

template <typename T>
bool ReadValue(std::ifstream* in, Fnv1a* hash, T* value) {
  in->read(reinterpret_cast<char*>(value), sizeof(*value));
  if (!in->good()) return false;
  if (hash != nullptr) hash->Update(value, sizeof(*value));
  return true;
}

Status ReadHeader(std::ifstream* in, Fnv1a* hash, const std::string& path,
                  uint64_t* count) {
  char magic[4];
  in->read(magic, sizeof(magic));
  if (!in->good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not an IMCAT checkpoint");
  }
  hash->Update(magic, sizeof(magic));
  uint32_t version = 0;
  if (!ReadValue(in, hash, &version) || version != kVersion) {
    return Status::InvalidArgument(path + ": unsupported checkpoint version");
  }
  if (!ReadValue(in, hash, count)) {
    return Status::InvalidArgument(path + ": truncated header");
  }
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(const std::string& path,
                      const std::vector<Tensor>& tensors) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot write " + path);
  Fnv1a hash;
  out.write(kMagic, sizeof(kMagic));
  hash.Update(kMagic, sizeof(kMagic));
  WriteValue(&out, &hash, kVersion);
  WriteValue(&out, &hash, static_cast<uint64_t>(tensors.size()));
  for (const Tensor& t : tensors) {
    IMCAT_CHECK(t.defined());
    WriteValue(&out, &hash, static_cast<uint64_t>(t.rows()));
    WriteValue(&out, &hash, static_cast<uint64_t>(t.cols()));
    const size_t bytes = static_cast<size_t>(t.size()) * sizeof(float);
    out.write(reinterpret_cast<const char*>(t.data()), bytes);
    hash.Update(t.data(), bytes);
  }
  const uint64_t checksum = hash.value();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status LoadCheckpoint(const std::string& path, std::vector<Tensor>* tensors) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  Fnv1a hash;
  uint64_t count = 0;
  IMCAT_RETURN_IF_ERROR(ReadHeader(&in, &hash, path, &count));
  if (count != tensors->size()) {
    return Status::InvalidArgument(
        path + ": checkpoint holds " + std::to_string(count) +
        " tensors, model expects " + std::to_string(tensors->size()));
  }
  // Stage into scratch buffers first so a corrupt file leaves the model
  // parameters untouched.
  std::vector<std::vector<float>> staged(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t rows = 0, cols = 0;
    if (!ReadValue(&in, &hash, &rows) || !ReadValue(&in, &hash, &cols)) {
      return Status::InvalidArgument(path + ": truncated tensor header");
    }
    const Tensor& target = (*tensors)[i];
    if (static_cast<int64_t>(rows) != target.rows() ||
        static_cast<int64_t>(cols) != target.cols()) {
      return Status::InvalidArgument(
          path + ": tensor " + std::to_string(i) + " shape mismatch");
    }
    staged[i].resize(rows * cols);
    const size_t bytes = staged[i].size() * sizeof(float);
    in.read(reinterpret_cast<char*>(staged[i].data()), bytes);
    if (!in.good()) {
      return Status::InvalidArgument(path + ": truncated tensor data");
    }
    hash.Update(staged[i].data(), bytes);
  }
  uint64_t stored_checksum = 0;
  if (!ReadValue<uint64_t>(&in, nullptr, &stored_checksum) ||
      stored_checksum != hash.value()) {
    return Status::InvalidArgument(path + ": checksum mismatch");
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::memcpy((*tensors)[i].data(), staged[i].data(),
                staged[i].size() * sizeof(float));
  }
  return Status::OK();
}

StatusOr<std::vector<std::pair<int64_t, int64_t>>> ReadCheckpointShapes(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  Fnv1a hash;
  uint64_t count = 0;
  IMCAT_RETURN_IF_ERROR(ReadHeader(&in, &hash, path, &count));
  std::vector<std::pair<int64_t, int64_t>> shapes;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t rows = 0, cols = 0;
    if (!ReadValue(&in, &hash, &rows) || !ReadValue(&in, &hash, &cols)) {
      return Status::InvalidArgument(path + ": truncated tensor header");
    }
    shapes.emplace_back(static_cast<int64_t>(rows),
                        static_cast<int64_t>(cols));
    in.seekg(static_cast<std::streamoff>(rows * cols * sizeof(float)),
             std::ios::cur);
    if (!in.good()) {
      return Status::InvalidArgument(path + ": truncated tensor data");
    }
    // Checksum cannot be verified when skipping data; shapes only.
  }
  return shapes;
}

}  // namespace imcat
