#ifndef IMCAT_TENSOR_CHECKPOINT_H_
#define IMCAT_TENSOR_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tensor/optimizer.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/status.h"

/// \file checkpoint.h
/// Binary parameter + training-state checkpointing. A checkpoint stores an
/// ordered list of tensors (shapes + row-major float data) and, optionally,
/// the full resumable training state (optimizer moments, RNG stream, epoch
/// counter, best-validation metadata), guarded by a magic header and a
/// trailing checksum.
///
/// All writes are atomic: data goes to `<path>.tmp`, is flushed and fsynced,
/// and only then renamed over `path`, so a crash or injected failure
/// mid-write never clobbers an existing good checkpoint.
///
/// Format v2 (little-endian):
///   magic "IMCT" | u32 version |
///   u64 tensor count | per tensor: u64 rows | u64 cols | rows*cols f32 |
///   u8 has_train_state | [train-state block, see checkpoint.cc] |
///   u64 FNV-1a checksum over everything before it.
/// Version 1 files (tensors only, no has_train_state byte) remain readable.

namespace imcat {

/// Resumable training-loop state carried by a v2 checkpoint alongside the
/// model parameters. Fields mirror the Trainer's internal loop state.
struct TrainState {
  /// Number of epochs fully completed when the checkpoint was taken
  /// (training resumes at this 0-based epoch index).
  int64_t epoch = 0;
  int64_t best_epoch = 0;
  /// Best validation metrics so far (mirrors eval's EvalResult, copied
  /// field-wise so the tensor layer does not depend on the eval layer).
  double best_recall = -1.0;
  double best_ndcg = 0.0;
  double best_precision = 0.0;
  double best_hit_rate = 0.0;
  double best_mrr = 0.0;
  int64_t best_num_users = 0;
  double train_seconds = 0.0;
  int64_t evals_without_improvement = 0;
  /// Cumulative learning-rate multiplier applied by health-guard backoff.
  double lr_scale = 1.0;
  /// The trainer's RNG stream, so resumed sampling is bit-identical.
  RngState rng;
  /// Optimizer moments + step count (empty m/v when the model exposes no
  /// optimizer).
  bool has_optimizer = false;
  AdamStateSnapshot optimizer;
  /// Flat copies of the best-validation parameters (for restore_best
  /// across a resume); empty when no validation has improved yet.
  bool has_best_params = false;
  std::vector<std::vector<float>> best_params;
};

/// Writes `tensors` to `path` atomically (temp file + fsync + rename).
Status SaveCheckpoint(const std::string& path,
                      const std::vector<Tensor>& tensors);

/// Writes `tensors` plus the resumable training state atomically.
Status SaveTrainingCheckpoint(const std::string& path,
                              const std::vector<Tensor>& tensors,
                              const TrainState& state);

/// Reads a checkpoint (v1 or v2) and copies its tensor data into `tensors`
/// (which must already have matching count and shapes — obtain them from
/// the same model architecture the checkpoint was saved from). Any training
/// state in the file is validated against the checksum but discarded.
/// Fails with InvalidArgument on shape/count mismatch, and DataLoss on
/// truncation or checksum failure.
Status LoadCheckpoint(const std::string& path, std::vector<Tensor>* tensors);

/// Like LoadCheckpoint, but also restores the training state when present.
/// `has_state` is set to false for v1 checkpoints or v2 checkpoints saved
/// without state. Model parameters and `state` are only modified when the
/// whole file (including checksum) validates.
Status LoadTrainingCheckpoint(const std::string& path,
                              std::vector<Tensor>* tensors, TrainState* state,
                              bool* has_state);

/// Reads only the shapes stored in a checkpoint (for inspection).
StatusOr<std::vector<std::pair<int64_t, int64_t>>> ReadCheckpointShapes(
    const std::string& path);

}  // namespace imcat

#endif  // IMCAT_TENSOR_CHECKPOINT_H_
