#ifndef IMCAT_TENSOR_CHECKPOINT_H_
#define IMCAT_TENSOR_CHECKPOINT_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

/// \file checkpoint.h
/// Binary parameter checkpointing. A checkpoint stores an ordered list of
/// tensors (shapes + row-major float data) with a magic header and a
/// trailing checksum, so trained models can be saved and restored across
/// processes (see TrainableModel::Parameters()).
///
/// Format (little-endian):
///   magic "IMCT" | u32 version | u64 tensor count |
///   per tensor: u64 rows | u64 cols | rows*cols f32 |
///   u64 FNV-1a checksum over everything before it.

namespace imcat {

/// Writes `tensors` to `path`, overwriting any existing file.
Status SaveCheckpoint(const std::string& path,
                      const std::vector<Tensor>& tensors);

/// Reads a checkpoint and copies its data into `tensors` (which must
/// already have matching count and shapes — obtain them from the same
/// model architecture the checkpoint was saved from). Fails with
/// InvalidArgument on shape/count mismatch or corruption.
Status LoadCheckpoint(const std::string& path, std::vector<Tensor>* tensors);

/// Reads only the shapes stored in a checkpoint (for inspection).
StatusOr<std::vector<std::pair<int64_t, int64_t>>> ReadCheckpointShapes(
    const std::string& path);

}  // namespace imcat

#endif  // IMCAT_TENSOR_CHECKPOINT_H_
