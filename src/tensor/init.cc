#include "tensor/init.h"

#include <cmath>

namespace imcat {

Tensor XavierUniform(int64_t rows, int64_t cols, Rng* rng,
                     bool treat_as_embedding) {
  const double fan_sum =
      treat_as_embedding ? 2.0 * static_cast<double>(cols)
                         : static_cast<double>(rows + cols);
  const double a = std::sqrt(6.0 / fan_sum);
  Tensor t(rows, cols, /*requires_grad=*/true);
  float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i)
    p[i] = static_cast<float>(rng->Uniform(-a, a));
  return t;
}

Tensor RandomNormal(int64_t rows, int64_t cols, Rng* rng, float mean,
                    float stddev) {
  Tensor t(rows, cols, /*requires_grad=*/true);
  float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i)
    p[i] = static_cast<float>(rng->Normal(mean, stddev));
  return t;
}

Tensor ZerosParameter(int64_t rows, int64_t cols) {
  return Tensor(rows, cols, /*requires_grad=*/true);
}

}  // namespace imcat
