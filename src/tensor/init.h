#ifndef IMCAT_TENSOR_INIT_H_
#define IMCAT_TENSOR_INIT_H_

#include "tensor/tensor.h"
#include "util/rng.h"

/// \file init.h
/// Parameter initialisers. The paper optimises all models with Adam and
/// Xavier initialisation (Sec. V-D), so XavierUniform is the default for
/// every trainable table and weight matrix in the library.

namespace imcat {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// For embedding tables we follow the common convention fan_in = fan_out =
/// cols (so a = sqrt(3/cols)) when `treat_as_embedding` is true.
Tensor XavierUniform(int64_t rows, int64_t cols, Rng* rng,
                     bool treat_as_embedding = false);

/// Normal(mean, stddev) initialised tensor.
Tensor RandomNormal(int64_t rows, int64_t cols, Rng* rng, float mean = 0.0f,
                    float stddev = 0.1f);

/// Zero-filled trainable tensor (for biases).
Tensor ZerosParameter(int64_t rows, int64_t cols);

}  // namespace imcat

#endif  // IMCAT_TENSOR_INIT_H_
