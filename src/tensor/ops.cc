#include "tensor/ops.h"

#include <cmath>
#include <cstring>

namespace imcat {
namespace ops {
namespace {

using Node = internal::TensorNode;

/// C(m x n) += alpha * op(A) * op(B), where op transposes when the flag is
/// set. A naive cache-friendly kernel (ikj order for the NN case).
void GemmAccumulate(bool trans_a, bool trans_b, int64_t m, int64_t n,
                    int64_t k, float alpha, const float* a, const float* b,
                    float* c) {
  if (!trans_a && !trans_b) {
    for (int64_t i = 0; i < m; ++i) {
      const float* ai = a + i * k;
      float* ci = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = alpha * ai[p];
        if (av == 0.0f) continue;
        const float* bp = b + p * n;
        for (int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
      }
    }
  } else if (!trans_a && trans_b) {
    // A (m x k), B (n x k): C_ij += A_i . B_j
    for (int64_t i = 0; i < m; ++i) {
      const float* ai = a + i * k;
      float* ci = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* bj = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
        ci[j] += alpha * acc;
      }
    }
  } else if (trans_a && !trans_b) {
    // A (k x m), B (k x n): C_ij += sum_p A_pi B_pj
    for (int64_t p = 0; p < k; ++p) {
      const float* ap = a + p * m;
      const float* bp = b + p * n;
      for (int64_t i = 0; i < m; ++i) {
        const float av = alpha * ap[i];
        if (av == 0.0f) continue;
        float* ci = c + i * n;
        for (int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
      }
    }
  } else {
    // A (k x m), B (n x k): C_ij += sum_p A_pi B_jp
    for (int64_t i = 0; i < m; ++i) {
      float* ci = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += a[p * m + i] * b[j * k + p];
        ci[j] += alpha * acc;
      }
    }
  }
}

/// Allocates the output node of an op, wiring parents and requires_grad.
Tensor NewOp(const char* name, int64_t rows, int64_t cols,
             std::initializer_list<Tensor> parents) {
  Tensor out(rows, cols);
  Node* n = out.node_ptr().get();
  n->op_name = name;
  bool needs_grad = false;
  for (const Tensor& p : parents) {
    n->parents.push_back(p.node_ptr());
    needs_grad = needs_grad || p.node_ptr()->requires_grad;
  }
  n->requires_grad = needs_grad;
  return out;
}

/// True if the op must record a backward closure.
bool NeedsGrad(const Tensor& out) { return out.node_ptr()->requires_grad; }

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  IMCAT_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out = NewOp("matmul", m, n, {a, b});
  GemmAccumulate(false, false, m, n, k, 1.0f, a.data(), b.data(), out.data());
  if (NeedsGrad(out)) {
    auto an = a.node_ptr(), bn = b.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [an, bn, on, m, n, k]() {
      if (an->requires_grad) {
        an->EnsureGrad();
        GemmAccumulate(false, true, m, k, n, 1.0f, on->grad.data(),
                       bn->data.data(), an->grad.data());
      }
      if (bn->requires_grad) {
        bn->EnsureGrad();
        GemmAccumulate(true, false, k, n, m, 1.0f, an->data.data(),
                       on->grad.data(), bn->grad.data());
      }
    };
  }
  return out;
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  IMCAT_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = a.rows(), d = a.cols(), n = b.rows();
  Tensor out = NewOp("matmul_nt", m, n, {a, b});
  GemmAccumulate(false, true, m, n, d, 1.0f, a.data(), b.data(), out.data());
  if (NeedsGrad(out)) {
    auto an = a.node_ptr(), bn = b.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [an, bn, on, m, n, d]() {
      if (an->requires_grad) {
        an->EnsureGrad();
        // dA = dC * B : (m x n)(n x d)
        GemmAccumulate(false, false, m, d, n, 1.0f, on->grad.data(),
                       bn->data.data(), an->grad.data());
      }
      if (bn->requires_grad) {
        bn->EnsureGrad();
        // dB = dC^T * A : (n x m)(m x d)
        GemmAccumulate(true, false, n, d, m, 1.0f, on->grad.data(),
                       an->data.data(), bn->grad.data());
      }
    };
  }
  return out;
}

namespace {

template <typename Fwd, typename BwdA, typename BwdB>
Tensor ElementwiseBinary(const char* name, const Tensor& a, const Tensor& b,
                         Fwd fwd, BwdA da_of, BwdB db_of) {
  IMCAT_CHECK_EQ(a.rows(), b.rows());
  IMCAT_CHECK_EQ(a.cols(), b.cols());
  Tensor out = NewOp(name, a.rows(), a.cols(), {a, b});
  const int64_t size = a.size();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < size; ++i) po[i] = fwd(pa[i], pb[i]);
  if (NeedsGrad(out)) {
    auto an = a.node_ptr(), bn = b.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [an, bn, on, size, da_of, db_of]() {
      const float* g = on->grad.data();
      if (an->requires_grad) {
        an->EnsureGrad();
        float* ga = an->grad.data();
        for (int64_t i = 0; i < size; ++i)
          ga[i] += g[i] * da_of(an->data[i], bn->data[i]);
      }
      if (bn->requires_grad) {
        bn->EnsureGrad();
        float* gb = bn->grad.data();
        for (int64_t i = 0; i < size; ++i)
          gb[i] += g[i] * db_of(an->data[i], bn->data[i]);
      }
    };
  }
  return out;
}

template <typename Fwd, typename BwdScale>
Tensor ElementwiseUnary(const char* name, const Tensor& a, Fwd fwd,
                        BwdScale dscale) {
  Tensor out = NewOp(name, a.rows(), a.cols(), {a});
  const int64_t size = a.size();
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < size; ++i) po[i] = fwd(pa[i]);
  if (NeedsGrad(out)) {
    auto an = a.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [an, on, size, dscale]() {
      if (!an->requires_grad) return;
      an->EnsureGrad();
      const float* g = on->grad.data();
      float* ga = an->grad.data();
      for (int64_t i = 0; i < size; ++i)
        ga[i] += g[i] * dscale(an->data[i], on->data[i]);
    };
  }
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      "add", a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      "sub", a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      "mul", a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; });
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  IMCAT_CHECK_EQ(bias.rows(), 1);
  IMCAT_CHECK_EQ(bias.cols(), a.cols());
  Tensor out = NewOp("add_row_broadcast", a.rows(), a.cols(), {a, bias});
  const int64_t rows = a.rows(), cols = a.cols();
  const float* pa = a.data();
  const float* pb = bias.data();
  float* po = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) po[r * cols + c] = pa[r * cols + c] + pb[c];
  }
  if (NeedsGrad(out)) {
    auto an = a.node_ptr(), bn = bias.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [an, bn, on, rows, cols]() {
      const float* g = on->grad.data();
      if (an->requires_grad) {
        an->EnsureGrad();
        float* ga = an->grad.data();
        for (int64_t i = 0; i < rows * cols; ++i) ga[i] += g[i];
      }
      if (bn->requires_grad) {
        bn->EnsureGrad();
        float* gb = bn->grad.data();
        for (int64_t r = 0; r < rows; ++r)
          for (int64_t c = 0; c < cols; ++c) gb[c] += g[r * cols + c];
      }
    };
  }
  return out;
}

Tensor MulColBroadcast(const Tensor& a, const Tensor& col) {
  IMCAT_CHECK_EQ(col.cols(), 1);
  IMCAT_CHECK_EQ(col.rows(), a.rows());
  Tensor out = NewOp("mul_col_broadcast", a.rows(), a.cols(), {a, col});
  const int64_t rows = a.rows(), cols = a.cols();
  const float* pa = a.data();
  const float* pc = col.data();
  float* po = out.data();
  for (int64_t r = 0; r < rows; ++r)
    for (int64_t c = 0; c < cols; ++c) po[r * cols + c] = pa[r * cols + c] * pc[r];
  if (NeedsGrad(out)) {
    auto an = a.node_ptr(), cn = col.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [an, cn, on, rows, cols]() {
      const float* g = on->grad.data();
      if (an->requires_grad) {
        an->EnsureGrad();
        float* ga = an->grad.data();
        for (int64_t r = 0; r < rows; ++r)
          for (int64_t c = 0; c < cols; ++c)
            ga[r * cols + c] += g[r * cols + c] * cn->data[r];
      }
      if (cn->requires_grad) {
        cn->EnsureGrad();
        float* gc = cn->grad.data();
        for (int64_t r = 0; r < rows; ++r) {
          float acc = 0.0f;
          for (int64_t c = 0; c < cols; ++c)
            acc += g[r * cols + c] * an->data[r * cols + c];
          gc[r] += acc;
        }
      }
    };
  }
  return out;
}

Tensor AddColBroadcast(const Tensor& a, const Tensor& col) {
  IMCAT_CHECK_EQ(col.cols(), 1);
  IMCAT_CHECK_EQ(col.rows(), a.rows());
  Tensor out = NewOp("add_col_broadcast", a.rows(), a.cols(), {a, col});
  const int64_t rows = a.rows(), cols = a.cols();
  const float* pa = a.data();
  const float* pc = col.data();
  float* po = out.data();
  for (int64_t r = 0; r < rows; ++r)
    for (int64_t c = 0; c < cols; ++c) po[r * cols + c] = pa[r * cols + c] + pc[r];
  if (NeedsGrad(out)) {
    auto an = a.node_ptr(), cn = col.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [an, cn, on, rows, cols]() {
      const float* g = on->grad.data();
      if (an->requires_grad) {
        an->EnsureGrad();
        float* ga = an->grad.data();
        for (int64_t i = 0; i < rows * cols; ++i) ga[i] += g[i];
      }
      if (cn->requires_grad) {
        cn->EnsureGrad();
        float* gc = cn->grad.data();
        for (int64_t r = 0; r < rows; ++r) {
          float acc = 0.0f;
          for (int64_t c = 0; c < cols; ++c) acc += g[r * cols + c];
          gc[r] += acc;
        }
      }
    };
  }
  return out;
}

Tensor MulRowBroadcast(const Tensor& a, const Tensor& row) {
  IMCAT_CHECK_EQ(row.rows(), 1);
  IMCAT_CHECK_EQ(row.cols(), a.cols());
  Tensor out = NewOp("mul_row_broadcast", a.rows(), a.cols(), {a, row});
  const int64_t rows = a.rows(), cols = a.cols();
  const float* pa = a.data();
  const float* pr = row.data();
  float* po = out.data();
  for (int64_t r = 0; r < rows; ++r)
    for (int64_t c = 0; c < cols; ++c) po[r * cols + c] = pa[r * cols + c] * pr[c];
  if (NeedsGrad(out)) {
    auto an = a.node_ptr(), rn = row.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [an, rn, on, rows, cols]() {
      const float* g = on->grad.data();
      if (an->requires_grad) {
        an->EnsureGrad();
        float* ga = an->grad.data();
        for (int64_t r = 0; r < rows; ++r)
          for (int64_t c = 0; c < cols; ++c)
            ga[r * cols + c] += g[r * cols + c] * rn->data[c];
      }
      if (rn->requires_grad) {
        rn->EnsureGrad();
        float* gr = rn->grad.data();
        for (int64_t r = 0; r < rows; ++r)
          for (int64_t c = 0; c < cols; ++c)
            gr[c] += g[r * cols + c] * an->data[r * cols + c];
      }
    };
  }
  return out;
}

Tensor ScalarMul(const Tensor& a, float s) {
  return ElementwiseUnary(
      "scalar_mul", a, [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

Tensor ScalarAdd(const Tensor& a, float s) {
  return ElementwiseUnary(
      "scalar_add", a, [s](float x) { return x + s; },
      [](float, float) { return 1.0f; });
}

Tensor Pow(const Tensor& a, float p) {
  return ElementwiseUnary(
      "pow", a, [p](float x) { return std::pow(x, p); },
      [p](float x, float) { return p * std::pow(x, p - 1.0f); });
}

Tensor Sigmoid(const Tensor& a) {
  return ElementwiseUnary(
      "sigmoid", a,
      [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor LogSigmoid(const Tensor& a) {
  return ElementwiseUnary(
      "log_sigmoid", a,
      [](float x) {
        // Stable: logsig(x) = min(x,0) - log1p(exp(-|x|)).
        const float m = x < 0.0f ? x : 0.0f;
        return m - std::log1p(std::exp(-std::fabs(x)));
      },
      [](float x, float) { return 1.0f / (1.0f + std::exp(x)); });
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  return ElementwiseUnary(
      "leaky_relu", a,
      [negative_slope](float x) { return x >= 0.0f ? x : negative_slope * x; },
      [negative_slope](float x, float) {
        return x >= 0.0f ? 1.0f : negative_slope;
      });
}

Tensor Relu(const Tensor& a) {
  return ElementwiseUnary(
      "relu", a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Tanh(const Tensor& a) {
  return ElementwiseUnary(
      "tanh", a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Exp(const Tensor& a) {
  return ElementwiseUnary(
      "exp", a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a, float eps) {
  return ElementwiseUnary(
      "log", a, [eps](float x) { return std::log(x > eps ? x : eps); },
      [eps](float x, float) { return 1.0f / (x > eps ? x : eps); });
}

Tensor Gather(const Tensor& table, const std::vector<int64_t>& indices) {
  const int64_t cols = table.cols();
  const int64_t n = static_cast<int64_t>(indices.size());
  Tensor out = NewOp("gather", n, cols, {table});
  const float* pt = table.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    IMCAT_CHECK(indices[i] >= 0 && indices[i] < table.rows());
    std::memcpy(po + i * cols, pt + indices[i] * cols,
                sizeof(float) * static_cast<size_t>(cols));
  }
  if (NeedsGrad(out)) {
    auto tn = table.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [tn, on, indices, n, cols]() {
      if (!tn->requires_grad) return;
      tn->EnsureGrad();
      const float* g = on->grad.data();
      float* gt = tn->grad.data();
      for (int64_t i = 0; i < n; ++i) {
        float* row = gt + indices[i] * cols;
        const float* gi = g + i * cols;
        for (int64_t c = 0; c < cols; ++c) row[c] += gi[c];
      }
    };
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int64_t begin, int64_t end) {
  IMCAT_CHECK(begin >= 0 && begin < end && end <= a.cols());
  const int64_t rows = a.rows(), cols = a.cols(), width = end - begin;
  Tensor out = NewOp("slice_cols", rows, width, {a});
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    std::memcpy(po + r * width, pa + r * cols + begin,
                sizeof(float) * static_cast<size_t>(width));
  }
  if (NeedsGrad(out)) {
    auto an = a.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [an, on, rows, cols, begin, width]() {
      if (!an->requires_grad) return;
      an->EnsureGrad();
      const float* g = on->grad.data();
      float* ga = an->grad.data();
      for (int64_t r = 0; r < rows; ++r)
        for (int64_t c = 0; c < width; ++c)
          ga[r * cols + begin + c] += g[r * width + c];
    };
  }
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  IMCAT_CHECK(!parts.empty());
  const int64_t rows = parts[0].rows();
  int64_t total_cols = 0;
  bool needs_grad = false;
  for (const Tensor& p : parts) {
    IMCAT_CHECK_EQ(p.rows(), rows);
    total_cols += p.cols();
    needs_grad = needs_grad || p.node_ptr()->requires_grad;
  }
  Tensor out(rows, total_cols);
  Node* on = out.node_ptr().get();
  on->op_name = "concat_cols";
  on->requires_grad = needs_grad;
  for (const Tensor& p : parts) on->parents.push_back(p.node_ptr());

  float* po = out.data();
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    const float* pp = p.data();
    const int64_t pc = p.cols();
    for (int64_t r = 0; r < rows; ++r) {
      std::memcpy(po + r * total_cols + offset, pp + r * pc,
                  sizeof(float) * static_cast<size_t>(pc));
    }
    offset += pc;
  }
  if (needs_grad) {
    std::vector<std::shared_ptr<Node>> pnodes;
    std::vector<int64_t> widths;
    for (const Tensor& p : parts) {
      pnodes.push_back(p.node_ptr());
      widths.push_back(p.cols());
    }
    on->backward_fn = [on, pnodes, widths, rows, total_cols]() {
      const float* g = on->grad.data();
      int64_t offset = 0;
      for (size_t k = 0; k < pnodes.size(); ++k) {
        Node* pn = pnodes[k].get();
        const int64_t w = widths[k];
        if (pn->requires_grad) {
          pn->EnsureGrad();
          float* gp = pn->grad.data();
          for (int64_t r = 0; r < rows; ++r)
            for (int64_t c = 0; c < w; ++c)
              gp[r * w + c] += g[r * total_cols + offset + c];
        }
        offset += w;
      }
    };
  }
  return out;
}

Tensor RowSum(const Tensor& a) {
  const int64_t rows = a.rows(), cols = a.cols();
  Tensor out = NewOp("row_sum", rows, 1, {a});
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    float acc = 0.0f;
    for (int64_t c = 0; c < cols; ++c) acc += pa[r * cols + c];
    po[r] = acc;
  }
  if (NeedsGrad(out)) {
    auto an = a.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [an, on, rows, cols]() {
      if (!an->requires_grad) return;
      an->EnsureGrad();
      const float* g = on->grad.data();
      float* ga = an->grad.data();
      for (int64_t r = 0; r < rows; ++r)
        for (int64_t c = 0; c < cols; ++c) ga[r * cols + c] += g[r];
    };
  }
  return out;
}

Tensor Sum(const Tensor& a) {
  Tensor out = NewOp("sum", 1, 1, {a});
  const float* pa = a.data();
  const int64_t size = a.size();
  double acc = 0.0;
  for (int64_t i = 0; i < size; ++i) acc += pa[i];
  out.data()[0] = static_cast<float>(acc);
  if (NeedsGrad(out)) {
    auto an = a.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [an, on, size]() {
      if (!an->requires_grad) return;
      an->EnsureGrad();
      const float g = on->grad[0];
      float* ga = an->grad.data();
      for (int64_t i = 0; i < size; ++i) ga[i] += g;
    };
  }
  return out;
}

Tensor Mean(const Tensor& a) {
  IMCAT_CHECK_GT(a.size(), 0);
  Tensor s = Sum(a);
  return ScalarMul(s, 1.0f / static_cast<float>(a.size()));
}

Tensor L2NormalizeRows(const Tensor& a, float eps) {
  const int64_t rows = a.rows(), cols = a.cols();
  Tensor out = NewOp("l2_normalize_rows", rows, cols, {a});
  const float* pa = a.data();
  float* po = out.data();
  std::vector<float> norms(rows);
  for (int64_t r = 0; r < rows; ++r) {
    float ss = 0.0f;
    for (int64_t c = 0; c < cols; ++c) ss += pa[r * cols + c] * pa[r * cols + c];
    float n = std::sqrt(ss);
    norms[r] = n > eps ? n : eps;
    for (int64_t c = 0; c < cols; ++c) po[r * cols + c] = pa[r * cols + c] / norms[r];
  }
  if (NeedsGrad(out)) {
    auto an = a.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [an, on, rows, cols, norms, eps]() {
      if (!an->requires_grad) return;
      an->EnsureGrad();
      const float* g = on->grad.data();
      const float* y = on->data.data();
      float* ga = an->grad.data();
      for (int64_t r = 0; r < rows; ++r) {
        const float inv_n = 1.0f / norms[r];
        // If the norm was clamped to eps, the denominator is constant.
        const bool clamped = norms[r] <= eps;
        float dot = 0.0f;
        if (!clamped) {
          for (int64_t c = 0; c < cols; ++c) dot += g[r * cols + c] * y[r * cols + c];
        }
        for (int64_t c = 0; c < cols; ++c) {
          ga[r * cols + c] +=
              inv_n * (g[r * cols + c] - (clamped ? 0.0f : dot * y[r * cols + c]));
        }
      }
    };
  }
  return out;
}

Tensor RowNormalize(const Tensor& a, float eps) {
  const int64_t rows = a.rows(), cols = a.cols();
  Tensor out = NewOp("row_normalize", rows, cols, {a});
  const float* pa = a.data();
  float* po = out.data();
  std::vector<float> sums(rows);
  for (int64_t r = 0; r < rows; ++r) {
    float s = 0.0f;
    for (int64_t c = 0; c < cols; ++c) s += pa[r * cols + c];
    sums[r] = s > eps ? s : eps;
    for (int64_t c = 0; c < cols; ++c) po[r * cols + c] = pa[r * cols + c] / sums[r];
  }
  if (NeedsGrad(out)) {
    auto an = a.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [an, on, rows, cols, sums]() {
      if (!an->requires_grad) return;
      an->EnsureGrad();
      const float* g = on->grad.data();
      const float* y = on->data.data();
      float* ga = an->grad.data();
      for (int64_t r = 0; r < rows; ++r) {
        float dot = 0.0f;
        for (int64_t c = 0; c < cols; ++c) dot += g[r * cols + c] * y[r * cols + c];
        const float inv_s = 1.0f / sums[r];
        for (int64_t c = 0; c < cols; ++c)
          ga[r * cols + c] += inv_s * (g[r * cols + c] - dot);
      }
    };
  }
  return out;
}

Tensor SpMM(const SparseMatrix& s, const Tensor& a) {
  IMCAT_CHECK_EQ(s.cols(), a.rows());
  const int64_t cols = a.cols();
  Tensor out = NewOp("spmm", s.rows(), cols, {a});
  s.Multiply(a.data(), cols, out.data());
  if (NeedsGrad(out)) {
    auto an = a.node_ptr();
    Node* on = out.node_ptr().get();
    // The sparse matrix must outlive any Backward() call on this graph;
    // adjacency matrices are owned by the models for their whole lifetime.
    const SparseMatrix* sp = &s;
    out.node_ptr()->backward_fn = [an, on, sp, cols]() {
      if (!an->requires_grad) return;
      an->EnsureGrad();
      // dA += S^T dOut, computed by scattering over S's rows.
      const float* g = on->grad.data();
      float* ga = an->grad.data();
      const auto& indptr = sp->indptr();
      const auto& indices = sp->indices();
      const auto& values = sp->values();
      for (int64_t r = 0; r < sp->rows(); ++r) {
        const float* gr = g + r * cols;
        for (int64_t k = indptr[r]; k < indptr[r + 1]; ++k) {
          float* row = ga + indices[k] * cols;
          const float v = values[k];
          for (int64_t c = 0; c < cols; ++c) row[c] += v * gr[c];
        }
      }
    };
  }
  return out;
}

Tensor PairwiseSqDist(const Tensor& a, const Tensor& b) {
  IMCAT_CHECK_EQ(a.cols(), b.cols());
  const int64_t n = a.rows(), k = b.rows(), d = a.cols();
  Tensor out = NewOp("pairwise_sqdist", n, k, {a, b});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* ai = pa + i * d;
    for (int64_t j = 0; j < k; ++j) {
      const float* bj = pb + j * d;
      float acc = 0.0f;
      for (int64_t c = 0; c < d; ++c) {
        const float diff = ai[c] - bj[c];
        acc += diff * diff;
      }
      po[i * k + j] = acc;
    }
  }
  if (NeedsGrad(out)) {
    auto an = a.node_ptr(), bn = b.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [an, bn, on, n, k, d]() {
      const float* g = on->grad.data();
      const float* pa = an->data.data();
      const float* pb = bn->data.data();
      if (an->requires_grad) an->EnsureGrad();
      if (bn->requires_grad) bn->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < k; ++j) {
          const float gij = 2.0f * g[i * k + j];
          if (gij == 0.0f) continue;
          for (int64_t c = 0; c < d; ++c) {
            const float diff = pa[i * d + c] - pb[j * d + c];
            if (an->requires_grad) an->grad[i * d + c] += gij * diff;
            if (bn->requires_grad) bn->grad[j * d + c] -= gij * diff;
          }
        }
      }
    };
  }
  return out;
}

Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int64_t>& targets,
                           const std::vector<float>& weights) {
  const int64_t rows = logits.rows(), cols = logits.cols();
  IMCAT_CHECK_EQ(static_cast<int64_t>(targets.size()), rows);
  IMCAT_CHECK_EQ(static_cast<int64_t>(weights.size()), rows);
  Tensor out = NewOp("softmax_xent", 1, 1, {logits});
  const float* pl = logits.data();
  // Cache the softmax probabilities for the backward pass.
  std::vector<float> probs(static_cast<size_t>(rows * cols));
  double loss = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    IMCAT_CHECK(targets[r] >= 0 && targets[r] < cols);
    const float* lr = pl + r * cols;
    float mx = lr[0];
    for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, lr[c]);
    double z = 0.0;
    for (int64_t c = 0; c < cols; ++c) z += std::exp(static_cast<double>(lr[c] - mx));
    const double log_z = std::log(z) + mx;
    for (int64_t c = 0; c < cols; ++c) {
      probs[r * cols + c] =
          static_cast<float>(std::exp(static_cast<double>(lr[c]) - log_z));
    }
    loss += weights[r] * (log_z - lr[targets[r]]);
  }
  out.data()[0] = static_cast<float>(loss);
  if (NeedsGrad(out)) {
    auto ln = logits.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [ln, on, probs = std::move(probs), targets,
                                   weights, rows, cols]() {
      if (!ln->requires_grad) return;
      ln->EnsureGrad();
      const float g = on->grad[0];
      float* gl = ln->grad.data();
      for (int64_t r = 0; r < rows; ++r) {
        const float w = g * weights[r];
        for (int64_t c = 0; c < cols; ++c)
          gl[r * cols + c] += w * probs[r * cols + c];
        gl[r * cols + targets[r]] -= w;
      }
    };
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  const int64_t rows = a.rows(), cols = a.cols();
  Tensor out = NewOp("transpose", cols, rows, {a});
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t r = 0; r < rows; ++r)
    for (int64_t c = 0; c < cols; ++c) po[c * rows + r] = pa[r * cols + c];
  if (NeedsGrad(out)) {
    auto an = a.node_ptr();
    Node* on = out.node_ptr().get();
    out.node_ptr()->backward_fn = [an, on, rows, cols]() {
      if (!an->requires_grad) return;
      an->EnsureGrad();
      const float* g = on->grad.data();
      float* ga = an->grad.data();
      for (int64_t r = 0; r < rows; ++r)
        for (int64_t c = 0; c < cols; ++c) ga[r * cols + c] += g[c * rows + r];
    };
  }
  return out;
}

Tensor Detach(const Tensor& a) { return a.DetachedCopy(); }

}  // namespace ops
}  // namespace imcat
