#ifndef IMCAT_TENSOR_OPS_H_
#define IMCAT_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/sparse.h"
#include "tensor/tensor.h"

/// \file ops.h
/// Differentiable operations over Tensor. Every op allocates a fresh output
/// node; if any input requires gradients, the output records a backward
/// closure that accumulates into the inputs' gradient buffers when
/// Backward() (autograd.h) runs.
///
/// Shape conventions: all tensors are 2-D (rows x cols). Bias vectors are
/// (1 x cols); per-row reductions produce (rows x 1).

namespace imcat {
namespace ops {

/// C = A * B. A is (m x k), B is (k x n).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A * B^T. A is (m x d), B is (n x d); result (m x n). This is the
/// similarity-logits primitive for contrastive losses.
Tensor MatMulNT(const Tensor& a, const Tensor& b);

/// Elementwise sum; shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise difference; shapes must match.
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise product; shapes must match.
Tensor Mul(const Tensor& a, const Tensor& b);

/// Adds a (1 x cols) bias row to every row of `a`.
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);

/// Multiplies every entry of row r by weight (rows x 1) entry r.
Tensor MulColBroadcast(const Tensor& a, const Tensor& col);

/// Adds a (rows x 1) column vector entry to every entry of the matching row.
Tensor AddColBroadcast(const Tensor& a, const Tensor& col);

/// Multiplies every row of `a` elementwise by a (1 x cols) row vector.
Tensor MulRowBroadcast(const Tensor& a, const Tensor& row);

/// a * s.
Tensor ScalarMul(const Tensor& a, float s);

/// a + s.
Tensor ScalarAdd(const Tensor& a, float s);

/// Elementwise power a^p; requires all entries of `a` to be positive when p
/// is non-integral (the caller guarantees the domain).
Tensor Pow(const Tensor& a, float p);

/// Logistic sigmoid.
Tensor Sigmoid(const Tensor& a);

/// Numerically stable log(sigmoid(a)).
Tensor LogSigmoid(const Tensor& a);

/// LeakyReLU with the given negative slope.
Tensor LeakyRelu(const Tensor& a, float negative_slope = 0.01f);

/// ReLU.
Tensor Relu(const Tensor& a);

/// Hyperbolic tangent.
Tensor Tanh(const Tensor& a);

/// Elementwise exp.
Tensor Exp(const Tensor& a);

/// Elementwise log(max(a, eps)).
Tensor Log(const Tensor& a, float eps = 1e-12f);

/// Selects rows of `table` by index: out row i = table row indices[i].
/// Backward scatter-adds into the table (embedding lookup).
Tensor Gather(const Tensor& table, const std::vector<int64_t>& indices);

/// Columns [begin, end) of `a`.
Tensor SliceCols(const Tensor& a, int64_t begin, int64_t end);

/// Horizontal concatenation; all parts share the row count.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Per-row sum; result (rows x 1).
Tensor RowSum(const Tensor& a);

/// Sum of all entries; result (1 x 1).
Tensor Sum(const Tensor& a);

/// Mean of all entries; result (1 x 1).
Tensor Mean(const Tensor& a);

/// L2-normalises each row: out_r = a_r / max(||a_r||, eps).
Tensor L2NormalizeRows(const Tensor& a, float eps = 1e-12f);

/// Divides each row by its sum (entries must be positive).
Tensor RowNormalize(const Tensor& a, float eps = 1e-12f);

/// Sparse-dense product: out = S * a, where S is a constant sparse matrix.
Tensor SpMM(const SparseMatrix& s, const Tensor& a);

/// Squared Euclidean distances between rows of `a` (n x d) and rows of `b`
/// (k x d); result (n x k).
Tensor PairwiseSqDist(const Tensor& a, const Tensor& b);

/// Weighted softmax cross-entropy over rows of a logits matrix:
///   loss = sum_i weights[i] * ( -log softmax(logits_i)[targets[i]] ).
/// `targets` and `weights` have logits.rows() entries; `weights` is a plain
/// constant (no gradient flows into it). Result (1 x 1). This is the
/// InfoNCE primitive (Eqs. 12-13 with the M_{j,k} re-weighting).
Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int64_t>& targets,
                           const std::vector<float>& weights);

/// Matrix transpose.
Tensor Transpose(const Tensor& a);

/// Cuts the autograd tape: the result has the same values but no parents,
/// so no gradient flows through it.
Tensor Detach(const Tensor& a);

}  // namespace ops
}  // namespace imcat

#endif  // IMCAT_TENSOR_OPS_H_
