#include "tensor/optimizer.h"

#include <cmath>

namespace imcat {

AdamOptimizer::AdamOptimizer(AdamOptions options) : options_(options) {}

void AdamOptimizer::AddParameter(const Tensor& parameter) {
  IMCAT_CHECK(parameter.defined());
  IMCAT_CHECK(parameter.requires_grad());
  params_.push_back(parameter);
  m_.emplace_back(parameter.size(), 0.0f);
  v_.emplace_back(parameter.size(), 0.0f);
}

void AdamOptimizer::AddParameters(const std::vector<Tensor>& parameters) {
  for (const Tensor& p : parameters) AddParameter(p);
}

void AdamOptimizer::Step() {
  if (options_.clip_norm > 0.0f) {
    double sq_sum = 0.0;
    for (Tensor& t : params_) {
      const float* grad = t.grad();
      const int64_t n = t.size();
      for (int64_t i = 0; i < n; ++i) {
        sq_sum += static_cast<double>(grad[i]) * grad[i];
      }
    }
    const double norm = std::sqrt(sq_sum);
    last_grad_norm_ = norm;
    if (norm > options_.clip_norm) {
      const float scale = options_.clip_norm / static_cast<float>(norm);
      for (Tensor& t : params_) {
        float* grad = t.grad();
        const int64_t n = t.size();
        for (int64_t i = 0; i < n; ++i) grad[i] *= scale;
      }
    }
  }
  ++step_;
  const float lr = options_.learning_rate;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(step_));
  for (size_t p = 0; p < params_.size(); ++p) {
    Tensor& t = params_[p];
    float* data = t.data();
    float* grad = t.grad();
    float* m = m_[p].data();
    float* v = v_[p].data();
    const int64_t n = t.size();
    for (int64_t i = 0; i < n; ++i) {
      float g = grad[i] + options_.weight_decay * data[i];
      m[i] = b1 * m[i] + (1.0f - b1) * g;
      v[i] = b2 * v[i] + (1.0f - b2) * g * g;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      data[i] -= lr * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

void AdamOptimizer::ZeroGrad() {
  for (Tensor& t : params_) t.ZeroGrad();
}

AdamStateSnapshot AdamOptimizer::ExportState() const {
  AdamStateSnapshot snapshot;
  snapshot.step = step_;
  snapshot.m = m_;
  snapshot.v = v_;
  return snapshot;
}

Status AdamOptimizer::ImportState(const AdamStateSnapshot& snapshot) {
  if (snapshot.m.size() != m_.size() || snapshot.v.size() != v_.size()) {
    return Status::InvalidArgument(
        "optimizer state holds " + std::to_string(snapshot.m.size()) +
        " parameters, optimizer has " + std::to_string(m_.size()));
  }
  if (snapshot.step < 0) {
    return Status::InvalidArgument("optimizer step count is negative");
  }
  for (size_t i = 0; i < m_.size(); ++i) {
    if (snapshot.m[i].size() != m_[i].size() ||
        snapshot.v[i].size() != v_[i].size()) {
      return Status::InvalidArgument(
          "optimizer state size mismatch for parameter " + std::to_string(i));
    }
  }
  step_ = snapshot.step;
  m_ = snapshot.m;
  v_ = snapshot.v;
  return Status::OK();
}

}  // namespace imcat
