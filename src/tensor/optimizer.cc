#include "tensor/optimizer.h"

#include <cmath>

namespace imcat {

AdamOptimizer::AdamOptimizer(AdamOptions options) : options_(options) {}

void AdamOptimizer::AddParameter(const Tensor& parameter) {
  IMCAT_CHECK(parameter.defined());
  IMCAT_CHECK(parameter.requires_grad());
  params_.push_back(parameter);
  m_.emplace_back(parameter.size(), 0.0f);
  v_.emplace_back(parameter.size(), 0.0f);
}

void AdamOptimizer::AddParameters(const std::vector<Tensor>& parameters) {
  for (const Tensor& p : parameters) AddParameter(p);
}

void AdamOptimizer::Step() {
  ++step_;
  const float lr = options_.learning_rate;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(step_));
  for (size_t p = 0; p < params_.size(); ++p) {
    Tensor& t = params_[p];
    float* data = t.data();
    float* grad = t.grad();
    float* m = m_[p].data();
    float* v = v_[p].data();
    const int64_t n = t.size();
    for (int64_t i = 0; i < n; ++i) {
      float g = grad[i] + options_.weight_decay * data[i];
      m[i] = b1 * m[i] + (1.0f - b1) * g;
      v[i] = b2 * v[i] + (1.0f - b2) * g * g;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      data[i] -= lr * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

void AdamOptimizer::ZeroGrad() {
  for (Tensor& t : params_) t.ZeroGrad();
}

}  // namespace imcat
