#ifndef IMCAT_TENSOR_OPTIMIZER_H_
#define IMCAT_TENSOR_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

/// \file optimizer.h
/// Adam optimiser (the paper's optimiser for all models, lr = weight decay
/// = 1e-3). Weight decay is implemented as L2 regularisation folded into
/// the gradient, matching the common recommender-system convention.

namespace imcat {

/// Hyper-parameters for Adam.
struct AdamOptions {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
  /// Global-norm gradient clipping: when > 0, the concatenated gradient of
  /// all registered parameters is rescaled so its L2 norm does not exceed
  /// this value (the standard divergence guard for contrastive losses).
  float clip_norm = 0.0f;
};

/// Serialisable Adam state (per-parameter first/second moments and the
/// step counter) for resumable checkpoints.
struct AdamStateSnapshot {
  int64_t step = 0;
  std::vector<std::vector<float>> m;
  std::vector<std::vector<float>> v;
};

/// Adam over a fixed set of parameter tensors. Parameters are registered
/// once (they must require gradients); Step() consumes the accumulated
/// gradients and ZeroGrad() clears them for the next iteration.
class AdamOptimizer {
 public:
  explicit AdamOptimizer(AdamOptions options = {});

  /// Registers a trainable tensor. Must be called before the first Step().
  void AddParameter(const Tensor& parameter);

  /// Registers a whole set of parameters.
  void AddParameters(const std::vector<Tensor>& parameters);

  /// Applies one Adam update using the gradients currently stored on the
  /// registered parameters.
  void Step();

  /// Zeroes all registered parameter gradients.
  void ZeroGrad();

  /// Overrides the learning rate (used by health-guard backoff and LR
  /// schedules). Takes effect from the next Step().
  void set_learning_rate(float lr) { options_.learning_rate = lr; }

  /// Multiplies the current learning rate by `factor` (e.g. 0.5 to halve
  /// it after a divergence rollback).
  void ScaleLearningRate(float factor) { options_.learning_rate *= factor; }

  float learning_rate() const { return options_.learning_rate; }

  /// Global gradient L2 norm measured by the most recent Step(); -1 before
  /// the first step or when clipping is disabled (the norm is only
  /// computed when clip_norm > 0 to keep the disabled path free).
  double last_grad_norm() const { return last_grad_norm_; }

  /// Copies out the optimiser state for checkpointing.
  AdamStateSnapshot ExportState() const;

  /// Restores a previously exported state. Fails with InvalidArgument if
  /// the snapshot's parameter count or sizes do not match the registered
  /// parameters; the optimiser is left untouched on failure.
  Status ImportState(const AdamStateSnapshot& snapshot);

  int64_t step_count() const { return step_; }
  const AdamOptions& options() const { return options_; }

 private:
  AdamOptions options_;
  int64_t step_ = 0;
  double last_grad_norm_ = -1.0;
  std::vector<Tensor> params_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace imcat

#endif  // IMCAT_TENSOR_OPTIMIZER_H_
