#ifndef IMCAT_TENSOR_OPTIMIZER_H_
#define IMCAT_TENSOR_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

/// \file optimizer.h
/// Adam optimiser (the paper's optimiser for all models, lr = weight decay
/// = 1e-3). Weight decay is implemented as L2 regularisation folded into
/// the gradient, matching the common recommender-system convention.

namespace imcat {

/// Hyper-parameters for Adam.
struct AdamOptions {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
};

/// Adam over a fixed set of parameter tensors. Parameters are registered
/// once (they must require gradients); Step() consumes the accumulated
/// gradients and ZeroGrad() clears them for the next iteration.
class AdamOptimizer {
 public:
  explicit AdamOptimizer(AdamOptions options = {});

  /// Registers a trainable tensor. Must be called before the first Step().
  void AddParameter(const Tensor& parameter);

  /// Registers a whole set of parameters.
  void AddParameters(const std::vector<Tensor>& parameters);

  /// Applies one Adam update using the gradients currently stored on the
  /// registered parameters.
  void Step();

  /// Zeroes all registered parameter gradients.
  void ZeroGrad();

  int64_t step_count() const { return step_; }
  const AdamOptions& options() const { return options_; }

 private:
  AdamOptions options_;
  int64_t step_ = 0;
  std::vector<Tensor> params_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace imcat

#endif  // IMCAT_TENSOR_OPTIMIZER_H_
