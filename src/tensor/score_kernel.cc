#include "tensor/score_kernel.h"

#include <algorithm>

#include "util/check.h"

namespace imcat {

void ScoreBlock(const float* const* user_rows, int64_t num_users,
                const float* item_rows, int64_t num_items, int64_t dim,
                float* out, int64_t out_stride) {
  IMCAT_CHECK(out_stride >= num_items);
  // Users outer, items inner: the batch win comes from the caller keeping
  // `item_rows` small enough to stay cache-resident across the user loop.
  //
  // The register tile is 2 users x 4 items: eight *independent*
  // accumulator chains. Each (user, item) pair still accumulates over the
  // factor dimension in ascending order in its own single fp32 chain —
  // the bit-exactness contract — but a lone chain is bound by FMA
  // latency, not throughput: side-by-side chains keep the unit busy
  // without reordering any pair's summation, and pairing users reuses
  // each item-row load for two dots, halving the dominant memory traffic.
  int64_t u = 0;
  for (; u + 2 <= num_users; u += 2) {
    const float* ua = user_rows[u];
    const float* ub = user_rows[u + 1];
    float* oa = out + u * out_stride;
    float* ob = oa + out_stride;
    int64_t i = 0;
    for (; i + 4 <= num_items; i += 4) {
      const float* i0 = item_rows + i * dim;
      const float* i1 = i0 + dim;
      const float* i2 = i1 + dim;
      const float* i3 = i2 + dim;
      float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
      float b0 = 0.0f, b1 = 0.0f, b2 = 0.0f, b3 = 0.0f;
      for (int64_t c = 0; c < dim; ++c) {
        const float ac = ua[c];
        const float bc = ub[c];
        const float v0 = i0[c], v1 = i1[c], v2 = i2[c], v3 = i3[c];
        a0 += ac * v0;
        a1 += ac * v1;
        a2 += ac * v2;
        a3 += ac * v3;
        b0 += bc * v0;
        b1 += bc * v1;
        b2 += bc * v2;
        b3 += bc * v3;
      }
      oa[i] = a0;
      oa[i + 1] = a1;
      oa[i + 2] = a2;
      oa[i + 3] = a3;
      ob[i] = b0;
      ob[i + 1] = b1;
      ob[i + 2] = b2;
      ob[i + 3] = b3;
    }
    for (; i < num_items; ++i) {
      const float* irow = item_rows + i * dim;
      float acc_a = 0.0f, acc_b = 0.0f;
      for (int64_t c = 0; c < dim; ++c) {
        acc_a += ua[c] * irow[c];
        acc_b += ub[c] * irow[c];
      }
      oa[i] = acc_a;
      ob[i] = acc_b;
    }
  }
  for (; u < num_users; ++u) {
    const float* urow = user_rows[u];
    float* orow = out + u * out_stride;
    int64_t i = 0;
    for (; i + 4 <= num_items; i += 4) {
      const float* i0 = item_rows + i * dim;
      const float* i1 = i0 + dim;
      const float* i2 = i1 + dim;
      const float* i3 = i2 + dim;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (int64_t c = 0; c < dim; ++c) {
        const float uc = urow[c];
        acc0 += uc * i0[c];
        acc1 += uc * i1[c];
        acc2 += uc * i2[c];
        acc3 += uc * i3[c];
      }
      orow[i] = acc0;
      orow[i + 1] = acc1;
      orow[i + 2] = acc2;
      orow[i + 3] = acc3;
    }
    for (; i < num_items; ++i) {
      const float* irow = item_rows + i * dim;
      float acc = 0.0f;
      for (int64_t c = 0; c < dim; ++c) acc += urow[c] * irow[c];
      orow[i] = acc;
    }
  }
}

void ScoreAllItemsBlocked(const float* const* user_rows, int64_t num_users,
                          const float* item_table, int64_t num_items,
                          int64_t dim, int64_t block_items, float* out,
                          int64_t out_stride) {
  IMCAT_CHECK(block_items > 0);
  for (int64_t begin = 0; begin < num_items; begin += block_items) {
    const int64_t end = std::min(begin + block_items, num_items);
    ScoreBlock(user_rows, num_users, item_table + begin * dim, end - begin,
               dim, out + begin, out_stride);
  }
}

}  // namespace imcat
