#ifndef IMCAT_TENSOR_SCORE_KERNEL_H_
#define IMCAT_TENSOR_SCORE_KERNEL_H_

#include <cstdint>

/// \file score_kernel.h
/// The blocked multi-user scoring kernel shared by the serving and
/// offline-eval hot paths (DESIGN.md §12). Scoring U users against N items
/// is a U x N slice of a matrix-matrix product; doing it one user at a
/// time streams the whole item-factor table through cache once *per user*.
/// The kernel instead walks the item table in blocks of `block_items` rows
/// and scores every user of the batch against the resident block, so the
/// table streams through cache once *per batch* — the same cache-resident
/// restructuring iALS++ applies to the solver side.
///
/// Bit-exactness contract: each (user, item) score is accumulated over the
/// factor dimension in ascending index order in plain fp32 — exactly the
/// loop EmbeddingSnapshot::Score and the scalar rankers run. Blocking and
/// batching only reorder which (user, item) pairs are computed when, never
/// the accumulation order within a pair, so batched results are
/// bit-identical to the scalar path for any batch size or block size.

namespace imcat {

/// Default item-block tile: 1024 rows x up to a few hundred fp32 dims
/// stays comfortably inside L2 next to the batch's score rows. Serving
/// overrides this through RecommenderOptions::block_items.
inline constexpr int64_t kDefaultScoreBlockItems = 1024;

/// Scores `num_users` users against one resident block of `num_items`
/// item rows. `user_rows[u]` points at user u's factor row (`dim` floats);
/// `item_rows` is the row-major block (num_items x dim). Scores land at
/// `out[u * out_stride + i]`. `out_stride` >= num_items lets callers score
/// into a larger per-user row (e.g. a full-catalogue buffer) one block at
/// a time.
void ScoreBlock(const float* const* user_rows, int64_t num_users,
                const float* item_rows, int64_t num_items, int64_t dim,
                float* out, int64_t out_stride);

/// Full-catalogue convenience: tiles `item_table` (num_items x dim,
/// row-major) into blocks of `block_items` rows and runs ScoreBlock on
/// each. Equivalent to ScoreBlock over the whole table but keeps each
/// block cache-resident across the user batch.
void ScoreAllItemsBlocked(const float* const* user_rows, int64_t num_users,
                          const float* item_table, int64_t num_items,
                          int64_t dim, int64_t block_items, float* out,
                          int64_t out_stride);

}  // namespace imcat

#endif  // IMCAT_TENSOR_SCORE_KERNEL_H_
