#include "tensor/sparse.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "util/check.h"

namespace imcat {

SparseMatrix SparseMatrix::FromTriplets(
    int64_t rows, int64_t cols, const std::vector<int64_t>& row_indices,
    const std::vector<int64_t>& col_indices, const std::vector<float>& values) {
  IMCAT_CHECK_EQ(row_indices.size(), col_indices.size());
  IMCAT_CHECK_EQ(row_indices.size(), values.size());
  const int64_t n = static_cast<int64_t>(values.size());

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;

  // Count entries per row.
  std::vector<int64_t> counts(rows + 1, 0);
  for (int64_t i = 0; i < n; ++i) {
    IMCAT_CHECK(row_indices[i] >= 0 && row_indices[i] < rows);
    IMCAT_CHECK(col_indices[i] >= 0 && col_indices[i] < cols);
    ++counts[row_indices[i] + 1];
  }
  std::partial_sum(counts.begin(), counts.end(), counts.begin());

  // Bucket by row.
  std::vector<int64_t> cursor(counts.begin(), counts.end() - 1);
  std::vector<int64_t> cols_tmp(n);
  std::vector<float> vals_tmp(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t pos = cursor[row_indices[i]]++;
    cols_tmp[pos] = col_indices[i];
    vals_tmp[pos] = values[i];
  }

  // Sort within each row and merge duplicates.
  m.indptr_.assign(rows + 1, 0);
  m.indices_.reserve(n);
  m.values_.reserve(n);
  std::vector<int64_t> order;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t begin = counts[r];
    const int64_t end = counts[r + 1];
    order.resize(end - begin);
    std::iota(order.begin(), order.end(), begin);
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      return cols_tmp[a] < cols_tmp[b];
    });
    for (int64_t k : order) {
      if (!m.indices_.empty() &&
          static_cast<int64_t>(m.indices_.size()) > m.indptr_[r] &&
          m.indices_.back() == cols_tmp[k]) {
        m.values_.back() += vals_tmp[k];
      } else {
        m.indices_.push_back(cols_tmp[k]);
        m.values_.push_back(vals_tmp[k]);
      }
    }
    m.indptr_[r + 1] = static_cast<int64_t>(m.indices_.size());
  }
  return m;
}

SparseMatrix SparseMatrix::Transposed() const {
  std::vector<int64_t> rows_t;
  std::vector<int64_t> cols_t;
  rows_t.reserve(nnz());
  cols_t.reserve(nnz());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = indptr_[r]; k < indptr_[r + 1]; ++k) {
      rows_t.push_back(indices_[k]);
      cols_t.push_back(r);
    }
  }
  return FromTriplets(cols_, rows_, rows_t, cols_t, values_);
}

void SparseMatrix::Multiply(const float* x, int64_t x_cols, float* y) const {
  std::memset(y, 0, sizeof(float) * static_cast<size_t>(rows_ * x_cols));
  for (int64_t r = 0; r < rows_; ++r) {
    float* yr = y + r * x_cols;
    for (int64_t k = indptr_[r]; k < indptr_[r + 1]; ++k) {
      const float v = values_[k];
      const float* xr = x + indices_[k] * x_cols;
      for (int64_t c = 0; c < x_cols; ++c) yr[c] += v * xr[c];
    }
  }
}

}  // namespace imcat
