#ifndef IMCAT_TENSOR_SPARSE_H_
#define IMCAT_TENSOR_SPARSE_H_

#include <cstdint>
#include <vector>

/// \file sparse.h
/// A fixed (non-differentiable) CSR sparse matrix used as the left operand
/// of sparse-dense products (graph propagation in LightGCN and the graph
/// baselines). The matrix itself never receives gradients; SpMM backward
/// multiplies by the transpose.

namespace imcat {

/// Compressed-sparse-row float matrix.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds a CSR matrix from unordered triplets. Duplicate (row, col)
  /// entries are summed.
  static SparseMatrix FromTriplets(int64_t rows, int64_t cols,
                                   const std::vector<int64_t>& row_indices,
                                   const std::vector<int64_t>& col_indices,
                                   const std::vector<float>& values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& indptr() const { return indptr_; }
  const std::vector<int64_t>& indices() const { return indices_; }
  const std::vector<float>& values() const { return values_; }

  /// Returns the transposed matrix (CSR of A^T).
  SparseMatrix Transposed() const;

  /// y = A x for dense row-major x (x_cols columns). y must hold
  /// rows()*x_cols floats; it is overwritten.
  void Multiply(const float* x, int64_t x_cols, float* y) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> indptr_;
  std::vector<int64_t> indices_;
  std::vector<float> values_;
};

}  // namespace imcat

#endif  // IMCAT_TENSOR_SPARSE_H_
