#include "tensor/tensor.h"

#include <algorithm>

namespace imcat {

Tensor::Tensor(int64_t rows, int64_t cols, bool requires_grad) {
  IMCAT_CHECK_GE(rows, 0);
  IMCAT_CHECK_GE(cols, 0);
  node_ = std::make_shared<internal::TensorNode>();
  node_->rows = rows;
  node_->cols = cols;
  node_->data.assign(static_cast<size_t>(rows * cols), 0.0f);
  node_->requires_grad = requires_grad;
  node_->op_name = "leaf";
}

Tensor::Tensor(int64_t rows, int64_t cols, std::vector<float> values,
               bool requires_grad) {
  IMCAT_CHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
  node_ = std::make_shared<internal::TensorNode>();
  node_->rows = rows;
  node_->cols = cols;
  node_->data = std::move(values);
  node_->requires_grad = requires_grad;
  node_->op_name = "leaf";
}

void Tensor::ZeroGrad() {
  auto* n = node();
  if (!n->grad.empty()) std::fill(n->grad.begin(), n->grad.end(), 0.0f);
}

Tensor Tensor::DetachedCopy() const {
  const auto* n = node();
  return Tensor(n->rows, n->cols, n->data, /*requires_grad=*/false);
}

}  // namespace imcat
