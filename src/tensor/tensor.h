#ifndef IMCAT_TENSOR_TENSOR_H_
#define IMCAT_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"

/// \file tensor.h
/// A small dense 2-D tensor with reverse-mode automatic differentiation.
///
/// This is the training substrate for the whole library: every model
/// (backbones, IMCAT, baselines) expresses its forward pass with the ops in
/// ops.h, and gradients are obtained with Backward() in autograd.h. The
/// design follows the classic define-by-run tape: each op allocates a new
/// node holding its output, its parents, and a closure that accumulates
/// gradients into the parents.
///
/// Tensors are cheap shared handles: copying a Tensor aliases the same
/// storage and autograd node.

namespace imcat {

namespace internal {

struct TensorNode {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<float> data;
  std::vector<float> grad;  // Lazily allocated; same size as data.
  bool requires_grad = false;
  // Parents in the autograd graph (kept alive for backward).
  std::vector<std::shared_ptr<TensorNode>> parents;
  // Accumulates this node's grad into its parents' grads.
  std::function<void()> backward_fn;
  std::string op_name;  // For error messages / debugging.

  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

}  // namespace internal

/// A 2-D float tensor handle participating in the autograd graph.
///
/// A default-constructed Tensor is null; all accessors require a non-null
/// handle. Shapes are (rows, cols); vectors are represented as (n, 1) or
/// (1, n) depending on the op's convention.
class Tensor {
 public:
  /// Null tensor.
  Tensor() = default;

  /// Allocates a zero-filled tensor. If `requires_grad` is true, gradients
  /// flow into this tensor during Backward() (leaf parameter).
  Tensor(int64_t rows, int64_t cols, bool requires_grad = false);

  /// Allocates a tensor initialised from `values` (row-major). The size of
  /// `values` must be rows*cols.
  Tensor(int64_t rows, int64_t cols, std::vector<float> values,
         bool requires_grad = false);

  /// True if this handle refers to storage.
  bool defined() const { return node_ != nullptr; }

  int64_t rows() const { return node()->rows; }
  int64_t cols() const { return node()->cols; }
  int64_t size() const { return node()->rows * node()->cols; }

  /// Raw row-major storage.
  float* data() { return node()->data.data(); }
  const float* data() const { return node()->data.data(); }

  /// Element accessors (row-major). Bounds-checked.
  float at(int64_t r, int64_t c) const {
    IMCAT_CHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
    return node()->data[r * cols() + c];
  }
  void set(int64_t r, int64_t c, float v) {
    IMCAT_CHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
    node()->data[r * cols() + c] = v;
  }

  /// Gradient storage; allocated on demand (zero-filled).
  float* grad() {
    node()->EnsureGrad();
    return node()->grad.data();
  }
  const std::vector<float>& grad_vector() const {
    node()->EnsureGrad();
    return node()->grad;
  }

  bool requires_grad() const { return node()->requires_grad; }

  /// Zeroes the gradient buffer (no-op if never allocated).
  void ZeroGrad();

  /// Returns a detached copy sharing no autograd history (fresh leaf with
  /// requires_grad=false, data copied).
  Tensor DetachedCopy() const;

  /// For a 1x1 tensor, returns the single value.
  float item() const {
    IMCAT_CHECK_EQ(size(), 1);
    return node()->data[0];
  }

  /// Internal: autograd node access (used by ops.cc / autograd.cc).
  const std::shared_ptr<internal::TensorNode>& node_ptr() const {
    IMCAT_CHECK(node_ != nullptr);
    return node_;
  }

 private:
  internal::TensorNode* node() const {
    IMCAT_CHECK(node_ != nullptr);
    return node_.get();
  }

  std::shared_ptr<internal::TensorNode> node_;
};

}  // namespace imcat

#endif  // IMCAT_TENSOR_TENSOR_H_
