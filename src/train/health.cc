#include "train/health.h"

#include <cmath>

namespace imcat {

HealthMonitor::HealthMonitor(HealthOptions options) : options_(options) {}

HealthVerdict HealthMonitor::CheckLoss(double loss) {
  HealthVerdict verdict;
  if (!std::isfinite(loss)) {
    verdict.healthy = false;
    verdict.reason = "non-finite training loss " + std::to_string(loss);
  }
  return verdict;
}

bool HealthMonitor::HasNonFinite(const Tensor& t) {
  const float* data = t.data();
  const int64_t n = t.size();
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) return true;
  }
  // Only scan the gradient if it has been materialised; grad_vector()
  // lazily allocates, so consult it through the same lazily-sized buffer.
  const std::vector<float>& grad = t.grad_vector();
  for (float g : grad) {
    if (!std::isfinite(g)) return true;
  }
  return false;
}

HealthVerdict HealthMonitor::CheckTensors(const std::vector<Tensor>& tensors) {
  HealthVerdict verdict;
  for (size_t i = 0; i < tensors.size(); ++i) {
    if (HasNonFinite(tensors[i])) {
      verdict.healthy = false;
      verdict.reason =
          "non-finite values in parameter tensor " + std::to_string(i);
      return verdict;
    }
  }
  return verdict;
}

void HealthMonitor::RecordGradNorm(double norm) {
  if (norm >= 0.0) grad_norms_.push_back(norm);
}

}  // namespace imcat
