#ifndef IMCAT_TRAIN_HEALTH_H_
#define IMCAT_TRAIN_HEALTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

/// \file health.h
/// Numerical-health monitoring for the training loop. Contrastive
/// objectives (InfoNCE alignment losses) can spike or NaN under an unlucky
/// negative batch; the HealthMonitor detects non-finite losses, parameters
/// and gradients so the Trainer can roll back to the last healthy snapshot
/// and retry with a reduced learning rate instead of aborting the run.

namespace imcat {

/// Divergence-guard policy knobs (part of TrainerOptions).
struct HealthOptions {
  /// Master switch; when false the trainer behaves exactly as before.
  bool enabled = true;
  /// After a divergent epoch: roll back and retry at most this many times
  /// over the whole run before failing with FailedPrecondition.
  int64_t max_rollbacks = 3;
  /// Learning-rate multiplier applied on every rollback (0 < factor < 1).
  double lr_backoff = 0.5;
  /// Also scan every parameter tensor for NaN/Inf after each epoch
  /// (catches divergence that has not yet reached the loss).
  bool check_parameters = true;
};

/// The verdict of a health check: healthy, or a human-readable reason why
/// not.
struct HealthVerdict {
  bool healthy = true;
  std::string reason;
};

/// Tracks numerical health across a training run: per-step loss checks,
/// parameter/gradient NaN-Inf scans, gradient-norm history and the
/// rollback budget.
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthOptions options = {});

  const HealthOptions& options() const { return options_; }

  /// Checks one training-step loss. Non-finite losses are unhealthy.
  HealthVerdict CheckLoss(double loss);

  /// Scans parameters (and their gradients, when allocated) for NaN/Inf.
  HealthVerdict CheckTensors(const std::vector<Tensor>& tensors);

  /// Records the gradient norm observed by the optimizer this epoch
  /// (negative values, meaning "not measured", are ignored).
  void RecordGradNorm(double norm);

  /// Most recent recorded gradient norm, or -1 if none.
  double last_grad_norm() const {
    return grad_norms_.empty() ? -1.0 : grad_norms_.back();
  }
  const std::vector<double>& grad_norms() const { return grad_norms_; }

  /// Rollback budget accounting.
  bool CanRollback() const { return rollbacks_ < options_.max_rollbacks; }
  void RecordRollback() { ++rollbacks_; }
  int64_t rollbacks() const { return rollbacks_; }

  /// True when any value of `t`'s data (or grad, if allocated) is
  /// non-finite.
  static bool HasNonFinite(const Tensor& t);

 private:
  HealthOptions options_;
  int64_t rollbacks_ = 0;
  std::vector<double> grad_norms_;
};

}  // namespace imcat

#endif  // IMCAT_TRAIN_HEALTH_H_
