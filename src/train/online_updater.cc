#include "train/online_updater.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "serve/shard_format.h"
#include "serve/snapshot.h"
#include "serve/snapshot_store.h"
#include "tensor/checkpoint.h"
#include "tensor/tensor.h"
#include "util/check.h"

namespace imcat {

namespace {

/// Checkpoint v2 stores float32 tensors, whose 24-bit mantissa cannot hold
/// a large id exactly — so every int64 in the updater checkpoint is split
/// into three 21-bit chunks, one float each (floats represent integers
/// < 2^24 exactly). Covers the full non-negative id range the ingest layer
/// admits (< 2^40) with room to spare (63 bits).
constexpr int kChunkBits = 21;
constexpr int64_t kChunkMask = (int64_t{1} << kChunkBits) - 1;
constexpr int64_t kFloatsPerI64 = 3;

void AppendI64(std::vector<float>* out, int64_t value) {
  IMCAT_CHECK(value >= 0);
  out->push_back(static_cast<float>(value & kChunkMask));
  out->push_back(static_cast<float>((value >> kChunkBits) & kChunkMask));
  out->push_back(static_cast<float>((value >> (2 * kChunkBits)) & kChunkMask));
}

int64_t DecodeI64(const float* chunks) {
  return static_cast<int64_t>(chunks[0]) +
         (static_cast<int64_t>(chunks[1]) << kChunkBits) +
         (static_cast<int64_t>(chunks[2]) << (2 * kChunkBits));
}

/// Meta-tensor layout (each field one encoded int64). Bump kMetaTag when
/// the field list changes so an old updater checkpoint fails cleanly.
enum MetaField : int64_t {
  kMetaTagField = 0,
  kMetaPublishedVersion,
  kMetaNumUsers,
  kMetaNumItems,
  kMetaDim,
  kMetaItemsPerShard,
  kMetaInitialUsers,
  kMetaInitialItems,
  kMetaUsersDirty,
  kMetaDuplicates,
  kMetaGrowthRejected,
  kMetaAppliedTotal,
  kMetaPendingCount,
  kMetaDirtyCount,
  kMetaAdjacencyNnz,
  kNumMetaFields,
};
constexpr int64_t kMetaTag = 1;
constexpr int64_t kUpdaterTensorCount = 7;

/// In-place Cholesky factor + solve of the SPD system A x = b, with only
/// the lower triangle of `a` populated. Returns false when a pivot is not
/// positive (cannot happen for λ > 0; the caller then leaves the row
/// unchanged rather than writing garbage).
bool CholeskySolve(std::vector<double>* a_in, int64_t d,
                   std::vector<double>* b_in) {
  std::vector<double>& a = *a_in;
  std::vector<double>& b = *b_in;
  for (int64_t j = 0; j < d; ++j) {
    double diag = a[j * d + j];
    for (int64_t k = 0; k < j; ++k) diag -= a[j * d + k] * a[j * d + k];
    if (diag <= 0.0) return false;
    diag = std::sqrt(diag);
    a[j * d + j] = diag;
    for (int64_t i = j + 1; i < d; ++i) {
      double v = a[i * d + j];
      for (int64_t k = 0; k < j; ++k) v -= a[i * d + k] * a[j * d + k];
      a[i * d + j] = v / diag;
    }
  }
  for (int64_t i = 0; i < d; ++i) {
    double v = b[i];
    for (int64_t k = 0; k < i; ++k) v -= a[i * d + k] * b[k];
    b[i] = v / a[i * d + i];
  }
  for (int64_t i = d - 1; i >= 0; --i) {
    double v = b[i];
    for (int64_t k = i + 1; k < d; ++k) v -= a[k * d + i] * b[k];
    b[i] = v / a[i * d + i];
  }
  return true;
}

/// Inserts `value` into a sorted vector, keeping it sorted and unique.
void InsertSorted(std::vector<int64_t>* vec, int64_t value) {
  auto it = std::lower_bound(vec->begin(), vec->end(), value);
  if (it == vec->end() || *it != value) vec->insert(it, value);
}

bool ContainsSorted(const std::vector<int64_t>& vec, int64_t value) {
  return std::binary_search(vec.begin(), vec.end(), value);
}

}  // namespace

void OnlineUpdater::ResolveMetrics() {
  if (options_.metrics == nullptr) return;
  MetricsRegistry* m = options_.metrics;
  edges_ingested_total_ = m->GetCounter("updater_edges_ingested_total");
  edges_duplicate_total_ = m->GetCounter("updater_edges_duplicate_total");
  edges_rejected_total_ = m->GetCounter("updater_edges_rejected_total");
  edges_applied_total_ = m->GetCounter("updater_edges_applied_total");
  solves_total_ = m->GetCounter("updater_solves_total");
  publishes_total_ = m->GetCounter("updater_publishes_total");
  pending_gauge_ = m->GetGauge("updater_pending_edges");
  apply_ms_ = m->GetHistogram("updater_apply_ms");
}

StatusOr<std::unique_ptr<OnlineUpdater>> OnlineUpdater::FromSnapshot(
    const std::string& snapshot_path, const EdgeList& seen,
    const OnlineUpdaterOptions& options) {
  if (options.l2 <= 0.0) {
    return Status::InvalidArgument(
        "fold-in requires l2 > 0 (the ridge term keeps the solve SPD), got " +
        std::to_string(options.l2));
  }
  auto loaded = EmbeddingSnapshot::Load(snapshot_path);
  IMCAT_RETURN_IF_ERROR(loaded.status());
  const std::shared_ptr<EmbeddingSnapshot>& snapshot = loaded.value();
  if (snapshot->quarantined_count() > 0) {
    return Status::FailedPrecondition(
        snapshot_path + ": snapshot has " +
        std::to_string(snapshot->quarantined_count()) +
        " quarantined shard(s); folding in on top of zeroed rows would "
        "publish garbage — seed from a clean snapshot");
  }
  std::unique_ptr<OnlineUpdater> updater(new OnlineUpdater());
  updater->options_ = options;
  updater->ResolveMetrics();
  updater->dim_ = snapshot->dim();
  updater->items_per_shard_ = snapshot->items_per_shard();
  updater->num_users_ = snapshot->num_users();
  updater->num_items_ = snapshot->num_items();
  updater->initial_users_ = snapshot->num_users();
  updater->initial_items_ = snapshot->num_items();
  updater->published_version_ = snapshot->parent_version();
  updater->users_.assign(snapshot->user(0),
                         snapshot->user(0) + snapshot->num_users() *
                                                 snapshot->dim());
  updater->items_.assign(snapshot->item(0),
                         snapshot->item(0) + snapshot->num_items() *
                                                 snapshot->dim());
  updater->user_items_.resize(static_cast<size_t>(updater->num_users_));
  updater->item_users_.resize(static_cast<size_t>(updater->num_items_));
  for (const auto& [u, i] : seen) {
    if (u < 0 || u >= updater->num_users_ || i < 0 ||
        i >= updater->num_items_) {
      return Status::InvalidArgument(
          snapshot_path + ": seen interaction (" + std::to_string(u) + ", " +
          std::to_string(i) + ") outside the snapshot's " +
          std::to_string(updater->num_users_) + " users x " +
          std::to_string(updater->num_items_) + " items");
    }
    updater->user_items_[static_cast<size_t>(u)].push_back(i);
    updater->item_users_[static_cast<size_t>(i)].push_back(u);
  }
  for (auto& items : updater->user_items_) {
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
  }
  for (auto& users : updater->item_users_) {
    std::sort(users.begin(), users.end());
    users.erase(std::unique(users.begin(), users.end()), users.end());
  }
  return updater;
}

StatusOr<std::unique_ptr<OnlineUpdater>> OnlineUpdater::FromCheckpoint(
    const std::string& checkpoint_path, const OnlineUpdaterOptions& options) {
  std::unique_ptr<OnlineUpdater> updater(new OnlineUpdater());
  updater->options_ = options;
  updater->ResolveMetrics();
  IMCAT_RETURN_IF_ERROR(updater->Restore(checkpoint_path));
  return updater;
}

Status OnlineUpdater::IngestFile(const std::string& path) {
  EdgeList edges;
  IngestFileReport report;
  Status read = ReadEdgeFile(path, options_.ingest, &edges, &report);
  ingest_report_.MergeFrom(report);
  if (!read.ok()) return read;
  const int64_t duplicates_before = duplicates_skipped_;
  const int64_t rejected_before = growth_rejected_;
  const int64_t pending_before = pending_edges();
  IMCAT_RETURN_IF_ERROR(AddInteractions(edges));
  if (options_.journal != nullptr) {
    options_.journal->Append(
        JournalEvent("updater_ingest")
            .Set("path", path)
            .Set("total", report.total_records)
            .Set("kept", report.kept)
            .Set("quarantined", report.quarantined)
            .Set("new_edges", pending_edges() - pending_before)
            .Set("duplicates", duplicates_skipped_ - duplicates_before)
            .Set("growth_rejected", growth_rejected_ - rejected_before));
  }
  return Status::OK();
}

Status OnlineUpdater::AddInteractions(const EdgeList& edges) {
  for (const auto& [u, i] : edges) {
    if (u < 0 || i < 0) {
      return Status::InvalidArgument("negative id in interaction (" +
                                     std::to_string(u) + ", " +
                                     std::to_string(i) + ")");
    }
    if (u >= initial_users_ + options_.max_new_users ||
        i >= initial_items_ + options_.max_new_items) {
      // Growth guard: one corrupt id must not balloon the factor tables.
      ++growth_rejected_;
      if (edges_rejected_total_ != nullptr) edges_rejected_total_->Increment();
      continue;
    }
    const bool already_applied =
        u < num_users_ &&
        ContainsSorted(user_items_[static_cast<size_t>(u)], i);
    if (already_applied || !pending_set_.emplace(u, i).second) {
      ++duplicates_skipped_;
      if (edges_duplicate_total_ != nullptr) {
        edges_duplicate_total_->Increment();
      }
      continue;
    }
    pending_.emplace_back(u, i);
    if (edges_ingested_total_ != nullptr) edges_ingested_total_->Increment();
  }
  if (pending_gauge_ != nullptr) {
    pending_gauge_->Set(static_cast<double>(pending_.size()));
  }
  return Status::OK();
}

Status OnlineUpdater::ApplyPending() {
  if (pending_.empty()) return Status::OK();
  ScopedTimer timer(apply_ms_);

  // Growth: new ids extend the tables with zero rows; the fold-in solves
  // below give touched rows real factors. Shards whose item range grew
  // (the old tail shard and every new shard) must ship in the next delta
  // even when untouched — their range is new to the base.
  int64_t max_user = num_users_ - 1;
  int64_t max_item = num_items_ - 1;
  for (const auto& [u, i] : pending_) {
    max_user = std::max(max_user, u);
    max_item = std::max(max_item, i);
  }
  const int64_t old_users = num_users_;
  const int64_t old_items = num_items_;
  if (max_user + 1 > num_users_) {
    num_users_ = max_user + 1;
    users_.resize(static_cast<size_t>(num_users_ * dim_), 0.0f);
    user_items_.resize(static_cast<size_t>(num_users_));
  }
  if (max_item + 1 > num_items_) {
    num_items_ = max_item + 1;
    items_.resize(static_cast<size_t>(num_items_ * dim_), 0.0f);
    item_users_.resize(static_cast<size_t>(num_items_));
    const int64_t new_shards =
        (num_items_ + items_per_shard_ - 1) / items_per_shard_;
    for (int64_t s = old_items / items_per_shard_; s < new_shards; ++s) {
      dirty_shards_.insert(s);
    }
  }

  std::set<int64_t> touched_users;
  std::set<int64_t> touched_items;
  for (const auto& [u, i] : pending_) {
    InsertSorted(&user_items_[static_cast<size_t>(u)], i);
    InsertSorted(&item_users_[static_cast<size_t>(i)], u);
    touched_users.insert(u);
    touched_items.insert(i);
  }
  // Fixed solve order — users ascending, then items ascending against the
  // updated user factors — keeps the result independent of arrival order
  // within the batch and bit-identical across kill-and-resume.
  for (int64_t u : touched_users) SolveUser(u);
  for (int64_t i : touched_items) {
    SolveItem(i);
    dirty_shards_.insert(i / items_per_shard_);
  }
  users_dirty_ = true;
  const int64_t applied = static_cast<int64_t>(pending_.size());
  applied_edges_total_ += applied;
  if (edges_applied_total_ != nullptr) edges_applied_total_->Add(applied);
  pending_.clear();
  pending_set_.clear();
  if (pending_gauge_ != nullptr) pending_gauge_->Set(0.0);
  if (options_.journal != nullptr) {
    options_.journal->Append(
        JournalEvent("updater_apply")
            .Set("edges", applied)
            .Set("touched_users",
                 static_cast<int64_t>(touched_users.size()))
            .Set("touched_items",
                 static_cast<int64_t>(touched_items.size()))
            .Set("new_users", num_users_ - old_users)
            .Set("new_items", num_items_ - old_items)
            .Set("dirty_shards",
                 static_cast<int64_t>(dirty_shards_.size())));
  }
  return Status::OK();
}

void OnlineUpdater::SolveUser(int64_t u) {
  const std::vector<int64_t>& observed = user_items_[static_cast<size_t>(u)];
  if (observed.empty()) return;
  const int64_t d = dim_;
  const double w = options_.implicit_weight;
  std::vector<double> gram(static_cast<size_t>(d * d), 0.0);
  std::vector<double> rhs(static_cast<size_t>(d), 0.0);
  for (int64_t i : observed) {
    const float* v = items_.data() + i * d;
    for (int64_t r = 0; r < d; ++r) {
      const double vr = v[r];
      rhs[r] += w * vr;
      for (int64_t c = 0; c <= r; ++c) gram[r * d + c] += w * vr * v[c];
    }
  }
  for (int64_t r = 0; r < d; ++r) gram[r * d + r] += options_.l2;
  if (!CholeskySolve(&gram, d, &rhs)) return;
  float* row = users_.data() + u * d;
  for (int64_t r = 0; r < d; ++r) row[r] = static_cast<float>(rhs[r]);
  if (solves_total_ != nullptr) solves_total_->Increment();
}

void OnlineUpdater::SolveItem(int64_t i) {
  const std::vector<int64_t>& observed = item_users_[static_cast<size_t>(i)];
  if (observed.empty()) return;
  const int64_t d = dim_;
  const double w = options_.implicit_weight;
  std::vector<double> gram(static_cast<size_t>(d * d), 0.0);
  std::vector<double> rhs(static_cast<size_t>(d), 0.0);
  for (int64_t u : observed) {
    const float* p = users_.data() + u * d;
    for (int64_t r = 0; r < d; ++r) {
      const double pr = p[r];
      rhs[r] += w * pr;
      for (int64_t c = 0; c <= r; ++c) gram[r * d + c] += w * pr * p[c];
    }
  }
  for (int64_t r = 0; r < d; ++r) gram[r * d + r] += options_.l2;
  if (!CholeskySolve(&gram, d, &rhs)) return;
  float* row = items_.data() + i * d;
  for (int64_t r = 0; r < d; ++r) row[r] = static_cast<float>(rhs[r]);
  if (solves_total_ != nullptr) solves_total_->Increment();
}

Status OnlineUpdater::PublishDelta(const std::string& path) {
  if (!users_dirty_ && dirty_shards_.empty()) {
    return Status::FailedPrecondition(
        path + ": nothing to publish — no factor rows changed since the "
               "last publish (apply pending edges first)");
  }
  DeltaSnapshotOptions delta;
  delta.items_per_shard = items_per_shard_;
  delta.base_version = published_version_;
  delta.version = published_version_ + 1;
  const std::vector<int64_t> changed(dirty_shards_.begin(),
                                     dirty_shards_.end());
  Tensor users(num_users_, dim_, users_);
  Tensor items(num_items_, dim_, items_);
  Status written = WriteDeltaSnapshot(path, users, items, changed, delta);
  if (options_.journal != nullptr) {
    options_.journal->Append(
        JournalEvent("updater_publish")
            .Set("kind", "delta")
            .Set("ok", written.ok())
            .Set("path", path)
            .Set("base_version", delta.base_version)
            .Set("version", delta.version)
            .Set("changed_shards", static_cast<int64_t>(changed.size())));
  }
  IMCAT_RETURN_IF_ERROR(written);
  published_version_ = delta.version;
  dirty_shards_.clear();
  users_dirty_ = false;
  if (publishes_total_ != nullptr) publishes_total_->Increment();
  return Status::OK();
}

Status OnlineUpdater::PublishFull(const std::string& path) {
  ShardedSnapshotOptions full;
  full.items_per_shard = items_per_shard_;
  full.version = published_version_ + 1;
  Tensor users(num_users_, dim_, users_);
  Tensor items(num_items_, dim_, items_);
  Status written = WriteShardedSnapshot(path, users, items, full);
  if (options_.journal != nullptr) {
    options_.journal->Append(
        JournalEvent("updater_publish")
            .Set("kind", "full")
            .Set("ok", written.ok())
            .Set("path", path)
            .Set("version", full.version));
  }
  IMCAT_RETURN_IF_ERROR(written);
  published_version_ = full.version;
  dirty_shards_.clear();
  users_dirty_ = false;
  if (publishes_total_ != nullptr) publishes_total_->Increment();
  return Status::OK();
}

Status OnlineUpdater::PublishDelta(SnapshotStore* store) {
  const int64_t base = published_version_;
  const int64_t version = published_version_ + 1;
  IMCAT_RETURN_IF_ERROR(PublishDelta(store->DeltaPath(base, version)));
  return store->CommitDelta(base, version);
}

Status OnlineUpdater::PublishFull(SnapshotStore* store) {
  const int64_t version = published_version_ + 1;
  IMCAT_RETURN_IF_ERROR(PublishFull(store->FullPath(version)));
  return store->CommitFull(version);
}

Status OnlineUpdater::Checkpoint(const std::string& path) const {
  std::vector<Tensor> tensors;
  tensors.reserve(kUpdaterTensorCount);
  tensors.emplace_back(num_users_, dim_, users_);
  tensors.emplace_back(num_items_, dim_, items_);

  std::vector<float> meta;
  meta.reserve(static_cast<size_t>(kNumMetaFields * kFloatsPerI64));
  int64_t nnz = 0;
  for (const auto& items : user_items_) {
    nnz += static_cast<int64_t>(items.size());
  }
  AppendI64(&meta, kMetaTag);
  AppendI64(&meta, published_version_);
  AppendI64(&meta, num_users_);
  AppendI64(&meta, num_items_);
  AppendI64(&meta, dim_);
  AppendI64(&meta, items_per_shard_);
  AppendI64(&meta, initial_users_);
  AppendI64(&meta, initial_items_);
  AppendI64(&meta, users_dirty_ ? 1 : 0);
  AppendI64(&meta, duplicates_skipped_);
  AppendI64(&meta, growth_rejected_);
  AppendI64(&meta, applied_edges_total_);
  AppendI64(&meta, static_cast<int64_t>(pending_.size()));
  AppendI64(&meta, static_cast<int64_t>(dirty_shards_.size()));
  AppendI64(&meta, nnz);
  tensors.emplace_back(1, static_cast<int64_t>(meta.size()), std::move(meta));

  // Adjacency as CSR over users (item_users_ is its transpose, rebuilt on
  // Restore). Empty payloads pad to one zero float: a (1, 0) tensor is not
  // representable, and the meta counts carry the true lengths.
  std::vector<float> offsets;
  offsets.reserve(static_cast<size_t>((num_users_ + 1) * kFloatsPerI64));
  std::vector<float> adjacency;
  adjacency.reserve(static_cast<size_t>(nnz * kFloatsPerI64));
  int64_t running = 0;
  AppendI64(&offsets, 0);
  for (const auto& items : user_items_) {
    running += static_cast<int64_t>(items.size());
    AppendI64(&offsets, running);
    for (int64_t i : items) AppendI64(&adjacency, i);
  }
  if (adjacency.empty()) adjacency.push_back(0.0f);
  tensors.emplace_back(1, static_cast<int64_t>(offsets.size()),
                       std::move(offsets));
  tensors.emplace_back(1, static_cast<int64_t>(adjacency.size()),
                       std::move(adjacency));

  std::vector<float> dirty;
  for (int64_t s : dirty_shards_) AppendI64(&dirty, s);
  if (dirty.empty()) dirty.push_back(0.0f);
  tensors.emplace_back(1, static_cast<int64_t>(dirty.size()),
                       std::move(dirty));

  std::vector<float> pending;
  pending.reserve(pending_.size() * 2 * kFloatsPerI64);
  for (const auto& [u, i] : pending_) {
    AppendI64(&pending, u);
    AppendI64(&pending, i);
  }
  if (pending.empty()) pending.push_back(0.0f);
  tensors.emplace_back(1, static_cast<int64_t>(pending.size()),
                       std::move(pending));

  return SaveCheckpoint(path, tensors);
}

Status OnlineUpdater::Restore(const std::string& path) {
  auto shapes_or = ReadCheckpointShapes(path);
  IMCAT_RETURN_IF_ERROR(shapes_or.status());
  const auto& shapes = shapes_or.value();
  if (static_cast<int64_t>(shapes.size()) != kUpdaterTensorCount) {
    return Status::InvalidArgument(
        path + ": not an updater checkpoint (expected " +
        std::to_string(kUpdaterTensorCount) + " tensors, found " +
        std::to_string(shapes.size()) + ")");
  }
  std::vector<Tensor> tensors;
  tensors.reserve(shapes.size());
  for (const auto& [rows, cols] : shapes) tensors.emplace_back(rows, cols);
  IMCAT_RETURN_IF_ERROR(LoadCheckpoint(path, &tensors));

  const Tensor& meta = tensors[2];
  if (meta.size() != kNumMetaFields * kFloatsPerI64 ||
      DecodeI64(meta.data() + kMetaTagField * kFloatsPerI64) != kMetaTag) {
    return Status::InvalidArgument(path +
                                   ": not an updater checkpoint (meta "
                                   "tensor tag mismatch)");
  }
  const auto field = [&meta](MetaField f) {
    return DecodeI64(meta.data() + f * kFloatsPerI64);
  };
  const int64_t num_users = field(kMetaNumUsers);
  const int64_t num_items = field(kMetaNumItems);
  const int64_t dim = field(kMetaDim);
  const int64_t pending_count = field(kMetaPendingCount);
  const int64_t dirty_count = field(kMetaDirtyCount);
  const int64_t nnz = field(kMetaAdjacencyNnz);
  const auto padded = [](int64_t n) { return std::max<int64_t>(n, 1); };
  if (num_users <= 0 || num_items <= 0 || dim <= 0 ||
      field(kMetaItemsPerShard) <= 0 || pending_count < 0 ||
      dirty_count < 0 || nnz < 0 ||
      tensors[0].rows() != num_users || tensors[0].cols() != dim ||
      tensors[1].rows() != num_items || tensors[1].cols() != dim ||
      tensors[3].size() != (num_users + 1) * kFloatsPerI64 ||
      tensors[4].size() != padded(nnz * kFloatsPerI64) ||
      tensors[5].size() != padded(dirty_count * kFloatsPerI64) ||
      tensors[6].size() != padded(pending_count * 2 * kFloatsPerI64)) {
    return Status::InvalidArgument(
        path + ": updater checkpoint is internally inconsistent");
  }
  num_users_ = num_users;
  num_items_ = num_items;
  dim_ = dim;
  items_per_shard_ = field(kMetaItemsPerShard);
  initial_users_ = field(kMetaInitialUsers);
  initial_items_ = field(kMetaInitialItems);
  published_version_ = field(kMetaPublishedVersion);
  users_dirty_ = field(kMetaUsersDirty) != 0;
  duplicates_skipped_ = field(kMetaDuplicates);
  growth_rejected_ = field(kMetaGrowthRejected);
  applied_edges_total_ = field(kMetaAppliedTotal);
  users_.assign(tensors[0].data(), tensors[0].data() + tensors[0].size());
  items_.assign(tensors[1].data(), tensors[1].data() + tensors[1].size());

  const float* offsets = tensors[3].data();
  const float* adjacency = tensors[4].data();
  user_items_.assign(static_cast<size_t>(num_users_), {});
  item_users_.assign(static_cast<size_t>(num_items_), {});
  int64_t previous = 0;
  for (int64_t u = 0; u < num_users_; ++u) {
    const int64_t end = DecodeI64(offsets + (u + 1) * kFloatsPerI64);
    if (end < previous || end > nnz) {
      return Status::InvalidArgument(
          path + ": updater checkpoint adjacency offsets corrupt");
    }
    std::vector<int64_t>& items = user_items_[static_cast<size_t>(u)];
    items.reserve(static_cast<size_t>(end - previous));
    for (int64_t k = previous; k < end; ++k) {
      const int64_t item = DecodeI64(adjacency + k * kFloatsPerI64);
      if (item < 0 || item >= num_items_) {
        return Status::InvalidArgument(
            path + ": updater checkpoint adjacency item out of range");
      }
      items.push_back(item);
      // Ascending u appended per item keeps item_users_ sorted without a
      // second pass — the same order the live updater maintains.
      item_users_[static_cast<size_t>(item)].push_back(u);
    }
    previous = end;
  }
  if (previous != nnz) {
    return Status::InvalidArgument(
        path + ": updater checkpoint adjacency length mismatch");
  }

  dirty_shards_.clear();
  const float* dirty = tensors[5].data();
  const int64_t total_shards =
      (num_items_ + items_per_shard_ - 1) / items_per_shard_;
  for (int64_t k = 0; k < dirty_count; ++k) {
    const int64_t shard = DecodeI64(dirty + k * kFloatsPerI64);
    if (shard < 0 || shard >= total_shards) {
      return Status::InvalidArgument(
          path + ": updater checkpoint dirty shard out of range");
    }
    dirty_shards_.insert(shard);
  }

  pending_.clear();
  pending_set_.clear();
  const float* pending = tensors[6].data();
  for (int64_t k = 0; k < pending_count; ++k) {
    const int64_t u = DecodeI64(pending + 2 * k * kFloatsPerI64);
    const int64_t i = DecodeI64(pending + (2 * k + 1) * kFloatsPerI64);
    pending_.emplace_back(u, i);
    pending_set_.emplace(u, i);
  }
  ingest_report_ = IngestFileReport();
  if (pending_gauge_ != nullptr) {
    pending_gauge_->Set(static_cast<double>(pending_.size()));
  }
  if (options_.journal != nullptr) {
    options_.journal->Append(JournalEvent("updater_restore")
                                 .Set("path", path)
                                 .Set("pending", pending_count)
                                 .Set("published_version",
                                      published_version_));
  }
  return Status::OK();
}

}  // namespace imcat
