#ifndef IMCAT_TRAIN_ONLINE_UPDATER_H_
#define IMCAT_TRAIN_ONLINE_UPDATER_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "data/ingest.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/status.h"

/// \file online_updater.h
/// Online fold-in updates for two-tensor factor models, closing the
/// ingestion -> serving loop (DESIGN.md §10). The updater seeds from a
/// published serving snapshot, streams new interactions in through the
/// hardened ingest path (ingest.h: same 9-class taxonomy, same
/// kept + quarantined == total invariant), applies closed-form
/// least-squares fold-in solves to the touched user/item factor rows —
/// including rows for brand-new ids (cold-start fold-in) — and publishes
/// the result as a *delta* snapshot carrying only the item shards that
/// changed, chained to the base version the serving layer has live.
///
/// Fold-in (the iALS-style per-row solve): with item factors V fixed, the
/// least-squares user row for user u with observed item set I_u is
///
///   p_u = (λI + w Σ_{i∈I_u} v_i v_iᵀ)⁻¹ (w Σ_{i∈I_u} v_i),
///
/// a d×d ridge system solved by Cholesky; item rows are symmetric with
/// the *updated* user factors. One ApplyPending pass solves all touched
/// users in ascending id order, then all touched items in ascending id
/// order — a fixed order with double-precision accumulation, so a run is
/// bit-identical regardless of how the same edges were batched, and
/// kill-and-resume through Checkpoint/Restore is bit-identical too.
///
/// Cold start: an id at or past the current table size grows the table
/// (zero rows) and the fold-in solve gives it real factors from its
/// observed neighbours. The one unreachable case is a new user observed
/// only with new items (and vice versa): both rows start zero, so the
/// solve is zero — those rows stay cold until an edge touching trained
/// factors arrives.
///
/// Determinism contract: every structure that influences published bytes
/// (factor tables, adjacency, pending edges, dirty-shard set) is either
/// checkpointed exactly (floats round-trip bit-identically through
/// checkpoint v2) or rebuilt deterministically on Restore.

namespace imcat {

class SnapshotStore;

/// Updater configuration.
struct OnlineUpdaterOptions {
  /// Ridge regulariser λ of the fold-in solve (> 0 keeps the system SPD).
  double l2 = 0.1;
  /// Confidence weight w on observed interactions (target rating 1).
  double implicit_weight = 1.0;
  /// Growth guards: ceilings on ids beyond the seeded tables, so one
  /// corrupt id in a stream cannot balloon the factor tables. Edges past
  /// a guard are rejected-and-counted, never applied.
  int64_t max_new_users = int64_t{1} << 20;
  int64_t max_new_items = int64_t{1} << 20;
  /// Ingest policy for IngestFile. Defaults to permissive: a streaming
  /// consumer quarantines bad records and keeps going; strict mode is for
  /// pipelines that would rather halt the stream.
  IngestOptions ingest = [] {
    IngestOptions o;
    o.policy = ParsePolicy::kPermissive;
    return o;
  }();
  /// Optional instrumentation: the `updater_*` metric family (ingested /
  /// duplicate / rejected / applied edge counters, solve counter, pending
  /// gauge, apply-latency histogram) and "updater_*" journal events.
  MetricsRegistry* metrics = nullptr;
  RunJournal* journal = nullptr;
};

/// Streaming fold-in updater over one (user table, item table) factor
/// pair. Not thread-safe: one updater is one logical stream consumer;
/// concurrent serving reads its *published* snapshot files, never its
/// in-memory state.
class OnlineUpdater {
 public:
  /// Seeds the updater from a published serving snapshot (sharded v3 or
  /// monolithic v2) plus the interactions the model was trained on
  /// (`seen` drives the fold-in solves for returning users/items). Fails
  /// with kFailedPrecondition when the snapshot has quarantined shards
  /// (folding in on top of zeroed rows would publish garbage) and
  /// kInvalidArgument when `seen` references ids outside the snapshot.
  ///
  /// The version chain starts at the snapshot's manifest version
  /// (parent_version). Exports published through a versioned pipeline
  /// line up with RecService automatically; for unversioned exports call
  /// set_published_version with the version the service reports live.
  static StatusOr<std::unique_ptr<OnlineUpdater>> FromSnapshot(
      const std::string& snapshot_path, const EdgeList& seen,
      const OnlineUpdaterOptions& options);

  /// Resumes an updater from a Checkpoint() file — the kill-and-resume
  /// path: the restored updater continues bit-identically to one that was
  /// never interrupted.
  static StatusOr<std::unique_ptr<OnlineUpdater>> FromCheckpoint(
      const std::string& checkpoint_path, const OnlineUpdaterOptions& options);

  /// Streams one micro-batch edge file through the hardened ingest path
  /// and queues its new unique edges. Duplicates of already-applied or
  /// already-pending interactions are counted and skipped; ids past a
  /// growth guard are rejected-and-counted. The per-file report folds
  /// into the cumulative `ingest_report()`.
  Status IngestFile(const std::string& path);

  /// Queues interactions arriving programmatically (same dedup and
  /// growth-guard rules as IngestFile, minus the file parsing).
  Status AddInteractions(const EdgeList& edges);

  /// Applies every pending edge: grows the tables for new ids, inserts
  /// the edges into the adjacency, then re-solves touched users
  /// (ascending id) and touched items (ascending id, against the updated
  /// user factors). Shards whose item rows changed — plus any shard whose
  /// item range grew — join the dirty set for the next delta publish.
  Status ApplyPending();

  /// Writes the accumulated changes as a delta snapshot: the full user
  /// table plus only the dirty item shards, chained
  /// published_version() -> published_version() + 1. Refuses with
  /// kFailedPrecondition when nothing changed since the last publish. On
  /// success the dirty set clears and the version chain advances.
  Status PublishDelta(const std::string& path);

  /// Writes a full sharded (v3) snapshot at version
  /// published_version() + 1 — the resync path when serving lost the
  /// delta chain (e.g. after repeated delta_rejected). Also clears the
  /// dirty set and advances the chain.
  Status PublishFull(const std::string& path);

  /// Store-routed publishes (snapshot_store.h): the artifact is written
  /// to the store's versioned path for the chain
  /// published_version() -> published_version() + 1 and then registered
  /// in the store manifest. A crash between the two steps leaves a valid
  /// unregistered file the store's startup recovery readmits; a failed
  /// artifact write leaves the updater state unchanged (the next publish
  /// retries the same chain step) and no half-written file behind.
  Status PublishDelta(SnapshotStore* store);
  Status PublishFull(SnapshotStore* store);

  /// Saves the complete updater state (factor tables, adjacency, pending
  /// edges, dirty shards, version chain) atomically in checkpoint v2
  /// layout. Restore on a fresh updater continues bit-identically.
  Status Checkpoint(const std::string& path) const;
  Status Restore(const std::string& path);

  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }
  int64_t dim() const { return dim_; }
  int64_t items_per_shard() const { return items_per_shard_; }
  int64_t pending_edges() const {
    return static_cast<int64_t>(pending_.size());
  }
  int64_t dirty_shard_count() const {
    return static_cast<int64_t>(dirty_shards_.size());
  }
  int64_t duplicates_skipped() const { return duplicates_skipped_; }
  int64_t growth_rejected() const { return growth_rejected_; }
  int64_t applied_edges_total() const { return applied_edges_total_; }

  /// The base version the next PublishDelta chains onto.
  int64_t published_version() const { return published_version_; }
  /// Re-anchors the version chain to what the serving layer reports live
  /// (needed when the seed snapshot was unversioned).
  void set_published_version(int64_t version) {
    published_version_ = version;
  }

  /// Cumulative ingest accounting across every IngestFile call
  /// (kept + quarantined == total_records holds for the sum).
  const IngestFileReport& ingest_report() const { return ingest_report_; }

 private:
  OnlineUpdater() = default;

  void ResolveMetrics();
  /// Ridge fold-in solve for one user/item row (see file comment).
  void SolveUser(int64_t u);
  void SolveItem(int64_t i);

  OnlineUpdaterOptions options_;
  int64_t dim_ = 0;
  int64_t items_per_shard_ = 0;
  int64_t num_users_ = 0;
  int64_t num_items_ = 0;
  /// Table sizes at seed time; the growth guards cap ids relative to
  /// these, not to the current (already grown) sizes.
  int64_t initial_users_ = 0;
  int64_t initial_items_ = 0;
  int64_t published_version_ = 0;
  std::vector<float> users_;
  std::vector<float> items_;
  /// Adjacency, both directions sorted by id. user_items_ is the
  /// checkpointed source of truth; item_users_ is rebuilt from it.
  std::vector<std::vector<int64_t>> user_items_;
  std::vector<std::vector<int64_t>> item_users_;
  /// Unique new edges awaiting ApplyPending, in arrival order, with a
  /// sorted index for O(log n) duplicate checks (rebuilt on Restore).
  EdgeList pending_;
  std::set<std::pair<int64_t, int64_t>> pending_set_;
  /// Item shards to include in the next delta (ordered — the delta
  /// writer requires ascending indices).
  std::set<int64_t> dirty_shards_;
  bool users_dirty_ = false;
  int64_t duplicates_skipped_ = 0;
  int64_t growth_rejected_ = 0;
  int64_t applied_edges_total_ = 0;
  IngestFileReport ingest_report_;

  Counter* edges_ingested_total_ = nullptr;
  Counter* edges_duplicate_total_ = nullptr;
  Counter* edges_rejected_total_ = nullptr;
  Counter* edges_applied_total_ = nullptr;
  Counter* solves_total_ = nullptr;
  Counter* publishes_total_ = nullptr;
  Gauge* pending_gauge_ = nullptr;
  Histogram* apply_ms_ = nullptr;
};

}  // namespace imcat

#endif  // IMCAT_TRAIN_ONLINE_UPDATER_H_
