#include "train/sampler.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace imcat {

TripletSampler::TripletSampler(int64_t num_anchors, int64_t num_candidates,
                               const EdgeList& edges)
    : num_candidates_(num_candidates),
      edges_(edges),
      index_(num_anchors, num_candidates, edges) {
  IMCAT_CHECK_GT(num_candidates, 0);
  IMCAT_CHECK(!edges_.empty());
}

void TripletSampler::SampleBatch(int64_t batch_size, Rng* rng,
                                 TripletBatch* batch,
                                 ThreadPool* pool) const {
  batch->anchors.resize(batch_size);
  batch->positives.resize(batch_size);
  batch->negatives.resize(batch_size);
  const int64_t num_edges = static_cast<int64_t>(edges_.size());

  // One triplet from one Rng stream into the slots owned by index i.
  auto sample_one = [this, batch, num_edges](int64_t i, Rng* stream) {
    const auto& [anchor, positive] = edges_[stream->UniformInt(num_edges)];
    batch->anchors[i] = anchor;
    batch->positives[i] = positive;
    // Rejection-sample a negative not in the anchor's positive set.
    int64_t negative = positive;
    if (index_.ForwardDegree(anchor) < num_candidates_) {
      do {
        negative = stream->UniformInt(num_candidates_);
      } while (index_.Contains(anchor, negative));
    }
    batch->negatives[i] = negative;
  };

  if (pool == nullptr) {
    for (int64_t i = 0; i < batch_size; ++i) sample_one(i, rng);
    return;
  }

  // Parallel path: one base draw from the caller's Rng (a fixed, resumable
  // advance), then a private stream per index. Seeding by base + i (the
  // Rng constructor expands the seed through SplitMix64, which decorrelates
  // adjacent seeds) makes slot i independent of both the executing thread
  // and the thread count.
  const uint64_t base = rng->NextUint64();
  Status st = pool->ParallelFor(0, batch_size, [&](int64_t i) {
    Rng stream(base + static_cast<uint64_t>(i));
    sample_one(i, &stream);
  });
  IMCAT_CHECK(st.ok());  // Sampling does not throw.
}

ItemBatchSampler::ItemBatchSampler(int64_t num_items,
                                   const EdgeList& interactions) {
  std::vector<bool> has_interaction(num_items, false);
  for (const auto& [u, v] : interactions) {
    (void)u;
    IMCAT_CHECK(v >= 0 && v < num_items);
    has_interaction[v] = true;
  }
  for (int64_t v = 0; v < num_items; ++v) {
    if (has_interaction[v]) eligible_.push_back(v);
  }
  IMCAT_CHECK(!eligible_.empty());
}

void ItemBatchSampler::SampleBatch(int64_t batch_size, Rng* rng,
                                   std::vector<int64_t>* items) const {
  const int64_t n = static_cast<int64_t>(eligible_.size());
  const int64_t take = std::min(batch_size, n);
  // Partial Fisher-Yates over a scratch copy for distinct samples.
  std::vector<int64_t> scratch = eligible_;
  items->resize(take);
  for (int64_t i = 0; i < take; ++i) {
    const int64_t j = i + rng->UniformInt(n - i);
    std::swap(scratch[i], scratch[j]);
    (*items)[i] = scratch[i];
  }
}

}  // namespace imcat
