#ifndef IMCAT_TRAIN_SAMPLER_H_
#define IMCAT_TRAIN_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"
#include "util/thread_pool.h"

/// \file sampler.h
/// Mini-batch negative-sampling iterators for the ranking losses. As in
/// the paper, every positive pair is matched with one uniformly sampled
/// negative (Sec. V-D).
///
/// Parallel sampling determinism: when a ThreadPool is supplied, the
/// triplet sampler draws exactly one 64-bit value from the caller's Rng
/// per batch and derives an independent per-*index* stream from it for
/// every triplet slot (seeded from base + index, never from the executing
/// thread). Slot i is therefore the same at any thread count, the main
/// RNG advances by a fixed amount per batch, and checkpointed
/// kill-and-resume stays bit-identical with parallel sampling enabled.

namespace imcat {

/// A batch of BPR triplets over one bipartite relation (user-item for
/// L_UV, item-tag for L_VT).
struct TripletBatch {
  std::vector<int64_t> anchors;    ///< Users (or items for L_VT).
  std::vector<int64_t> positives;  ///< Interacted items (or assigned tags).
  std::vector<int64_t> negatives;  ///< Sampled non-interacted entities.
};

/// Samples BPR triplets from an edge list: a uniformly random positive edge
/// plus a rejection-sampled negative right-hand entity for its anchor.
class TripletSampler {
 public:
  /// `edges` are (anchor, positive) pairs over [0, num_anchors) x
  /// [0, num_candidates).
  TripletSampler(int64_t num_anchors, int64_t num_candidates,
                 const EdgeList& edges);

  /// Fills `batch` with `batch_size` triplets. Anchors with a full positive
  /// set (degenerate) reuse a random positive as the negative.
  ///
  /// With a null `pool` the caller's Rng drives every draw sequentially
  /// (the historical stream, unchanged). With a pool, sampling fans out
  /// with one deterministic Rng stream per triplet index: the batch is a
  /// pure function of the Rng state and batch size — identical for 1, 2
  /// or N threads — and the caller's Rng is advanced by exactly one draw.
  void SampleBatch(int64_t batch_size, Rng* rng, TripletBatch* batch,
                   ThreadPool* pool = nullptr) const;

  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

 private:
  int64_t num_candidates_;
  EdgeList edges_;
  BipartiteIndex index_;
};

/// Samples batches of item ids among the items that occur in training
/// interactions (the anchors of the contrastive alignment loss).
class ItemBatchSampler {
 public:
  ItemBatchSampler(int64_t num_items, const EdgeList& interactions);

  /// Fills `items` with `batch_size` distinct item ids sampled uniformly
  /// from the eligible items (fewer if not enough eligible items exist).
  void SampleBatch(int64_t batch_size, Rng* rng,
                   std::vector<int64_t>* items) const;

  const std::vector<int64_t>& eligible_items() const { return eligible_; }

 private:
  std::vector<int64_t> eligible_;
};

}  // namespace imcat

#endif  // IMCAT_TRAIN_SAMPLER_H_
