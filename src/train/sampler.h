#ifndef IMCAT_TRAIN_SAMPLER_H_
#define IMCAT_TRAIN_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

/// \file sampler.h
/// Mini-batch negative-sampling iterators for the ranking losses. As in
/// the paper, every positive pair is matched with one uniformly sampled
/// negative (Sec. V-D).

namespace imcat {

/// A batch of BPR triplets over one bipartite relation (user-item for
/// L_UV, item-tag for L_VT).
struct TripletBatch {
  std::vector<int64_t> anchors;    ///< Users (or items for L_VT).
  std::vector<int64_t> positives;  ///< Interacted items (or assigned tags).
  std::vector<int64_t> negatives;  ///< Sampled non-interacted entities.
};

/// Samples BPR triplets from an edge list: a uniformly random positive edge
/// plus a rejection-sampled negative right-hand entity for its anchor.
class TripletSampler {
 public:
  /// `edges` are (anchor, positive) pairs over [0, num_anchors) x
  /// [0, num_candidates).
  TripletSampler(int64_t num_anchors, int64_t num_candidates,
                 const EdgeList& edges);

  /// Fills `batch` with `batch_size` triplets. Anchors with a full positive
  /// set (degenerate) reuse a random positive as the negative.
  void SampleBatch(int64_t batch_size, Rng* rng, TripletBatch* batch) const;

  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

 private:
  int64_t num_candidates_;
  EdgeList edges_;
  BipartiteIndex index_;
};

/// Samples batches of item ids among the items that occur in training
/// interactions (the anchors of the contrastive alignment loss).
class ItemBatchSampler {
 public:
  ItemBatchSampler(int64_t num_items, const EdgeList& interactions);

  /// Fills `items` with `batch_size` distinct item ids sampled uniformly
  /// from the eligible items (fewer if not enough eligible items exist).
  void SampleBatch(int64_t batch_size, Rng* rng,
                   std::vector<int64_t>* items) const;

  const std::vector<int64_t>& eligible_items() const { return eligible_; }

 private:
  std::vector<int64_t> eligible_;
};

}  // namespace imcat

#endif  // IMCAT_TRAIN_SAMPLER_H_
