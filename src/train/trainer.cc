#include "train/trainer.h"

#include <cstring>
#include <fstream>

#include "serve/shard_format.h"
#include "serve/snapshot_store.h"
#include "tensor/checkpoint.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace imcat {

namespace {

std::vector<std::vector<float>> SnapshotParameters(TrainableModel* model) {
  std::vector<std::vector<float>> snapshot;
  for (Tensor& t : model->Parameters()) {
    snapshot.emplace_back(t.data(), t.data() + t.size());
  }
  return snapshot;
}

void RestoreParameters(TrainableModel* model,
                       const std::vector<std::vector<float>>& snapshot) {
  std::vector<Tensor> params = model->Parameters();
  IMCAT_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    IMCAT_CHECK_EQ(static_cast<size_t>(params[i].size()), snapshot[i].size());
    std::memcpy(params[i].data(), snapshot[i].data(),
                snapshot[i].size() * sizeof(float));
  }
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

/// Everything needed to rewind the training loop to an epoch boundary:
/// parameters, optimiser moments and the RNG stream. Best-validation
/// tracking is not included because it only advances on healthy epochs,
/// which are never rolled back.
struct HealthySnapshot {
  int64_t next_epoch = 0;
  std::vector<std::vector<float>> params;
  bool has_optimizer = false;
  AdamStateSnapshot optimizer;
  RngState rng;
};

HealthySnapshot TakeSnapshot(TrainableModel* model, AdamOptimizer* optimizer,
                             const Rng& rng, int64_t next_epoch) {
  HealthySnapshot snapshot;
  snapshot.next_epoch = next_epoch;
  snapshot.params = SnapshotParameters(model);
  if (optimizer != nullptr) {
    snapshot.has_optimizer = true;
    snapshot.optimizer = optimizer->ExportState();
  }
  snapshot.rng = rng.GetState();
  return snapshot;
}

void RestoreSnapshot(const HealthySnapshot& snapshot, TrainableModel* model,
                     AdamOptimizer* optimizer, Rng* rng) {
  RestoreParameters(model, snapshot.params);
  if (snapshot.has_optimizer && optimizer != nullptr) {
    Status st = optimizer->ImportState(snapshot.optimizer);
    IMCAT_CHECK(st.ok());  // Same-process snapshot: sizes always match.
  }
  rng->SetState(snapshot.rng);
}

}  // namespace

Trainer::Trainer(const Evaluator* evaluator, const DataSplit* split)
    : evaluator_(evaluator), split_(split) {
  IMCAT_CHECK(evaluator != nullptr);
  IMCAT_CHECK(split != nullptr);
}

TrainHistory Trainer::Fit(TrainableModel* model,
                          const TrainerOptions& options) const {
  IMCAT_CHECK(model != nullptr);
  IMCAT_CHECK_GT(options.max_epochs, 0);
  IMCAT_CHECK_GT(options.eval_every, 0);
  IMCAT_CHECK_GT(options.health.lr_backoff, 0.0);
  IMCAT_CHECK_LT(options.health.lr_backoff, 1.0);

  Rng rng(options.seed);
  TrainHistory history;
  AdamOptimizer* optimizer = model->optimizer();
  HealthMonitor health(options.health);
  model->set_thread_pool(options.pool);

  // Observability handles (DESIGN.md §9); all null when uninstrumented so
  // the loop below pays nothing but a pointer test per site.
  Counter* epochs_total = nullptr;
  Counter* steps_total = nullptr;
  Counter* rollbacks_total = nullptr;
  Counter* ckpt_writes_total = nullptr;
  Counter* ckpt_failures_total = nullptr;
  Gauge* loss_gauge = nullptr;
  Gauge* grad_norm_gauge = nullptr;
  Gauge* lr_scale_gauge = nullptr;
  Gauge* steps_per_sec_gauge = nullptr;
  Histogram* epoch_ms_hist = nullptr;
  Histogram* step_ms_hist = nullptr;
  Histogram* eval_ms_hist = nullptr;
  if (options.metrics != nullptr) {
    MetricsRegistry* m = options.metrics;
    epochs_total = m->GetCounter("train_epochs_total");
    steps_total = m->GetCounter("train_steps_total");
    rollbacks_total = m->GetCounter("train_rollbacks_total");
    ckpt_writes_total = m->GetCounter("train_checkpoint_writes_total");
    ckpt_failures_total = m->GetCounter("train_checkpoint_failures_total");
    loss_gauge = m->GetGauge("train_loss");
    grad_norm_gauge = m->GetGauge("train_grad_norm");
    lr_scale_gauge = m->GetGauge("train_lr_scale");
    steps_per_sec_gauge = m->GetGauge("train_steps_per_sec");
    epoch_ms_hist = m->GetHistogram("train_epoch_ms");
    step_ms_hist = m->GetHistogram("train_step_ms");
    eval_ms_hist = m->GetHistogram("train_eval_ms");
  }
  RunJournal* journal = options.journal;
  // Appends "run_end", flushes the journal and dumps the metrics snapshot;
  // runs on every exit path of Fit, including resume failures.
  auto finish_run = [&]() {
    if (journal != nullptr) {
      JournalEvent event("run_end");
      event.Set("model", model->name())
          .Set("epochs_run", history.epochs_run)
          .Set("best_epoch", history.best_epoch)
          .Set("best_recall", history.best_validation.recall)
          .Set("rollbacks", history.rollbacks)
          .Set("train_seconds", history.train_seconds)
          .Set("ok", history.status.ok());
      if (!history.status.ok()) event.Set("error", history.status.ToString());
      journal->Append(event);
      Status flushed = journal->Flush();
      if (!flushed.ok()) {
        IMCAT_LOG(WARNING) << model->name()
                           << " journal flush failed: " << flushed.ToString();
      }
    }
    if (options.metrics != nullptr && !options.metrics_out.empty()) {
      Status written = WriteMetricsFile(*options.metrics, options.metrics_out);
      if (!written.ok()) {
        IMCAT_LOG(WARNING) << model->name() << " metrics dump failed: "
                           << written.ToString();
      }
    }
  };

  if (options.verbose && !options.data_provenance.empty()) {
    IMCAT_LOG(INFO) << model->name()
                    << " ingest: " << options.data_provenance;
  }

  std::vector<std::vector<float>> best_snapshot;
  double best_recall = -1.0;
  int64_t evals_without_improvement = 0;
  double train_seconds = 0.0;
  double lr_scale = 1.0;
  int64_t start_epoch = 0;

  if (!options.resume_path.empty() && FileExists(options.resume_path)) {
    std::vector<Tensor> params = model->Parameters();
    TrainState state;
    bool has_state = false;
    Status st = LoadTrainingCheckpoint(options.resume_path, &params, &state,
                                       &has_state);
    if (!st.ok()) {
      history.status = st;
      finish_run();
      return history;
    }
    if (has_state) {
      rng.SetState(state.rng);
      start_epoch = state.epoch;
      best_recall = state.best_recall;
      evals_without_improvement = state.evals_without_improvement;
      train_seconds = state.train_seconds;
      lr_scale = state.lr_scale;
      history.best_epoch = state.best_epoch;
      if (best_recall >= 0.0) {
        history.best_validation.recall = state.best_recall;
        history.best_validation.ndcg = state.best_ndcg;
        history.best_validation.precision = state.best_precision;
        history.best_validation.hit_rate = state.best_hit_rate;
        history.best_validation.mrr = state.best_mrr;
        history.best_validation.num_users = state.best_num_users;
      }
      if (optimizer != nullptr) {
        if (state.has_optimizer) {
          st = optimizer->ImportState(state.optimizer);
          if (!st.ok()) {
            history.status = st;
            finish_run();
            return history;
          }
        }
        if (lr_scale != 1.0) {
          optimizer->ScaleLearningRate(static_cast<float>(lr_scale));
        }
      }
      if (state.has_best_params) best_snapshot = std::move(state.best_params);
    }
    history.resumed = true;
    history.start_epoch = start_epoch;
    history.epochs_run = start_epoch;
    if (options.verbose) {
      IMCAT_LOG(INFO) << model->name() << " resumed from "
                      << options.resume_path << " at epoch " << start_epoch;
    }
  }

  if (journal != nullptr) {
    journal->Append(JournalEvent("run_start")
                        .Set("model", model->name())
                        .Set("max_epochs", options.max_epochs)
                        .Set("seed", static_cast<int64_t>(options.seed))
                        .Set("resumed", history.resumed)
                        .Set("start_epoch", start_epoch));
  }

  auto write_checkpoint = [&](int64_t next_epoch) {
    TrainState state;
    state.epoch = next_epoch;
    state.best_epoch = history.best_epoch;
    state.best_recall = best_recall;
    state.best_ndcg = history.best_validation.ndcg;
    state.best_precision = history.best_validation.precision;
    state.best_hit_rate = history.best_validation.hit_rate;
    state.best_mrr = history.best_validation.mrr;
    state.best_num_users = history.best_validation.num_users;
    state.train_seconds = train_seconds;
    state.evals_without_improvement = evals_without_improvement;
    state.lr_scale = lr_scale;
    state.rng = rng.GetState();
    if (optimizer != nullptr) {
      state.has_optimizer = true;
      state.optimizer = optimizer->ExportState();
    }
    if (!best_snapshot.empty()) {
      state.has_best_params = true;
      state.best_params = best_snapshot;
    }
    Status st = SaveTrainingCheckpoint(options.checkpoint_path,
                                       model->Parameters(), state);
    if (!st.ok()) {
      // A failed periodic save must not kill the run: thanks to the atomic
      // write, any previous checkpoint survived and resume still works.
      IMCAT_LOG(WARNING) << model->name()
                         << " checkpoint failed: " << st.ToString();
      if (ckpt_failures_total != nullptr) ckpt_failures_total->Increment();
    } else if (ckpt_writes_total != nullptr) {
      ckpt_writes_total->Increment();
    }
    if (journal != nullptr) {
      JournalEvent event("checkpoint");
      event.Set("epoch", next_epoch)
          .Set("path", options.checkpoint_path)
          .Set("ok", st.ok());
      if (!st.ok()) event.Set("error", st.ToString());
      journal->Append(event);
    }
  };

  HealthySnapshot healthy;
  if (options.health.enabled) {
    healthy = TakeSnapshot(model, optimizer, rng, start_epoch);
  }

  for (int64_t epoch = start_epoch; epoch < options.max_epochs; ++epoch) {
    Stopwatch epoch_watch;
    model->OnEpochBegin(epoch);
    double loss_sum = 0.0;
    const int64_t steps = model->StepsPerEpoch();
    IMCAT_CHECK_GT(steps, 0);
    bool diverged = false;
    std::string divergence_reason;
    for (int64_t s = 0; s < steps; ++s) {
      const double step_start =
          step_ms_hist != nullptr ? MetricsNowMs() : 0.0;
      const double loss = model->TrainStep(&rng);
      if (step_ms_hist != nullptr) {
        step_ms_hist->Record(MetricsNowMs() - step_start);
      }
      if (options.health.enabled) {
        HealthVerdict verdict = health.CheckLoss(loss);
        if (!verdict.healthy) {
          diverged = true;
          divergence_reason = verdict.reason;
          break;
        }
      }
      loss_sum += loss;
    }
    if (!diverged && options.health.enabled &&
        options.health.check_parameters) {
      HealthVerdict verdict = health.CheckTensors(model->Parameters());
      if (!verdict.healthy) {
        diverged = true;
        divergence_reason = verdict.reason;
      }
    }
    const double epoch_seconds = epoch_watch.ElapsedSeconds();
    train_seconds += epoch_seconds;

    if (diverged) {
      if (!health.CanRollback()) {
        history.status = Status::FailedPrecondition(
            model->name() + " diverged at epoch " + std::to_string(epoch + 1) +
            " (" + divergence_reason + ") after exhausting " +
            std::to_string(options.health.max_rollbacks) + " rollbacks");
        RestoreSnapshot(healthy, model, optimizer, &rng);
        if (journal != nullptr) {
          journal->Append(JournalEvent("rollback")
                              .Set("epoch", epoch + 1)
                              .Set("reason", divergence_reason)
                              .Set("budget_exhausted", true));
        }
        break;
      }
      health.RecordRollback();
      ++history.rollbacks;
      history.rollback_epochs.push_back(epoch + 1);
      if (rollbacks_total != nullptr) rollbacks_total->Increment();
      RestoreSnapshot(healthy, model, optimizer, &rng);
      lr_scale *= options.health.lr_backoff;
      if (optimizer != nullptr) {
        optimizer->ScaleLearningRate(
            static_cast<float>(options.health.lr_backoff));
      }
      if (options.verbose) {
        IMCAT_LOG(WARNING) << model->name() << " epoch " << (epoch + 1)
                           << " diverged (" << divergence_reason
                           << "); rolled back to epoch " << healthy.next_epoch
                           << ", lr scale now " << lr_scale;
      }
      if (lr_scale_gauge != nullptr) lr_scale_gauge->Set(lr_scale);
      if (journal != nullptr) {
        journal->Append(JournalEvent("rollback")
                            .Set("epoch", epoch + 1)
                            .Set("reason", divergence_reason)
                            .Set("restored_epoch", healthy.next_epoch)
                            .Set("lr_scale", lr_scale));
      }
      epoch = healthy.next_epoch - 1;  // Loop increment re-runs next_epoch.
      continue;
    }

    history.epochs_run = epoch + 1;
    const double mean_loss = loss_sum / static_cast<double>(steps);
    const double last_grad_norm =
        optimizer != nullptr ? optimizer->last_grad_norm() : -1.0;
    if (epochs_total != nullptr) epochs_total->Increment();
    if (steps_total != nullptr) steps_total->Add(steps);
    if (epoch_ms_hist != nullptr) epoch_ms_hist->Record(epoch_seconds * 1e3);
    if (loss_gauge != nullptr) loss_gauge->Set(mean_loss);
    if (grad_norm_gauge != nullptr) grad_norm_gauge->Set(last_grad_norm);
    if (lr_scale_gauge != nullptr) lr_scale_gauge->Set(lr_scale);
    if (steps_per_sec_gauge != nullptr && epoch_seconds > 0.0) {
      steps_per_sec_gauge->Set(static_cast<double>(steps) / epoch_seconds);
    }
    if (options.health.enabled) {
      if (optimizer != nullptr) {
        health.RecordGradNorm(optimizer->last_grad_norm());
      }
      healthy = TakeSnapshot(model, optimizer, rng, epoch + 1);
    }

    bool stop = false;
    JournalEvent epoch_event("epoch");
    epoch_event.Set("epoch", epoch + 1)
        .Set("loss", mean_loss)
        .Set("grad_norm", last_grad_norm)
        .Set("lr_scale", lr_scale)
        .Set("steps", steps)
        .Set("epoch_ms", epoch_seconds * 1e3);
    const bool should_eval = (epoch + 1) % options.eval_every == 0 ||
                             epoch + 1 == options.max_epochs;
    if (should_eval) {
      const double eval_start =
          eval_ms_hist != nullptr || journal != nullptr ? MetricsNowMs() : 0.0;
      const EvalResult val = evaluator_->Evaluate(
          *model, split_->validation, options.top_n, {}, options.pool);
      if (eval_ms_hist != nullptr || journal != nullptr) {
        const double eval_ms = MetricsNowMs() - eval_start;
        if (eval_ms_hist != nullptr) eval_ms_hist->Record(eval_ms);
        epoch_event.Set("eval_ms", eval_ms)
            .Set("val_recall", val.recall)
            .Set("val_ndcg", val.ndcg);
      }
      ValidationPoint point;
      point.epoch = epoch + 1;
      point.train_loss = mean_loss;
      point.validation = val;
      point.elapsed_seconds = train_seconds;
      if (optimizer != nullptr) point.grad_norm = optimizer->last_grad_norm();
      history.points.push_back(point);
      if (options.verbose) {
        IMCAT_LOG(INFO) << model->name() << " epoch " << (epoch + 1)
                        << " loss=" << point.train_loss
                        << " val R@" << options.top_n << "=" << val.recall
                        << " N@" << options.top_n << "=" << val.ndcg;
      }

      if (val.recall > best_recall) {
        best_recall = val.recall;
        history.best_epoch = epoch + 1;
        history.best_validation = val;
        evals_without_improvement = 0;
        if (options.restore_best) best_snapshot = SnapshotParameters(model);
      } else {
        ++evals_without_improvement;
        if (evals_without_improvement >= options.patience) {
          if (options.verbose) {
            IMCAT_LOG(INFO) << model->name() << " early stop at epoch "
                            << (epoch + 1);
          }
          stop = true;
        }
      }
    }

    if (journal != nullptr) journal->Append(epoch_event);

    if (!options.checkpoint_path.empty() && options.checkpoint_every > 0 &&
        ((epoch + 1) % options.checkpoint_every == 0 || stop ||
         epoch + 1 == options.max_epochs)) {
      write_checkpoint(epoch + 1);
    }
    if (stop) break;
  }

  if (options.restore_best && !best_snapshot.empty()) {
    RestoreParameters(model, best_snapshot);
  }
  history.train_seconds = train_seconds;
  history.lr_scale = lr_scale;
  finish_run();
  return history;
}

Status ExportServingCheckpoint(TrainableModel* model, const std::string& path,
                               const ServingExportOptions& options) {
  std::vector<Tensor> params = model->Parameters();
  // Factor models export as a sharded snapshot; anything else (extra
  // towers, projection heads) keeps the monolithic v2 layout, which the
  // snapshot loader also accepts.
  if (params.size() == 2 && params[0].rows() > 0 && params[1].rows() > 0 &&
      params[0].cols() > 0 && params[0].cols() == params[1].cols()) {
    ShardedSnapshotOptions sharded;
    sharded.items_per_shard = options.items_per_shard;
    sharded.version = options.version;
    return WriteShardedSnapshot(path, params[0], params[1], sharded);
  }
  return SaveCheckpoint(path, params);
}

Status ExportServingCheckpoint(TrainableModel* model,
                               const std::string& path) {
  return ExportServingCheckpoint(model, path, ServingExportOptions{});
}

Status ExportServingCheckpoint(TrainableModel* model, SnapshotStore* store,
                               const ServingExportOptions& options) {
  std::vector<Tensor> params = model->Parameters();
  if (params.size() != 2 || params[0].rows() <= 0 || params[1].rows() <= 0 ||
      params[0].cols() <= 0 || params[0].cols() != params[1].cols()) {
    return Status::InvalidArgument(
        "store-routed serving export requires the two-tensor factor "
        "layout (user table, item table); export this model with the "
        "path-based ExportServingCheckpoint instead");
  }
  const int64_t version =
      options.version > 0 ? options.version : store->NextVersion();
  ShardedSnapshotOptions sharded;
  sharded.items_per_shard = options.items_per_shard;
  sharded.version = version;
  IMCAT_RETURN_IF_ERROR(WriteShardedSnapshot(store->FullPath(version),
                                             params[0], params[1], sharded));
  return store->CommitFull(version);
}

}  // namespace imcat
