#include "train/trainer.h"

#include <cstring>

#include "util/check.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace imcat {

namespace {

std::vector<std::vector<float>> SnapshotParameters(TrainableModel* model) {
  std::vector<std::vector<float>> snapshot;
  for (Tensor& t : model->Parameters()) {
    snapshot.emplace_back(t.data(), t.data() + t.size());
  }
  return snapshot;
}

void RestoreParameters(TrainableModel* model,
                       const std::vector<std::vector<float>>& snapshot) {
  std::vector<Tensor> params = model->Parameters();
  IMCAT_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    IMCAT_CHECK_EQ(static_cast<size_t>(params[i].size()), snapshot[i].size());
    std::memcpy(params[i].data(), snapshot[i].data(),
                snapshot[i].size() * sizeof(float));
  }
}

}  // namespace

Trainer::Trainer(const Evaluator* evaluator, const DataSplit* split)
    : evaluator_(evaluator), split_(split) {
  IMCAT_CHECK(evaluator != nullptr);
  IMCAT_CHECK(split != nullptr);
}

TrainHistory Trainer::Fit(TrainableModel* model,
                          const TrainerOptions& options) const {
  IMCAT_CHECK(model != nullptr);
  IMCAT_CHECK_GT(options.max_epochs, 0);
  IMCAT_CHECK_GT(options.eval_every, 0);

  Rng rng(options.seed);
  TrainHistory history;
  std::vector<std::vector<float>> best_snapshot;
  double best_recall = -1.0;
  int64_t evals_without_improvement = 0;

  Stopwatch total;
  double train_seconds = 0.0;

  for (int64_t epoch = 0; epoch < options.max_epochs; ++epoch) {
    Stopwatch epoch_watch;
    model->OnEpochBegin(epoch);
    double loss_sum = 0.0;
    const int64_t steps = model->StepsPerEpoch();
    IMCAT_CHECK_GT(steps, 0);
    for (int64_t s = 0; s < steps; ++s) {
      loss_sum += model->TrainStep(&rng);
    }
    train_seconds += epoch_watch.ElapsedSeconds();
    history.epochs_run = epoch + 1;

    if ((epoch + 1) % options.eval_every != 0 &&
        epoch + 1 != options.max_epochs) {
      continue;
    }
    const EvalResult val = evaluator_->Evaluate(*model, split_->validation,
                                                options.top_n);
    ValidationPoint point;
    point.epoch = epoch + 1;
    point.train_loss = loss_sum / static_cast<double>(steps);
    point.validation = val;
    point.elapsed_seconds = train_seconds;
    history.points.push_back(point);
    if (options.verbose) {
      IMCAT_LOG(INFO) << model->name() << " epoch " << (epoch + 1)
                      << " loss=" << point.train_loss
                      << " val R@" << options.top_n << "=" << val.recall
                      << " N@" << options.top_n << "=" << val.ndcg;
    }

    if (val.recall > best_recall) {
      best_recall = val.recall;
      history.best_epoch = epoch + 1;
      history.best_validation = val;
      evals_without_improvement = 0;
      if (options.restore_best) best_snapshot = SnapshotParameters(model);
    } else {
      ++evals_without_improvement;
      if (evals_without_improvement >= options.patience) {
        if (options.verbose) {
          IMCAT_LOG(INFO) << model->name() << " early stop at epoch "
                          << (epoch + 1);
        }
        break;
      }
    }
  }

  if (options.restore_best && !best_snapshot.empty()) {
    RestoreParameters(model, best_snapshot);
  }
  history.train_seconds = train_seconds;
  return history;
}

}  // namespace imcat
