#ifndef IMCAT_TRAIN_TRAINER_H_
#define IMCAT_TRAIN_TRAINER_H_

#include <string>
#include <vector>

#include "data/split.h"
#include "eval/evaluator.h"
#include "tensor/tensor.h"
#include "util/rng.h"

/// \file trainer.h
/// Generic training loop with validation-based early stopping (the paper's
/// protocol: early stop when validation Recall@20 has not improved for a
/// patience window), epoch timing for the efficiency study (Fig. 9), and
/// best-parameter restoration.

namespace imcat {

/// Interface implemented by every trainable model in the library. A model
/// owns its parameters, optimiser and batch composition; the trainer only
/// orchestrates epochs, evaluation and early stopping.
class TrainableModel : public Ranker {
 public:
  /// Runs one optimisation step (sample batches, forward, backward,
  /// optimiser update) and returns the scalar training loss.
  virtual double TrainStep(Rng* rng) = 0;

  /// Number of steps per epoch (typically ceil(|train| / batch_size)).
  virtual int64_t StepsPerEpoch() const = 0;

  /// Called at the start of every epoch (0-based); used for periodic work
  /// such as tag-cluster refreshes or augmentation-graph resampling.
  virtual void OnEpochBegin(int64_t epoch) { (void)epoch; }

  /// All trainable tensors (used to snapshot/restore the best state).
  virtual std::vector<Tensor> Parameters() = 0;

  /// Human-readable model name for logs and reports.
  virtual std::string name() const = 0;
};

/// Training-loop options.
struct TrainerOptions {
  int64_t max_epochs = 200;
  /// Validate every this many epochs.
  int64_t eval_every = 5;
  /// Stop after this many consecutive validations without improvement.
  int64_t patience = 10;
  int top_n = 20;
  uint64_t seed = 7;
  bool verbose = false;
  /// Restore the best validation parameters after training.
  bool restore_best = true;
};

/// Per-validation record.
struct ValidationPoint {
  int64_t epoch = 0;
  double train_loss = 0.0;
  EvalResult validation;
  double elapsed_seconds = 0.0;  ///< Cumulative training time (excl. eval).
};

/// The outcome of Trainer::Fit.
struct TrainHistory {
  std::vector<ValidationPoint> points;
  int64_t best_epoch = 0;
  EvalResult best_validation;
  double train_seconds = 0.0;  ///< Total optimisation time (excl. eval).
  int64_t epochs_run = 0;
};

/// Orchestrates epochs, periodic validation, early stopping and restoring
/// the best parameters.
class Trainer {
 public:
  /// The evaluator and split must outlive the trainer.
  Trainer(const Evaluator* evaluator, const DataSplit* split);

  /// Trains `model` until max_epochs or early stop; returns the history.
  TrainHistory Fit(TrainableModel* model, const TrainerOptions& options) const;

 private:
  const Evaluator* evaluator_;
  const DataSplit* split_;
};

}  // namespace imcat

#endif  // IMCAT_TRAIN_TRAINER_H_
