#ifndef IMCAT_TRAIN_TRAINER_H_
#define IMCAT_TRAIN_TRAINER_H_

#include <string>
#include <vector>

#include "data/split.h"
#include "eval/evaluator.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"
#include "train/health.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

/// \file trainer.h
/// Generic training loop with validation-based early stopping (the paper's
/// protocol: early stop when validation Recall@20 has not improved for a
/// patience window), epoch timing for the efficiency study (Fig. 9),
/// best-parameter restoration, a numerical-health guard (NaN/Inf rollback
/// with learning-rate backoff) and atomic resumable checkpointing.

namespace imcat {

/// Interface implemented by every trainable model in the library. A model
/// owns its parameters, optimiser and batch composition; the trainer only
/// orchestrates epochs, evaluation and early stopping.
class TrainableModel : public Ranker {
 public:
  /// Runs one optimisation step (sample batches, forward, backward,
  /// optimiser update) and returns the scalar training loss.
  virtual double TrainStep(Rng* rng) = 0;

  /// Number of steps per epoch (typically ceil(|train| / batch_size)).
  virtual int64_t StepsPerEpoch() const = 0;

  /// Called at the start of every epoch (0-based); used for periodic work
  /// such as tag-cluster refreshes or augmentation-graph resampling.
  virtual void OnEpochBegin(int64_t epoch) { (void)epoch; }

  /// All trainable tensors (used to snapshot/restore the best state).
  virtual std::vector<Tensor> Parameters() = 0;

  /// The optimiser driving TrainStep(), if the model exposes one. Used by
  /// the trainer to checkpoint optimiser state (Adam moments, step count)
  /// and to apply health-guard learning-rate backoff. Models without a
  /// single Adam optimiser may return nullptr; they still train and
  /// checkpoint, but resume restarts their moments and rollback cannot
  /// reduce their learning rate.
  virtual AdamOptimizer* optimizer() { return nullptr; }

  /// Gives the model a thread pool for its parallelizable training stages
  /// (negative sampling / batch composition). Models that parallelize must
  /// stay deterministic for a fixed seed at any thread count — the library
  /// samplers achieve this with per-index RNG streams (see sampler.h) —
  /// so kill-and-resume stays bit-identical. Default: ignore the pool.
  virtual void set_thread_pool(ThreadPool* pool) { (void)pool; }

  /// Human-readable model name for logs and reports.
  virtual std::string name() const = 0;
};

/// Training-loop options.
struct TrainerOptions {
  int64_t max_epochs = 200;
  /// Optional one-line provenance of the training data (typically
  /// IngestReport::Summary() from the TSV loader); logged once at the
  /// start of Fit when verbose, so every training log records exactly
  /// what the ingestion pipeline kept, quarantined and filtered.
  std::string data_provenance;
  /// Validate every this many epochs.
  int64_t eval_every = 5;
  /// Stop after this many consecutive validations without improvement.
  int64_t patience = 10;
  int top_n = 20;
  uint64_t seed = 7;
  bool verbose = false;
  /// Restore the best validation parameters after training.
  bool restore_best = true;

  /// Numerical-health guard (divergence rollback + LR backoff) policy.
  HealthOptions health;

  /// When non-empty, a resumable checkpoint (parameters + optimiser +
  /// RNG + progress metadata) is written here atomically every
  /// `checkpoint_every` epochs and once more at the end of training.
  std::string checkpoint_path;
  int64_t checkpoint_every = 1;

  /// When non-empty and the file exists, training state is restored from
  /// it and the run continues mid-stream (bit-identical to an
  /// uninterrupted run with the same seed). A missing file starts a fresh
  /// run (so the same invocation works for the first launch and every
  /// relaunch); a corrupt or mismatched file fails the run with a
  /// descriptive Status in TrainHistory::status.
  std::string resume_path;

  /// Optional thread pool. When set, periodic validation fans out per user
  /// (bit-identical metrics at any thread count) and the model's sampling
  /// stage parallelizes via set_thread_pool (deterministic per-index RNG
  /// streams, so checkpoints and kill-and-resume stay bit-identical). The
  /// pool must outlive the Fit call; null trains fully serially.
  ThreadPool* pool = nullptr;

  /// Optional instrumentation (DESIGN.md §9). When non-null, Fit maintains
  /// the `train_*` family: per-epoch gauges (train_loss, train_grad_norm,
  /// train_lr_scale, train_steps_per_sec), timing histograms
  /// (train_epoch_ms, train_step_ms, train_eval_ms) and lifetime counters
  /// (train_epochs_total, train_steps_total, train_rollbacks_total,
  /// train_checkpoint_writes_total, train_checkpoint_failures_total).
  /// Null keeps the loop uninstrumented — not even clock reads are added.
  MetricsRegistry* metrics = nullptr;
  /// Optional run journal. Fit appends structured events: "run_start",
  /// one "epoch" per healthy epoch (loss, grad norm, lr scale, timing,
  /// validation metrics on eval epochs), "rollback" on every health-guard
  /// trip, "checkpoint" per checkpoint attempt and a final "run_end".
  /// The journal is flushed before Fit returns.
  RunJournal* journal = nullptr;
  /// When non-empty, a metrics snapshot is written here at the end of Fit
  /// via WriteMetricsFile (.json extension selects JSON, anything else
  /// Prometheus text). Requires `metrics` to be set.
  std::string metrics_out;
};

/// Per-validation record.
struct ValidationPoint {
  int64_t epoch = 0;
  double train_loss = 0.0;
  EvalResult validation;
  double elapsed_seconds = 0.0;  ///< Cumulative training time (excl. eval).
  /// Global gradient norm from the optimiser's last step of this epoch
  /// (-1 when not measured, i.e. clipping disabled or no optimiser).
  double grad_norm = -1.0;
};

/// The outcome of Trainer::Fit.
struct TrainHistory {
  std::vector<ValidationPoint> points;
  int64_t best_epoch = 0;
  EvalResult best_validation;
  double train_seconds = 0.0;  ///< Total optimisation time (excl. eval).
  int64_t epochs_run = 0;

  /// OK unless the run failed (resume error, or divergence persisted
  /// past the rollback budget).
  Status status;
  /// Health-guard activity: number of divergence rollbacks performed and
  /// the epochs at which they fired.
  int64_t rollbacks = 0;
  std::vector<int64_t> rollback_epochs;
  /// Cumulative learning-rate multiplier after backoff (1.0 = untouched).
  double lr_scale = 1.0;
  /// Resume bookkeeping: whether a checkpoint was restored and the epoch
  /// training continued from.
  bool resumed = false;
  int64_t start_epoch = 0;
};

/// Export configuration for `ExportServingCheckpoint`.
struct ServingExportOptions {
  /// Item-range shard size of the sharded (v3) snapshot format; forwarded
  /// to WriteShardedSnapshot.
  int64_t items_per_shard = 4096;
  /// Snapshot version recorded in the manifest (0 = unassigned; the
  /// serving layer then falls back to its own monotonic counter). Assign
  /// strictly increasing versions in a publish pipeline so RecService can
  /// refuse stale re-publishes.
  int64_t version = 0;
};

/// Exports the model's current parameters for the serving layer (atomic
/// write, checksummed). Factor models — exactly two parameter tensors over
/// one embedding dimension, the user table then the item table — are
/// written in the sharded v3 snapshot format (per-shard checksums, so the
/// serving layer can quarantine corruption instead of rejecting the whole
/// catalogue); any other parameter layout falls back to a monolithic v2
/// checkpoint. Both layouts are what `EmbeddingSnapshot::Load` expects.
Status ExportServingCheckpoint(TrainableModel* model, const std::string& path,
                               const ServingExportOptions& options);

/// Export with default options (4096-item shards, unversioned).
Status ExportServingCheckpoint(TrainableModel* model, const std::string& path);

class SnapshotStore;

/// Store-routed export (serve/snapshot_store.h): the snapshot is written
/// to the store's versioned path — `options.version` when assigned (> 0),
/// else the store's NextVersion() — and registered in the store manifest,
/// so the file participates in startup recovery and retention GC. Only
/// the two-tensor factor layout can be store-managed (the store validates
/// artifacts by their sharded manifests); other layouts get
/// kInvalidArgument and must use the path-based export above.
Status ExportServingCheckpoint(TrainableModel* model, SnapshotStore* store,
                               const ServingExportOptions& options = {});

/// Orchestrates epochs, periodic validation, early stopping, divergence
/// rollback and restoring the best parameters.
class Trainer {
 public:
  /// The evaluator and split must outlive the trainer.
  Trainer(const Evaluator* evaluator, const DataSplit* split);

  /// Trains `model` until max_epochs or early stop; returns the history.
  /// Failures (corrupt resume file, exhausted divergence budget) are
  /// reported in TrainHistory::status rather than aborting.
  TrainHistory Fit(TrainableModel* model, const TrainerOptions& options) const;

 private:
  const Evaluator* evaluator_;
  const DataSplit* split_;
};

}  // namespace imcat

#endif  // IMCAT_TRAIN_TRAINER_H_
