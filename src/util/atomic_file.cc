#include "util/atomic_file.h"

#include <unistd.h>

#include <vector>

#include "util/fault_injector.h"

namespace imcat {

AtomicFileWriter::~AtomicFileWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(tmp_path_.c_str());
  }
}

Status AtomicFileWriter::Open() {
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) return Status::IoError("cannot write " + tmp_path_);
  return Status::OK();
}

Status AtomicFileWriter::Write(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  size_t to_write = size;
  bool injected_failure = false;
  std::vector<unsigned char> scratch;
  FaultInjector& injector = FaultInjector::Instance();
  if (injector.enabled()) {
    scratch.assign(bytes, bytes + size);
    to_write = injector.FilterWrite(offset_, scratch.data(), size,
                                    &injected_failure);
    bytes = scratch.data();
  }
  const size_t written =
      to_write == 0 ? 0 : std::fwrite(bytes, 1, to_write, file_);
  offset_ += static_cast<int64_t>(written);
  if (injected_failure || written != to_write) {
    return Status::IoError("write failed for " + tmp_path_);
  }
  // A short write (to_write < size) is deliberately not an error: it
  // simulates a torn write the writing process never observed.
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (std::fflush(file_) != 0 || fsync(fileno(file_)) != 0) {
    return Status::IoError("flush failed for " + tmp_path_);
  }
  std::FILE* file = file_;
  file_ = nullptr;
  if (std::fclose(file) != 0) {
    std::remove(tmp_path_.c_str());
    return Status::IoError("close failed for " + tmp_path_);
  }
  if (std::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return Status::IoError("cannot rename " + tmp_path_ + " to " +
                           final_path_);
  }
  return Status::OK();
}

}  // namespace imcat
