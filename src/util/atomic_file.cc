#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "util/fault_injector.h"

namespace imcat {

namespace {

/// "errno detail" suffix for IoError messages: " (errno 28: No space left
/// on device)". Captured eagerly — callers must pass the errno observed at
/// the failing call, before any cleanup syscall overwrites it.
std::string ErrnoDetail(int err) {
  return " (errno " + std::to_string(err) + ": " + std::strerror(err) + ")";
}

/// Fsyncs the directory containing `path`, making the rename that put the
/// file there durable: without it, a power cut after rename can roll the
/// directory entry back to the old file even though the data blocks were
/// fsynced. Paths with no '/' live in the CWD, so "." is the parent.
Status FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open directory " + dir +
                           " for fsync after renaming " + path +
                           ErrnoDetail(errno));
  }
  FaultInjector& injector = FaultInjector::Instance();
  const bool injected =
      injector.enabled() && injector.ConsumeFsyncFailure();
  const int rc = injected ? -1 : ::fsync(fd);
  const int err = injected ? EIO : errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("directory fsync failed for " + dir +
                           " after renaming " + path + ErrnoDetail(err));
  }
  return Status::OK();
}

}  // namespace

AtomicFileWriter::~AtomicFileWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(tmp_path_.c_str());
  }
}

Status AtomicFileWriter::Open() {
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("cannot write " + tmp_path_ + ErrnoDetail(errno));
  }
  return Status::OK();
}

Status AtomicFileWriter::Write(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  size_t to_write = size;
  bool injected_failure = false;
  std::vector<unsigned char> scratch;
  FaultInjector& injector = FaultInjector::Instance();
  if (injector.enabled()) {
    if (injector.ConsumeEnospc()) {
      return Status::ResourceExhausted("injected ENOSPC writing " +
                                       tmp_path_ + ": disk full");
    }
    scratch.assign(bytes, bytes + size);
    to_write = injector.FilterWrite(offset_, scratch.data(), size,
                                    &injected_failure);
    bytes = scratch.data();
  }
  const size_t written =
      to_write == 0 ? 0 : std::fwrite(bytes, 1, to_write, file_);
  offset_ += static_cast<int64_t>(written);
  if (injected_failure || written != to_write) {
    return Status::IoError("write failed for " + tmp_path_);
  }
  // A short write (to_write < size) is deliberately not an error: it
  // simulates a torn write the writing process never observed.
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  FaultInjector& injector = FaultInjector::Instance();
  if (injector.enabled() && injector.ConsumeEnospc()) {
    return Status::ResourceExhausted("injected ENOSPC committing " +
                                     tmp_path_ + ": disk full");
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush failed for " + tmp_path_ +
                           ErrnoDetail(errno));
  }
  const bool injected_fsync =
      injector.enabled() && injector.ConsumeFsyncFailure();
  if (injected_fsync || fsync(fileno(file_)) != 0) {
    const int err = injected_fsync ? EIO : errno;
    return Status::IoError("fsync failed for " + tmp_path_ +
                           ErrnoDetail(err));
  }
  std::FILE* file = file_;
  file_ = nullptr;
  if (std::fclose(file) != 0) {
    const int err = errno;
    std::remove(tmp_path_.c_str());
    return Status::IoError("close failed for " + tmp_path_ +
                           ErrnoDetail(err));
  }
  if (std::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp_path_.c_str());
    return Status::IoError("cannot rename " + tmp_path_ + " to " +
                           final_path_ + ErrnoDetail(err));
  }
  // The rename itself must survive a power cut: fsync the directory that
  // now holds the entry. The file is already in place when this fails, but
  // the publish is only durable — and only reported OK — once the
  // directory entry is too.
  return FsyncParentDir(final_path_);
}

}  // namespace imcat
