#ifndef IMCAT_UTIL_ATOMIC_FILE_H_
#define IMCAT_UTIL_ATOMIC_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/status.h"

/// \file atomic_file.h
/// Crash-safe file replacement shared by every writer of durable state
/// (checkpoints, TSV dataset exports). Data goes to `<path>.tmp`, is
/// flushed and fsynced, and only then renamed over `path`, so a crash or
/// injected failure mid-write never leaves a torn file where the final
/// one should be. All writes are routed through the process FaultInjector
/// so tests can inject I/O errors, torn writes and bit flips.

namespace imcat {

/// Writes a byte stream to `<path>.tmp` and renames it over `path` only on
/// Commit(). Destroying the writer without a successful Commit() removes
/// the temp file and leaves any pre-existing `path` untouched.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(const std::string& path)
      : final_path_(path), tmp_path_(path + ".tmp") {}

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  ~AtomicFileWriter();

  /// Opens the temp file for writing. Must be called (and succeed) before
  /// Write/Commit.
  Status Open();

  /// Appends `size` bytes. A short write injected by the FaultInjector is
  /// deliberately not an error: it simulates a torn write the writing
  /// process never observed.
  Status Write(const void* data, size_t size);

  /// Appends a string (convenience for text formats).
  Status Write(const std::string& text) {
    return Write(text.data(), text.size());
  }

  /// Flushes, fsyncs, closes, renames the temp file into place and fsyncs
  /// the parent directory so the rename itself is durable. IoError
  /// messages carry errno detail; an injected ENOSPC fault surfaces as
  /// kResourceExhausted.
  Status Commit();

 private:
  std::string final_path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  int64_t offset_ = 0;
};

}  // namespace imcat

#endif  // IMCAT_UTIL_ATOMIC_FILE_H_
