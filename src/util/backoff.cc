#include "util/backoff.h"

#include <algorithm>

#include "util/check.h"

namespace imcat {

Backoff::Backoff(const BackoffOptions& options)
    : options_(options),
      rng_(options.seed),
      current_delay_ms_(options.initial_delay_ms) {
  IMCAT_CHECK(options_.max_attempts >= 1);
  IMCAT_CHECK(options_.initial_delay_ms >= 0.0);
  IMCAT_CHECK(options_.multiplier >= 1.0);
  IMCAT_CHECK(options_.jitter >= 0.0 && options_.jitter <= 1.0);
}

double Backoff::NextDelayMs() {
  ++attempt_;
  if (!ShouldRetry()) return 0.0;
  const double envelope = std::min(current_delay_ms_, options_.max_delay_ms);
  current_delay_ms_ = std::min(current_delay_ms_ * options_.multiplier,
                               options_.max_delay_ms);
  if (options_.jitter == 0.0) return envelope;
  const double lo = envelope * (1.0 - options_.jitter);
  return lo + rng_.Uniform() * (envelope - lo);
}

}  // namespace imcat
