#ifndef IMCAT_UTIL_BACKOFF_H_
#define IMCAT_UTIL_BACKOFF_H_

#include <cstdint>

#include "util/rng.h"

/// \file backoff.h
/// Exponential backoff with decorrelated jitter for retry loops (snapshot
/// loading in the serving layer, and any future remote I/O). Deterministic
/// given the seed, so tests can assert exact schedules.

namespace imcat {

/// Retry policy: how many attempts, and how the delay between them grows.
struct BackoffOptions {
  /// Total attempts including the first one (1 = no retries).
  int64_t max_attempts = 4;
  /// Base delay before the first retry.
  double initial_delay_ms = 1.0;
  /// Multiplier applied to the cap after every retry.
  double multiplier = 2.0;
  /// Upper bound on any single delay.
  double max_delay_ms = 1000.0;
  /// Fraction of the delay randomised away: the returned delay is drawn
  /// uniformly from [(1-jitter)*d, d]. 0 disables jitter.
  double jitter = 0.5;
  /// Seed for the jitter stream (deterministic per Backoff instance).
  uint64_t seed = 1;
};

/// Produces the delay sequence for one retry loop. Not thread-safe; create
/// one per retry loop.
class Backoff {
 public:
  explicit Backoff(const BackoffOptions& options);

  /// True while another attempt is allowed.
  bool ShouldRetry() const { return attempt_ < options_.max_attempts; }

  /// Records an attempt and returns the jittered delay in milliseconds to
  /// wait before the *next* attempt (0 when no attempt remains). The
  /// un-jittered envelope doubles each call: initial, 2*initial, ... capped
  /// at max_delay_ms.
  double NextDelayMs();

  /// Attempts consumed so far.
  int64_t attempt() const { return attempt_; }

 private:
  BackoffOptions options_;
  Rng rng_;
  int64_t attempt_ = 0;
  double current_delay_ms_;
};

}  // namespace imcat

#endif  // IMCAT_UTIL_BACKOFF_H_
