#ifndef IMCAT_UTIL_CHECK_H_
#define IMCAT_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file check.h
/// Assertion macros for programmer-error invariants. Following the project
/// convention (no exceptions), a failed check prints the failing condition
/// with its location and aborts the process. These are enabled in all build
/// types: the costs are trivial next to the training loops they guard.

namespace imcat::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, condition);
  std::fflush(stderr);
  std::abort();
}

}  // namespace imcat::internal

#define IMCAT_CHECK(condition)                                         \
  do {                                                                 \
    if (!(condition)) {                                                \
      ::imcat::internal::CheckFailed(__FILE__, __LINE__, #condition);  \
    }                                                                  \
  } while (false)

#define IMCAT_CHECK_OP(a, op, b) IMCAT_CHECK((a)op(b))
#define IMCAT_CHECK_EQ(a, b) IMCAT_CHECK_OP(a, ==, b)
#define IMCAT_CHECK_NE(a, b) IMCAT_CHECK_OP(a, !=, b)
#define IMCAT_CHECK_LT(a, b) IMCAT_CHECK_OP(a, <, b)
#define IMCAT_CHECK_LE(a, b) IMCAT_CHECK_OP(a, <=, b)
#define IMCAT_CHECK_GT(a, b) IMCAT_CHECK_OP(a, >, b)
#define IMCAT_CHECK_GE(a, b) IMCAT_CHECK_OP(a, >=, b)

#endif  // IMCAT_UTIL_CHECK_H_
