#ifndef IMCAT_UTIL_CHECKSUM_H_
#define IMCAT_UTIL_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

/// \file checksum.h
/// The one FNV-1a implementation shared by every durable format in the
/// repo: the checkpoint writer/loader (tensor/checkpoint.cc), the
/// monolithic serving-snapshot loader and the sharded snapshot format's
/// per-shard + manifest checksums (serve/shard_format.cc). A single
/// definition keeps the on-disk formats mutually verifiable and makes the
/// constants impossible to fork accidentally.
///
/// FNV-1a (64-bit) is not cryptographic; it exists to catch flipped bits,
/// torn writes and truncation, which is exactly the corruption model the
/// FaultInjector exercises.

namespace imcat {

/// Incremental 64-bit FNV-1a over byte ranges.
class Fnv1a {
 public:
  static constexpr uint64_t kOffsetBasis = 0xCBF29CE484222325ULL;
  static constexpr uint64_t kPrime = 0x100000001B3ULL;

  void Update(const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= kPrime;
    }
  }

  uint64_t value() const { return hash_; }

  /// Restarts the running hash (equivalent to a fresh instance).
  void Reset() { hash_ = kOffsetBasis; }

 private:
  uint64_t hash_ = kOffsetBasis;
};

/// One-shot convenience over a single contiguous buffer.
inline uint64_t Fnv1aHash(const void* data, size_t size) {
  Fnv1a hash;
  hash.Update(data, size);
  return hash.value();
}

}  // namespace imcat

#endif  // IMCAT_UTIL_CHECKSUM_H_
