#include "util/fault_injector.h"

#include <algorithm>

namespace imcat {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_fired_ = 0;
  write_failure_armed_ = false;
  short_write_armed_ = false;
  bit_flip_armed_ = false;
  nan_loss_armed_ = false;
  read_flip_count_ = 0;
  short_read_armed_ = false;
  slow_op_count_ = 0;
  load_failure_count_ = 0;
  enospc_count_ = 0;
  fsync_failure_count_ = 0;
  crash_point_armed_ = false;
  RecomputeEnabledLocked();
}

void FaultInjector::RecomputeEnabledLocked() {
  enabled_.store(write_failure_armed_ || short_write_armed_ ||
                     bit_flip_armed_ || nan_loss_armed_ ||
                     read_flip_count_ > 0 || short_read_armed_ ||
                     slow_op_count_ > 0 || load_failure_count_ > 0 ||
                     enospc_count_ > 0 || fsync_failure_count_ > 0 ||
                     crash_point_armed_,
                 std::memory_order_relaxed);
}

void FaultInjector::ArmWriteFailure(int64_t after_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  write_failure_armed_ = true;
  write_failure_after_ = after_bytes;
  RecomputeEnabledLocked();
}

void FaultInjector::ArmShortWrite(int64_t after_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  short_write_armed_ = true;
  short_write_after_ = after_bytes;
  RecomputeEnabledLocked();
}

void FaultInjector::ArmBitFlip(int64_t offset, uint8_t mask) {
  std::lock_guard<std::mutex> lock(mu_);
  bit_flip_armed_ = true;
  bit_flip_offset_ = offset;
  bit_flip_mask_ = mask;
  RecomputeEnabledLocked();
}

void FaultInjector::ArmReadBitFlip(int64_t offset, uint8_t mask,
                                   int64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  read_flip_count_ = count;
  read_flip_offset_ = offset;
  read_flip_mask_ = mask;
  RecomputeEnabledLocked();
}

void FaultInjector::ArmShortRead(int64_t after_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  short_read_armed_ = true;
  short_read_after_ = after_bytes;
  RecomputeEnabledLocked();
}

void FaultInjector::ArmNanLoss(int64_t after_steps) {
  std::lock_guard<std::mutex> lock(mu_);
  nan_loss_armed_ = true;
  nan_loss_countdown_ = after_steps;
  RecomputeEnabledLocked();
}

void FaultInjector::ArmSlowOps(int64_t count, double millis) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_op_count_ = count;
  slow_op_millis_ = millis;
  RecomputeEnabledLocked();
}

void FaultInjector::ArmLoadFailures(int64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  load_failure_count_ = count;
  RecomputeEnabledLocked();
}

size_t FaultInjector::FilterWrite(int64_t stream_offset, unsigned char* buf,
                                  size_t size, bool* fail) {
  std::lock_guard<std::mutex> lock(mu_);
  *fail = false;
  size_t allowed = size;
  const int64_t end = stream_offset + static_cast<int64_t>(size);
  if (bit_flip_armed_ && bit_flip_offset_ >= stream_offset &&
      bit_flip_offset_ < end) {
    buf[bit_flip_offset_ - stream_offset] ^= bit_flip_mask_;
    bit_flip_armed_ = false;
    ++faults_fired_;
  }
  if (short_write_armed_ && end > short_write_after_) {
    allowed = std::min<size_t>(
        allowed, static_cast<size_t>(
                     std::max<int64_t>(0, short_write_after_ - stream_offset)));
    short_write_armed_ = false;
    ++faults_fired_;
  }
  if (write_failure_armed_ && end > write_failure_after_) {
    allowed = std::min<size_t>(
        allowed,
        static_cast<size_t>(
            std::max<int64_t>(0, write_failure_after_ - stream_offset)));
    write_failure_armed_ = false;
    ++faults_fired_;
    *fail = true;
  }
  RecomputeEnabledLocked();
  return allowed;
}

void FaultInjector::FilterRead(int64_t stream_offset, unsigned char* buf,
                               size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t end = stream_offset + static_cast<int64_t>(size);
  if (read_flip_count_ > 0 && read_flip_offset_ >= stream_offset &&
      read_flip_offset_ < end) {
    buf[read_flip_offset_ - stream_offset] ^= read_flip_mask_;
    --read_flip_count_;
    ++faults_fired_;
    RecomputeEnabledLocked();
  }
}

size_t FaultInjector::FilterReadLength(int64_t stream_offset, size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!short_read_armed_) return size;
  const int64_t end = stream_offset + static_cast<int64_t>(size);
  if (end <= short_read_after_) return size;
  short_read_armed_ = false;
  ++faults_fired_;
  RecomputeEnabledLocked();
  return static_cast<size_t>(
      std::max<int64_t>(0, short_read_after_ - stream_offset));
}

bool FaultInjector::ConsumeNanLoss() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!nan_loss_armed_) return false;
  if (nan_loss_countdown_-- > 0) return false;
  nan_loss_armed_ = false;
  ++faults_fired_;
  RecomputeEnabledLocked();
  return true;
}

double FaultInjector::ConsumeSlowOp() {
  std::lock_guard<std::mutex> lock(mu_);
  if (slow_op_count_ <= 0) return 0.0;
  --slow_op_count_;
  ++faults_fired_;
  RecomputeEnabledLocked();
  return slow_op_millis_;
}

void FaultInjector::ArmEnospc(int64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  enospc_count_ = count;
  RecomputeEnabledLocked();
}

void FaultInjector::ArmFsyncFailures(int64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  fsync_failure_count_ = count;
  RecomputeEnabledLocked();
}

void FaultInjector::ArmCrashPoint(int64_t after_steps) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_point_armed_ = true;
  crash_point_countdown_ = after_steps;
  RecomputeEnabledLocked();
}

bool FaultInjector::ConsumeEnospc() {
  std::lock_guard<std::mutex> lock(mu_);
  if (enospc_count_ <= 0) return false;
  --enospc_count_;
  ++faults_fired_;
  RecomputeEnabledLocked();
  return true;
}

bool FaultInjector::ConsumeFsyncFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fsync_failure_count_ <= 0) return false;
  --fsync_failure_count_;
  ++faults_fired_;
  RecomputeEnabledLocked();
  return true;
}

bool FaultInjector::ConsumeCrashStep() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!crash_point_armed_) return false;
  if (crash_point_countdown_-- > 0) return false;
  crash_point_armed_ = false;
  ++faults_fired_;
  RecomputeEnabledLocked();
  return true;
}

bool FaultInjector::ConsumeLoadFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (load_failure_count_ <= 0) return false;
  --load_failure_count_;
  ++faults_fired_;
  RecomputeEnabledLocked();
  return true;
}

int64_t FaultInjector::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_fired_;
}

}  // namespace imcat
