#include "util/fault_injector.h"

#include <algorithm>

namespace imcat {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Reset() {
  enabled_ = false;
  faults_fired_ = 0;
  write_failure_armed_ = false;
  short_write_armed_ = false;
  bit_flip_armed_ = false;
  nan_loss_armed_ = false;
}

void FaultInjector::RecomputeEnabled() {
  enabled_ = write_failure_armed_ || short_write_armed_ || bit_flip_armed_ ||
             nan_loss_armed_;
}

void FaultInjector::ArmWriteFailure(int64_t after_bytes) {
  write_failure_armed_ = true;
  write_failure_after_ = after_bytes;
  RecomputeEnabled();
}

void FaultInjector::ArmShortWrite(int64_t after_bytes) {
  short_write_armed_ = true;
  short_write_after_ = after_bytes;
  RecomputeEnabled();
}

void FaultInjector::ArmBitFlip(int64_t offset, uint8_t mask) {
  bit_flip_armed_ = true;
  bit_flip_offset_ = offset;
  bit_flip_mask_ = mask;
  RecomputeEnabled();
}

void FaultInjector::ArmNanLoss(int64_t after_steps) {
  nan_loss_armed_ = true;
  nan_loss_countdown_ = after_steps;
  RecomputeEnabled();
}

size_t FaultInjector::FilterWrite(int64_t stream_offset, unsigned char* buf,
                                  size_t size, bool* fail) {
  *fail = false;
  size_t allowed = size;
  const int64_t end = stream_offset + static_cast<int64_t>(size);
  if (bit_flip_armed_ && bit_flip_offset_ >= stream_offset &&
      bit_flip_offset_ < end) {
    buf[bit_flip_offset_ - stream_offset] ^= bit_flip_mask_;
    bit_flip_armed_ = false;
    ++faults_fired_;
  }
  if (short_write_armed_ && end > short_write_after_) {
    allowed = std::min<size_t>(
        allowed, static_cast<size_t>(
                     std::max<int64_t>(0, short_write_after_ - stream_offset)));
    short_write_armed_ = false;
    ++faults_fired_;
  }
  if (write_failure_armed_ && end > write_failure_after_) {
    allowed = std::min<size_t>(
        allowed,
        static_cast<size_t>(
            std::max<int64_t>(0, write_failure_after_ - stream_offset)));
    write_failure_armed_ = false;
    ++faults_fired_;
    *fail = true;
  }
  RecomputeEnabled();
  return allowed;
}

bool FaultInjector::ConsumeNanLoss() {
  if (!nan_loss_armed_) return false;
  if (nan_loss_countdown_-- > 0) return false;
  nan_loss_armed_ = false;
  ++faults_fired_;
  RecomputeEnabled();
  return true;
}

}  // namespace imcat
