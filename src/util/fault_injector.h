#ifndef IMCAT_UTIL_FAULT_INJECTOR_H_
#define IMCAT_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

/// \file fault_injector.h
/// Test-only fault injection for the fault-tolerance subsystems. Production
/// code paths (checkpoint writer/reader, training loop wrappers, the
/// serving layer) consult the process-wide injector, which is inert unless
/// a test arms it, so the overhead in normal operation is a single relaxed
/// atomic load.
///
/// Thread-safe: the serving chaos tests arm faults from a driver thread
/// while worker threads poll them. All mutation happens under one mutex;
/// the fast-path enabled() check is a lock-free atomic.
///
/// Supported faults:
///  - write failure: the byte stream reports an I/O error after N bytes;
///  - short write: bytes beyond N are silently dropped (torn write that the
///    writing process never observes, e.g. power loss after a lying fsync);
///  - write bit flip: one byte at an absolute stream offset is
///    XOR-corrupted in flight (silent media corruption on write);
///  - read bit flip: one byte at an absolute stream offset is XOR-corrupted
///    as it is read back (silent media corruption at rest — the file on
///    disk is fine, the bytes the reader sees are not);
///  - short read: the stream appears to end after N bytes even though the
///    file is longer (failing media, a file still being copied), so readers
///    must treat an unexpected EOF — including mid-record — as a definite
///    error, never as a clean end of data;
///  - ENOSPC: AtomicFileWriter::Write/Commit fail with kResourceExhausted
///    as if the disk filled mid-write — the next `count` durable writes
///    observe a full disk, so publish pipelines can prove they survive
///    disk-full without leaving half-written files behind;
///  - fsync failure: the fsync of the data file or of the parent directory
///    in AtomicFileWriter::Commit reports an I/O error (a lying disk, a
///    detached volume), so callers can prove a failed durability barrier
///    never counts as a successful publish;
///  - crash point: multi-step durable pipelines (the SnapshotStore
///    publish -> manifest -> GC sequence) poll ConsumeCrashStep() at every
///    step boundary; after the armed number of completed steps the poll
///    fires and the pipeline must abandon the operation immediately —
///    on-disk state is then exactly what a kill -9 between those two
///    steps would leave, and the startup-recovery path has to cope;
///  - forced-NaN loss: a TrainableModel test wrapper polls
///    ConsumeNanLoss() each TrainStep and poisons the loss when it fires;
///  - forced-slow operation: instrumented hot paths poll ConsumeSlowOp()
///    and sleep for the armed duration, so deadline enforcement can be
///    exercised deterministically;
///  - load failure: snapshot/checkpoint load entry points poll
///    ConsumeLoadFailure() and fail with an injected error.
///
/// Write-stream faults (write failure, short write, write bit flip) fire
/// once and then disarm. Slow-op, read-bit-flip and load-failure faults
/// take a count and fire on that many consecutive polls, so sustained
/// degradation (every reload corrupt, every request slow) is expressible.

namespace imcat {

/// Process-wide fault-injection control.
class FaultInjector {
 public:
  /// The singleton consulted by instrumented code paths.
  static FaultInjector& Instance();

  /// Disarms every fault and zeroes the fired counters.
  void Reset();

  /// True if any fault is currently armed (fast path check).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Arms an I/O error reported after `after_bytes` bytes of a stream have
  /// been written. Bytes up to the limit still reach the file.
  void ArmWriteFailure(int64_t after_bytes);

  /// Arms a silent truncation: bytes past `after_bytes` are dropped without
  /// any error surfacing to the writer.
  void ArmShortWrite(int64_t after_bytes);

  /// Arms a write-side bit flip: the byte at absolute stream offset
  /// `offset` is XORed with `mask` (mask must be non-zero to corrupt) as it
  /// is written.
  void ArmBitFlip(int64_t offset, uint8_t mask);

  /// Arms a read-side bit flip: the next `count` times a reader consumes
  /// the byte at absolute stream offset `offset`, it is XORed with `mask`.
  /// Readers consume a given offset at most once per file load, so `count`
  /// is effectively "the next `count` loads see corruption". The file
  /// itself is untouched (silent media/transport corruption).
  void ArmReadBitFlip(int64_t offset, uint8_t mask, int64_t count = 1);

  /// Arms a read-side truncation: instrumented readers observe EOF after
  /// `after_bytes` bytes of the stream even though the file on disk is
  /// longer (a short read from failing media, or a file still being
  /// copied). Fires once, on the read that crosses the boundary.
  void ArmShortRead(int64_t after_bytes);

  /// Arms a forced-NaN training loss on the `after_steps`-th subsequent
  /// call to ConsumeNanLoss() (0 = the very next call).
  void ArmNanLoss(int64_t after_steps);

  /// Arms `count` forced-slow operations of `millis` each: the next `count`
  /// calls to ConsumeSlowOp() report that delay.
  void ArmSlowOps(int64_t count, double millis);

  /// Arms `count` injected load failures: the next `count` calls to
  /// ConsumeLoadFailure() return true.
  void ArmLoadFailures(int64_t count);

  /// Arms `count` ENOSPC faults: the next `count` calls to
  /// ConsumeEnospc() return true, and AtomicFileWriter::Write/Commit
  /// report kResourceExhausted ("disk full") instead of writing.
  void ArmEnospc(int64_t count);

  /// Arms `count` fsync failures: the next `count` calls to
  /// ConsumeFsyncFailure() return true, and AtomicFileWriter::Commit
  /// reports the durability barrier (file or parent-directory fsync) as
  /// failed.
  void ArmFsyncFailures(int64_t count);

  /// Arms a simulated kill: the first `after_steps` calls to
  /// ConsumeCrashStep() return false (those durable steps complete), the
  /// next call fires and returns true. The polling pipeline must then
  /// abandon the operation without any further writes or cleanup, leaving
  /// on-disk state exactly as a crash between the two steps would.
  void ArmCrashPoint(int64_t after_steps);

  /// Write hook used by instrumented writers. `stream_offset` is the
  /// absolute offset of `buf` within the logical stream. May corrupt bytes
  /// of `buf` in place (bit flip). Returns the number of leading bytes the
  /// writer should physically write (< size for a short write) and sets
  /// `*fail` when an injected I/O error should be reported after those
  /// bytes.
  size_t FilterWrite(int64_t stream_offset, unsigned char* buf, size_t size,
                     bool* fail);

  /// Read hook used by instrumented readers: corrupts bytes of `buf` in
  /// place when a read bit flip is armed for a position inside
  /// [stream_offset, stream_offset + size), consuming one armed count.
  void FilterRead(int64_t stream_offset, unsigned char* buf, size_t size);

  /// Length hook used by instrumented readers before consuming a chunk:
  /// returns how many of the `size` bytes starting at `stream_offset` the
  /// reader should see. Less than `size` (possibly 0) when a short read is
  /// armed and the chunk crosses the boundary; the reader then treats the
  /// stream as ended.
  size_t FilterReadLength(int64_t stream_offset, size_t size);

  /// Poll point for the forced-NaN loss fault; returns true when the
  /// armed step is reached.
  bool ConsumeNanLoss();

  /// Poll point for forced-slow operations; returns the injected delay in
  /// milliseconds (0 when none armed). Does not sleep — the caller decides
  /// how to spend the delay.
  double ConsumeSlowOp();

  /// Poll point for injected load failures; returns true while armed.
  bool ConsumeLoadFailure();

  /// Poll point for injected disk-full faults; returns true while armed.
  bool ConsumeEnospc();

  /// Poll point for injected fsync failures; returns true while armed.
  bool ConsumeFsyncFailure();

  /// Poll point at durable-step boundaries of multi-step pipelines;
  /// returns true exactly once, after the armed number of steps completed.
  bool ConsumeCrashStep();

  /// Total number of faults that have fired since the last Reset().
  int64_t faults_fired() const;

 private:
  FaultInjector() = default;
  void RecomputeEnabledLocked();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  int64_t faults_fired_ = 0;

  bool write_failure_armed_ = false;
  int64_t write_failure_after_ = 0;
  bool short_write_armed_ = false;
  int64_t short_write_after_ = 0;
  bool bit_flip_armed_ = false;
  int64_t bit_flip_offset_ = 0;
  uint8_t bit_flip_mask_ = 0;
  bool nan_loss_armed_ = false;
  int64_t nan_loss_countdown_ = 0;
  int64_t read_flip_count_ = 0;
  int64_t read_flip_offset_ = 0;
  uint8_t read_flip_mask_ = 0;
  bool short_read_armed_ = false;
  int64_t short_read_after_ = 0;
  int64_t slow_op_count_ = 0;
  double slow_op_millis_ = 0.0;
  int64_t load_failure_count_ = 0;
  int64_t enospc_count_ = 0;
  int64_t fsync_failure_count_ = 0;
  bool crash_point_armed_ = false;
  int64_t crash_point_countdown_ = 0;
};

}  // namespace imcat

#endif  // IMCAT_UTIL_FAULT_INJECTOR_H_
