#ifndef IMCAT_UTIL_FAULT_INJECTOR_H_
#define IMCAT_UTIL_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>

/// \file fault_injector.h
/// Test-only fault injection for the fault-tolerance subsystem. Production
/// code paths (checkpoint writer, training loop wrappers) consult the
/// process-wide injector, which is inert unless a test arms it, so the
/// overhead in normal operation is a single branch on a bool.
///
/// Supported faults:
///  - write failure: the byte stream reports an I/O error after N bytes;
///  - short write: bytes beyond N are silently dropped (torn write that the
///    writing process never observes, e.g. power loss after a lying fsync);
///  - bit flip: one byte at an absolute stream offset is XOR-corrupted in
///    flight (silent media corruption);
///  - forced-NaN loss: a TrainableModel test wrapper polls
///    ConsumeNanLoss() each TrainStep and poisons the loss when it fires.

namespace imcat {

/// Process-wide fault-injection control. Not thread-safe; intended for
/// single-threaded tests. All armed faults fire once and then disarm.
class FaultInjector {
 public:
  /// The singleton consulted by instrumented code paths.
  static FaultInjector& Instance();

  /// Disarms every fault and zeroes the fired counters.
  void Reset();

  /// True if any fault is currently armed (fast path check).
  bool enabled() const { return enabled_; }

  /// Arms an I/O error reported after `after_bytes` bytes of a stream have
  /// been written. Bytes up to the limit still reach the file.
  void ArmWriteFailure(int64_t after_bytes);

  /// Arms a silent truncation: bytes past `after_bytes` are dropped without
  /// any error surfacing to the writer.
  void ArmShortWrite(int64_t after_bytes);

  /// Arms a bit flip: the byte at absolute stream offset `offset` is XORed
  /// with `mask` (mask must be non-zero to corrupt) as it is written.
  void ArmBitFlip(int64_t offset, uint8_t mask);

  /// Arms a forced-NaN training loss on the `after_steps`-th subsequent
  /// call to ConsumeNanLoss() (0 = the very next call).
  void ArmNanLoss(int64_t after_steps);

  /// Write hook used by instrumented writers. `stream_offset` is the
  /// absolute offset of `buf` within the logical stream. May corrupt bytes
  /// of `buf` in place (bit flip). Returns the number of leading bytes the
  /// writer should physically write (< size for a short write) and sets
  /// `*fail` when an injected I/O error should be reported after those
  /// bytes.
  size_t FilterWrite(int64_t stream_offset, unsigned char* buf, size_t size,
                     bool* fail);

  /// Poll point for the forced-NaN loss fault; returns true when the
  /// armed step is reached.
  bool ConsumeNanLoss();

  /// Total number of faults that have fired since the last Reset().
  int64_t faults_fired() const { return faults_fired_; }

 private:
  FaultInjector() = default;
  void RecomputeEnabled();

  bool enabled_ = false;
  int64_t faults_fired_ = 0;

  bool write_failure_armed_ = false;
  int64_t write_failure_after_ = 0;
  bool short_write_armed_ = false;
  int64_t short_write_after_ = 0;
  bool bit_flip_armed_ = false;
  int64_t bit_flip_offset_ = 0;
  uint8_t bit_flip_mask_ = 0;
  bool nan_loss_armed_ = false;
  int64_t nan_loss_countdown_ = 0;
};

}  // namespace imcat

#endif  // IMCAT_UTIL_FAULT_INJECTOR_H_
