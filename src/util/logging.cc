#include "util/logging.h"

#include <cstdio>

namespace imcat {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level_), stream_.str().c_str());
}

}  // namespace internal
}  // namespace imcat
