#ifndef IMCAT_UTIL_LOGGING_H_
#define IMCAT_UTIL_LOGGING_H_

#include <sstream>
#include <string>

/// \file logging.h
/// Minimal leveled logging. Usage:
///
///   IMCAT_LOG(INFO) << "epoch " << epoch << " recall=" << recall;
///
/// Messages at or above the global level (default INFO) are written to
/// stderr with a severity tag. The level can be lowered to silence training
/// chatter in tests/benchmarks via SetLogLevel.

namespace imcat {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kQuiet = 4,  ///< Suppresses everything; not a valid message level.
};

/// Sets the minimum level that is emitted. Thread-compatible (set once at
/// start-up).
void SetLogLevel(LogLevel level);

/// Returns the current minimum emitted level.
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace imcat

#define IMCAT_LOG_DEBUG ::imcat::LogLevel::kDebug
#define IMCAT_LOG_INFO ::imcat::LogLevel::kInfo
#define IMCAT_LOG_WARNING ::imcat::LogLevel::kWarning
#define IMCAT_LOG_ERROR ::imcat::LogLevel::kError

#define IMCAT_LOG(severity)                                              \
  ::imcat::internal::LogMessage(IMCAT_LOG_##severity, __FILE__, __LINE__) \
      .stream()

#endif  // IMCAT_UTIL_LOGGING_H_
