#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace imcat {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

RngState Rng::GetState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.have_cached_normal = have_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::SetState(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  have_cached_normal_ = state.have_cached_normal;
  cached_normal_ = state.cached_normal;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t n) {
  IMCAT_CHECK_GT(n, 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x = NextUint64();
  while (x >= limit) x = NextUint64();
  return static_cast<int64_t>(x % un);
}

double Rng::Uniform() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int64_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    IMCAT_CHECK_GE(w, 0.0);
    total += w;
  }
  IMCAT_CHECK_GT(total, 0.0);
  double x = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

double Rng::Gamma(double shape) {
  IMCAT_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Johnk-style boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
    const double u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u > 1e-300 ? u : 1e-300, 1.0 / shape);
  }
  // Marsaglia-Tsang method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

void Rng::Dirichlet(double alpha, int dim, std::vector<double>* out) {
  IMCAT_CHECK_GT(dim, 0);
  out->resize(dim);
  double total = 0.0;
  for (int i = 0; i < dim; ++i) {
    (*out)[i] = Gamma(alpha);
    total += (*out)[i];
  }
  if (total <= 0.0) {
    for (int i = 0; i < dim; ++i) (*out)[i] = 1.0 / dim;
    return;
  }
  for (int i = 0; i < dim; ++i) (*out)[i] /= total;
}

}  // namespace imcat
