#ifndef IMCAT_UTIL_RNG_H_
#define IMCAT_UTIL_RNG_H_

#include <cstdint>
#include <vector>

/// \file rng.h
/// Deterministic, fast pseudo-random number generation used everywhere in
/// the library (data generation, parameter initialisation, negative
/// sampling). Xoshiro256** seeded via SplitMix64, which gives reproducible
/// runs across platforms independent of the standard library's
/// implementation-defined distributions.

namespace imcat {

/// The complete serialisable state of an Rng: the four xoshiro256** words
/// plus the Box-Muller normal cache. Capturing and restoring it resumes
/// the stream bit-identically (used by training checkpoints).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool have_cached_normal = false;
  double cached_normal = 0.0;
};

/// A deterministic 64-bit PRNG (xoshiro256**). Copyable; copies evolve
/// independently.
class Rng {
 public:
  /// Seeds the state deterministically from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Snapshots the full generator state for checkpointing.
  RngState GetState() const;

  /// Restores a previously captured state; the stream continues exactly
  /// where GetState() left it.
  void SetState(const RngState& state);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to `weights`. Requires at least one strictly positive weight.
  int64_t Categorical(const std::vector<double>& weights);

  /// Samples from a symmetric Dirichlet(alpha) of dimension `dim` into
  /// `out` (resized to dim).
  void Dirichlet(double alpha, int dim, std::vector<double>* out);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int64_t i = static_cast<int64_t>(v->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Draws from Gamma(shape, 1). Requires shape > 0.
  double Gamma(double shape);

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace imcat

#endif  // IMCAT_UTIL_RNG_H_
