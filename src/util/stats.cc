#include "util/stats.h"

#include <cmath>

#include "util/check.h"

namespace imcat {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  IMCAT_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace imcat
