#ifndef IMCAT_UTIL_STATS_H_
#define IMCAT_UTIL_STATS_H_

#include <vector>

/// \file stats.h
/// Basic descriptive statistics over repeated-seed experiment results.

namespace imcat {

/// Arithmetic mean. Returns 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator). Returns 0 for n < 2.
double StdDev(const std::vector<double>& values);

/// Pearson correlation of two equally sized vectors; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace imcat

#endif  // IMCAT_UTIL_STATS_H_
