#include "util/status.h"

namespace imcat {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace imcat
