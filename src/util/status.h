#ifndef IMCAT_UTIL_STATUS_H_
#define IMCAT_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

/// \file status.h
/// Error handling without exceptions, in the style of Arrow/Abseil. Library
/// entry points that can fail for reasons outside the programmer's control
/// (missing files, malformed input) return Status / StatusOr<T>; invariant
/// violations use IMCAT_CHECK.

namespace imcat {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kFailedPrecondition = 4,
  /// Stored data is unrecoverably corrupt (checksum mismatch, torn write).
  kDataLoss = 5,
  /// A per-request deadline expired before the operation completed.
  kDeadlineExceeded = 6,
  /// The service cannot take the request right now (overload, shed load,
  /// shutdown); safe to retry later.
  kUnavailable = 7,
  /// An input exceeds a configured resource guard (file size, line length,
  /// record count); processing it further would risk OOM or unbounded work.
  kResourceExhausted = 8,
};

/// One past the largest StatusCode value; lets tests enumerate every code
/// so a new code cannot ship without ToString coverage.
inline constexpr int kNumStatusCodes = 9;

/// A success-or-error result carrying a code and human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of T or an error Status. Access to the value requires
/// ok(); violating that is a programmer error and aborts.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value (the common success path).
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    IMCAT_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    IMCAT_CHECK(ok());
    return value_;
  }
  T& value() & {
    IMCAT_CHECK(ok());
    return value_;
  }
  T&& value() && {
    IMCAT_CHECK(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace imcat

/// Propagates a non-OK status to the caller.
#define IMCAT_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::imcat::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (false)

#endif  // IMCAT_UTIL_STATUS_H_
