#ifndef IMCAT_UTIL_STOPWATCH_H_
#define IMCAT_UTIL_STOPWATCH_H_

#include <chrono>

/// \file stopwatch.h
/// Wall-clock timing for the efficiency experiments (Fig. 9) and trainer
/// epoch timing.

namespace imcat {

/// A simple monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace imcat

#endif  // IMCAT_UTIL_STOPWATCH_H_
