#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace imcat {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ParseInt64(std::string_view text, int64_t* out) {
  text = StripWhitespace(text);
  if (text.empty() || text.size() > 30) return false;
  char buf[32];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + text.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  text = StripWhitespace(text);
  if (text.empty() || text.size() > 60) return false;
  char buf[64];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + text.size()) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace imcat
