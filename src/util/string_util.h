#ifndef IMCAT_UTIL_STRING_UTIL_H_
#define IMCAT_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

/// \file string_util.h
/// Small string helpers used by the TSV loader and report printers.

namespace imcat {

/// Splits `text` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Parses a non-negative integer; returns false on malformed input.
bool ParseInt64(std::string_view text, int64_t* out);

/// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view text, double* out);

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits);

}  // namespace imcat

#endif  // IMCAT_UTIL_STRING_UTIL_H_
