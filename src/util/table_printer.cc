#include "util/table_printer.h"

#include <cstdio>

#include "util/check.h"

namespace imcat {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  IMCAT_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  IMCAT_CHECK_LE(cells.size(), headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto append_row = [&](std::string* out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out->append(c == 0 ? "| " : " ");
      out->append(row[c]);
      out->append(widths[c] - row[c].size(), ' ');
      out->append(" |");
    }
    out->push_back('\n');
  };
  std::string out;
  append_row(&out, headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out.append(c == 0 ? "|-" : "-");
    out.append(widths[c], '-');
    out.append("-|");
  }
  out.push_back('\n');
  for (const auto& row : rows_) append_row(&out, row);
  return out;
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace imcat
