#ifndef IMCAT_UTIL_TABLE_PRINTER_H_
#define IMCAT_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

/// \file table_printer.h
/// Fixed-width ASCII table rendering used by the benchmark report binaries
/// to print paper-style tables (Table I, II, III) to stdout.

namespace imcat {

/// Accumulates rows of string cells and renders them as an aligned table
/// with a header rule. Cells are padded to the widest entry per column.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; the row may have at most as many cells as there are
  /// headers (missing cells render empty).
  void AddRow(std::vector<std::string> cells);

  /// Renders the full table.
  std::string ToString() const;

  /// Renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace imcat

#endif  // IMCAT_UTIL_TABLE_PRINTER_H_
