#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <utility>

#include "util/check.h"

namespace imcat {

namespace {

Status StatusFromCurrentException() {
  try {
    throw;
  } catch (const std::exception& e) {
    return Status(StatusCode::kFailedPrecondition,
                  std::string("task threw: ") + e.what());
  } catch (...) {
    return Status(StatusCode::kFailedPrecondition,
                  "task threw a non-std::exception object");
  }
}

}  // namespace

ThreadPool::ThreadPool(const ThreadPoolOptions& options) {
  num_threads_ = options.num_threads;
  if (num_threads_ <= 0) {
    num_threads_ = static_cast<int64_t>(std::thread::hardware_concurrency());
    if (num_threads_ <= 0) num_threads_ = 1;
  }
  IMCAT_CHECK_GT(options.queue_capacity, 0);
  queue_capacity_ = options.queue_capacity;
  if (options.metrics != nullptr) {
    const std::string& p = options.metrics_prefix;
    tasks_run_total_ = options.metrics->GetCounter(p + "_tasks_run_total");
    tasks_cancelled_total_ =
        options.metrics->GetCounter(p + "_tasks_cancelled_total");
    queue_wait_ms_ = options.metrics->GetHistogram(p + "_queue_wait_ms");
    queue_depth_gauge_ = options.metrics->GetGauge(p + "_queue_depth");
  }
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int64_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

ThreadPool* ThreadPool::Shared() {
  // Function-local static: created on first use, joined at normal exit.
  static ThreadPool pool{ThreadPoolOptions{}};
  return &pool;
}

bool ThreadPool::stopped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stopped_;
}

int64_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

Status ThreadPool::first_task_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_task_error_;
}

int64_t ThreadPool::task_exceptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return task_exceptions_;
}

Status ThreadPool::SubmitLocked(std::function<void()> run,
                                std::function<void()> cancel, bool blocking) {
  std::unique_lock<std::mutex> lock(mu_);
  if (blocking) {
    space_cv_.wait(lock, [this] {
      return stopped_ ||
             static_cast<int64_t>(queue_.size()) < queue_capacity_;
    });
  }
  if (stopped_) return Status::Unavailable("thread pool is shut down");
  if (static_cast<int64_t>(queue_.size()) >= queue_capacity_) {
    return Status::Unavailable("thread pool queue full (" +
                               std::to_string(queue_capacity_) + " tasks)");
  }
  QueuedTask task{std::move(run), std::move(cancel)};
  if (queue_wait_ms_ != nullptr) task.enqueued_ms = MetricsNowMs();
  queue_.push_back(std::move(task));
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
  work_cv_.notify_one();
  return Status::OK();
}

Status ThreadPool::Submit(std::function<void()> run,
                          std::function<void()> cancel) {
  return SubmitLocked(std::move(run), std::move(cancel), /*blocking=*/true);
}

Status ThreadPool::TrySubmit(std::function<void()> run,
                             std::function<void()> cancel) {
  return SubmitLocked(std::move(run), std::move(cancel), /*blocking=*/false);
}

void ThreadPool::RunCaptured(const std::function<void()>& run) {
  try {
    run();
  } catch (...) {
    Status st = StatusFromCurrentException();
    std::lock_guard<std::mutex> lock(mu_);
    if (first_task_error_.ok()) first_task_error_ = std::move(st);
    ++task_exceptions_;
  }
}

void ThreadPool::NoteTaskDequeued(const QueuedTask& task,
                                  int64_t depth_after) {
  if (tasks_run_total_ != nullptr) tasks_run_total_->Increment();
  if (queue_wait_ms_ != nullptr) {
    queue_wait_ms_->Record(MetricsNowMs() - task.enqueued_ms);
  }
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->Set(static_cast<double>(depth_after));
  }
}

bool ThreadPool::RunOneQueuedTask() {
  QueuedTask task;
  int64_t depth_after = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    depth_after = static_cast<int64_t>(queue_.size());
  }
  NoteTaskDequeued(task, depth_after);
  space_cv_.notify_one();
  RunCaptured(task.run);
  return true;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    QueuedTask task;
    int64_t depth_after = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
      // On shutdown, abandon the queue immediately: leftovers are
      // cancelled (not run) by Shutdown() after the join.
      if (stopped_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      depth_after = static_cast<int64_t>(queue_.size());
    }
    NoteTaskDequeued(task, depth_after);
    space_cv_.notify_one();
    RunCaptured(task.run);
  }
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Workers are gone; resolve everything still queued through its cancel
  // callback so no task is silently dropped.
  std::deque<QueuedTask> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
  }
  if (queue_depth_gauge_ != nullptr) queue_depth_gauge_->Set(0.0);
  for (QueuedTask& task : leftover) {
    if (tasks_cancelled_total_ != nullptr) tasks_cancelled_total_->Increment();
    if (task.cancel) RunCaptured(task.cancel);
  }
}

Status ThreadPool::ParallelFor(int64_t begin, int64_t end,
                               const std::function<void(int64_t)>& body,
                               int64_t grain) {
  const int64_t n = end - begin;
  if (n <= 0) return Status::OK();
  if (grain <= 0) {
    // Aim for a few chunks per thread so stragglers rebalance, without
    // drowning tiny ranges in per-chunk overhead. Pure function of the
    // range and the (fixed) thread count — never of runtime timing.
    grain = std::max<int64_t>(int64_t{1}, n / (num_threads_ * 4));
  }
  const int64_t num_chunks = (n + grain - 1) / grain;

  // Shared iteration state. Helpers pull chunk ids from an atomic counter;
  // each index is visited exactly once, by exactly one thread. The state
  // outlives any helper via shared_ptr (a helper cancelled at shutdown
  // still decrements the outstanding count through its cancel callback).
  struct ForState {
    std::atomic<int64_t> next_chunk{0};
    std::mutex mu;
    std::condition_variable done_cv;
    int64_t outstanding_helpers = 0;
    Status error;  // From the lowest-indexed failing chunk.
    int64_t error_chunk = -1;
  };
  auto state = std::make_shared<ForState>();

  auto drain = [state, begin, end, grain, num_chunks, &body] {
    int64_t chunk;
    while ((chunk = state->next_chunk.fetch_add(
                1, std::memory_order_relaxed)) < num_chunks) {
      const int64_t lo = begin + chunk * grain;
      const int64_t hi = std::min(end, lo + grain);
      try {
        for (int64_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        Status st = StatusFromCurrentException();
        std::lock_guard<std::mutex> lock(state->mu);
        // Keep the lowest-indexed error; every chunk still runs, so the
        // reported failure is deterministic regardless of scheduling.
        if (state->error_chunk < 0 || chunk < state->error_chunk) {
          state->error_chunk = chunk;
          state->error = std::move(st);
        }
      }
    }
  };

  auto helper_done = [state] {
    std::lock_guard<std::mutex> lock(state->mu);
    --state->outstanding_helpers;
    state->done_cv.notify_all();
  };

  // Launch at most one helper per worker beyond the calling thread.
  // TrySubmit keeps this non-blocking: if the queue is full or the pool is
  // shut down the helper simply never exists and the caller picks up the
  // chunks itself — slower, never stuck.
  const int64_t max_helpers = std::min<int64_t>(num_threads_, num_chunks - 1);
  for (int64_t h = 0; h < max_helpers; ++h) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->outstanding_helpers;
    }
    // The helper references `body` via `drain`; the wait below keeps the
    // caller's frame (and `body`) alive until every helper has resolved.
    Status st = TrySubmit(
        [drain, helper_done] {
          drain();
          helper_done();
        },
        helper_done);
    if (!st.ok()) {
      helper_done();
      break;
    }
  }

  drain();  // The caller is always a worker for its own loop.

  // Wait for the helpers — actively. A helper may be parked in the queue
  // behind other work (including another loop's helpers when ParallelFor
  // calls nest from inside pool tasks); if every thread waited passively
  // here, nobody would be left to run those queued helpers and the loops
  // would deadlock. So while helpers are outstanding the caller keeps
  // executing queued tasks, falling back to a short timed wait only when
  // the queue is momentarily empty.
  while (true) {
    {
      std::unique_lock<std::mutex> lock(state->mu);
      if (state->outstanding_helpers == 0) return state->error;
    }
    if (RunOneQueuedTask()) continue;
    std::unique_lock<std::mutex> lock(state->mu);
    if (state->done_cv.wait_for(
            lock, std::chrono::milliseconds(1),
            [&state] { return state->outstanding_helpers == 0; })) {
      return state->error;
    }
  }
}

}  // namespace imcat
