#ifndef IMCAT_UTIL_THREAD_POOL_H_
#define IMCAT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

/// \file thread_pool.h
/// The concurrency substrate shared by the parallel evaluator, the serving
/// front end and the parallel negative sampler. One implementation, three
/// consumers, so every threading bug has exactly one place to live and one
/// place to be fixed — and the whole thing is required to pass the `race`
/// test suite under ThreadSanitizer (`scripts/check.sh --tsan`).
///
/// Design contracts, each individually tested:
///
///  - **Bounded queue.** Pending (not yet running) tasks are capped at
///    `queue_capacity`. `TrySubmit` never blocks: it admits the task or
///    returns kUnavailable immediately ("queue full" — load shedding, or
///    "shut down"). `Submit` applies backpressure instead: it waits for
///    space, failing only on shutdown.
///
///  - **Shutdown semantics.** `Shutdown()` stops admission, wakes every
///    worker, joins them, and then *cancels* the queued-but-unstarted
///    tasks by invoking their cancel callbacks (never their run
///    callbacks). A task is therefore always resolved exactly once: run
///    by a worker, or cancelled at shutdown. Tasks already running when
///    Shutdown is called complete normally. Idempotent; also run by the
///    destructor.
///
///  - **Exception-to-Status capture.** A task that throws does not take
///    down the worker or the process: the exception is captured, counted,
///    and surfaced via `first_task_error()`. ParallelFor additionally
///    returns the captured Status directly.
///
///  - **Deterministic parallel iteration.** `ParallelFor(begin, end,
///    body)` partitions the index range into fixed chunks computed from
///    the range alone (never from thread timing), and `body(i)` may write
///    only to state owned by index i. Reductions built on top (see
///    `ParallelMap`, `Evaluator::Evaluate`) commit results in **index
///    order, never completion order**, so the result — including its
///    floating-point summation order — is bit-identical at any thread
///    count, including zero (a null/empty pool degrades to the serial
///    loop). The calling thread participates in the work, so ParallelFor
///    cannot deadlock even when every worker is busy, the queue is full,
///    or the pool is already shut down.
namespace imcat {

struct ThreadPoolOptions {
  /// Worker count; 0 uses std::thread::hardware_concurrency (min 1).
  int64_t num_threads = 0;
  /// Upper bound on queued (not yet running) tasks.
  int64_t queue_capacity = 1024;
  /// Optional instrumentation (DESIGN.md §9). When non-null the pool
  /// maintains `<metrics_prefix>_tasks_run_total`,
  /// `<metrics_prefix>_tasks_cancelled_total`, a
  /// `<metrics_prefix>_queue_wait_ms` histogram (admission to execution)
  /// and a `<metrics_prefix>_queue_depth` gauge. Null (the default) keeps
  /// the pool entirely uninstrumented — not even a clock read per task.
  MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "pool";
};

class ThreadPool {
 public:
  explicit ThreadPool(const ThreadPoolOptions& options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// A process-wide pool sized to the hardware, created on first use and
  /// joined at exit. Intended for callers without a natural pool owner
  /// (benchmarks, examples); subsystems with lifecycle requirements (the
  /// serving front end) own their pools.
  static ThreadPool* Shared();

  int64_t num_threads() const { return num_threads_; }

  /// True once Shutdown() has begun; no further tasks are admitted.
  bool stopped() const;

  /// Pending (queued, not running) task count — a point-in-time snapshot.
  int64_t queue_depth() const;

  /// Enqueues `run`, blocking while the queue is at capacity. Fails only
  /// with kUnavailable once the pool is shut down; `cancel` (optional) is
  /// invoked instead of `run` if the task is still queued at shutdown.
  Status Submit(std::function<void()> run, std::function<void()> cancel = {});

  /// Non-blocking admission: kUnavailable with "queue full" when at
  /// capacity (load shedding) or "shut down" after Shutdown().
  Status TrySubmit(std::function<void()> run,
                   std::function<void()> cancel = {});

  /// Stops admission, joins workers, cancels queued-but-unstarted tasks
  /// (their cancel callbacks run on the calling thread). Idempotent.
  void Shutdown();

  /// Runs body(i) for every i in [begin, end), spread across the pool with
  /// the calling thread participating. Chunking is a pure function of the
  /// range (deterministic); `grain` <= 0 picks a chunk size automatically.
  /// Exceptions thrown by `body` are captured; the returned Status is OK,
  /// or the error from the lowest-indexed failing chunk (every chunk still
  /// runs). Safe to call on a shut-down pool or from inside a pool task
  /// (the caller then degrades toward running the chunks itself).
  Status ParallelFor(int64_t begin, int64_t end,
                     const std::function<void(int64_t)>& body,
                     int64_t grain = 0);

  /// Maps fn over [0, n) into `out`, committed in index order: slot i is
  /// written only by index i, and `out` is sized up front, so the result
  /// never depends on completion order. T must be default-constructible.
  template <typename T>
  Status ParallelMap(int64_t n, const std::function<T(int64_t)>& fn,
                     std::vector<T>* out) {
    out->assign(static_cast<size_t>(n), T{});
    return ParallelFor(0, n, [&fn, out](int64_t i) {
      (*out)[static_cast<size_t>(i)] = fn(i);
    });
  }

  /// First exception captured from a plain Submit/TrySubmit task since
  /// construction (OK when none). ParallelFor errors are returned to the
  /// caller instead and do not land here.
  Status first_task_error() const;

  /// Number of tasks whose exceptions were captured.
  int64_t task_exceptions() const;

 private:
  struct QueuedTask {
    std::function<void()> run;
    std::function<void()> cancel;
    /// Admission time (MetricsNowMs) when metrics are enabled; 0 otherwise.
    double enqueued_ms = 0.0;
  };

  void WorkerLoop();
  Status SubmitLocked(std::function<void()> run, std::function<void()> cancel,
                      bool blocking);
  void RunCaptured(const std::function<void()>& run);
  /// Records queue wait + run count for a task about to execute.
  void NoteTaskDequeued(const QueuedTask& task, int64_t depth_after);
  /// Pops and runs one queued task on the calling thread; false when the
  /// queue is empty. Lets ParallelFor waiters make progress instead of
  /// blocking on helpers that are themselves parked in the queue.
  bool RunOneQueuedTask();

  int64_t num_threads_ = 0;
  int64_t queue_capacity_ = 0;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< Signals workers: task or shutdown.
  std::condition_variable space_cv_;  ///< Signals blocked Submit: space freed.
  std::deque<QueuedTask> queue_;
  bool stopped_ = false;
  std::vector<std::thread> workers_;

  Status first_task_error_;
  int64_t task_exceptions_ = 0;

  /// Instrumentation handles (null when ThreadPoolOptions::metrics is
  /// null); resolved once at construction, hot paths only null-check.
  Counter* tasks_run_total_ = nullptr;
  Counter* tasks_cancelled_total_ = nullptr;
  Histogram* queue_wait_ms_ = nullptr;
  Gauge* queue_depth_gauge_ = nullptr;
};

}  // namespace imcat

#endif  // IMCAT_UTIL_THREAD_POOL_H_
