#include "core/alignment.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/autograd.h"
#include "tensor/init.h"
#include "tensor/optimizer.h"

namespace imcat {
namespace {

struct AlignmentFixture {
  static constexpr int kIntents = 2;
  static constexpr int64_t kDim = 8;
  static constexpr int64_t kBatch = 6;

  Rng rng{7};
  AlignmentHead head{kIntents, kDim, 11};
  Tensor user_agg = RandomNormal(kBatch, kDim, &rng);
  std::vector<Tensor> tag_aggs;
  std::vector<Tensor> item_embs;
  std::vector<std::vector<float>> weights;

  AlignmentFixture() {
    for (int k = 0; k < kIntents; ++k) {
      tag_aggs.push_back(RandomNormal(kBatch, kDim, &rng));
      item_embs.push_back(RandomNormal(kBatch, kDim, &rng));
      weights.emplace_back(kBatch, 1.0f / kIntents);
    }
  }
};

TEST(AlignmentHeadTest, ParameterShapes) {
  AlignmentHead head(4, 16, 3);
  EXPECT_EQ(head.chunk_dim(), 4);
  // 5 parameter tensors per intent.
  EXPECT_EQ(head.Parameters().size(), 20u);
}

TEST(AlignmentHeadTest, LossIsFiniteAndPositive) {
  AlignmentFixture fx;
  ImcatConfig config;
  config.num_intents = AlignmentFixture::kIntents;
  Tensor loss = fx.head.Loss(fx.user_agg, fx.tag_aggs, fx.item_embs,
                             fx.weights, config);
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(loss.item(), 0.0f);
}

TEST(AlignmentHeadTest, AblationSwitchesChangeTheLoss) {
  AlignmentFixture fx;
  ImcatConfig config;
  config.num_intents = AlignmentFixture::kIntents;
  const float full = fx.head
                         .Loss(fx.user_agg, fx.tag_aggs, fx.item_embs,
                               fx.weights, config)
                         .item();
  config.align_include_tag = false;  // w/o UT.
  const float no_tag = fx.head
                           .Loss(fx.user_agg, fx.tag_aggs, fx.item_embs,
                                 fx.weights, config)
                           .item();
  config.align_include_tag = true;
  config.align_include_item = false;  // w/o UI.
  const float no_item = fx.head
                            .Loss(fx.user_agg, fx.tag_aggs, fx.item_embs,
                                  fx.weights, config)
                            .item();
  config.align_include_item = true;
  config.enable_nlt = false;  // w/o NLT.
  const float no_nlt = fx.head
                           .Loss(fx.user_agg, fx.tag_aggs, fx.item_embs,
                                 fx.weights, config)
                           .item();
  EXPECT_NE(full, no_tag);
  EXPECT_NE(full, no_item);
  EXPECT_NE(full, no_nlt);
}

TEST(AlignmentHeadTest, ZeroWeightsZeroLoss) {
  AlignmentFixture fx;
  ImcatConfig config;
  config.num_intents = AlignmentFixture::kIntents;
  for (auto& w : fx.weights) std::fill(w.begin(), w.end(), 0.0f);
  Tensor loss = fx.head.Loss(fx.user_agg, fx.tag_aggs, fx.item_embs,
                             fx.weights, config);
  EXPECT_NEAR(loss.item(), 0.0f, 1e-6f);
}

TEST(AlignmentHeadTest, OptimisationAlignsPositivePairs) {
  // Minimising the loss should raise the diagonal (positive-pair)
  // similarity relative to off-diagonal pairs in the projected space.
  AlignmentFixture fx;
  ImcatConfig config;
  config.num_intents = AlignmentFixture::kIntents;
  config.tau = 0.5f;

  AdamOptions adam;
  adam.learning_rate = 0.02f;
  AdamOptimizer optimizer(adam);
  optimizer.AddParameter(fx.user_agg);
  for (auto& t : fx.tag_aggs) optimizer.AddParameter(t);
  for (auto& t : fx.item_embs) optimizer.AddParameter(t);
  optimizer.AddParameters(fx.head.Parameters());

  const float initial = fx.head
                            .Loss(fx.user_agg, fx.tag_aggs, fx.item_embs,
                                  fx.weights, config)
                            .item();
  float final_loss = initial;
  for (int step = 0; step < 120; ++step) {
    optimizer.ZeroGrad();
    Tensor loss = fx.head.Loss(fx.user_agg, fx.tag_aggs, fx.item_embs,
                               fx.weights, config);
    Backward(loss);
    optimizer.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 0.5f * initial);
}

TEST(AlignmentHeadTest, PerfectAlignmentHasLowLoss) {
  // When u equals z for every row and rows are mutually distant, the
  // diagonal dominates and the loss is below the uniform-logit value.
  const int intents = 1;
  const int64_t dim = 4;
  const int64_t batch = 4;
  AlignmentHead head(intents, dim, 5);
  ImcatConfig config;
  config.num_intents = intents;
  config.enable_nlt = false;        // Identity-free comparison.
  config.align_include_tag = false; // z = normalised item embedding only.
  config.tau = 0.05f;

  Tensor user_agg(batch, dim);
  Tensor items(batch, dim);
  for (int64_t i = 0; i < batch; ++i) {
    user_agg.set(i, i % dim, 1.0f);
    items.set(i, i % dim, 1.0f);
  }
  std::vector<std::vector<float>> weights = {
      std::vector<float>(batch, 1.0f)};
  Tensor loss = head.Loss(user_agg, {items}, {items}, weights, config);
  const float uniform = std::log(static_cast<float>(batch));
  EXPECT_LT(loss.item(), 0.1f * uniform);
}

TEST(AlignmentHeadTest, RequiresAtLeastOneSource) {
  AlignmentFixture fx;
  ImcatConfig config;
  config.num_intents = AlignmentFixture::kIntents;
  config.align_include_item = false;
  config.align_include_tag = false;
  EXPECT_DEATH(fx.head.Loss(fx.user_agg, fx.tag_aggs, fx.item_embs,
                            fx.weights, config),
               "align_include");
}

}  // namespace
}  // namespace imcat
