#include "baselines/registry.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/sgl.h"
#include "baselines/tag_profiles.h"
#include "baselines/tgcn.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace imcat {
namespace {

struct BaselineWorkbench {
  Dataset ds;
  DataSplit split;
  Evaluator evaluator;

  BaselineWorkbench()
      : ds(MakeDataset()),
        split(SplitByUser(ds, SplitOptions{})),
        evaluator(ds, split) {}

  static Dataset MakeDataset() {
    SyntheticConfig config;
    config.num_users = 50;
    config.num_items = 80;
    config.num_tags = 20;
    config.num_interactions = 1400;
    config.num_item_tags = 350;
    config.user_intent_alpha = 0.25;
    config.seed = 31;
    return GenerateSynthetic(config);
  }

  ModelFactoryOptions Options() const {
    ModelFactoryOptions options;
    options.embedding_dim = 16;
    options.batch_size = 256;
    options.adam.learning_rate = 5e-3f;
    options.imcat.num_intents = 2;
    options.imcat.pretrain_steps = 10;
    options.imcat.ca_batch_size = 64;
    options.imcat.independence_sample_rows = 24;
    return options;
  }
};

TEST(TagProfilesTest, UserProfilesRowNormalised) {
  BaselineWorkbench wb;
  SparseMatrix profiles = BuildUserTagProfiles(wb.ds, wb.split.train);
  EXPECT_EQ(profiles.rows(), wb.ds.num_users);
  EXPECT_EQ(profiles.cols(), wb.ds.num_tags);
  for (int64_t u = 0; u < profiles.rows(); ++u) {
    float sum = 0.0f;
    for (int64_t k = profiles.indptr()[u]; k < profiles.indptr()[u + 1]; ++k) {
      EXPECT_GT(profiles.values()[k], 0.0f);
      sum += profiles.values()[k];
    }
    if (profiles.indptr()[u + 1] > profiles.indptr()[u]) {
      EXPECT_NEAR(sum, 1.0f, 1e-4f);
    }
  }
}

TEST(TagProfilesTest, ItemProfilesMatchTagSets) {
  Dataset ds;
  ds.num_users = 1;
  ds.num_items = 3;
  ds.num_tags = 4;
  ds.item_tags = {{0, 0}, {0, 2}, {2, 3}};
  SparseMatrix profiles = BuildItemTagProfiles(ds);
  EXPECT_EQ(profiles.nnz(), 3);
  // Item 0 has two tags at weight 0.5.
  EXPECT_EQ(profiles.indptr()[1] - profiles.indptr()[0], 2);
  EXPECT_NEAR(profiles.values()[0], 0.5f, 1e-6f);
  // Item 1 has none.
  EXPECT_EQ(profiles.indptr()[2] - profiles.indptr()[1], 0);
}

TEST(RowStochasticTest, RowsSumToOne) {
  EdgeList edges = {{0, 1}, {0, 2}, {1, 0}};
  SparseMatrix m = RowStochasticFromEdges(2, 3, edges);
  EXPECT_NEAR(m.values()[0] + m.values()[1], 1.0f, 1e-6f);
  EXPECT_NEAR(m.values()[2], 1.0f, 1e-6f);
}

TEST(RegistryTest, AllModelNamesAreCreatable) {
  BaselineWorkbench wb;
  ModelFactoryOptions options = wb.Options();
  EXPECT_EQ(AllModelNames().size(), 15u);
  for (const std::string& name : AllModelNames()) {
    auto model = CreateModel(name, wb.ds, wb.split, options);
    ASSERT_TRUE(model.ok()) << name;
    EXPECT_EQ(model.value()->name(), name);
  }
}

TEST(RegistryTest, UnknownModelIsNotFound) {
  BaselineWorkbench wb;
  auto model = CreateModel("NoSuchModel", wb.ds, wb.split, wb.Options());
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Every registered model: trains with finite losses, scores all items, and
// improves over its own initialisation on validation recall.
// ---------------------------------------------------------------------------

class EveryModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryModelTest, ShortTrainingIsFiniteAndScores) {
  BaselineWorkbench wb;
  auto created = CreateModel(GetParam(), wb.ds, wb.split, wb.Options());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<TrainableModel>& model = created.value();

  Rng rng(7);
  model->OnEpochBegin(0);
  for (int step = 0; step < 15; ++step) {
    const double loss = model->TrainStep(&rng);
    EXPECT_TRUE(std::isfinite(loss)) << GetParam() << " step " << step;
  }
  model->OnEpochBegin(1);
  EXPECT_TRUE(std::isfinite(model->TrainStep(&rng)));

  std::vector<float> scores;
  model->ScoreItemsForUser(0, &scores);
  ASSERT_EQ(scores.size(), static_cast<size_t>(wb.ds.num_items));
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
  EXPECT_FALSE(model->Parameters().empty());
  EXPECT_GT(model->StepsPerEpoch(), 0);
}

TEST_P(EveryModelTest, TrainingImprovesValidationRecall) {
  BaselineWorkbench wb;
  auto created = CreateModel(GetParam(), wb.ds, wb.split, wb.Options());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<TrainableModel>& model = created.value();

  const double before =
      wb.evaluator.Evaluate(*model, wb.split.validation, 20).recall;
  Rng rng(11);
  const int64_t steps_per_epoch = model->StepsPerEpoch();
  // Track the best validation recall, mirroring the early-stopping
  // protocol (models may peak early and then overfit on this tiny set).
  double best = 0.0;
  for (int epoch = 0; epoch < 55; ++epoch) {
    model->OnEpochBegin(epoch);
    for (int64_t s = 0; s < steps_per_epoch; ++s) model->TrainStep(&rng);
    if ((epoch + 1) % 5 == 0) {
      best = std::max(
          best, wb.evaluator.Evaluate(*model, wb.split.validation, 20).recall);
    }
  }
  EXPECT_GT(best, before) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, EveryModelTest,
    ::testing::ValuesIn(AllModelNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-' || c == '.') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Model-specific behaviours.
// ---------------------------------------------------------------------------

TEST(SglTest, AugmentationViewsResampledEachEpoch) {
  BaselineWorkbench wb;
  Sgl sgl(wb.ds, wb.split, AdamOptions{}, 128, 16, 3);
  Rng rng(5);
  sgl.OnEpochBegin(0);
  const double loss_a = sgl.TrainStep(&rng);
  sgl.OnEpochBegin(1);
  const double loss_b = sgl.TrainStep(&rng);
  // Both steps run on freshly sampled views without error.
  EXPECT_TRUE(std::isfinite(loss_a));
  EXPECT_TRUE(std::isfinite(loss_b));
}

TEST(TgcnTest, HandlesItemsWithoutTags) {
  Dataset ds;
  ds.num_users = 2;
  ds.num_items = 3;
  ds.num_tags = 2;
  ds.interactions = {{0, 0}, {0, 1}, {1, 1}, {1, 2}};
  ds.item_tags = {{0, 0}};  // Items 1 and 2 are untagged.
  DataSplit split;
  split.train = ds.interactions;
  Tgcn tgcn(ds, split, AdamOptions{}, 4, 8, 3);
  Rng rng(5);
  EXPECT_TRUE(std::isfinite(tgcn.TrainStep(&rng)));
  std::vector<float> scores;
  tgcn.ScoreItemsForUser(0, &scores);
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

}  // namespace
}  // namespace imcat
